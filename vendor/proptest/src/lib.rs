//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the subset of proptest its tests use: the [`Strategy`] trait with
//! `prop_map`, range and tuple strategies, [`collection::vec`],
//! `any::<T>()`, `Just`, `prop_oneof!`, `prop_assert!` /
//! `prop_assert_eq!`, and the [`proptest!`] test macro with an optional
//! `#![proptest_config(..)]` header.
//!
//! Differences from real proptest: cases are generated from a fixed
//! deterministic seed (reproducible runs, no persistence files) and
//! failing inputs are reported but **not shrunk**.

#![forbid(unsafe_code)]

use std::fmt;

/// Deterministic generator state handed to strategies (xoshiro256**).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    pub fn seed_from_u64(seed: u64) -> TestRng {
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform sample from `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        loop {
            let wide = self.next_u64() as u128 * n as u128;
            if (wide as u64) >= n.wrapping_neg() % n {
                return (wide >> 64) as u64;
            }
        }
    }
}

/// Error carried out of a failing property body.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Result type property bodies evaluate to.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A source of values for property tests.
pub trait Strategy {
    /// The type of generated values.
    type Value: fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(std::rc::Rc::new(self))
    }
}

/// A type-erased strategy.
#[derive(Clone)]
pub struct BoxedStrategy<T>(std::rc::Rc<dyn Strategy<Value = T>>);

impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy producing exactly one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies (backs [`prop_oneof!`]).
pub struct OneOf<T> {
    choices: Vec<BoxedStrategy<T>>,
}

impl<T: fmt::Debug> OneOf<T> {
    /// Creates a choice over `choices`; must be nonempty.
    pub fn new(choices: Vec<BoxedStrategy<T>>) -> OneOf<T> {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { choices }
    }
}

impl<T: fmt::Debug> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.choices.len() as u64) as usize;
        self.choices[idx].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for ::core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.abs_diff(self.start);
                self.start.wrapping_add(rng.below(span as u64) as $t)
            }
        }
        impl Strategy for ::core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = end.abs_diff(start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// `any::<T>()` support.
pub trait Arbitrary: Sized + fmt::Debug {
    /// Draws an arbitrary value of `Self`.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy for any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{fmt, Strategy, TestRng};

    /// Length bounds for [`vec()`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<::core::ops::Range<usize>> for SizeRange {
        fn from(r: ::core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }

    impl From<::core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: ::core::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                min: n,
                max_inclusive: n,
            }
        }
    }

    /// Strategy for vectors with lengths drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: fmt::Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_inclusive - self.size.min) as u64;
            let len = self.size.min
                + if span == 0 {
                    0
                } else {
                    rng.below(span + 1) as usize
                };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for `Vec`s of `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Runner configuration (the subset the workspace uses).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(96);
        ProptestConfig { cases }
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{
        any, collection, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult, TestRng,
    };
}

/// Asserts a condition inside a property body, failing the case (not the
/// process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Defines property tests: each `fn name(binding in strategy, ..) { .. }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($binding:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            // One deterministic stream per property, offset by a hash of
            // the test name so sibling properties see different inputs.
            let name_hash = stringify!($name)
                .bytes()
                .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                    (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
                });
            let mut rng = $crate::TestRng::seed_from_u64(name_hash);
            for case in 0..config.cases {
                $(let $binding = $crate::Strategy::generate(&$strategy, &mut rng);)+
                let dbg = format!(concat!($(stringify!($binding), " = {:?} "),+), $(&$binding),+);
                let outcome: $crate::TestCaseResult = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "property {} failed at case {}/{}: {}\n  inputs: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e,
                        dbg
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..10, y in -5i64..=5, b in any::<bool>()) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-5..=5).contains(&y));
            let _ = b;
        }

        #[test]
        fn vec_lengths_respect_bounds(v in collection::vec(0u8..4, 2..6)) {
            prop_assert!((2..6).contains(&v.len()), "len {}", v.len());
            prop_assert!(v.iter().all(|&e| e < 4));
        }

        #[test]
        fn map_and_oneof_compose(
            s in prop_oneof![Just("a"), Just("b")],
            n in (1u32..5).prop_map(|n| n * 2),
        ) {
            prop_assert!(s == "a" || s == "b");
            prop_assert_eq!(n % 2, 0);
        }
    }
}
