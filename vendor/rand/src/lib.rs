//! Minimal, dependency-free stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no network access, so the
//! workspace vendors exactly the API surface its code uses: `SmallRng`
//! seeded with [`SeedableRng::seed_from_u64`], and the [`Rng`] methods
//! `gen_bool` / `gen_range` / `gen`. The generator is xoshiro256** seeded
//! through SplitMix64 — deterministic across platforms, which is all the
//! workload generator needs (traces are calibrated against statistical
//! targets, not against a specific `rand` version's stream).

#![forbid(unsafe_code)]

/// Core random number generator trait: a source of `u64`s plus the derived
/// sampling helpers the workspace uses.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Sampling helpers layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // 53 high bits give a uniform float in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// A range that knows how to sample itself — the subset of
/// `rand::distributions::uniform` the workspace needs.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased sample from `[0, n)` by Lemire-style rejection on the widening
/// multiply. `n` must be nonzero.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0, "empty sampling range");
    loop {
        let x = rng.next_u64();
        let wide = x as u128 * n as u128;
        let low = wide as u64;
        if low >= n.wrapping_neg() % n {
            return (wide >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for ::core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for ::core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256**).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            // SplitMix64 expansion of the seed, as rand does.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5u64..=5);
            assert_eq!(y, 5);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(99);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.8)).count();
        assert!((78_000..82_000).contains(&hits), "hits {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
