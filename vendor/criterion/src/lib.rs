//! Minimal, dependency-free stand-in for the `criterion` benchmark
//! harness.
//!
//! The build environment has no network access, so the workspace vendors
//! the subset of criterion its benches use: `Criterion`,
//! `benchmark_group` / `sample_size` / `bench_function` / `finish`,
//! `Bencher::iter`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros. Each benchmark runs a short warmup plus
//! `sample_size` timed samples and prints min / mean / max wall time.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque-ish identity function: keeps the optimizer from deleting the
/// benchmarked computation (best effort without `std::hint::black_box`
/// being insufficient — we simply delegate to it).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Times one closure invocation pattern.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    pending: u64,
}

impl Bencher {
    /// Runs `routine` once per sample, timing each invocation.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let iters = self.pending.max(1);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.samples.push(start.elapsed() / iters as u32);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark and prints its timing summary.
    ///
    /// With `BENCH_SMOKE` set in the environment the benchmark runs in
    /// *smoke mode*: a single sample and no warmup, so CI can exercise
    /// every bench target as a correctness check without paying for
    /// statistically meaningful timings.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let samples = if smoke_mode() { 1 } else { self.sample_size };
        if !smoke_mode() {
            // Warmup: one untimed pass.
            let mut warm = Bencher::default();
            f(&mut warm);
        }
        let mut bencher = Bencher::default();
        for _ in 0..samples {
            f(&mut bencher);
        }
        let n = bencher.samples.len().max(1);
        let total: Duration = bencher.samples.iter().sum();
        let mean = total / n as u32;
        let min = bencher.samples.iter().min().copied().unwrap_or_default();
        let max = bencher.samples.iter().max().copied().unwrap_or_default();
        println!(
            "{}/{id}: {n} samples, min {min:?}, mean {mean:?}, max {max:?}",
            self.name
        );
        self
    }

    /// Ends the group (prints a separator, mirroring criterion's report).
    pub fn finish(self) {
        println!();
    }
}

/// Whether `BENCH_SMOKE` is set: run every bench with one sample and no
/// warmup (CI uses this to keep the bench targets compiling and running
/// without paying for real timings).
pub fn smoke_mode() -> bool {
    std::env::var_os("BENCH_SMOKE").is_some()
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 100,
            _criterion: self,
        }
    }
}

/// Declares a benchmark group function list, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main` entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; a real
            // filter argument would need criterion proper. Accept and
            // ignore them.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        group.finish();
    }

    #[test]
    fn harness_runs_to_completion() {
        let mut c = Criterion::default();
        sample_bench(&mut c);
    }
}
