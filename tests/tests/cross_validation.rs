//! Cross-machine consistency: the two simulators must agree on everything
//! that is a property of the *program*, not the microarchitecture.

use dva_core::{DvaConfig, DvaSim};
use dva_ref::{RefParams, RefSim};
use dva_workloads::{Benchmark, Scale};

#[test]
fn machines_agree_on_memory_traffic() {
    // Without bypass, both machines move exactly the same words to and
    // from memory; only scalar cache contents could differ, and both use
    // the same cache model over the same address stream.
    for b in Benchmark::ALL {
        let p = b.program(Scale::Quick);
        let r = RefSim::new(RefParams::with_latency(30)).run(&p);
        let d = DvaSim::new(DvaConfig::dva(30)).run(&p);
        assert_eq!(
            r.traffic.vector_load_elems,
            d.traffic.vector_load_elems,
            "{}: vector load traffic differs",
            b.name()
        );
        assert_eq!(
            r.traffic.vector_store_elems,
            d.traffic.vector_store_elems,
            "{}: vector store traffic differs",
            b.name()
        );
        assert_eq!(
            r.traffic.scalar_store_words,
            d.traffic.scalar_store_words,
            "{}: scalar store traffic differs",
            b.name()
        );
    }
}

#[test]
fn traffic_is_latency_invariant() {
    let p = Benchmark::Flo52.program(Scale::Quick);
    let t1 = DvaSim::new(DvaConfig::dva(1)).run(&p).traffic;
    let t100 = DvaSim::new(DvaConfig::dva(100)).run(&p).traffic;
    assert_eq!(t1, t100);
}

#[test]
fn instruction_counts_match_the_trace() {
    for b in Benchmark::ALL {
        let p = b.program(Scale::Quick);
        let r = RefSim::new(RefParams::with_latency(1)).run(&p);
        let d = DvaSim::new(DvaConfig::dva(1)).run(&p);
        assert_eq!(r.insts, p.len() as u64);
        assert_eq!(d.insts, p.len() as u64);
    }
}

#[test]
fn cache_hit_rates_are_plausible_and_close() {
    // Same cache geometry, same address stream: hit rates should be in
    // the same ballpark (timing differences can reorder fills slightly
    // between scalar stores and loads, so exact equality is not
    // required).
    let p = Benchmark::Trfd.program(Scale::Quick);
    let r = RefSim::new(RefParams::with_latency(30)).run(&p);
    let d = DvaSim::new(DvaConfig::dva(30)).run(&p);
    assert!(r.cache_hit_rate > 0.3 && r.cache_hit_rate <= 1.0);
    assert!((r.cache_hit_rate - d.cache_hit_rate).abs() < 0.05);
}

#[test]
fn bus_utilization_is_higher_on_the_dva() {
    // Decoupling exists to keep the memory port busy: on memory-bound
    // programs the DVA's bus utilization should beat the REF's.
    for b in [Benchmark::Arc2d, Benchmark::Flo52] {
        let p = b.program(Scale::Quick);
        let r = RefSim::new(RefParams::with_latency(70)).run(&p);
        let d = DvaSim::new(DvaConfig::dva(70)).run(&p);
        assert!(
            d.bus_utilization > r.bus_utilization,
            "{}: DVA bus {:.2} <= REF bus {:.2}",
            b.name(),
            d.bus_utilization,
            r.bus_utilization
        );
    }
}
