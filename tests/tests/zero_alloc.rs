//! Allocation-regression tests: the engines' steady-state tick loops
//! must not touch the heap.
//!
//! The method: install a counting global allocator, compile two programs
//! of the same shape but different lengths outside the measurement, warm
//! a reusable runner (first run builds the engine's buffers), then
//! compare the allocation deltas of a short and a long run. Each run
//! pays the same small constant (the memory backend, the observers, the
//! result assembly); if the long run — thousands of additional ticks —
//! allocates exactly as much as the short one, the per-tick allocation
//! count is pinned at zero.

use dva_core::{CompiledProgram, DvaConfig, DvaRunner, DvaSim};
use dva_isa::{Program, VectorReg};
use dva_ref::{RefParams, RefRunner, RefSim};
use dva_testutil::{allocation_count, vadd, vload, vstore};
use std::sync::Arc;

#[global_allocator]
static ALLOC: dva_testutil::CountingAllocator = dva_testutil::CountingAllocator;

/// `n` rounds of load → add → store over rotating registers: every
/// engine structure (AVDQ, store queues, scoreboards, FUs) cycles in
/// steady state, and the tick count scales with `n`.
fn kernel(n: usize) -> Program {
    let mut insts = Vec::new();
    for i in 0..n {
        let base = 0x10_0000 + (i as u64) * 0x4000;
        let [a, b, c] = [
            VectorReg::ALL[(2 * i) % 6],
            VectorReg::ALL[(2 * i + 1) % 6],
            VectorReg::ALL[6 + i % 2],
        ];
        insts.push(vload(a, base, 64));
        insts.push(vload(b, base + 0x1000, 64));
        insts.push(vadd(c, a, b, 64));
        insts.push(vstore(c, base + 0x2000, 64));
        // Reload what was just stored: with bypass configured this
        // exercises the pending-bypass queue and the data-ready ring.
        insts.push(vload(a, base + 0x2000, 64));
    }
    Program::from_insts("alloc-kernel", insts)
}

#[test]
fn steady_state_ticks_do_not_allocate() {
    let short = Arc::new(CompiledProgram::compile(&kernel(40)));
    let long = Arc::new(CompiledProgram::compile(&kernel(80)));

    for config in [
        DvaConfig::dva(30),
        DvaConfig::byp(30, 4, 8),
        DvaConfig::builder().latency(100).bypass(true).build(),
    ] {
        let sim = DvaSim::new(config);
        let mut runner = DvaRunner::new();
        // Warm: the first run sizes every buffer the configuration needs.
        let warm = runner.run(&sim, &long);
        let measure = |runner: &mut DvaRunner, compiled: &Arc<CompiledProgram>| {
            let before = allocation_count();
            let result = runner.run(&sim, compiled);
            (allocation_count() - before, result)
        };
        let (short_allocs, short_result) = measure(&mut runner, &short);
        let (long_allocs, long_result) = measure(&mut runner, &long);
        assert!(
            long_result.ticks_executed.get() >= short_result.ticks_executed.get() + 500,
            "the long run must execute substantially more ticks \
             ({} vs {})",
            long_result.ticks_executed.get(),
            short_result.ticks_executed.get(),
        );
        assert_eq!(
            long_allocs,
            short_allocs,
            "steady-state ticks allocated ({long_allocs} allocations over \
             {} ticks vs {short_allocs} over {}; cfg={config:?})",
            long_result.ticks_executed.get(),
            short_result.ticks_executed.get(),
        );
        // The per-run constant itself stays small: the memory backend,
        // the observers and the result assembly, nothing proportional.
        assert!(
            short_allocs < 64,
            "per-run constant allocation count grew suspiciously large \
             ({short_allocs}; cfg={config:?})"
        );
        // Reuse did not change the measurement.
        assert_eq!(warm, runner.run(&sim, &long));
    }
}

#[test]
fn ref_steady_state_ticks_do_not_allocate() {
    let short = Arc::new(dva_ref::CompiledProgram::compile(&kernel(40)));
    let long = Arc::new(dva_ref::CompiledProgram::compile(&kernel(80)));
    let sim = RefSim::new(RefParams::with_latency(30));
    let mut runner = RefRunner::new();
    let _ = runner.run(&sim, &long);
    let measure = |runner: &mut RefRunner, compiled: &Arc<dva_ref::CompiledProgram>| {
        let before = allocation_count();
        let result = runner.run(&sim, compiled);
        (allocation_count() - before, result)
    };
    let (short_allocs, _) = measure(&mut runner, &short);
    let (long_allocs, long_result) = measure(&mut runner, &long);
    assert_eq!(
        long_allocs,
        short_allocs,
        "REF steady-state ticks allocated ({long_allocs} vs {short_allocs} \
         allocations; {} ticks)",
        long_result.ticks_executed.get(),
    );
    assert!(short_allocs < 32);
}
