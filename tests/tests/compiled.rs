//! Translate-once equivalence: compiled-program runs (shared
//! translation + reused engines) must be byte-identical to
//! fresh-translate runs, across machines × latencies × memory models.

use dva_core::{DvaConfig, DvaRunner, DvaSim};
use dva_ref::{RefParams, RefRunner, RefSim};
use dva_sim_api::{Machine, MemoryModelKind, PreparedProgram, Runners, Sweep};
use dva_tests::arb_program;
use dva_workloads::{Benchmark, Scale};
use proptest::prelude::*;
use std::sync::Arc;

const MODELS: [MemoryModelKind; 3] = [
    MemoryModelKind::Flat,
    MemoryModelKind::Banked {
        banks: 8,
        bank_busy: 8,
    },
    MemoryModelKind::MultiPort { ports: 2 },
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// One translation, one runner, many configurations: every
    /// compiled-program run equals the fresh-translate run of the same
    /// point. This is simultaneously the reset-contract workout — the
    /// runner's engine is reused across every configuration in sequence.
    #[test]
    fn compiled_runs_equal_fresh_translate_runs(
        program in arb_program(),
        latency in 1u64..=100,
    ) {
        let compiled = Arc::new(dva_core::CompiledProgram::compile(&program));
        let mut runner = DvaRunner::new();
        for model in MODELS {
            for mut config in [DvaConfig::dva(latency), DvaConfig::byp(latency, 4, 8)] {
                config.memory.model = model;
                let sim = DvaSim::new(config);
                prop_assert_eq!(runner.run(&sim, &compiled), sim.run(&program));
            }
        }

        let ref_compiled = Arc::new(dva_ref::CompiledProgram::compile(&program));
        let mut ref_runner = RefRunner::new();
        for model in MODELS {
            let mut params = RefParams::with_latency(latency);
            params.memory.model = model;
            let sim = RefSim::new(params);
            prop_assert_eq!(ref_runner.run(&sim, &ref_compiled), sim.run(&program));
        }
    }
}

/// The full grid, sweep path (shared compiled programs, per-worker
/// engine reuse) vs the one-shot path (fresh everything per point).
#[test]
fn sweep_grid_matches_per_point_simulation() {
    let machines = [
        Machine::reference(1),
        Machine::dva(1),
        Machine::byp(1, 4, 8),
        Machine::ideal(),
    ];
    let benchmarks = [Benchmark::Trfd, Benchmark::Dyfesm];
    let latencies = [1u64, 30];
    let results = Sweep::new()
        .machines(machines)
        .benchmarks(benchmarks)
        .latencies(latencies)
        .memory_models(MODELS)
        .scale(Scale::Quick)
        .threads(2)
        .run();
    assert_eq!(results.points.len(), 4 * 2 * 2 * 3);
    let mut expected = Vec::new();
    for benchmark in benchmarks {
        let program = benchmark.program(Scale::Quick);
        for latency in latencies {
            for model in MODELS {
                for machine in machines {
                    let stamped = machine.with_latency(latency).with_memory_model(model);
                    expected.push(stamped.simulate(&program));
                }
            }
        }
    }
    for (point, expected) in results.points.iter().zip(&expected) {
        assert_eq!(
            &point.result, expected,
            "sweep point diverged from a one-shot run: {} {} L{} {}",
            point.label, point.program, point.latency, point.memory
        );
    }
}

/// `simulate_prepared` with long-lived runners equals `simulate` for
/// every machine kind, including IDEAL (cached bound) and the grid of
/// configurations a prepared program serves.
#[test]
fn prepared_simulation_is_byte_identical() {
    let program = Benchmark::Arc2d.program(Scale::Quick);
    let prepared = PreparedProgram::new(&program);
    let mut runners = Runners::new();
    for machine in [
        Machine::reference(30),
        Machine::dva(30),
        Machine::byp(30, 4, 8),
        Machine::ideal(),
    ] {
        for fast_forward in [true, false] {
            assert_eq!(
                machine.simulate_prepared(&prepared, fast_forward, &mut runners),
                machine.simulate_with(&program, fast_forward),
                "machine {} ff={fast_forward}",
                machine.label()
            );
        }
    }
}
