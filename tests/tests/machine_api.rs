//! The unified `Machine` / `Sweep` API, exercised end to end across
//! crates: golden cross-machine orderings and the determinism guarantee
//! of parallel sweep sessions.

use dva_core::DvaConfig;
use dva_ref::RefParams;
use dva_sim_api::{Machine, Sweep, SweepResults};
use dva_workloads::{Benchmark, Scale};

/// The golden cross-machine ordering: IDEAL is a lower bound on the DVA,
/// and at the paper's realistic latencies the DVA never loses to REF.
///
/// Below L≈50 the lockstep-bound DYFESM runs slightly *slower* decoupled
/// than coupled (the paper reports it latency-neutral at speedup ~1.0),
/// so for low latencies the REF comparison carries a 10% tolerance; the
/// IDEAL bound is strict everywhere.
#[test]
fn golden_cycle_ordering_ideal_dva_ref() {
    for benchmark in Benchmark::ALL {
        let program = benchmark.program(Scale::Quick);
        let ideal = Machine::ideal().simulate(&program).cycles;
        for latency in [1u64, 10, 30, 50, 70, 100] {
            let dva = Machine::dva(latency).simulate(&program).cycles;
            let reference = Machine::reference(latency).simulate(&program).cycles;
            assert!(
                ideal <= dva,
                "{} L={latency}: IDEAL {ideal} above DVA {dva}",
                benchmark.name()
            );
            assert!(
                ideal <= reference,
                "{} L={latency}: IDEAL {ideal} above REF {reference}",
                benchmark.name()
            );
            if latency >= 50 {
                assert!(
                    dva <= reference,
                    "{} L={latency}: DVA {dva} above REF {reference}",
                    benchmark.name()
                );
            } else {
                assert!(
                    dva as f64 <= reference as f64 * 1.10,
                    "{} L={latency}: DVA {dva} more than 10% above REF {reference}",
                    benchmark.name()
                );
            }
        }
    }
}

fn full_grid(threads: usize) -> SweepResults {
    Sweep::new()
        .machines([
            Machine::reference(1),
            Machine::dva(1),
            Machine::byp(1, 4, 8),
            Machine::ideal(),
        ])
        .benchmarks(Benchmark::ALL)
        .latencies([1, 30])
        .scale(Scale::Quick)
        .threads(threads)
        .run()
}

/// A parallel sweep returns byte-identical results to a sequential one:
/// same points, same order, same measurements.
#[test]
fn parallel_sweep_matches_sequential_byte_for_byte() {
    let sequential = full_grid(1);
    let parallel = full_grid(8);
    assert_eq!(sequential.points.len(), 4 * Benchmark::ALL.len() * 2);
    assert_eq!(sequential, parallel);
    assert_eq!(
        format!("{sequential:?}"),
        format!("{parallel:?}"),
        "parallel sweep must serialize identically to a sequential one"
    );
}

/// Repeated sessions are reproducible: workload generation and both
/// simulators are deterministic end to end.
#[test]
fn sweep_sessions_are_reproducible_across_runs() {
    assert_eq!(full_grid(4), full_grid(4));
}

/// The builder front door produces the same machines as the named
/// constructors, all the way through simulation.
#[test]
fn builders_feed_machines() {
    let program = Benchmark::Trfd.program(Scale::Quick);
    let via_builder = Machine::Dva(
        DvaConfig::builder()
            .latency(30)
            .avdq(4)
            .store_queue(8)
            .bypass(true)
            .build(),
    );
    assert_eq!(via_builder.label(), "BYP 4/8");
    assert_eq!(
        via_builder.simulate(&program).cycles,
        Machine::byp(30, 4, 8).simulate(&program).cycles
    );

    let via_builder = Machine::Ref(RefParams::builder().latency(30).build());
    assert_eq!(
        via_builder.simulate(&program).cycles,
        Machine::reference(30).simulate(&program).cycles
    );
}
