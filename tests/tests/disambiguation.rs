//! Dynamic memory disambiguation (paper, Section 4.2), exercised with
//! hand-built traces: hazards force drains, identical accesses bypass,
//! gathers/scatters conflict with everything.

use dva_core::{DvaConfig, DvaSim};
use dva_isa::{Inst, Program, Stride, VOperand, VectorAccess, VectorOp, VectorReg};
use dva_tests::{unit, vl};

/// load a; c = a+a; store c to X; load X (identical reload).
fn store_then_reload(identical: bool) -> Program {
    let reload = if identical {
        unit(0x9000, 32)
    } else {
        // Overlapping but offset: a hazard that cannot bypass.
        VectorAccess::new(0x9008, Stride::UNIT, vl(32))
    };
    Program::from_insts(
        "reload",
        vec![
            Inst::VLoad {
                dst: VectorReg::V0,
                access: unit(0x1000, 32),
            },
            Inst::VCompute {
                op: VectorOp::Add,
                dst: VectorReg::V2,
                src1: VOperand::Reg(VectorReg::V0),
                src2: Some(VOperand::Reg(VectorReg::V0)),
                vl: vl(32),
            },
            Inst::VStore {
                src: VectorReg::V2,
                access: unit(0x9000, 32),
            },
            Inst::VLoad {
                dst: VectorReg::V4,
                access: reload,
            },
        ],
    )
}

#[test]
fn identical_reload_bypasses_when_enabled() {
    let p = store_then_reload(true);
    let byp = DvaSim::new(DvaConfig::byp(100, 256, 16)).run(&p);
    assert_eq!(byp.bypassed_loads, 1);
    assert_eq!(byp.traffic.bypassed_elems, 32);
    // Without bypass, the same trace drains instead.
    let dva = DvaSim::new(DvaConfig::dva(100)).run(&p);
    assert_eq!(dva.bypassed_loads, 0);
    assert!(dva.drain_stall_cycles > 0, "expected a hazard drain");
    assert!(byp.cycles < dva.cycles);
}

#[test]
fn overlapping_but_different_access_drains_even_with_bypass() {
    let p = store_then_reload(false);
    let byp = DvaSim::new(DvaConfig::byp(100, 256, 16)).run(&p);
    assert_eq!(byp.bypassed_loads, 0);
    assert!(byp.drain_stall_cycles > 0);
}

#[test]
fn disjoint_loads_never_drain() {
    let p = Program::from_insts(
        "disjoint",
        vec![
            Inst::VLoad {
                dst: VectorReg::V0,
                access: unit(0x1000, 16),
            },
            Inst::VStore {
                src: VectorReg::V0,
                access: unit(0x2000, 16),
            },
            Inst::VLoad {
                dst: VectorReg::V2,
                access: unit(0x3000, 16),
            },
        ],
    );
    let d = DvaSim::new(DvaConfig::dva(30)).run(&p);
    assert_eq!(d.drain_stall_cycles, 0);
}

#[test]
fn scatter_blocks_subsequent_loads() {
    // A scatter defines all of memory: the next load must drain it.
    let p = Program::from_insts(
        "scatter",
        vec![
            Inst::VLoad {
                dst: VectorReg::V0,
                access: unit(0x1000, 16),
            },
            Inst::VLoad {
                dst: VectorReg::V1,
                access: unit(0x5000, 16),
            },
            Inst::VScatter {
                src: VectorReg::V0,
                index: VectorReg::V1,
                base: 0x8000,
                vl: vl(16),
            },
            Inst::VLoad {
                dst: VectorReg::V2,
                access: unit(0x2000, 16),
            },
        ],
    );
    let d = DvaSim::new(DvaConfig::dva(30)).run(&p);
    assert!(d.drain_stall_cycles > 0, "scatter must force a drain");
}

#[test]
fn scalar_load_drains_matching_scalar_store() {
    use dva_isa::ScalarReg;
    let p = Program::from_insts(
        "scalar-hazard",
        vec![
            Inst::SLoad {
                dst: ScalarReg::scalar(2),
                addr: 0x100,
            },
            Inst::SStore {
                src: ScalarReg::scalar(2),
                addr: 0x200,
            },
            Inst::SLoad {
                dst: ScalarReg::scalar(3),
                addr: 0x200,
            },
        ],
    );
    // Completes correctly (no deadlock) and the dependent load observes
    // the store ordering.
    let d = DvaSim::new(DvaConfig::dva(10)).run(&p);
    assert!(d.cycles > 0);
}

#[test]
fn bypassed_data_flows_to_the_vector_processor() {
    // After a bypass, the consuming compute still executes — the AVDQ slot
    // delivers data to the QMOV exactly once.
    let mut insts = store_then_reload(true).insts().to_vec();
    insts.push(Inst::VCompute {
        op: VectorOp::Add,
        dst: VectorReg::V6,
        src1: VOperand::Reg(VectorReg::V4),
        src2: Some(VOperand::Reg(VectorReg::V4)),
        vl: vl(32),
    });
    let p = Program::from_insts("consume", insts);
    let byp = DvaSim::new(DvaConfig::byp(50, 4, 8)).run(&p);
    assert_eq!(byp.bypassed_loads, 1);
    assert!(byp.cycles > 0);
}
