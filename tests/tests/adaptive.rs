//! Contract of the adaptive sweep sessions: every point an adaptive run
//! emits is byte-identical to the dense sweep's, the sampling plan is
//! deterministic regardless of worker threads or lane batching, and
//! dominance pruning never drops a configuration that beats the
//! baseline anywhere on the dense axis.

use dva_serve::{Client, ResultCache, SweepService};
use dva_sim_api::{AdaptiveSweep, Machine, Sweep};
use dva_workloads::{Benchmark, Scale};
use proptest::prelude::*;

/// The machine pool the proptests draw candidates from. `DVA` is always
/// present as the pruning baseline; the others are candidates.
const CANDIDATES: [fn() -> Machine; 3] = [
    || Machine::reference(1),
    || Machine::byp(1, 4, 4),
    || Machine::byp(1, 256, 16),
];

fn grid(candidates: &[usize], benchmark: Benchmark) -> Sweep {
    let mut machines = vec![Machine::dva(1)];
    machines.extend(candidates.iter().map(|&i| CANDIDATES[i]()));
    Sweep::new()
        .machines(machines)
        .benchmarks([benchmark])
        .scale(Scale::Quick)
        .threads(1)
}

fn benchmark(index: usize) -> Benchmark {
    Benchmark::ALL[index % Benchmark::ALL.len()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Every point the adaptive session measures — over arbitrary axis
    /// windows, seed counts and tolerances — is byte-identical to the
    /// point the dense sweep produces at the same coordinate.
    #[test]
    fn adaptive_points_are_byte_identical_to_the_dense_sweep(
        bench_index in 0usize..6,
        start in 1u64..=40,
        len in 8u64..=24,
        seeds in 2usize..=6,
        tolerance_pct in 0u32..=10,
    ) {
        let adaptive = AdaptiveSweep::over(
            grid(&[0, 1], benchmark(bench_index)),
            start..=start + len,
        )
        .seeds(seeds)
        .tolerance(f64::from(tolerance_pct) / 100.0);
        let outcome = adaptive.run();
        let dense = adaptive.dense().run();
        prop_assert!(!outcome.results.points.is_empty());
        for point in &outcome.results.points {
            let reference = dense
                .named(&point.label, &point.program, point.latency)
                .expect("dense grid covers every adaptive coordinate");
            prop_assert_eq!(point, reference);
            prop_assert_eq!(format!("{point:?}"), format!("{reference:?}"));
        }
    }

    /// The sampling plan — which points get measured, in how many
    /// rounds, and what gets pruned — is a function of the measured
    /// curves alone: worker threads and lane batching never change it,
    /// and the full outcome (points and report) is identical.
    #[test]
    fn the_sampling_plan_ignores_threads_and_lanes(
        bench_index in 0usize..6,
        seeds in 3usize..=6,
    ) {
        let session = |threads: usize, lanes: usize| {
            AdaptiveSweep::over(
                grid(&[0, 1, 2], benchmark(bench_index))
                    .threads(threads)
                    .lanes(lanes),
                1..=30,
            )
            .seeds(seeds)
            .prune_against("DVA", ["REF", "BYP 4/4", "BYP 256/16"])
            .run()
        };
        let reference = session(1, 1);
        for (threads, lanes) in [(2, 1), (8, 1), (1, 16), (8, 16)] {
            let outcome = session(threads, lanes);
            prop_assert_eq!(&outcome.results, &reference.results,
                "threads={} lanes={} changed the measured points", threads, lanes);
            prop_assert_eq!(&outcome.report, &reference.report,
                "threads={} lanes={} changed the sampling report", threads, lanes);
        }
    }

    /// Dominance pruning is sound: a pruned configuration's *dense*
    /// curve never strictly beats the baseline at any latency of the
    /// axis — pruning only ever skips points that interpolation or the
    /// baseline already covers.
    #[test]
    fn pruning_never_drops_a_curve_that_beats_the_baseline(
        bench_index in 0usize..6,
        start in 1u64..=50,
        len in 10u64..=20,
        seeds in 3usize..=6,
    ) {
        let bench = benchmark(bench_index);
        let adaptive = AdaptiveSweep::over(grid(&[0, 1, 2], bench), start..=start + len)
            .seeds(seeds)
            .prune_against("DVA", ["REF", "BYP 4/4", "BYP 256/16"]);
        let outcome = adaptive.run();
        if outcome.report.pruned().next().is_none() {
            return Ok(());
        }
        let dense = adaptive.dense().run();
        for curve in outcome.report.pruned() {
            for latency in adaptive.axis() {
                let candidate = dense
                    .named(&curve.label, &curve.program, *latency)
                    .expect("dense point")
                    .result
                    .cycles;
                let baseline = dense
                    .named("DVA", &curve.program, *latency)
                    .expect("dense baseline")
                    .result
                    .cycles;
                prop_assert!(
                    candidate >= baseline,
                    "{} was pruned on {} but beats DVA at L={} ({} < {})",
                    curve.label, curve.program, latency, candidate, baseline
                );
            }
        }
    }
}

/// The adaptive job kind end to end over a unix socket: the daemon
/// streams byte-identical points with dense grid indices, reports the
/// sampling summary, and shares its cache with dense jobs in both
/// directions.
#[test]
fn adaptive_jobs_round_trip_the_socket_and_share_the_cache() {
    let socket = std::env::temp_dir().join(format!("dva-adaptive-e2e-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&socket);
    let service = std::sync::Arc::new(SweepService::new(ResultCache::in_memory(4096)));
    let server = {
        let socket = socket.clone();
        std::thread::spawn(move || dva_serve::serve_unix(service, &socket))
    };
    let mut client = loop {
        match Client::connect(&socket) {
            Ok(client) => break client,
            Err(_) => std::thread::sleep(std::time::Duration::from_millis(10)),
        }
    };

    let adaptive = AdaptiveSweep::over(grid(&[0], Benchmark::Trfd), 1..=40)
        .seeds(5)
        .prune_against("DVA", ["REF"]);
    let dense = adaptive.dense();
    let reference = dense.clone().run();

    // Cold adaptive job: every streamed point carries its dense grid
    // index and matches the dense run byte for byte.
    let summary = client
        .submit_adaptive_streaming(&adaptive, |index, point| {
            assert_eq!(point, reference.points[index]);
        })
        .unwrap();
    assert_eq!(summary.dense, reference.points.len());
    assert_eq!(summary.cache_hits, 0);
    assert_eq!(summary.simulated, summary.sampled);
    assert_eq!(
        summary.sampled + summary.interpolated + summary.dominated,
        summary.dense,
        "every dense point is sampled, interpolated, or dominated"
    );

    // The adaptive job warmed the shared cache: a dense job over the
    // same grid only simulates the points the session skipped.
    let (full, cost) = client.submit(&dense).unwrap();
    assert_eq!(full, reference);
    assert_eq!(cost.cache_hits, summary.sampled);
    assert_eq!(cost.simulated, summary.interpolated + summary.dominated);

    // And the other way: a repeat adaptive job is now pure cache hits.
    let (results, summary) = client.submit_adaptive(&adaptive).unwrap();
    assert_eq!(summary.simulated, 0);
    assert_eq!(summary.cache_hits, summary.sampled);
    for point in &results.points {
        let reference = reference
            .named(&point.label, &point.program, point.latency)
            .expect("dense coordinate");
        assert_eq!(point, reference);
    }

    client.shutdown().unwrap();
    server.join().unwrap().unwrap();
    assert!(!socket.exists(), "socket cleaned up on shutdown");
}
