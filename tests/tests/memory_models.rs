//! The pluggable memory-backend layer: `Flat` through the `MemoryModel`
//! trait must be byte-identical to the pre-refactor memory system, and
//! the `Banked`/`MultiPort` backends must obey the same fast-forward
//! equivalence contract as everything else the shared driver runs.

use dva_core::{DvaConfig, DvaSim};
use dva_ref::{RefParams, RefSim};
use dva_sim_api::{Machine, MemoryModelKind, Sweep, SweepResults};
use dva_tests::arb_program;
use dva_workloads::{Benchmark, Scale};
use proptest::prelude::*;

const BANKED: MemoryModelKind = MemoryModelKind::Banked {
    banks: 8,
    bank_busy: 8,
};
const TWO_PORT: MemoryModelKind = MemoryModelKind::MultiPort { ports: 2 };

fn grid(memory: MemoryModelKind, fast_forward: bool) -> SweepResults {
    Sweep::new()
        .machines([
            Machine::reference(1),
            Machine::dva(1),
            Machine::byp(1, 4, 8),
        ])
        .benchmarks(Benchmark::ALL)
        .latencies([1, 30, 100])
        .memory_model(memory)
        .scale(Scale::Quick)
        .fast_forward(fast_forward)
        .run()
}

/// The golden acceptance gate: an explicit `Flat` backend selected
/// through the trait layer reproduces the machines' default results
/// exactly — typed values and rendered `Debug` output alike — on the
/// full machines × benchmarks × latencies grid.
#[test]
fn flat_through_the_trait_is_byte_identical_to_the_default() {
    let default = Sweep::new()
        .machines([
            Machine::reference(1),
            Machine::dva(1),
            Machine::byp(1, 4, 8),
        ])
        .benchmarks(Benchmark::ALL)
        .latencies([1, 30, 100])
        .scale(Scale::Quick)
        .run();
    let explicit = grid(MemoryModelKind::Flat, true);
    assert_eq!(default.points.len(), explicit.points.len());
    for (d, e) in default.points.iter().zip(&explicit.points) {
        assert_eq!(
            d.result, e.result,
            "{} {} L={}",
            d.label, d.program, d.latency
        );
        assert_eq!(format!("{:?}", d.result), format!("{:?}", e.result));
    }
}

/// The pre-refactor golden cycle counts, pinned through the explicit
/// `Flat` backend: the trait layer is an API change, not a model change.
#[test]
fn golden_cycle_counts_pin_the_flat_backend() {
    let program = Benchmark::Trfd.program(Scale::Quick);
    for (latency, ref_golden, dva_golden) in [(1u64, 6545u64, 6342u64), (100, 19449, 11097)] {
        let r = Machine::reference(latency)
            .with_memory_model(MemoryModelKind::Flat)
            .simulate(&program);
        let d = Machine::dva(latency)
            .with_memory_model(MemoryModelKind::Flat)
            .simulate(&program);
        assert_eq!(
            (r.cycles, d.cycles),
            (ref_golden, dva_golden),
            "TRFD Quick at L={latency}"
        );
    }
}

/// Fast-forward is exact under the new backends too: the banked
/// backend's stride-dependent bus holds and the multi-port backend's
/// `next_free_at` (earliest port) both feed the next-event computation,
/// and the full grid is byte-identical with fast-forward on vs off.
#[test]
fn full_grid_is_byte_identical_with_fast_forward_under_banked() {
    assert_eq!(grid(BANKED, true), grid(BANKED, false));
}

/// Same for the multi-port backend.
#[test]
fn full_grid_is_byte_identical_with_fast_forward_under_multiport() {
    assert_eq!(grid(TWO_PORT, true), grid(TWO_PORT, false));
}

/// Backends change timing, never work: instructions and the words the
/// program requests are conserved across the whole memory axis. (The
/// *split* between memory traffic and bypassed words may move on BYP
/// machines — timing decides which stores are still queued when a load
/// disambiguates.)
#[test]
fn backends_conserve_instructions_and_traffic() {
    let flat = grid(MemoryModelKind::Flat, true);
    for other in [grid(BANKED, true), grid(TWO_PORT, true)] {
        for (f, o) in flat.points.iter().zip(&other.points) {
            assert_eq!(f.result.insts, o.result.insts, "{} {}", f.label, f.program);
            assert_eq!(
                f.result.traffic.total_request_elems(),
                o.result.traffic.total_request_elems(),
                "{} {} under {}",
                f.label,
                f.program,
                o.memory
            );
            assert_eq!(
                f.result.traffic.vector_store_elems, o.result.traffic.vector_store_elems,
                "{} {} under {}",
                f.label, f.program, o.memory
            );
            assert!(
                o.memory == BANKED || o.result.cycles <= f.result.cycles,
                "{} {} L={}: a second port slowed the run ({} vs {})",
                f.label,
                f.program,
                f.latency,
                o.result.cycles,
                f.result.cycles
            );
        }
    }
}

/// The extra port reports its own utilization: a multi-port run carries
/// one entry per port, the first at least as busy as the second (the
/// arbiter prefers the lowest-numbered free port).
#[test]
fn per_port_utilization_is_surfaced() {
    let program = Benchmark::Arc2d.program(Scale::Quick);
    let flat = Machine::dva(30).simulate(&program);
    assert_eq!(flat.port_utilization.len(), 1);
    assert!((flat.port_utilization[0] - flat.bus_utilization).abs() < 1e-12);

    let multi = Machine::dva(30)
        .with_memory_model(TWO_PORT)
        .simulate(&program);
    assert_eq!(multi.port_utilization.len(), 2);
    assert!(multi.port_utilization[0] >= multi.port_utilization[1]);
    let mean = (multi.port_utilization[0] + multi.port_utilization[1]) / 2.0;
    assert!((multi.bus_utilization - mean).abs() < 1e-12);

    // IDEAL has no memory system at all.
    assert!(Machine::ideal()
        .simulate(&program)
        .port_utilization
        .is_empty());
}

/// Scalar-cache store outcomes reach the unified result: every counted
/// access is a load or a store, and the combined rate matches the
/// legacy `cache_hit_rate` field.
#[test]
fn cache_stats_split_loads_and_stores() {
    let program = Benchmark::Trfd.program(Scale::Default);
    let r = Machine::reference(30).simulate(&program);
    let stats = r.cache;
    assert!(stats.load_hits + stats.load_misses > 0, "no scalar loads");
    assert!(
        stats.store_hits + stats.store_misses > 0,
        "no scalar stores"
    );
    assert!((stats.hit_rate() - r.cache_hit_rate).abs() < 1e-12);
    // The words that crossed the bus are exactly the load misses plus
    // every (write-through) store.
    assert_eq!(r.traffic.scalar_load_words, stats.load_misses);
    assert_eq!(
        r.traffic.scalar_store_words,
        stats.store_hits + stats.store_misses
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Randomized equivalence: fast-forward and naive stepping agree on
    /// arbitrary compiled programs under the banked backend, for both
    /// machines and a bypass configuration.
    #[test]
    fn banked_fast_forward_matches_naive(program in arb_program(), latency in 1u64..=100) {
        for cfg in [DvaConfig::dva(latency), DvaConfig::byp(latency, 4, 8)] {
            let mut cfg = cfg;
            cfg.memory.model = BANKED;
            let sim = DvaSim::new(cfg);
            let fast = sim.clone().run(&program);
            let naive = sim.with_fast_forward(false).run(&program);
            prop_assert_eq!(&fast, &naive);
            prop_assert!(fast.ticks_executed.get() <= naive.ticks_executed.get());
        }
        let mut params = RefParams::with_latency(latency);
        params.memory.model = BANKED;
        let fast = RefSim::new(params).run(&program);
        let naive = RefSim::new(params).with_fast_forward(false).run(&program);
        prop_assert_eq!(&fast, &naive);
    }

    /// Same under the multi-port backend (ports in {2, 3}).
    #[test]
    fn multiport_fast_forward_matches_naive(
        program in arb_program(),
        latency in 1u64..=100,
        ports in 2u32..=3,
    ) {
        let model = MemoryModelKind::MultiPort { ports };
        let mut cfg = DvaConfig::dva(latency);
        cfg.memory.model = model;
        let sim = DvaSim::new(cfg);
        let fast = sim.clone().run(&program);
        let naive = sim.with_fast_forward(false).run(&program);
        prop_assert_eq!(&fast, &naive);

        let mut params = RefParams::with_latency(latency);
        params.memory.model = model;
        let fast = RefSim::new(params).run(&program);
        let naive = RefSim::new(params).with_fast_forward(false).run(&program);
        prop_assert_eq!(&fast, &naive);
    }
}
