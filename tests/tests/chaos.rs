//! Chaos-path integration tests: deterministic fault injection through
//! the whole serving stack.
//!
//! Every test arms [`dva_testutil::failpoint`] sites (or corrupts state
//! by hand), drives the real daemon over a real Unix socket, and then
//! asserts the two invariants the robustness layer promises:
//!
//! 1. **Isolation** — a fault costs exactly its blast radius (one point,
//!    one connection, one disk tier), never the daemon.
//! 2. **Determinism** — everything outside the blast radius is
//!    byte-identical to a fault-free run.
//!
//! The failpoint registry is process-global, so the tests serialize on
//! one mutex and start from a disarmed registry.

use dva_serve::{Client, ResultCache, RetryPolicy, ServeOptions, SweepService};
use dva_sim_api::{Machine, PointErrorKind, Sweep};
use dva_testutil::failpoint::{self, FailAction, Failpoint};
use dva_workloads::{Benchmark, Scale};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Serializes the chaos tests (the failpoint registry is global) and
/// hands each one a clean, disarmed registry.
fn chaos_guard() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    let guard = LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    failpoint::disarm_all();
    guard
}

struct Daemon {
    socket: PathBuf,
    service: Arc<SweepService>,
    handle: std::thread::JoinHandle<std::io::Result<()>>,
}

impl Daemon {
    /// Starts an in-process socket daemon and waits until it accepts.
    fn start(cache: ResultCache) -> Daemon {
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        let socket = std::env::temp_dir().join(format!(
            "dva-chaos-{}-{}.sock",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_file(&socket);
        let service = Arc::new(SweepService::new(cache));
        let handle = {
            let service = Arc::clone(&service);
            let socket = socket.clone();
            std::thread::spawn(move || {
                dva_serve::serve_unix_with(service, &socket, ServeOptions::default())
            })
        };
        // The server binds asynchronously; wait for the socket.
        let mut tries = 0;
        loop {
            match Client::connect(&socket) {
                Ok(_) => break,
                Err(_) if tries < 500 => {
                    tries += 1;
                    std::thread::sleep(std::time::Duration::from_millis(10));
                }
                Err(e) => panic!("daemon never came up at {}: {e}", socket.display()),
            }
        }
        Daemon {
            socket,
            service,
            handle,
        }
    }

    fn client(&self) -> Client<UnixStream, UnixStream> {
        Client::connect(&self.socket).expect("daemon up")
    }

    fn stop(self) {
        self.client().shutdown().expect("daemon answers shutdown");
        self.handle.join().unwrap().unwrap();
    }
}

/// A small grid with test-specific latencies, so each test's failpoint
/// filters and cache keys can never collide with another test's points.
fn grid(benchmarks: &[Benchmark], latencies: &[u64]) -> Sweep {
    Sweep::new()
        .machines([Machine::reference(1), Machine::dva(1)])
        .benchmarks(benchmarks.to_vec())
        .latencies(latencies.to_vec())
        .scale(Scale::Quick)
        .threads(2)
}

#[test]
fn a_poisoned_point_streams_as_a_typed_error_and_the_daemon_survives() {
    let _guard = chaos_guard();
    let sweep = grid(&[Benchmark::Trfd, Benchmark::Dyfesm], &[33, 66]);
    let fresh = sweep.clone().threads(1).run();
    let daemon = Daemon::start(ResultCache::in_memory(1024));
    let mut client = daemon.client();

    // Poison exactly one of the eight grid points.
    failpoint::arm(
        "sim.point",
        Failpoint::new(FailAction::Panic).filter("DVA|TRFD|L33"),
    );
    let mut healthy = Vec::new();
    let mut faults = Vec::new();
    let summary = client
        .submit_outcomes(&sweep, None, |index, outcome| match outcome {
            Ok(point) => healthy.push((index, point)),
            Err(error) => faults.push(error),
        })
        .unwrap();
    failpoint::disarm("sim.point");

    // Exactly one point_error frame, carrying the poisoned coordinates.
    assert_eq!(faults.len(), 1, "one poisoned point, one error frame");
    let fault = &faults[0];
    assert_eq!(fault.kind, PointErrorKind::Panic);
    assert_eq!(
        (fault.label.as_str(), fault.program.as_str()),
        ("DVA", "TRFD")
    );
    assert_eq!(fault.latency, 33);
    assert!(
        fault.message.contains("failpoint sim.point fired"),
        "panic payload travels the wire: {}",
        fault.message
    );
    assert_eq!(summary.total, 8);
    assert_eq!(summary.errors, 1);
    assert_eq!(summary.simulated, 8);

    // Every other point is byte-identical to the fault-free run.
    assert_eq!(healthy.len(), 7);
    for (index, point) in &healthy {
        assert_eq!(point, &fresh.points[*index]);
        assert_eq!(format!("{point:?}"), format!("{:?}", fresh.points[*index]));
    }

    // The daemon survives, and the failed point was never cached: the
    // same connection resubmits, simulating exactly the poisoned point.
    let (again, cost) = client.submit(&sweep).unwrap();
    assert_eq!(again, fresh, "recovered run is byte-identical");
    assert_eq!(cost.cache_hits, 7, "healthy points resume from cache");
    assert_eq!(cost.simulated, 1, "only the failed point re-simulates");
    assert_eq!(cost.errors, 0);
    drop(client);
    daemon.stop();
}

#[test]
fn deadline_expired_jobs_fail_cleanly_and_the_daemon_survives() {
    let _guard = chaos_guard();
    let sweep = grid(&[Benchmark::Trfd], &[34, 67]);
    let daemon = Daemon::start(ResultCache::in_memory(1024));
    let mut client = daemon.client();

    // A dense job whose deadline has already passed: no point frames,
    // one error line, and the connection stays usable.
    let err = client
        .submit_outcomes(&sweep, Some(0), |_, _| {
            panic!("an expired job must not stream points")
        })
        .unwrap_err();
    assert!(err.to_string().contains("deadline"), "{err}");
    assert_eq!(client.ping().unwrap(), dva_serve::ENGINE_VERSION);

    // Same for an adaptive session: the deadline is checked between
    // rounds, so round zero never runs.
    let adaptive = dva_sim_api::AdaptiveSweep::over(
        Sweep::new()
            .machines([Machine::reference(1), Machine::dva(1)])
            .benchmark(Benchmark::Trfd)
            .scale(Scale::Quick)
            .threads(2),
        1..=16,
    )
    .seeds(4);
    let err = client
        .submit_adaptive_outcomes(&adaptive, Some(0), |_, _| {
            panic!("an expired adaptive job must not stream points")
        })
        .unwrap_err();
    assert!(err.to_string().contains("deadline"), "{err}");

    // An undeadlined job on the same connection still completes.
    let fresh = sweep.clone().threads(1).run();
    let (results, cost) = client.submit(&sweep).unwrap();
    assert_eq!(results, fresh);
    assert_eq!(cost.simulated, 4, "the expired jobs simulated nothing");
    drop(client);
    daemon.stop();
}

#[test]
fn a_dropped_connection_is_resumed_by_retry_with_cache_hits() {
    let _guard = chaos_guard();
    let sweep = grid(
        &[Benchmark::Trfd, Benchmark::Dyfesm, Benchmark::Flo52],
        &[2, 5, 9, 13],
    );
    let fresh = sweep.clone().threads(1).run();
    assert_eq!(fresh.points.len(), 24);
    let daemon = Daemon::start(ResultCache::in_memory(1024));

    // Kill the connection's write side at the 22nd point frame: the
    // first attempt dies mid-stream with 22 points already measured and
    // cached server-side.
    failpoint::arm(
        "serve.socket.write",
        Failpoint::new(FailAction::IoError)
            .skip(21)
            .times(1)
            .filter("\"type\":\"point\""),
    );
    let (results, cost) =
        Client::submit_with_retry(&daemon.socket, &RetryPolicy::default(), &sweep).unwrap();
    assert_eq!(failpoint::fired("serve.socket.write"), 1);
    failpoint::disarm("serve.socket.write");

    assert_eq!(results, fresh, "retried job is byte-identical");
    assert_eq!(format!("{results:?}"), format!("{fresh:?}"));
    assert_eq!(cost.total, 24);
    assert!(
        cost.cache_hits * 10 >= cost.total * 9,
        "resume must replay >=90% from cache, got {}/{}",
        cost.cache_hits,
        cost.total
    );
    daemon.stop();
}

#[test]
fn corrupt_disk_cache_lines_are_skipped_on_reload() {
    let _guard = chaos_guard();
    let dir = std::env::temp_dir().join(format!("dva-chaos-corrupt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let sweep = grid(&[Benchmark::Trfd], &[41]).threads(1);
    let service = SweepService::new(ResultCache::persistent(&dir, 64).unwrap());
    let (fresh, cost) = service.run(&sweep).unwrap();
    assert_eq!(cost.simulated, 2);
    drop(service);

    // A crash mid-append leaves torn and garbage lines behind.
    let path = dir.join("results.jsonl");
    {
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        writeln!(file, "this is not json at all").unwrap();
        write!(file, "{{\"key\":\"torn-in-hal").unwrap();
    }

    // Reload skips the dead lines, keeps every live entry, and — with
    // two dead lines against two live entries — compacts the file.
    let service = SweepService::new(ResultCache::persistent(&dir, 64).unwrap());
    let (reloaded, cost) = service.run(&sweep).unwrap();
    assert_eq!(reloaded, fresh, "surviving entries are byte-identical");
    assert_eq!(cost.cache_hits, 2, "nothing re-simulates");
    assert_eq!(cost.simulated, 0);
    let body = std::fs::read_to_string(&path).unwrap();
    assert_eq!(body.lines().count(), 1 + 2, "compacted: header + 2 entries");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn malformed_requests_and_abrupt_hangups_leave_the_daemon_serving() {
    let _guard = chaos_guard();
    let daemon = Daemon::start(ResultCache::in_memory(1024));

    // A connection that speaks garbage gets an error line back…
    {
        let stream = UnixStream::connect(&daemon.socket).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        writeln!(writer, "this is not a request").unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"type\":\"error\""), "{line}");
        // …and then hangs up mid-request, taking only itself down.
        write!(writer, "{{\"type\":\"swe").unwrap();
    }

    // The daemon still accepts, answers, and simulates.
    let mut client = daemon.client();
    assert_eq!(client.ping().unwrap(), dva_serve::ENGINE_VERSION);
    let sweep = grid(&[Benchmark::Trfd], &[35]);
    let (results, cost) = client.submit(&sweep).unwrap();
    assert_eq!(results, sweep.clone().threads(1).run());
    assert_eq!(cost.total, 2);
    drop(client);
    daemon.stop();
}

#[test]
fn injected_cache_write_failures_demote_to_memory_and_serving_continues() {
    let _guard = chaos_guard();
    let dir = std::env::temp_dir().join(format!("dva-chaos-demote-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let daemon = Daemon::start(ResultCache::persistent(&dir, 1024).unwrap());
    let mut client = daemon.client();
    let sweep = grid(&[Benchmark::Trfd, Benchmark::Dyfesm], &[36, 69]);
    let fresh = sweep.clone().threads(1).run();

    // Every disk append fails: the first failure demotes the tier, the
    // job itself is unaffected.
    failpoint::arm("serve.cache.write", Failpoint::new(FailAction::IoError));
    let (results, cost) = client.submit(&sweep).unwrap();
    failpoint::disarm("serve.cache.write");
    assert_eq!(results, fresh, "disk trouble never corrupts results");
    assert_eq!(cost.errors, 0, "a cache fault is not a point fault");
    assert_eq!(daemon.service.disk_errors(), 1, "first failure demotes");

    // The daemon keeps serving — now from the memory tier.
    let (again, cost) = client.submit(&sweep).unwrap();
    assert_eq!(again, fresh);
    assert_eq!(cost.cache_hits, 8, "memory tier still answers everything");
    assert_eq!(cost.simulated, 0);
    drop(client);
    daemon.stop();
    std::fs::remove_dir_all(&dir).unwrap();
}
