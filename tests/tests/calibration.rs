//! Calibration summary (run with `--ignored --nocapture` to inspect the
//! headline numbers against the paper's).

use dva_core::{ideal_bound, DvaConfig, DvaSim};
use dva_ref::{RefParams, RefSim};
use dva_workloads::{stats::spill_fraction, Benchmark, Scale};

/// Prints Table-1 ratios, speedups and bypass gains side by side with the
/// paper's values. Not an assertion — a human-readable calibration sheet.
#[test]
#[ignore = "diagnostic dump; run with --ignored --nocapture"]
fn calibration_sheet() {
    println!("paper speedups @L100: ARC2D 1.35 .. SPEC77 2.05, DYFESM ~1.0");
    println!("paper bypass gains @L1: DYFESM 22% TRFD 17% BDNA 11% FLO52 9% ARC2D 3% SPEC77 1%");
    for b in Benchmark::ALL {
        let p = b.program(Scale::Default);
        let s = p.summary();
        let t = b.paper_row();
        let ideal = ideal_bound(&p).cycles();
        let r100 = RefSim::new(RefParams::with_latency(100)).run(&p);
        let d100 = DvaSim::new(DvaConfig::dva(100)).run(&p);
        let d1 = DvaSim::new(DvaConfig::dva(1)).run(&p);
        let b1 = DvaSim::new(DvaConfig::byp(1, 256, 16)).run(&p);
        println!(
            "{:8} vect {:5.1}% (paper {:5.1}) VL {:5.1} (paper {:5.1}) spill {:.2} | \
             ideal {:>7} | speedup@100 {:.2} | byp@1 {:+.1}% traffic x{:.2}",
            b.name(),
            s.vectorization(),
            t.vectorization,
            s.avg_vector_length(),
            t.avg_vl,
            spill_fraction(&p),
            ideal,
            r100.cycles as f64 / d100.cycles as f64,
            100.0 * (d1.cycles as f64 / b1.cycles as f64 - 1.0),
            b1.traffic.ratio_to(&d1.traffic),
        );
    }
}
