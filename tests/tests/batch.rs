//! Lane-count independence: batched lockstep runs must be byte-identical
//! to fresh per-point runs — for every lane count, across mixed
//! latencies × memory models in one batch, and over the full sweep grid.

use dva_core::{DvaConfig, DvaRunner, DvaSim};
use dva_ref::{RefParams, RefRunner, RefSim};
use dva_sim_api::{Machine, MemoryModelKind, Sweep};
use dva_tests::arb_program;
use dva_workloads::{Benchmark, Scale};
use proptest::prelude::*;
use std::sync::Arc;

const MODELS: [MemoryModelKind; 3] = [
    MemoryModelKind::Flat,
    MemoryModelKind::Banked {
        banks: 8,
        bank_busy: 8,
    },
    MemoryModelKind::MultiPort { ports: 2 },
];

/// Lane counts that exercise a lone lane, even/odd splits of the pool,
/// and a batch wider than the pool's remainder.
const LANE_COUNTS: [usize; 4] = [1, 2, 3, 8];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Batches mixing DVA and BYP configurations across latencies and
    /// memory models, carved into chunks of every lane count, equal the
    /// fresh one-shot run of each member. The chunking also covers
    /// ragged final batches (the pool size is not a multiple of 8).
    #[test]
    fn dva_batches_equal_fresh_runs_at_every_lane_count(
        program in arb_program(),
        latency in 1u64..=100,
    ) {
        let compiled = Arc::new(dva_core::CompiledProgram::compile(&program));
        let mut sims = Vec::new();
        for (i, model) in MODELS.iter().enumerate() {
            for mut config in [
                DvaConfig::dva(latency + i as u64),
                DvaConfig::byp(latency, 4, 8),
            ] {
                config.memory.model = *model;
                sims.push(DvaSim::new(config));
            }
        }
        let expected: Vec<_> = sims.iter().map(|sim| sim.run(&program)).collect();
        let mut runner = DvaRunner::new();
        for lanes in LANE_COUNTS {
            for (chunk, want) in sims.chunks(lanes).zip(expected.chunks(lanes)) {
                prop_assert_eq!(runner.run_batch(chunk, &compiled), want.to_vec());
            }
        }
    }

    /// The same contract for the reference (in-order vector) machine.
    #[test]
    fn ref_batches_equal_fresh_runs_at_every_lane_count(
        program in arb_program(),
        latency in 1u64..=100,
    ) {
        let compiled = Arc::new(dva_ref::CompiledProgram::compile(&program));
        let mut sims = Vec::new();
        for (i, model) in MODELS.iter().enumerate() {
            let mut params = RefParams::with_latency(latency + i as u64);
            params.memory.model = *model;
            sims.push(RefSim::new(params));
        }
        let expected: Vec<_> = sims.iter().map(|sim| sim.run(&program)).collect();
        let mut runner = RefRunner::new();
        for lanes in LANE_COUNTS {
            for (chunk, want) in sims.chunks(lanes).zip(expected.chunks(lanes)) {
                prop_assert_eq!(runner.run_batch(chunk, &compiled), want.to_vec());
            }
        }
    }
}

/// The full 216-point grid — 4 machines × 6 benchmarks × 3 latencies ×
/// 3 memory models — run batched at every lane count equals the
/// one-lane sweep (which `compiled.rs` in turn pins to one-shot runs).
#[test]
fn full_grid_batched_equals_sequential_at_every_lane_count() {
    let grid = |lanes: usize| {
        Sweep::new()
            .machines([
                Machine::reference(1),
                Machine::dva(1),
                Machine::byp(1, 4, 8),
                Machine::ideal(),
            ])
            .benchmarks(Benchmark::ALL)
            .latencies([1u64, 30, 100])
            .memory_models(MODELS)
            .scale(Scale::Quick)
            .threads(1)
            .lanes(lanes)
    };
    let sequential = grid(1).run();
    assert_eq!(sequential.points.len(), 216, "full grid");
    for lanes in [2, 3, 8, 16] {
        let batched = grid(lanes).run();
        assert_eq!(
            batched.points, sequential.points,
            "lane count {lanes} diverged from the sequential sweep"
        );
    }
}
