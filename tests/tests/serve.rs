//! End-to-end contract of the sweep service: results served through the
//! daemon — cached, streamed, work-stolen, or straight off the wire —
//! are byte-identical to a fresh single-threaded `Sweep::run`.

use dva_serve::{Client, PointKey, ResultCache, SweepService};
use dva_sim_api::{Machine, MemoryModelKind, PointSpec, Sweep};
use dva_workloads::{Benchmark, Scale};
use proptest::prelude::*;

/// The paper's full evaluation grid: 4 machines × 6 benchmarks ×
/// 3 latencies × 3 memory models = 216 points.
fn full_grid() -> Sweep {
    Sweep::new()
        .machines([
            Machine::reference(1),
            Machine::dva(1),
            Machine::byp(1, 4, 8),
            Machine::ideal(),
        ])
        .benchmarks(Benchmark::ALL)
        .latencies([1, 30, 100])
        .memory_models([
            MemoryModelKind::Flat,
            MemoryModelKind::Banked {
                banks: 8,
                bank_busy: 8,
            },
            MemoryModelKind::MultiPort { ports: 2 },
        ])
        .scale(Scale::Quick)
}

#[test]
fn daemon_results_are_byte_identical_to_a_fresh_sequential_run() {
    let fresh = full_grid().threads(1).run();
    assert_eq!(fresh.points.len(), 216);

    // Work-stolen and streamed, in-process.
    let streamed: Vec<_> = full_grid().threads(4).run_streaming().collect();
    assert_eq!(streamed, fresh.points);

    // Through the service (cold cache), then through it again (warm).
    let service = SweepService::new(ResultCache::in_memory(1024));
    let (cold, cost) = service.run(&full_grid().threads(4)).unwrap();
    assert_eq!(cold, fresh);
    assert_eq!(format!("{cold:?}"), format!("{fresh:?}"));
    assert_eq!(cost.total, 216);
    assert_eq!(cost.cache_hits, 0);

    let (warm, cost) = service.run(&full_grid().threads(4)).unwrap();
    assert_eq!(warm, fresh);
    assert_eq!(cost.cache_hits, 216, "warm rerun is 100% cache hits");
    assert_eq!(cost.simulated, 0, "warm rerun simulates nothing");
}

#[test]
fn socket_daemon_round_trips_jobs_and_shuts_down() {
    let socket = std::env::temp_dir().join(format!("dva-serve-e2e-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&socket);
    let service = std::sync::Arc::new(SweepService::new(ResultCache::in_memory(1024)));
    let server = {
        let socket = socket.clone();
        std::thread::spawn(move || dva_serve::serve_unix(service, &socket))
    };
    // The server binds asynchronously; wait for the socket to appear.
    let mut client = loop {
        match Client::connect(&socket) {
            Ok(client) => break client,
            Err(_) => std::thread::sleep(std::time::Duration::from_millis(10)),
        }
    };
    assert_eq!(client.ping().unwrap(), dva_serve::ENGINE_VERSION);

    let sweep = Sweep::new()
        .machines([Machine::reference(1), Machine::dva(1), Machine::ideal()])
        .benchmarks([Benchmark::Trfd, Benchmark::Dyfesm])
        .latencies([1, 30])
        .scale(Scale::Quick)
        .threads(2);
    let fresh = sweep.clone().threads(1).run();

    let (first, cost) = client.submit(&sweep).unwrap();
    assert_eq!(first, fresh, "wire round trip preserves every byte");
    assert_eq!(format!("{first:?}"), format!("{fresh:?}"));
    assert_eq!(cost.simulated, 12);

    // A second client session hits the daemon's shared cache.
    let mut second_client = Client::connect(&socket).unwrap();
    let mut indices = Vec::new();
    let cost = second_client
        .submit_streaming(&sweep, |index, point| {
            assert_eq!(point, fresh.points[index]);
            indices.push(index);
        })
        .unwrap();
    assert_eq!(
        indices,
        (0..12).collect::<Vec<_>>(),
        "grid order on the wire"
    );
    assert_eq!(cost.cache_hits, 12);
    assert_eq!(
        cost.simulated, 0,
        "repeat job over the wire simulates nothing"
    );

    // Close the second connection so the server's handler thread (blocked
    // on its next request line) sees EOF and can be joined.
    drop(second_client);
    client.shutdown().unwrap();
    server.join().unwrap().unwrap();
    assert!(!socket.exists(), "socket cleaned up on shutdown");
}

/// A machine (with its latency and memory model stamped) for key
/// proptests.
fn machine_strategy() -> impl Strategy<Value = Machine> {
    let latency = 1u64..=100;
    let model = prop_oneof![
        Just(MemoryModelKind::Flat),
        (1u32..=4).prop_map(|p| MemoryModelKind::MultiPort { ports: p }),
        (1u32..=4, 1u64..=16).prop_map(|(b, busy)| MemoryModelKind::Banked {
            banks: 1 << b,
            bank_busy: busy,
        }),
    ]
    .boxed();
    prop_oneof![
        (latency.clone(), model.clone())
            .prop_map(|(l, m)| Machine::reference(l).with_memory_model(m)),
        (latency.clone(), model.clone()).prop_map(|(l, m)| Machine::dva(l).with_memory_model(m)),
        (latency, model, 1usize..=8, 1usize..=8)
            .prop_map(|(l, m, lq, sq)| Machine::byp(l, lq, sq).with_memory_model(m)),
        Just(Machine::ideal()),
    ]
}

fn spec_strategy() -> impl Strategy<Value = (PointSpec, bool)> {
    (machine_strategy(), 0usize..6, any::<bool>()).prop_map(|(machine, bench, ff)| {
        let benchmark = Benchmark::ALL[bench];
        (
            PointSpec {
                index: 0,
                benchmark: Some(benchmark),
                program: benchmark.program(Scale::Quick),
                machine,
                latency: machine.latency().unwrap_or(0),
                memory: machine.memory_model().unwrap_or(MemoryModelKind::Flat),
            },
            ff,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Keys collide exactly when the simulation inputs are identical:
    /// same machine configuration (by its canonical JSON), same program
    /// content, same stepping mode.
    #[test]
    fn point_keys_collide_only_for_identical_inputs(
        left in spec_strategy(),
        right in spec_strategy(),
    ) {
        let (a, ff_a) = left;
        let (b, ff_b) = right;
        let key_a = PointKey::of(&a, ff_a).unwrap();
        let key_b = PointKey::of(&b, ff_b).unwrap();
        let same_inputs = a.machine.to_json().unwrap().render()
            == b.machine.to_json().unwrap().render()
            && dva_serve::program_hash(&a.program) == dva_serve::program_hash(&b.program)
            && ff_a == ff_b;
        prop_assert_eq!(key_a == key_b, same_inputs);
    }

    /// Recomputing a key is deterministic, including across a program
    /// copy into fresh storage.
    #[test]
    fn point_keys_are_reproducible(case in spec_strategy()) {
        let (spec, ff) = case;
        let first = PointKey::of(&spec, ff).unwrap();
        prop_assert_eq!(&first, &PointKey::of(&spec, ff).unwrap());
        let mut copied = spec.clone();
        copied.program = dva_isa::Program::from_insts(
            copied.program.name(),
            copied.program.insts().to_vec(),
        );
        prop_assert_eq!(&first, &PointKey::of(&copied, ff).unwrap());
    }
}
