//! Property-based tests: random kernels compiled through the real
//! toolchain must run to completion on both machines with all invariants
//! intact. This is the main deadlock-freedom workout for the decoupled
//! engine's queues.

use dva_core::{ideal_bound, DvaConfig, DvaSim};
use dva_ref::{RefParams, RefSim};
use dva_workloads::{Kernel, LoopSpec, Phase, ProgramSpec, ScalarSection, StripOverhead};
use proptest::prelude::*;

/// A random straight-line kernel: loads, unary/binary ops over live
/// values, optional reduction, stores.
fn arb_kernel() -> impl Strategy<Value = Kernel> {
    (
        1usize..=6,    // loads
        0usize..=8,    // compute ops
        1usize..=2,    // stores
        any::<bool>(), // scalar operand flavor
        any::<bool>(), // include a reduction
        any::<u64>(),  // mixing seed
    )
        .prop_map(|(loads, computes, stores, use_scalar, reduce, seed)| {
            let mut k = Kernel::new(format!("prop{seed:x}"));
            let mut vals: Vec<_> = (0..loads).map(|i| k.load(format!("in{i}"))).collect();
            let mut state = seed;
            let mut next = |n: usize| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 33) as usize % n.max(1)
            };
            for i in 0..computes {
                let a = vals[next(vals.len())];
                let v = if use_scalar && i % 3 == 0 {
                    k.mul_scalar(a)
                } else {
                    let b = vals[next(vals.len())];
                    k.add(a, b)
                };
                vals.push(v);
            }
            if reduce {
                let src = vals[next(vals.len())];
                k.reduce(dva_isa::ReduceOp::Sum, src);
            }
            for i in 0..stores {
                let src = vals[next(vals.len())];
                k.store(src, format!("out{i}"));
            }
            k
        })
}

fn arb_program() -> impl Strategy<Value = dva_isa::Program> {
    (
        arb_kernel(),
        1u32..=5,   // strips
        1u32..=128, // vl
        any::<bool>(),
        0u32..=40, // scalar section
        any::<u64>(),
    )
        .prop_map(|(kernel, strips, vl, pipeline, scalar, seed)| {
            let mut phases = vec![Phase::Loop(LoopSpec {
                kernel,
                strips,
                vl,
                software_pipeline: pipeline,
                overhead: StripOverhead::default(),
            })];
            if scalar > 0 {
                phases.push(Phase::Scalar(ScalarSection {
                    insts: scalar,
                    memory_fraction: 0.3,
                }));
            }
            ProgramSpec {
                name: "prop".into(),
                repeat: 1,
                phases,
            }
            .compile(seed)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Both machines terminate on any compiled kernel and account every
    /// cycle; the resource bound holds.
    #[test]
    fn machines_run_any_kernel(program in arb_program(), latency in 1u64..=100) {
        let r = RefSim::new(RefParams::with_latency(latency)).run(&program);
        prop_assert_eq!(r.states.total_cycles(), r.cycles);
        let d = DvaSim::new(DvaConfig::dva(latency)).run(&program);
        prop_assert_eq!(d.states.total_cycles(), d.cycles);
        let bound = ideal_bound(&program).cycles();
        prop_assert!(bound <= r.cycles);
        prop_assert!(bound <= d.cycles);
    }

    /// The bypass never changes the total words the program requests and
    /// never slows down the full-queue configuration.
    #[test]
    fn bypass_is_safe_for_any_kernel(program in arb_program()) {
        let dva = DvaSim::new(DvaConfig::dva(30)).run(&program);
        let byp = DvaSim::new(DvaConfig::byp(30, 256, 16)).run(&program);
        prop_assert_eq!(
            dva.traffic.total_request_elems(),
            byp.traffic.total_request_elems()
        );
        // On full programs bypass is always a win (see tests/bypass.rs);
        // on arbitrary tiny kernels a bypass copy can occasionally cost a
        // few hundred cycles more than the drain it replaces (the copy
        // serializes behind the store's data where a drain can overlap
        // the reload's memory latency), so allow absolute slack.
        prop_assert!(byp.cycles <= dva.cycles + dva.cycles / 10 + 400);
    }

    /// Tiny queues still terminate (back-pressure, not deadlock).
    #[test]
    fn tiny_queues_do_not_deadlock(program in arb_program()) {
        let mut config = DvaConfig::byp(10, 1, 1);
        config.queues.instruction_queue = 2;
        config.queues.scalar_data_queue = 2;
        config.queues.scalar_store_queue = 2;
        let d = DvaSim::new(config).run(&program);
        prop_assert!(d.cycles > 0);
    }

    /// Vector traffic matches between the machines for any kernel.
    #[test]
    fn traffic_agrees_for_any_kernel(program in arb_program()) {
        let r = RefSim::new(RefParams::with_latency(5)).run(&program);
        let d = DvaSim::new(DvaConfig::dva(5)).run(&program);
        prop_assert_eq!(r.traffic.vector_load_elems, d.traffic.vector_load_elems);
        prop_assert_eq!(r.traffic.vector_store_elems, d.traffic.vector_store_elems);
    }
}
