//! Property-based tests: random kernels compiled through the real
//! toolchain must run to completion on both machines with all invariants
//! intact. This is the main deadlock-freedom workout for the decoupled
//! engine's queues.

use dva_core::{ideal_bound, DvaConfig, DvaSim};
use dva_ref::{RefParams, RefSim};
use dva_tests::arb_program;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Both machines terminate on any compiled kernel and account every
    /// cycle; the resource bound holds.
    #[test]
    fn machines_run_any_kernel(program in arb_program(), latency in 1u64..=100) {
        let r = RefSim::new(RefParams::with_latency(latency)).run(&program);
        prop_assert_eq!(r.states.total_cycles(), r.cycles);
        let d = DvaSim::new(DvaConfig::dva(latency)).run(&program);
        prop_assert_eq!(d.states.total_cycles(), d.cycles);
        let bound = ideal_bound(&program).cycles();
        prop_assert!(bound <= r.cycles);
        prop_assert!(bound <= d.cycles);
    }

    /// The bypass never changes the total words the program requests and
    /// never slows down the full-queue configuration.
    #[test]
    fn bypass_is_safe_for_any_kernel(program in arb_program()) {
        let dva = DvaSim::new(DvaConfig::dva(30)).run(&program);
        let byp = DvaSim::new(DvaConfig::byp(30, 256, 16)).run(&program);
        prop_assert_eq!(
            dva.traffic.total_request_elems(),
            byp.traffic.total_request_elems()
        );
        // On full programs bypass is always a win (see tests/bypass.rs);
        // on arbitrary tiny kernels a bypass copy can occasionally cost a
        // few hundred cycles more than the drain it replaces (the copy
        // serializes behind the store's data where a drain can overlap
        // the reload's memory latency), so allow absolute slack.
        prop_assert!(byp.cycles <= dva.cycles + dva.cycles / 10 + 400);
    }

    /// Tiny queues still terminate (back-pressure, not deadlock).
    #[test]
    fn tiny_queues_do_not_deadlock(program in arb_program()) {
        let mut config = DvaConfig::byp(10, 1, 1);
        config.queues.instruction_queue = 2;
        config.queues.scalar_data_queue = 2;
        config.queues.scalar_store_queue = 2;
        let d = DvaSim::new(config).run(&program);
        prop_assert!(d.cycles > 0);
    }

    /// Vector traffic matches between the machines for any kernel.
    #[test]
    fn traffic_agrees_for_any_kernel(program in arb_program()) {
        let r = RefSim::new(RefParams::with_latency(5)).run(&program);
        let d = DvaSim::new(DvaConfig::dva(5)).run(&program);
        prop_assert_eq!(r.traffic.vector_load_elems, d.traffic.vector_load_elems);
        prop_assert_eq!(r.traffic.vector_store_elems, d.traffic.vector_store_elems);
    }
}
