//! Section 6 of the paper: the vector load data queue never needs more
//! than a handful of slots, because the 16-entry VPIQ back-pressures the
//! fetch processor — a compute-bound loop can hold at most 9 computation
//! instructions and 7 QMOVs, capping the AVDQ at 8-9 slots.

use dva_core::{DvaConfig, DvaSim, QueueConfig};
use dva_workloads::{Benchmark, Scale};

#[test]
fn avdq_occupancy_is_bounded_despite_256_slots() {
    // The paper observes a hard bound of 9 for its traces. Our
    // software-pipelined loops put proportionally more QMOV-loads in the
    // VPIQ than the paper's compute-bound example (which mixes 9 compute
    // instructions with 7 QMOVs), so the same back-pressure argument
    // yields a slightly larger cap — still a dozen slots, not 256.
    for b in Benchmark::ALL {
        let p = b.program(Scale::Quick);
        for latency in [1u64, 30, 100] {
            let d = DvaSim::new(DvaConfig::dva(latency)).run(&p);
            assert!(
                d.max_avdq <= 12,
                "{} at L={latency}: AVDQ hit {} slots",
                b.name(),
                d.max_avdq
            );
        }
    }
}

#[test]
fn occupancy_rises_with_latency() {
    // The paper reads Figure 6 as: the longer the memory latency, the
    // more outstanding slots the queue holds.
    let p = Benchmark::Arc2d.program(Scale::Quick);
    let mean = |l: u64| DvaSim::new(DvaConfig::dva(l)).run(&p).avdq_occupancy.mean();
    assert!(mean(100) > mean(1));
}

#[test]
fn four_slot_avdq_preserves_most_performance() {
    // Section 7's conclusion: a 4-slot load queue reaches a high fraction
    // of the 256-slot performance (SPEC77 is the exception — it needs the
    // depth).
    for b in [Benchmark::Arc2d, Benchmark::Trfd, Benchmark::Flo52] {
        let p = b.program(Scale::Quick);
        let mut small = DvaConfig::dva(50);
        small.queues = QueueConfig {
            avdq: 4,
            ..small.queues
        };
        let c_small = DvaSim::new(small).run(&p).cycles;
        let c_big = DvaSim::new(DvaConfig::dva(50)).run(&p).cycles;
        let ratio = c_small as f64 / c_big as f64;
        assert!(
            ratio < 1.10,
            "{}: AVDQ=4 is {ratio:.3}x of AVDQ=256",
            b.name()
        );
    }
}

#[test]
fn deeper_vpiq_allows_deeper_avdq() {
    // The bound is a *consequence of the VPIQ size*: widen the VPIQ and a
    // compute-bound program fills more AVDQ slots.
    let p = Benchmark::Spec77.program(Scale::Quick);
    let base = DvaSim::new(DvaConfig::dva(100)).run(&p);
    let mut wide = DvaConfig::dva(100);
    wide.queues.instruction_queue = 64;
    let wide = DvaSim::new(wide).run(&p);
    assert!(
        wide.max_avdq >= base.max_avdq,
        "wider VPIQ reduced AVDQ occupancy: {} < {}",
        wide.max_avdq,
        base.max_avdq
    );
}
