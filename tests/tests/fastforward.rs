//! The fast-forward (next-event skip) engine is an *optimization, not a
//! model change*: every result it produces must be byte-identical to
//! naive per-cycle stepping, on the full experiment grid and on random
//! programs alike — while executing strictly fewer engine ticks.

use dva_core::{DvaConfig, DvaSim};
use dva_ref::{RefParams, RefSim};
use dva_sim_api::{Machine, Sweep, SweepResults};
use dva_tests::arb_program;
use dva_workloads::{Benchmark, Scale};
use proptest::prelude::*;

fn grid(fast_forward: bool) -> SweepResults {
    Sweep::new()
        .machines([
            Machine::reference(1),
            Machine::dva(1),
            Machine::byp(1, 4, 8),
            Machine::ideal(),
        ])
        .benchmarks(Benchmark::ALL)
        .latencies([1, 30, 100])
        .scale(Scale::Quick)
        .fast_forward(fast_forward)
        .run()
}

/// The acceptance gate: the full machines × benchmarks × latencies grid
/// is byte-identical with fast-forward on vs off — both as typed values
/// and as rendered `Debug` output.
#[test]
fn full_grid_is_byte_identical_with_fast_forward() {
    let fast = grid(true);
    let naive = grid(false);
    assert_eq!(fast, naive);
    assert_eq!(
        format!("{fast:?}"),
        format!("{naive:?}"),
        "fast-forward must be invisible in rendered output too"
    );
}

/// Fast-forward earns its keep exactly where the paper's sweep hurts:
/// at long memory latencies most cycles are provably quiet, so the
/// engine should execute far fewer ticks than cycles.
#[test]
fn fast_forward_skips_most_cycles_at_long_latency() {
    let program = Benchmark::Arc2d.program(Scale::Quick);
    let fast = Machine::dva(100).simulate(&program);
    let naive = Machine::dva(100).simulate_with(&program, false);
    assert_eq!(naive.ticks_executed.get(), naive.cycles);
    assert!(
        fast.ticks_executed.get() * 2 < fast.cycles,
        "expected to skip most cycles at L=100: {} ticks for {} cycles",
        fast.ticks_executed.get(),
        fast.cycles
    );
}

/// Golden cycle counts pinning the model: any change to either engine's
/// timing (including a fast-forward bug that only shifts results) moves
/// these numbers.
#[test]
fn golden_cycle_counts_pin_the_model() {
    let program = Benchmark::Trfd.program(Scale::Quick);
    for (latency, ref_golden, dva_golden) in [(1u64, 6545u64, 6342u64), (100, 19449, 11097)] {
        let r = RefSim::new(RefParams::with_latency(latency)).run(&program);
        let d = DvaSim::new(DvaConfig::dva(latency)).run(&program);
        assert_eq!(
            (r.cycles, d.cycles),
            (ref_golden, dva_golden),
            "TRFD Quick at L={latency}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomized equivalence: fast-forward and naive stepping produce
    /// identical `DvaResult`s (base DVA and a small bypass machine) on
    /// arbitrary compiled programs and latencies, with no more ticks.
    #[test]
    fn dva_fast_forward_matches_naive(program in arb_program(), latency in 1u64..=100) {
        for cfg in [DvaConfig::dva(latency), DvaConfig::byp(latency, 4, 8)] {
            let sim = DvaSim::new(cfg);
            let fast = sim.clone().run(&program);
            let naive = sim.with_fast_forward(false).run(&program);
            prop_assert_eq!(&fast, &naive);
            prop_assert_eq!(naive.ticks_executed.get(), naive.cycles);
            prop_assert!(fast.ticks_executed.get() <= naive.ticks_executed.get());
        }
    }

    /// Same for the reference machine.
    #[test]
    fn ref_fast_forward_matches_naive(program in arb_program(), latency in 1u64..=100) {
        let sim = RefSim::new(RefParams::with_latency(latency));
        let fast = sim.run(&program);
        let naive = RefSim::new(RefParams::with_latency(latency))
            .with_fast_forward(false)
            .run(&program);
        prop_assert_eq!(&fast, &naive);
        prop_assert_eq!(naive.ticks_executed.get(), naive.cycles);
        prop_assert!(fast.ticks_executed.get() <= naive.ticks_executed.get());
    }
}
