//! The paper's headline results, asserted end to end across crates:
//! workload generation → both simulators → metrics.

use dva_core::{ideal_bound, DvaConfig, DvaSim};
use dva_ref::{RefParams, RefSim};
use dva_workloads::{Benchmark, Scale};

fn speedup(b: Benchmark, latency: u64) -> f64 {
    let p = b.program(Scale::Quick);
    let r = RefSim::new(RefParams::with_latency(latency)).run(&p);
    let d = DvaSim::new(DvaConfig::dva(latency)).run(&p);
    r.cycles as f64 / d.cycles as f64
}

/// Paper abstract: "decoupling provides a performance advantage … for
/// realistic memory latencies" — every program except the lockstep-bound
/// DYFESM speeds up clearly at L=100.
#[test]
fn decoupling_wins_at_realistic_latency() {
    for b in Benchmark::ALL {
        let sp = speedup(b, 100);
        if b == Benchmark::Dyfesm {
            assert!(
                (0.9..1.3).contains(&sp),
                "DYFESM should be latency-neutral, got {sp:.2}"
            );
        } else {
            assert!(sp > 1.25, "{}: speedup {sp:.2} too small", b.name());
        }
    }
}

/// Paper abstract: "even with an ideal memory system with no latency,
/// there is still a speedup" — no program collapses at L=1, and the
/// scalar-overlapping programs gain.
#[test]
fn decoupling_does_not_hurt_at_unit_latency() {
    for b in Benchmark::ALL {
        let sp = speedup(b, 1);
        assert!(sp > 0.90, "{}: L=1 speedup {sp:.2}", b.name());
    }
    assert!(speedup(Benchmark::Spec77, 1) > 1.05);
}

/// Paper Section 5: "the slopes of the execution time curves … are
/// substantially different" — the DVA tolerates latency much better.
#[test]
fn dva_latency_slope_is_flatter() {
    for b in [Benchmark::Arc2d, Benchmark::Flo52, Benchmark::Spec77] {
        let p = b.program(Scale::Quick);
        let growth = |cycles_1: u64, cycles_100: u64| cycles_100 as f64 / cycles_1 as f64;
        let r1 = RefSim::new(RefParams::with_latency(1)).run(&p);
        let r100 = RefSim::new(RefParams::with_latency(100)).run(&p);
        let d1 = DvaSim::new(DvaConfig::dva(1)).run(&p);
        let d100 = DvaSim::new(DvaConfig::dva(100)).run(&p);
        let ref_growth = growth(r1.cycles, r100.cycles);
        let dva_growth = growth(d1.cycles, d100.cycles);
        assert!(
            dva_growth < 0.6 * ref_growth + 0.5,
            "{}: REF grows {ref_growth:.2}x, DVA {dva_growth:.2}x",
            b.name()
        );
    }
}

/// Paper Figure 4: decoupling drains the all-idle state.
#[test]
fn idle_state_shrinks_under_decoupling() {
    for b in [Benchmark::Arc2d, Benchmark::Flo52, Benchmark::Spec77] {
        let p = b.program(Scale::Quick);
        let r = RefSim::new(RefParams::with_latency(70)).run(&p);
        let d = DvaSim::new(DvaConfig::dva(70)).run(&p);
        assert!(
            r.idle_cycles() > d.idle_cycles(),
            "{}: REF idle {} <= DVA idle {}",
            b.name(),
            r.idle_cycles(),
            d.idle_cycles()
        );
    }
}

/// Both machines respect the IDEAL resource bound, and the bound's
/// bookkeeping matches the simulators' view of the workload.
#[test]
fn ideal_bound_is_a_true_lower_bound() {
    for b in Benchmark::ALL {
        let p = b.program(Scale::Quick);
        let bound = ideal_bound(&p).cycles();
        for latency in [1, 50] {
            let r = RefSim::new(RefParams::with_latency(latency)).run(&p);
            let d = DvaSim::new(DvaConfig::dva(latency)).run(&p);
            assert!(bound <= r.cycles, "{}: bound above REF", b.name());
            assert!(bound <= d.cycles, "{}: bound above DVA", b.name());
        }
    }
}

/// State accounting is exhaustive on both machines: every cycle falls in
/// exactly one of the eight states.
#[test]
fn state_accounting_is_exhaustive() {
    let p = Benchmark::Dyfesm.program(Scale::Quick);
    let r = RefSim::new(RefParams::with_latency(30)).run(&p);
    assert_eq!(r.states.total_cycles(), r.cycles);
    let d = DvaSim::new(DvaConfig::dva(30)).run(&p);
    assert_eq!(d.states.total_cycles(), d.cycles);
    assert_eq!(d.avdq_occupancy.total(), d.cycles);
}

/// Simulations are deterministic: identical inputs give identical
/// results.
#[test]
fn simulations_are_deterministic() {
    let p = Benchmark::Trfd.program(Scale::Quick);
    let r1 = RefSim::new(RefParams::with_latency(30)).run(&p);
    let r2 = RefSim::new(RefParams::with_latency(30)).run(&p);
    assert_eq!(r1.cycles, r2.cycles);
    assert_eq!(r1.states, r2.states);
    let d1 = DvaSim::new(DvaConfig::dva(30)).run(&p);
    let d2 = DvaSim::new(DvaConfig::dva(30)).run(&p);
    assert_eq!(d1.cycles, d2.cycles);
    assert_eq!(d1.traffic, d2.traffic);
}

/// Reference-machine execution time is monotone in memory latency.
#[test]
fn ref_time_is_monotone_in_latency() {
    for b in Benchmark::ALL {
        let p = b.program(Scale::Quick);
        let mut prev = 0;
        for latency in [1u64, 30, 70, 100] {
            let r = RefSim::new(RefParams::with_latency(latency)).run(&p);
            assert!(r.cycles >= prev, "{} regressed at L={latency}", b.name());
            prev = r.cycles;
        }
    }
}
