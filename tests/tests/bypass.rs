//! Section 7 of the paper: the store→load bypass, end to end.

use dva_core::{DvaConfig, DvaSim};
use dva_workloads::{Benchmark, Scale};

#[test]
fn bypass_speeds_up_reuse_heavy_programs_at_unit_latency() {
    // Paper: significant speedups even at L=1 (DYFESM/TRFD lead).
    for b in [Benchmark::Trfd, Benchmark::Dyfesm, Benchmark::Bdna] {
        let p = b.program(Scale::Quick);
        let dva = DvaSim::new(DvaConfig::dva(1)).run(&p);
        let byp = DvaSim::new(DvaConfig::byp(1, 256, 16)).run(&p);
        let gain = dva.cycles as f64 / byp.cycles as f64;
        assert!(gain > 1.03, "{}: bypass gain {gain:.3}", b.name());
        assert!(byp.bypassed_loads > 0);
    }
}

#[test]
fn spec77_neither_gains_nor_loses_with_full_queues() {
    // Paper: SPEC77's bypass gain is ~0.7% — essentially nothing.
    let p = Benchmark::Spec77.program(Scale::Quick);
    let dva = DvaSim::new(DvaConfig::dva(1)).run(&p);
    let byp = DvaSim::new(DvaConfig::byp(1, 256, 16)).run(&p);
    let ratio = dva.cycles as f64 / byp.cycles as f64;
    assert!((0.98..1.05).contains(&ratio), "SPEC77 ratio {ratio:.3}");
}

#[test]
fn shrinking_the_load_queue_hurts_spec77_most() {
    // Paper: "the three bypass configurations that have a load queue
    // length of four are worse than the DVA configuration" for SPEC77.
    let p = Benchmark::Spec77.program(Scale::Quick);
    let byp4 = DvaSim::new(DvaConfig::byp(50, 4, 16)).run(&p);
    let byp256 = DvaSim::new(DvaConfig::byp(50, 256, 16)).run(&p);
    assert!(byp4.cycles >= byp256.cycles);
}

#[test]
fn bypass_reduces_memory_traffic_without_losing_requests() {
    for b in [Benchmark::Trfd, Benchmark::Bdna, Benchmark::Dyfesm] {
        let p = b.program(Scale::Quick);
        let dva = DvaSim::new(DvaConfig::dva(1)).run(&p);
        let byp = DvaSim::new(DvaConfig::byp(1, 256, 16)).run(&p);
        assert!(byp.traffic.memory_elems() < dva.traffic.memory_elems());
        assert_eq!(
            byp.traffic.total_request_elems(),
            dva.traffic.total_request_elems(),
            "{}: requests not conserved",
            b.name()
        );
        assert_eq!(dva.traffic.bypassed_elems, 0);
    }
}

#[test]
fn bypass_gains_hold_across_latencies() {
    let p = Benchmark::Trfd.program(Scale::Quick);
    for latency in [1u64, 30, 100] {
        let dva = DvaSim::new(DvaConfig::dva(latency)).run(&p);
        let byp = DvaSim::new(DvaConfig::byp(latency, 256, 16)).run(&p);
        assert!(
            byp.cycles <= dva.cycles,
            "L={latency}: bypass slower ({} vs {})",
            byp.cycles,
            dva.cycles
        );
    }
}

#[test]
fn store_queue_sizes_order_sensibly_for_bypass() {
    // Larger store queues never reduce the number of bypassed loads.
    let p = Benchmark::Bdna.program(Scale::Quick);
    let counts: Vec<u64> = [4usize, 8, 16]
        .into_iter()
        .map(|sq| DvaSim::new(DvaConfig::byp(1, 4, sq)).run(&p).bypassed_loads)
        .collect();
    assert!(
        counts.windows(2).all(|w| w[0] <= w[1]),
        "bypass counts not monotone in store queue size: {counts:?}"
    );
}
