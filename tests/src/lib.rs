//! Integration test crate for the DVA reproduction workspace.
//!
//! The tests live in `tests/tests/*.rs`; this library holds the shared
//! random-program generator they draw inputs from, and re-exports the
//! `dva-testutil` program builders (`vl`, `vload`, `vadd`, …) so every
//! test writes hand-built traces the same way.
#![forbid(unsafe_code)]

use dva_workloads::{Kernel, LoopSpec, Phase, ProgramSpec, ScalarSection, StripOverhead};
use proptest::prelude::*;

pub use dva_testutil::*;

/// A random straight-line kernel: loads, unary/binary ops over live
/// values, optional reduction, stores.
pub fn arb_kernel() -> impl Strategy<Value = Kernel> {
    (
        1usize..=6,    // loads
        0usize..=8,    // compute ops
        1usize..=2,    // stores
        any::<bool>(), // scalar operand flavor
        any::<bool>(), // include a reduction
        any::<u64>(),  // mixing seed
    )
        .prop_map(|(loads, computes, stores, use_scalar, reduce, seed)| {
            let mut k = Kernel::new(format!("prop{seed:x}"));
            let mut vals: Vec<_> = (0..loads).map(|i| k.load(format!("in{i}"))).collect();
            let mut state = seed;
            let mut next = |n: usize| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 33) as usize % n.max(1)
            };
            for i in 0..computes {
                let a = vals[next(vals.len())];
                let v = if use_scalar && i % 3 == 0 {
                    k.mul_scalar(a)
                } else {
                    let b = vals[next(vals.len())];
                    k.add(a, b)
                };
                vals.push(v);
            }
            if reduce {
                let src = vals[next(vals.len())];
                k.reduce(dva_isa::ReduceOp::Sum, src);
            }
            for i in 0..stores {
                let src = vals[next(vals.len())];
                k.store(src, format!("out{i}"));
            }
            k
        })
}

/// A random compiled program: a (possibly software-pipelined) strip-mined
/// loop over an [`arb_kernel`], optionally followed by a scalar section.
pub fn arb_program() -> impl Strategy<Value = dva_isa::Program> {
    (
        arb_kernel(),
        1u32..=5,   // strips
        1u32..=128, // vl
        any::<bool>(),
        0u32..=40, // scalar section
        any::<u64>(),
    )
        .prop_map(|(kernel, strips, vl, pipeline, scalar, seed)| {
            let mut phases = vec![Phase::Loop(LoopSpec {
                kernel,
                strips,
                vl,
                software_pipeline: pipeline,
                overhead: StripOverhead::default(),
            })];
            if scalar > 0 {
                phases.push(Phase::Scalar(ScalarSection {
                    insts: scalar,
                    memory_fraction: 0.3,
                }));
            }
            ProgramSpec {
                name: "prop".into(),
                repeat: 1,
                phases,
            }
            .compile(seed)
        })
}
