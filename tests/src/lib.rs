//! Integration test crate for the DVA reproduction workspace.
//!
//! All content lives in `tests/tests/*.rs`; this library is intentionally
//! empty.
#![forbid(unsafe_code)]
