//! Minimal, dependency-free JSON for the DVA reproduction's wire and
//! disk formats.
//!
//! The workspace ships no external crates (the build environment is
//! offline), so the sweep service's cache files and network protocol are
//! built on this hand-rolled JSON layer instead of `serde`. It is
//! deliberately small — a [`Json`] value model, a recursive-descent
//! [`Json::parse`], and a **byte-stable** compact writer
//! ([`Json::render`]) — with two properties the rest of the workspace
//! leans on:
//!
//! * **Determinism.** Objects preserve insertion order and the writer
//!   emits no whitespace, so the same value always renders to the same
//!   bytes. Cache keys and golden-format tests can compare rendered
//!   strings directly.
//! * **Exact round-trips.** Integers are carried as `i64` (never through
//!   a double), and floats render via Rust's shortest-round-trip
//!   formatting, so `parse(render(v)) == v` holds for every value the
//!   simulators produce.
//!
//! # Examples
//!
//! ```
//! use dva_json::Json;
//!
//! let value = Json::obj([
//!     ("cycles", Json::from(83930u64)),
//!     ("label", Json::from("REF")),
//!     ("ports", Json::Array(vec![Json::Float(0.25)])),
//! ]);
//! let text = value.render();
//! assert_eq!(text, r#"{"cycles":83930,"label":"REF","ports":[0.25]}"#);
//! assert_eq!(Json::parse(&text).unwrap(), value);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// A parsed JSON value.
///
/// Objects are insertion-ordered key/value vectors rather than hash
/// maps: rendering is byte-stable, and the handful of fields a result
/// carries makes linear lookup ([`Json::get`]) cheap.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without a fractional part or exponent, carried exactly.
    Int(i64),
    /// A number with a fractional part or exponent.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, preserving insertion order.
    Object(Vec<(String, Json)>),
}

/// A parse or decode error, with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(pub String);

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

impl JsonError {
    /// An error with the given message.
    pub fn msg(message: impl Into<String>) -> JsonError {
        JsonError(message.into())
    }
}

/// Values that serialize to JSON.
pub trait ToJson {
    /// The JSON form of this value.
    fn to_json(&self) -> Json;
}

/// Values that deserialize from JSON.
pub trait FromJson: Sized {
    /// Reconstructs a value from its [`ToJson`] form.
    fn from_json(json: &Json) -> Result<Self, JsonError>;
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj<K: Into<String>>(fields: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Object(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// The value of `key`, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value of `key`, or an error naming the missing field.
    pub fn field(&self, key: &str) -> Result<&Json, JsonError> {
        self.get(key)
            .ok_or_else(|| JsonError(format!("missing field `{key}` in {}", self.kind())))
    }

    /// This value as a bool.
    pub fn as_bool(&self) -> Result<bool, JsonError> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => Err(JsonError(format!("expected bool, found {}", other.kind()))),
        }
    }

    /// This value as an `i64` (floats are rejected).
    pub fn as_i64(&self) -> Result<i64, JsonError> {
        match self {
            Json::Int(i) => Ok(*i),
            other => Err(JsonError(format!(
                "expected integer, found {}",
                other.kind()
            ))),
        }
    }

    /// This value as a `u64` (negative values are rejected).
    pub fn as_u64(&self) -> Result<u64, JsonError> {
        u64::try_from(self.as_i64()?)
            .map_err(|_| JsonError("expected non-negative integer".to_string()))
    }

    /// This value as a `usize`.
    pub fn as_usize(&self) -> Result<usize, JsonError> {
        usize::try_from(self.as_i64()?)
            .map_err(|_| JsonError("expected non-negative integer".to_string()))
    }

    /// This value as an `f64` (integers widen).
    pub fn as_f64(&self) -> Result<f64, JsonError> {
        match self {
            Json::Int(i) => Ok(*i as f64),
            Json::Float(f) => Ok(*f),
            other => Err(JsonError(format!(
                "expected number, found {}",
                other.kind()
            ))),
        }
    }

    /// This value as a string slice.
    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(JsonError(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }

    /// This value as an array slice.
    pub fn as_array(&self) -> Result<&[Json], JsonError> {
        match self {
            Json::Array(items) => Ok(items),
            other => Err(JsonError(format!("expected array, found {}", other.kind()))),
        }
    }

    /// A short name of this value's type, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Int(_) => "integer",
            Json::Float(_) => "float",
            Json::Str(_) => "string",
            Json::Array(_) => "array",
            Json::Object(_) => "object",
        }
    }

    /// Renders this value as compact JSON with no whitespace. The output
    /// is byte-stable: equal values always render to equal strings.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(i) => {
                use fmt::Write as _;
                let _ = write!(out, "{i}");
            }
            Json::Float(f) => {
                assert!(f.is_finite(), "JSON cannot carry NaN or infinity");
                // Rust's float Debug prints the shortest string that
                // round-trips, and always includes a `.` or exponent —
                // so the value parses back as a Float, exactly.
                use fmt::Write as _;
                let _ = write!(out, "{f:?}");
            }
            Json::Str(s) => write_string(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document. Trailing whitespace is allowed; trailing
    /// non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(JsonError(format!(
                "trailing characters at byte {} of {}",
                p.pos,
                p.bytes.len()
            )));
        }
        Ok(value)
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(JsonError(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(other) => Err(JsonError(format!(
                "unexpected `{}` at byte {}",
                other as char, self.pos
            ))),
            None => Err(JsonError("unexpected end of input".to_string())),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => {
                    return Err(JsonError(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => {
                    return Err(JsonError(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(JsonError("unterminated string".to_string())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .peek()
                        .ok_or_else(|| JsonError("unterminated escape".to_string()))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| JsonError("bad \\u escape".to_string()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| JsonError("bad \\u escape".to_string()))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our
                            // writer; reject them rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| JsonError("bad \\u code point".to_string()))?;
                            out.push(c);
                        }
                        other => {
                            return Err(JsonError(format!("bad escape `\\{}`", other as char)));
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (the input is a &str,
                    // so slicing at char boundaries is safe).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| JsonError("invalid UTF-8".to_string()))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError("invalid number".to_string()))?;
        if float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| JsonError(format!("invalid number `{text}`")))
        } else {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| JsonError(format!("invalid number `{text}`")))
        }
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<i64> for Json {
    fn from(i: i64) -> Json {
        Json::Int(i)
    }
}

impl From<u64> for Json {
    fn from(u: u64) -> Json {
        Json::Int(i64::try_from(u).expect("u64 value exceeds JSON integer range"))
    }
}

impl From<u32> for Json {
    fn from(u: u32) -> Json {
        Json::Int(i64::from(u))
    }
}

impl From<usize> for Json {
    fn from(u: usize) -> Json {
        Json::from(u as u64)
    }
}

impl From<f64> for Json {
    fn from(f: f64) -> Json {
        Json::Float(f)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_compact_and_ordered() {
        let v = Json::obj([
            ("b", Json::from(1u64)),
            ("a", Json::Array(vec![Json::Null, Json::Bool(true)])),
        ]);
        assert_eq!(v.render(), r#"{"b":1,"a":[null,true]}"#);
    }

    #[test]
    fn parse_round_trips_every_kind() {
        let v = Json::obj([
            ("null", Json::Null),
            ("bool", Json::Bool(false)),
            ("int", Json::Int(-42)),
            ("float", Json::Float(0.1)),
            ("str", Json::from("hi \"there\"\n")),
            ("arr", Json::Array(vec![Json::Int(1), Json::Int(2)])),
            ("obj", Json::obj([("nested", Json::Int(3))])),
        ]);
        let text = v.render();
        assert_eq!(Json::parse(&text).unwrap(), v);
        // Render → parse → render is a fixed point (byte stability).
        assert_eq!(Json::parse(&text).unwrap().render(), text);
    }

    #[test]
    fn floats_round_trip_exactly() {
        #[allow(clippy::excessive_precision)] // deliberate: the literal rounds to f64
        for f in [0.1, 1.0 / 3.0, 1e-300, 123456789.123456789, -0.0] {
            let text = Json::Float(f).render();
            match Json::parse(&text).unwrap() {
                Json::Float(back) => assert_eq!(back.to_bits(), f.to_bits(), "{text}"),
                other => panic!("expected float back, got {other:?}"),
            }
        }
    }

    #[test]
    fn large_integers_are_exact() {
        let big = (1i64 << 60) + 12345;
        let text = Json::Int(big).render();
        assert_eq!(Json::parse(&text).unwrap().as_i64().unwrap(), big);
    }

    #[test]
    fn whitespace_is_tolerated_on_parse() {
        let v = Json::parse(" { \"a\" : [ 1 , 2 ] , \"b\" : null } \n").unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(v.render(), r#"{"a":[1,2],"b":null}"#);
    }

    #[test]
    fn errors_name_the_problem() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        let missing = Json::obj([("x", Json::Null)]).field("y").unwrap_err();
        assert!(missing.to_string().contains("`y`"));
    }

    #[test]
    fn accessors_reject_wrong_kinds() {
        assert!(Json::Null.as_u64().is_err());
        assert!(Json::Int(-1).as_u64().is_err());
        assert!(Json::Float(1.5).as_i64().is_err());
        assert_eq!(Json::Int(3).as_f64().unwrap(), 3.0);
        assert!(Json::Str("x".into()).as_array().is_err());
    }
}
