//! Shared experiment plumbing: latency grids, the standard machine line-up,
//! command-line parsing and the REF/DVA/IDEAL sweep shared by Figures 3–5.
//!
//! All heavy lifting is delegated to [`dva_sim_api::Sweep`], which fans
//! the (machine × program × latency) grid out over worker threads.

use dva_sim_api::{Machine, Sweep, SweepResults};
use dva_workloads::{Benchmark, Scale};

/// The memory latencies swept, mirroring the paper's x axis (1 to 100
/// cycles). `full` adds the intermediate decades.
pub fn latencies(full: bool) -> Vec<u64> {
    if full {
        vec![1, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100]
    } else {
        vec![1, 10, 30, 50, 70, 100]
    }
}

/// The latencies Figure 1 uses for its per-program bars.
pub const FIG1_LATENCIES: [u64; 4] = [1, 30, 70, 100];

/// The latencies Figure 6 uses for its occupancy histograms.
pub const FIG6_LATENCIES: [u64; 3] = [1, 30, 100];

/// Options shared by every experiment binary, parsed from the command
/// line by [`parse_args`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOpts {
    /// Trace size the workloads are generated at.
    pub scale: Scale,
    /// Whether to sweep the full latency grid.
    pub full: bool,
    /// Sweep worker threads (`0` = the machine's available parallelism).
    pub threads: usize,
}

impl Default for RunOpts {
    fn default() -> Self {
        RunOpts {
            scale: Scale::Default,
            full: false,
            threads: 0,
        }
    }
}

impl RunOpts {
    /// Quick single-threaded options for tests.
    pub fn quick() -> RunOpts {
        RunOpts {
            scale: Scale::Quick,
            full: false,
            threads: 1,
        }
    }

    /// A [`Sweep`] session preconfigured with these options.
    pub fn sweep(&self) -> Sweep {
        Sweep::new().scale(self.scale).threads(self.threads)
    }
}

/// What [`try_parse_args`] understood from the command line: either the
/// run options, or a request for the usage text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ParsedArgs {
    /// Normal run with these options.
    Opts(RunOpts),
    /// `--help` / `-h`: print the usage text and exit successfully.
    Help,
}

/// The flags every experiment binary accepts.
fn usage() -> String {
    [
        "usage: [--quick | --full] [--threads N] [--help]",
        "",
        "  --quick      small traces, the short latency grid",
        "  --full       full-scale traces, the full latency grid",
        "  --threads N  sweep worker threads (0 = all cores; default 0)",
        "  --help, -h   print this help and exit",
    ]
    .join("\n")
}

/// Parses the shared experiment flags (`--quick`, `--full`,
/// `--threads N`) from the process arguments.
///
/// `--help` (or `-h`) prints the accepted flags and exits 0. Unknown
/// arguments are an error: the process prints the usage message and
/// exits with a nonzero status rather than silently measuring something
/// other than what was asked for.
pub fn parse_args() -> RunOpts {
    match try_parse_args(std::env::args().skip(1)) {
        Ok(ParsedArgs::Opts(opts)) => opts,
        Ok(ParsedArgs::Help) => {
            println!("{}", usage());
            std::process::exit(0);
        }
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("{}", usage());
            std::process::exit(2);
        }
    }
}

/// Parses `--quick` / `--full` from the process arguments, exiting
/// nonzero on anything it does not understand (including `--threads`,
/// which it accepts and applies to nothing — prefer [`parse_args`]).
pub fn scale_from_args() -> Scale {
    parse_args().scale
}

fn try_parse_args(args: impl Iterator<Item = String>) -> Result<ParsedArgs, String> {
    // `--help` anywhere wins, even where another flag would consume it
    // as an operand (`--threads --help`) or error first.
    let args: Vec<String> = args.collect();
    if args.iter().any(|arg| arg == "--help" || arg == "-h") {
        return Ok(ParsedArgs::Help);
    }
    let mut opts = RunOpts::default();
    let mut args = args.into_iter().peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => opts.scale = Scale::Quick,
            "--full" => {
                opts.scale = Scale::Full;
                opts.full = true;
            }
            "--threads" => {
                let value = args
                    .next()
                    .ok_or_else(|| "--threads needs a value".to_string())?;
                opts.threads = value
                    .parse()
                    .map_err(|_| format!("invalid thread count {value:?}"))?;
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(ParsedArgs::Opts(opts))
}

/// The three machines of the paper's central comparison.
pub fn core_machines() -> [Machine; 3] {
    [Machine::reference(1), Machine::dva(1), Machine::ideal()]
}

/// The full REF/DVA/IDEAL sweep over every benchmark and `latencies`,
/// shared by Figures 3, 4 and 5.
pub fn latency_sweep(opts: RunOpts, latencies: &[u64]) -> SweepResults {
    opts.sweep()
        .machines(core_machines())
        .benchmarks(Benchmark::ALL)
        .latencies(latencies.iter().copied())
        .run()
}

/// The IDEAL bound of one benchmark in a sweep that included
/// [`Machine::ideal`] (the bound is latency independent; any measured
/// latency serves).
pub fn ideal_of(sweep: &SweepResults, benchmark: Benchmark) -> u64 {
    sweep
        .of(benchmark)
        .find(|p| p.label == "IDEAL")
        .map(|p| p.result.cycles)
        .expect("sweep includes the IDEAL machine")
}

/// Formats a cycle count in thousands with one decimal, as the paper's
/// y axes do (theirs are in hundreds of millions; ours are scaled traces).
pub fn kcycles(c: u64) -> String {
    format!("{:.1}", c as f64 / 1000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_grids_are_sorted_and_bounded() {
        for full in [false, true] {
            let l = latencies(full);
            assert_eq!(*l.first().unwrap(), 1);
            assert_eq!(*l.last().unwrap(), 100);
            assert!(l.windows(2).all(|w| w[0] < w[1]));
        }
        assert!(latencies(true).len() > latencies(false).len());
    }

    #[test]
    fn sweep_collects_every_point() {
        let sweep = latency_sweep(RunOpts::quick(), &[1, 100]);
        assert_eq!(sweep.points.len(), 3 * Benchmark::ALL.len() * 2);
        for b in Benchmark::ALL {
            assert_eq!(sweep.of(b).count(), 6);
            let ideal = ideal_of(&sweep, b);
            assert!(ideal > 0);
            // The bound never exceeds either machine's time.
            for latency in [1, 100] {
                assert!(ideal <= sweep.cycles("REF", b, latency).unwrap());
                assert!(ideal <= sweep.cycles("DVA", b, latency).unwrap());
            }
        }
    }

    #[test]
    fn kcycles_formats_thousands() {
        assert_eq!(kcycles(1500), "1.5");
        assert_eq!(kcycles(0), "0.0");
    }

    fn parse(args: &[&str]) -> Result<ParsedArgs, String> {
        try_parse_args(args.iter().map(|s| s.to_string()))
    }

    fn parse_opts(args: &[&str]) -> RunOpts {
        match parse(args) {
            Ok(ParsedArgs::Opts(opts)) => opts,
            other => panic!("expected options, got {other:?}"),
        }
    }

    #[test]
    fn arg_parser_rejects_unknown_arguments() {
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--threads"]).is_err());
        assert!(parse(&["--threads", "zero"]).is_err());
        let opts = parse_opts(&["--quick", "--threads", "4"]);
        assert_eq!(opts.scale, Scale::Quick);
        assert_eq!(opts.threads, 4);
        let opts = parse_opts(&["--full"]);
        assert!(opts.full);
        assert_eq!(opts.scale, Scale::Full);
    }

    #[test]
    fn help_is_discoverable_and_wins_over_other_flags() {
        assert_eq!(parse(&["--help"]), Ok(ParsedArgs::Help));
        assert_eq!(parse(&["-h"]), Ok(ParsedArgs::Help));
        // `--help` anywhere on the line asks for help, even after flags
        // that would otherwise error or consume it as an operand.
        assert_eq!(parse(&["--quick", "--help"]), Ok(ParsedArgs::Help));
        assert_eq!(parse(&["--threads", "--help"]), Ok(ParsedArgs::Help));
        assert_eq!(parse(&["--bogus", "-h"]), Ok(ParsedArgs::Help));
        // The usage text names every accepted flag.
        for flag in ["--quick", "--full", "--threads", "--help"] {
            assert!(usage().contains(flag), "usage misses {flag}");
        }
    }
}
