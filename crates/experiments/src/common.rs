//! Shared experiment plumbing: latency grids, the standard machine line-up
//! and the REF/DVA/IDEAL sweep shared by Figures 3–5.
//!
//! Command-line parsing and the run options live in [`dva_artifact::cli`]
//! (one parser for all twelve binaries); this module re-exports them so
//! experiment code keeps one import path. All heavy lifting is delegated
//! to [`dva_sim_api::Sweep`], which fans the (machine × program ×
//! latency) grid out over worker threads.

use dva_sim_api::{Machine, Sweep, SweepResults};
use dva_workloads::{Benchmark, Scale};

pub use dva_artifact::{parse_args, parse_cli, CliArgs, OutputOpts, RunOpts};

/// The memory latencies swept, mirroring the paper's x axis (1 to 100
/// cycles). `full` adds the intermediate decades.
pub fn latencies(full: bool) -> Vec<u64> {
    if full {
        vec![1, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100]
    } else {
        vec![1, 10, 30, 50, 70, 100]
    }
}

/// The latencies Figure 1 uses for its per-program bars.
pub const FIG1_LATENCIES: [u64; 4] = [1, 30, 70, 100];

/// The latencies Figure 6 uses for its occupancy histograms.
pub const FIG6_LATENCIES: [u64; 3] = [1, 30, 100];

/// Experiment-side extensions of the shared [`RunOpts`].
pub trait SweepOpts {
    /// A [`Sweep`] session preconfigured with these options.
    fn sweep(&self) -> Sweep;
}

impl SweepOpts for RunOpts {
    fn sweep(&self) -> Sweep {
        Sweep::new().scale(self.scale).threads(self.threads)
    }
}

/// Parses `--quick` / `--full` from the process arguments, exiting
/// nonzero on anything it does not understand (including `--threads`,
/// which it accepts and applies to nothing — prefer [`parse_args`]).
pub fn scale_from_args() -> Scale {
    parse_args().scale
}

/// The three machines of the paper's central comparison.
pub fn core_machines() -> [Machine; 3] {
    [Machine::reference(1), Machine::dva(1), Machine::ideal()]
}

/// The REF/DVA/IDEAL sweep over every benchmark and `latencies`, shared
/// by Figures 3, 4 and 5 — configured but not yet run. Because all three
/// figures declare this identical sweep, the artifact runner's
/// content-addressed cache simulates the grid once per process.
pub fn latency_sweep_cfg(opts: RunOpts, latencies: &[u64]) -> Sweep {
    opts.sweep()
        .machines(core_machines())
        .benchmarks(Benchmark::ALL)
        .latencies(latencies.iter().copied())
}

/// [`latency_sweep_cfg`], executed.
pub fn latency_sweep(opts: RunOpts, latencies: &[u64]) -> SweepResults {
    latency_sweep_cfg(opts, latencies).run()
}

/// The IDEAL bound of one benchmark in a sweep that included
/// [`Machine::ideal`] (the bound is latency independent; any measured
/// latency serves).
pub fn ideal_of(sweep: &SweepResults, benchmark: Benchmark) -> u64 {
    sweep
        .of(benchmark)
        .find(|p| p.label == "IDEAL")
        .map(|p| p.result.cycles)
        .expect("sweep includes the IDEAL machine")
}

/// Formats a cycle count in thousands with one decimal, as the paper's
/// y axes do (theirs are in hundreds of millions; ours are scaled traces).
pub fn kcycles(c: u64) -> String {
    format!("{:.1}", c as f64 / 1000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_grids_are_sorted_and_bounded() {
        for full in [false, true] {
            let l = latencies(full);
            assert_eq!(*l.first().unwrap(), 1);
            assert_eq!(*l.last().unwrap(), 100);
            assert!(l.windows(2).all(|w| w[0] < w[1]));
        }
        assert!(latencies(true).len() > latencies(false).len());
    }

    #[test]
    fn sweep_collects_every_point() {
        let sweep = latency_sweep(RunOpts::quick(), &[1, 100]);
        assert_eq!(sweep.points.len(), 3 * Benchmark::ALL.len() * 2);
        for b in Benchmark::ALL {
            assert_eq!(sweep.of(b).count(), 6);
            let ideal = ideal_of(&sweep, b);
            assert!(ideal > 0);
            // The bound never exceeds either machine's time.
            for latency in [1, 100] {
                assert!(ideal <= sweep.cycles("REF", b, latency).unwrap());
                assert!(ideal <= sweep.cycles("DVA", b, latency).unwrap());
            }
        }
    }

    #[test]
    fn kcycles_formats_thousands() {
        assert_eq!(kcycles(1500), "1.5");
        assert_eq!(kcycles(0), "0.0");
    }

    #[test]
    fn scale_parsing_still_reaches_through_the_shared_parser() {
        // The parser itself is tested in dva-artifact; here we only pin
        // that the re-exported options keep their defaults.
        let opts = RunOpts::default();
        assert_eq!(opts.scale, Scale::Default);
        assert!(!opts.full);
        assert_eq!(opts.threads, 0);
        assert_eq!(RunOpts::quick().scale, Scale::Quick);
    }
}
