//! Shared experiment plumbing: latency grids, the REF/DVA latency sweep
//! and command-line scale selection.

use dva_core::{ideal_bound, DvaConfig, DvaResult, DvaSim};
use dva_isa::Program;
use dva_ref::{RefParams, RefResult, RefSim};
use dva_workloads::{Benchmark, Scale};

/// The memory latencies swept, mirroring the paper's x axis (1 to 100
/// cycles). `full` adds the intermediate decades.
pub fn latencies(full: bool) -> Vec<u64> {
    if full {
        vec![1, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100]
    } else {
        vec![1, 10, 30, 50, 70, 100]
    }
}

/// The latencies Figure 1 uses for its per-program bars.
pub const FIG1_LATENCIES: [u64; 4] = [1, 30, 70, 100];

/// The latencies Figure 6 uses for its occupancy histograms.
pub const FIG6_LATENCIES: [u64; 3] = [1, 30, 100];

/// Parses `--quick` / `--full` from the process arguments (used by every
/// experiment binary; default is [`Scale::Default`]).
pub fn scale_from_args() -> Scale {
    let mut scale = Scale::Default;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quick" => scale = Scale::Quick,
            "--full" => scale = Scale::Full,
            other => eprintln!("ignoring unknown argument {other:?}"),
        }
    }
    scale
}

/// One (program, latency) measurement of both machines.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The benchmark program.
    pub benchmark: Benchmark,
    /// Memory latency in cycles.
    pub latency: u64,
    /// Reference-machine measurement.
    pub reference: RefResult,
    /// Decoupled-machine measurement.
    pub dva: DvaResult,
}

impl SweepPoint {
    /// DVA speedup over the reference machine.
    pub fn speedup(&self) -> f64 {
        dva_metrics::speedup(self.reference.cycles, self.dva.cycles)
    }

    /// Ratio of all-idle `( , , )` cycles, REF over DVA (Figure 4).
    pub fn idle_ratio(&self) -> f64 {
        if self.dva.idle_cycles() == 0 {
            0.0
        } else {
            self.reference.idle_cycles() as f64 / self.dva.idle_cycles() as f64
        }
    }
}

/// A full REF-vs-DVA sweep over programs and latencies, shared by Figures
/// 3, 4 and 5.
#[derive(Debug, Clone)]
pub struct LatencySweep {
    /// All measured points, grouped by program in [`Benchmark::ALL`]
    /// order.
    pub points: Vec<SweepPoint>,
    /// IDEAL lower bound per program (latency-independent).
    pub ideal: Vec<(Benchmark, u64)>,
}

impl LatencySweep {
    /// Runs the sweep.
    pub fn run(scale: Scale, latencies: &[u64]) -> LatencySweep {
        let mut points = Vec::new();
        let mut ideal = Vec::new();
        for benchmark in Benchmark::ALL {
            let program = benchmark.program(scale);
            ideal.push((benchmark, ideal_bound(&program).cycles()));
            for &latency in latencies {
                points.push(run_point(benchmark, &program, latency));
            }
        }
        LatencySweep { points, ideal }
    }

    /// The points of one program.
    pub fn of(&self, benchmark: Benchmark) -> impl Iterator<Item = &SweepPoint> {
        self.points.iter().filter(move |p| p.benchmark == benchmark)
    }

    /// The IDEAL bound of one program.
    pub fn ideal_of(&self, benchmark: Benchmark) -> u64 {
        self.ideal
            .iter()
            .find(|(b, _)| *b == benchmark)
            .map(|(_, c)| *c)
            .expect("all benchmarks measured")
    }
}

/// Runs both machines on one program at one latency.
pub fn run_point(benchmark: Benchmark, program: &Program, latency: u64) -> SweepPoint {
    let reference = RefSim::new(RefParams::with_latency(latency)).run(program);
    let dva = DvaSim::new(DvaConfig::dva(latency)).run(program);
    SweepPoint {
        benchmark,
        latency,
        reference,
        dva,
    }
}

/// Formats a cycle count in thousands with one decimal, as the paper's
/// y axes do (theirs are in hundreds of millions; ours are scaled traces).
pub fn kcycles(c: u64) -> String {
    format!("{:.1}", c as f64 / 1000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_grids_are_sorted_and_bounded() {
        for full in [false, true] {
            let l = latencies(full);
            assert_eq!(*l.first().unwrap(), 1);
            assert_eq!(*l.last().unwrap(), 100);
            assert!(l.windows(2).all(|w| w[0] < w[1]));
        }
        assert!(latencies(true).len() > latencies(false).len());
    }

    #[test]
    fn sweep_collects_every_point() {
        let sweep = LatencySweep::run(Scale::Quick, &[1, 100]);
        assert_eq!(sweep.points.len(), Benchmark::ALL.len() * 2);
        for b in Benchmark::ALL {
            assert_eq!(sweep.of(b).count(), 2);
            assert!(sweep.ideal_of(b) > 0);
            // The bound never exceeds either machine's time.
            for p in sweep.of(b) {
                assert!(sweep.ideal_of(b) <= p.reference.cycles);
                assert!(sweep.ideal_of(b) <= p.dva.cycles);
            }
        }
    }

    #[test]
    fn kcycles_formats_thousands() {
        assert_eq!(kcycles(1500), "1.5");
        assert_eq!(kcycles(0), "0.0");
    }
}
