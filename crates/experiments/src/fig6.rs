//! Figure 6: busy-slot distribution of the vector load data queue (AVDQ)
//! at three memory latencies.

use crate::common::{RunOpts, SweepOpts, FIG6_LATENCIES};
use dva_artifact::{ExperimentSpec, Section, SweepPlan};
use dva_metrics::Table;
use dva_sim_api::{Machine, Sweep, SweepResults};
use dva_workloads::Benchmark;

/// How many occupancy buckets the table reports (the paper plots 0..=9;
/// occupancy never exceeds 9 because the 16-entry VPIQ back-pressures the
/// fetch processor — Section 6).
pub const BUCKETS: usize = 10;

/// The heading the standalone binary prints.
pub const HEADING: &str = "Figure 6: AVDQ busy slots (kcycles at each occupancy)";

/// Figure 6 as a declarative spec: one DVA sweep over the histogram
/// latencies.
pub const SPEC: ExperimentSpec = ExperimentSpec {
    name: "fig6",
    description: "Figure 6: AVDQ busy-slot distributions",
    all_header: Some("== Figure 6: AVDQ busy-slot distribution (kcycles) =="),
    sweeps: spec_sweeps,
    render: spec_render,
    invariants: &[],
};

fn spec_sweeps(opts: &RunOpts) -> Vec<SweepPlan> {
    vec![sweep_cfg(opts).into()]
}

fn sweep_cfg(opts: &RunOpts) -> Sweep {
    opts.sweep()
        .machine(Machine::dva(1))
        .benchmarks(Benchmark::ALL)
        .latencies(FIG6_LATENCIES)
}

fn spec_render(_: &RunOpts, results: &[SweepResults]) -> Vec<Section> {
    vec![Section::new("fig6", HEADING, &render(&results[0]))]
}

/// Builds the Figure 6 histograms: cycles (in thousands) spent at each
/// AVDQ occupancy, per program and latency, plus the maximum occupancy
/// ever observed.
pub fn run(opts: RunOpts) -> Table {
    render(&sweep_cfg(&opts).run())
}

/// Renders a precomputed DVA sweep into the Figure 6 table.
pub fn render(sweep: &SweepResults) -> Table {
    let mut headers = vec!["Program".to_string(), "L".to_string()];
    headers.extend((0..BUCKETS).map(|v| format!("{v}")));
    headers.push("max".to_string());
    let mut table = Table::new(headers);
    for point in &sweep.points {
        let mut row = vec![point.program.clone(), point.latency.to_string()];
        let occupancy = point.result.avdq_occupancy().expect("DVA measures AVDQ");
        for v in 0..BUCKETS {
            row.push(format!("{:.1}", occupancy.count(v) as f64 / 1000.0));
        }
        row.push(
            point
                .result
                .max_avdq()
                .expect("DVA tracks AVDQ")
                .to_string(),
        );
        table.row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use dva_workloads::Scale;

    #[test]
    fn occupancy_grows_with_latency() {
        // Longer latency → more outstanding requests → higher occupancy
        // (the paper's reading of Figure 6).
        let program = Benchmark::Arc2d.program(Scale::Quick);
        let mean_at = |l: u64| {
            Machine::dva(l)
                .simulate(&program)
                .avdq_occupancy()
                .expect("DVA histogram")
                .mean()
        };
        assert!(mean_at(100) > mean_at(1));
    }

    #[test]
    fn occupancy_is_bounded_by_vpiq_backpressure() {
        // Section 6: with a 16-entry VPIQ the AVDQ can never hold more
        // than ~9 slots, even for compute-bound loops and a 256-slot
        // queue.
        for benchmark in [Benchmark::Spec77, Benchmark::Arc2d] {
            let program = benchmark.program(Scale::Quick);
            let result = Machine::dva(100).simulate(&program);
            let max = result.max_avdq().expect("DVA tracks AVDQ");
            assert!(max <= 9, "{}: AVDQ reached {max}", benchmark.name());
        }
    }
}
