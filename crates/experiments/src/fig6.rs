//! Figure 6: busy-slot distribution of the vector load data queue (AVDQ)
//! at three memory latencies.

use crate::common::FIG6_LATENCIES;
use dva_core::{DvaConfig, DvaSim};
use dva_metrics::Table;
use dva_workloads::{Benchmark, Scale};

/// How many occupancy buckets the table reports (the paper plots 0..=9;
/// occupancy never exceeds 9 because the 16-entry VPIQ back-pressures the
/// fetch processor — Section 6).
pub const BUCKETS: usize = 10;

/// Builds the Figure 6 histograms: cycles (in thousands) spent at each
/// AVDQ occupancy, per program and latency, plus the maximum occupancy
/// ever observed.
pub fn run(scale: Scale) -> Table {
    let mut headers = vec!["Program".to_string(), "L".to_string()];
    headers.extend((0..BUCKETS).map(|v| format!("{v}")));
    headers.push("max".to_string());
    let mut table = Table::new(headers);
    for benchmark in Benchmark::ALL {
        let program = benchmark.program(scale);
        for latency in FIG6_LATENCIES {
            let result = DvaSim::new(DvaConfig::dva(latency)).run(&program);
            let mut row = vec![benchmark.name().to_string(), latency.to_string()];
            for v in 0..BUCKETS {
                row.push(format!(
                    "{:.1}",
                    result.avdq_occupancy.count(v) as f64 / 1000.0
                ));
            }
            row.push(result.max_avdq.to_string());
            table.row(row);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_grows_with_latency() {
        // Longer latency → more outstanding requests → higher occupancy
        // (the paper's reading of Figure 6).
        let program = Benchmark::Arc2d.program(Scale::Quick);
        let mean_at = |l: u64| {
            DvaSim::new(DvaConfig::dva(l))
                .run(&program)
                .avdq_occupancy
                .mean()
        };
        assert!(mean_at(100) > mean_at(1));
    }

    #[test]
    fn occupancy_is_bounded_by_vpiq_backpressure() {
        // Section 6: with a 16-entry VPIQ the AVDQ can never hold more
        // than ~9 slots, even for compute-bound loops and a 256-slot
        // queue.
        for benchmark in [Benchmark::Spec77, Benchmark::Arc2d] {
            let program = benchmark.program(Scale::Quick);
            let result = DvaSim::new(DvaConfig::dva(100)).run(&program);
            assert!(
                result.max_avdq <= 9,
                "{}: AVDQ reached {}",
                benchmark.name(),
                result.max_avdq
            );
        }
    }
}
