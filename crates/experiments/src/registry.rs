//! The spec registry: every experiment of the evaluation, as data.
//!
//! The order is the `all` binary's print order. The two big-grid specs
//! — `fig5_adaptive` and the ablation — are excluded from `all` via
//! `all_header: None`. Each entry is also a standalone binary of the
//! same name.

use crate::{
    ablation, fig1, fig3, fig4, fig5, fig5_adaptive, fig6, fig7, fig8, membanks, queues, table1,
};
use dva_artifact::{ExperimentSpec, SpecManifest};

/// Every experiment spec, in `all`-binary order.
pub static REGISTRY: [ExperimentSpec; 12] = [
    table1::SPEC,
    fig1::SPEC,
    fig3::SPEC,
    fig4::SPEC,
    fig5::SPEC,
    fig5_adaptive::SPEC,
    fig6::SPEC,
    fig7::SPEC,
    fig8::SPEC,
    queues::SPEC,
    membanks::SPEC,
    ablation::SPEC,
];

/// Looks a spec up by its registry name.
pub fn find(name: &str) -> Option<&'static ExperimentSpec> {
    REGISTRY.iter().find(|spec| spec.name == name)
}

/// The serializable manifests of every registered spec.
pub fn manifests() -> Vec<SpecManifest> {
    REGISTRY.iter().map(ExperimentSpec::manifest).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_resolvable() {
        for spec in &REGISTRY {
            assert!(std::ptr::eq(find(spec.name).unwrap(), spec));
        }
        let mut names: Vec<&str> = REGISTRY.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), REGISTRY.len());
    }

    #[test]
    fn only_the_slow_specs_are_outside_all() {
        // The adaptive high-resolution figure and the ablation run far
        // bigger grids than the rest; both stay out of the `all` binary.
        let outside: Vec<&str> = REGISTRY
            .iter()
            .filter(|s| s.all_header.is_none())
            .map(|s| s.name)
            .collect();
        assert_eq!(outside, ["fig5_adaptive", "ablation"]);
    }

    #[test]
    fn manifests_cover_the_registry() {
        let manifests = manifests();
        assert_eq!(manifests.len(), REGISTRY.len());
        assert_eq!(manifests[0].name, "table1");
        assert!(!manifests.last().unwrap().in_all);
    }
}
