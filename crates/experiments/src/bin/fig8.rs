//! Regenerates Figure 8: memory traffic ratio DVA vs BYP.

fn main() {
    let opts = dva_experiments::parse_args();
    println!("Figure 8: total memory traffic, DVA 256/16 vs BYP 256/16");
    println!("(paper: >30% reduction for DYFESM/TRFD, ~10% for BDNA/FLO52)\n");
    println!("{}", dva_experiments::fig8::run(opts));
}
