//! Regenerates Figure 8: memory traffic ratio DVA vs BYP.

fn main() {
    dva_experiments::cli::run_spec("fig8")
}
