//! Bank-conflict stride sweep: REF vs DVA under flat vs banked memory.

fn main() {
    dva_experiments::cli::run_spec("membanks")
}
