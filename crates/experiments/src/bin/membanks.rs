//! Bank-conflict stride sweep: REF vs DVA under flat vs banked memory.

fn main() {
    let opts = dva_experiments::parse_args();
    println!(
        "Bank conflicts: cycles vs stride at L={} ({} banks, {}-cycle bank busy time)",
        dva_experiments::membanks::LATENCY,
        dva_experiments::membanks::BANKS,
        dva_experiments::membanks::BANK_BUSY,
    );
    println!("(decoupling hides latency, not bandwidth: the DVA pays bank conflicts in full)\n");
    println!("{}", dva_experiments::membanks::run(opts));
}
