//! Regenerates the adaptively sampled high-resolution Figure 5.

fn main() {
    dva_experiments::cli::run_spec("fig5_adaptive")
}
