//! Regenerates Figure 4: REF/DVA ratio of all-idle cycles.

fn main() {
    dva_experiments::cli::run_spec("fig4")
}
