//! Regenerates Figure 4: REF/DVA ratio of all-idle cycles.

fn main() {
    let opts = dva_experiments::parse_args();
    println!("Figure 4: ratio of cycles in state ( , , ), REF over DVA\n");
    println!("{}", dva_experiments::fig4::run(opts));
}
