//! Regenerates Figure 4: REF/DVA ratio of all-idle cycles.

fn main() {
    let scale = dva_experiments::scale_from_args();
    let full = std::env::args().any(|a| a == "--full");
    println!("Figure 4: ratio of cycles in state ( , , ), REF over DVA\n");
    println!("{}", dva_experiments::fig4::run(scale, full));
}
