//! Regenerates Figure 3: IDEAL / REF / DVA execution time vs latency.

fn main() {
    let scale = dva_experiments::scale_from_args();
    let full = std::env::args().any(|a| a == "--full");
    println!("Figure 3: execution time vs memory latency (kcycles)\n");
    println!("{}", dva_experiments::fig3::run(scale, full));
}
