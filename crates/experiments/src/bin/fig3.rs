//! Regenerates Figure 3: IDEAL / REF / DVA execution time vs latency.

fn main() {
    dva_experiments::cli::run_spec("fig3")
}
