//! Regenerates Figure 3: IDEAL / REF / DVA execution time vs latency.

fn main() {
    let opts = dva_experiments::parse_args();
    println!("Figure 3: execution time vs memory latency (kcycles)\n");
    println!("{}", dva_experiments::fig3::run(opts));
}
