//! Ablation studies: chaining and register bank ports.

fn main() {
    dva_experiments::cli::run_spec("ablation")
}
