//! Ablation studies: chaining and register bank ports.

fn main() {
    let opts = dva_experiments::parse_args();
    println!("Chaining ablation on the reference machine (Section 2.1)\n");
    println!("{}", dva_experiments::ablation::chaining(opts));
    println!("\nRegister-bank port ablation on the decoupled machine\n");
    println!("{}", dva_experiments::ablation::bank_ports(opts));
}
