//! Ablation studies: chaining and register bank ports.

fn main() {
    let scale = dva_experiments::scale_from_args();
    println!("Chaining ablation on the reference machine (Section 2.1)\n");
    println!("{}", dva_experiments::ablation::chaining(scale));
    println!("\nRegister-bank port ablation on the decoupled machine\n");
    println!("{}", dva_experiments::ablation::bank_ports(scale));
}
