//! Regenerates the queue-sizing studies of Sections 5–7.

fn main() {
    dva_experiments::cli::run_spec("queue_sizing")
}
