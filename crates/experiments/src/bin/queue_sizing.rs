//! Regenerates the queue-sizing studies of Sections 5–7.

fn main() {
    let opts = dva_experiments::parse_args();
    println!("Instruction-queue sizing (Section 5: 16 within 2% of 512)\n");
    println!("{}", dva_experiments::queues::instruction_queues(opts));
    println!("\nStore-queue sizing, base DVA (Section 5: flat from 16 up)\n");
    println!("{}", dva_experiments::queues::store_queue(opts));
    println!("\nLoad-queue sizing with bypass (Section 7: 4 slots suffice)\n");
    println!("{}", dva_experiments::queues::load_queue(opts));
}
