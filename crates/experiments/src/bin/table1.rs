//! Regenerates Table 1 of the paper.

fn main() {
    dva_experiments::cli::run_spec("table1")
}
