//! Regenerates Table 1 of the paper.

fn main() {
    let opts = dva_experiments::parse_args();
    println!("Table 1: basic operation counts (measured vs paper ratios)\n");
    println!("{}", dva_experiments::table1::run(opts.scale));
}
