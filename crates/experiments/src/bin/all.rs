//! Runs every experiment in sequence — the full evaluation of the paper.
//!
//! One shared runner executes the whole spec registry: the REF/DVA/IDEAL
//! latency sweep behind Figures 3, 4 and 5 simulates once and the other
//! two figures render from the content-addressed cache.

fn main() {
    dva_experiments::cli::run_all()
}
