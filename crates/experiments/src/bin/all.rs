//! Runs every experiment in sequence — the full evaluation of the paper.
//!
//! A shared REF/DVA/IDEAL latency sweep feeds Figures 3, 4 and 5 so the
//! heavy simulations run once (and in parallel across the grid).

use dva_experiments::{common, fig1, fig3, fig4, fig5, fig6, fig7, fig8, membanks, queues, table1};

fn main() {
    let opts = common::parse_args();

    println!("== Table 1: basic operation counts ==\n");
    println!("{}", table1::run(opts.scale));

    println!("== Figure 1: REF state breakdown (% of cycles) ==\n");
    println!("{}", fig1::run(opts));

    let sweep = common::latency_sweep(opts, &common::latencies(opts.full));
    println!("== Figure 3: execution time vs latency (kcycles) ==\n");
    println!("{}", fig3::render(&sweep));
    println!("== Figure 4: ( , , ) cycle ratio REF/DVA ==\n");
    println!("{}", fig4::render(&sweep));
    println!("== Figure 5: DVA speedup over REF ==\n");
    println!("{}", fig5::render(&sweep));

    println!("== Figure 6: AVDQ busy-slot distribution (kcycles) ==\n");
    println!("{}", fig6::run(opts));

    println!("== Figure 7: bypassing performance (kcycles) ==\n");
    println!("{}", fig7::run(opts));

    println!("== Figure 8: memory traffic ratio ==\n");
    println!("{}", fig8::run(opts));

    println!("== Queue sizing (Sections 5-7) ==\n");
    println!("{}", queues::instruction_queues(opts));
    println!();
    println!("{}", queues::store_queue(opts));
    println!();
    println!("{}", queues::load_queue(opts));

    println!("\n== Bank conflicts: cycles vs stride (beyond the paper) ==\n");
    println!("{}", membanks::run(opts));
}
