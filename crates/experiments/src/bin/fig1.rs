//! Regenerates Figure 1: reference-architecture state breakdown.

fn main() {
    let opts = dva_experiments::parse_args();
    println!("Figure 1: REF execution breakdown into (FU2, FU1, LD) states (% of cycles)\n");
    println!("{}", dva_experiments::fig1::run(opts));
}
