//! Regenerates Figure 1: reference-architecture state breakdown.

fn main() {
    dva_experiments::cli::run_spec("fig1")
}
