//! Regenerates Figure 7: bypass configurations vs DVA and IDEAL.

fn main() {
    let opts = dva_experiments::parse_args();
    println!("Figure 7: performance of the bypassing scheme (kcycles)\n");
    println!("{}", dva_experiments::fig7::run(opts));
}
