//! Regenerates Figure 7: bypass configurations vs DVA and IDEAL.

fn main() {
    let scale = dva_experiments::scale_from_args();
    let full = std::env::args().any(|a| a == "--full");
    println!("Figure 7: performance of the bypassing scheme (kcycles)\n");
    println!("{}", dva_experiments::fig7::run(scale, full));
}
