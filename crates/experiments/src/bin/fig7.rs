//! Regenerates Figure 7: bypass configurations vs DVA and IDEAL.

fn main() {
    dva_experiments::cli::run_spec("fig7")
}
