//! Regenerates Figure 6: AVDQ busy-slot distributions.

fn main() {
    let opts = dva_experiments::parse_args();
    println!("Figure 6: AVDQ busy slots (kcycles at each occupancy)\n");
    println!("{}", dva_experiments::fig6::run(opts));
}
