//! Regenerates Figure 6: AVDQ busy-slot distributions.

fn main() {
    dva_experiments::cli::run_spec("fig6")
}
