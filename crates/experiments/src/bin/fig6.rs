//! Regenerates Figure 6: AVDQ busy-slot distributions.

fn main() {
    let scale = dva_experiments::scale_from_args();
    println!("Figure 6: AVDQ busy slots (kcycles at each occupancy)\n");
    println!("{}", dva_experiments::fig6::run(scale));
}
