//! Regenerates Figure 5: DVA speedup over REF.

fn main() {
    dva_experiments::cli::run_spec("fig5")
}
