//! Regenerates Figure 5: DVA speedup over REF.

fn main() {
    let opts = dva_experiments::parse_args();
    println!("Figure 5: speedup of the DVA over the reference architecture");
    println!("(paper at L=100: 1.35 ARC2D .. 2.05 SPEC77, DYFESM ~1.0)\n");
    println!("{}", dva_experiments::fig5::run(opts));
}
