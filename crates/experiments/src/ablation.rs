//! Ablation studies of the design choices DESIGN.md calls out: the value
//! of chaining on the reference machine and of the second QMOV unit on
//! the decoupled machine.

use crate::common::{RunOpts, SweepOpts};
use dva_artifact::{ExperimentSpec, Section, SweepPlan};
use dva_core::DvaConfig;
use dva_metrics::Table;
use dva_ref::{RefParams, RefSim};
use dva_sim_api::{Machine, Sweep, SweepResults};
use dva_uarch::{ChainPolicy, UarchParams};
use dva_workloads::Benchmark;

/// Latency the ablations run at.
pub const LATENCY: u64 = 30;

/// The two section headings the standalone binary prints.
pub const HEADINGS: [&str; 2] = [
    "Chaining ablation on the reference machine (Section 2.1)",
    "Register-bank port ablation on the decoupled machine",
];

/// The ablation studies as a declarative spec. The chaining study drives
/// [`RefSim`] directly (the chain policy is an engine internal, not a
/// [`Machine`] knob), so only the bank-port comparison is a declared
/// sweep; `all_header` is `None` because `all` reproduces the paper's
/// evaluation, not the ablations.
pub const SPEC: ExperimentSpec = ExperimentSpec {
    name: "ablation",
    description: "ablations: chaining and register-bank ports",
    all_header: None,
    sweeps: spec_sweeps,
    render: spec_render,
    invariants: &[],
};

fn spec_sweeps(opts: &RunOpts) -> Vec<SweepPlan> {
    vec![bank_ports_sweep(opts).into()]
}

fn spec_render(opts: &RunOpts, results: &[SweepResults]) -> Vec<Section> {
    vec![
        Section::new("chaining", HEADINGS[0], &chaining(*opts)),
        Section::new("bank_ports", HEADINGS[1], &render_bank_ports(&results[0])),
    ]
}

/// Chaining ablation: the reference machine with its flexible FU→FU /
/// FU→store chaining versus no chaining at all (Section 2.1 motivates the
/// machine's chaining model).
///
/// The chain policy is an engine internal rather than part of
/// [`RefParams`], so this study drives [`RefSim`] directly instead of
/// going through [`Machine`].
pub fn chaining(opts: RunOpts) -> Table {
    let mut table = Table::new(["Program", "chained", "unchained", "chaining gain %"]);
    for benchmark in Benchmark::ALL {
        let program = benchmark.program(opts.scale);
        let params = RefParams::builder().latency(LATENCY).build();
        let with = RefSim::new(params).run(&program);
        let without = RefSim::new(params)
            .with_chain_policy(ChainPolicy::none())
            .run(&program);
        table.row([
            benchmark.name().to_string(),
            with.cycles.to_string(),
            without.cycles.to_string(),
            format!(
                "{:+.1}",
                100.0 * (without.cycles as f64 / with.cycles as f64 - 1.0)
            ),
        ]);
    }
    table
}

/// The bank-port comparison sweep: restricted ports versus a full
/// crossbar (Section 2.1's "restricted crossbar"), configured but not
/// run.
pub fn bank_ports_sweep(opts: &RunOpts) -> Sweep {
    let crossbar_uarch = UarchParams {
        check_bank_ports: false,
        ..UarchParams::default()
    };
    let machines = vec![
        Machine::dva(LATENCY),
        Machine::Dva(
            DvaConfig::builder()
                .latency(LATENCY)
                .uarch(crossbar_uarch)
                .build(),
        ),
    ];
    opts.sweep()
        .machines(machines)
        .benchmarks(Benchmark::ALL)
        .latencies([LATENCY])
}

/// Bank-port ablation: the 2-read/1-write ports per two-register bank
/// versus a full crossbar.
pub fn bank_ports(opts: RunOpts) -> Table {
    render_bank_ports(&bank_ports_sweep(&opts).run())
}

/// Renders a precomputed bank-port sweep.
pub fn render_bank_ports(sweep: &SweepResults) -> Table {
    let mut table = Table::new(["Program", "banked ports", "full crossbar", "port cost %"]);
    for benchmark in Benchmark::ALL {
        // Both machines label as "DVA", so the lookup is positional: the
        // sweep returns points in machine-declaration order.
        let cycles: Vec<u64> = sweep.of(benchmark).map(|p| p.result.cycles).collect();
        assert_eq!(cycles.len(), 2, "one point per declared machine");
        let (banked, crossbar) = (cycles[0], cycles[1]);
        table.row([
            benchmark.name().to_string(),
            banked.to_string(),
            crossbar.to_string(),
            format!("{:+.1}", 100.0 * (banked as f64 / crossbar as f64 - 1.0)),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use dva_workloads::Scale;

    #[test]
    fn chaining_always_helps_or_is_neutral() {
        let program = Benchmark::Arc2d.program(Scale::Quick);
        let params = RefParams::builder().latency(LATENCY).build();
        let with = RefSim::new(params).run(&program);
        let without = RefSim::new(params)
            .with_chain_policy(ChainPolicy::none())
            .run(&program);
        assert!(without.cycles >= with.cycles);
    }

    #[test]
    fn full_crossbar_never_slows_execution() {
        let program = Benchmark::Flo52.program(Scale::Quick);
        let banked = Machine::dva(LATENCY).simulate(&program);
        let crossbar = Machine::Dva(
            DvaConfig::builder()
                .latency(LATENCY)
                .uarch(UarchParams {
                    check_bank_ports: false,
                    ..UarchParams::default()
                })
                .build(),
        )
        .simulate(&program);
        assert!(crossbar.cycles <= banked.cycles);
    }

    #[test]
    fn tables_cover_every_program() {
        assert_eq!(chaining(RunOpts::quick()).len(), Benchmark::ALL.len());
    }
}
