//! Ablation studies of the design choices DESIGN.md calls out: the value
//! of chaining on the reference machine and of the second QMOV unit on
//! the decoupled machine.

use dva_core::{DvaConfig, DvaSim};
use dva_metrics::Table;
use dva_ref::{RefParams, RefSim};
use dva_uarch::ChainPolicy;
use dva_workloads::{Benchmark, Scale};

/// Latency the ablations run at.
pub const LATENCY: u64 = 30;

/// Chaining ablation: the reference machine with its flexible FU→FU /
/// FU→store chaining versus no chaining at all (Section 2.1 motivates the
/// machine's chaining model).
pub fn chaining(scale: Scale) -> Table {
    let mut table = Table::new(["Program", "chained", "unchained", "chaining gain %"]);
    for benchmark in Benchmark::ALL {
        let program = benchmark.program(scale);
        let with = RefSim::new(RefParams::with_latency(LATENCY)).run(&program);
        let without = RefSim::new(RefParams::with_latency(LATENCY))
            .with_chain_policy(ChainPolicy::none())
            .run(&program);
        table.row([
            benchmark.name().to_string(),
            with.cycles.to_string(),
            without.cycles.to_string(),
            format!(
                "{:+.1}",
                100.0 * (without.cycles as f64 / with.cycles as f64 - 1.0)
            ),
        ]);
    }
    table
}

/// Bank-port ablation: the 2-read/1-write ports per two-register bank
/// versus a full crossbar (Section 2.1's "restricted crossbar").
pub fn bank_ports(scale: Scale) -> Table {
    let mut table = Table::new(["Program", "banked ports", "full crossbar", "port cost %"]);
    for benchmark in Benchmark::ALL {
        let program = benchmark.program(scale);
        let banked = DvaSim::new(DvaConfig::dva(LATENCY)).run(&program);
        let mut free = DvaConfig::dva(LATENCY);
        free.uarch.check_bank_ports = false;
        let crossbar = DvaSim::new(free).run(&program);
        table.row([
            benchmark.name().to_string(),
            banked.cycles.to_string(),
            crossbar.cycles.to_string(),
            format!(
                "{:+.1}",
                100.0 * (banked.cycles as f64 / crossbar.cycles as f64 - 1.0)
            ),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaining_always_helps_or_is_neutral() {
        let program = Benchmark::Arc2d.program(Scale::Quick);
        let with = RefSim::new(RefParams::with_latency(LATENCY)).run(&program);
        let without = RefSim::new(RefParams::with_latency(LATENCY))
            .with_chain_policy(ChainPolicy::none())
            .run(&program);
        assert!(without.cycles >= with.cycles);
    }

    #[test]
    fn full_crossbar_never_slows_execution() {
        let program = Benchmark::Flo52.program(Scale::Quick);
        let banked = DvaSim::new(DvaConfig::dva(LATENCY)).run(&program);
        let mut free = DvaConfig::dva(LATENCY);
        free.uarch.check_bank_ports = false;
        let crossbar = DvaSim::new(free).run(&program);
        assert!(crossbar.cycles <= banked.cycles);
    }

    #[test]
    fn tables_cover_every_program() {
        assert_eq!(chaining(Scale::Quick).len(), Benchmark::ALL.len());
    }
}
