//! Queue-sizing sensitivity (Sections 5 and 6): the paper's rationale for
//! 16-entry instruction queues and a 16-slot store queue.
//!
//! Each study is one [`dva_sim_api::Sweep`] whose machine axis is the
//! queue size under test; the sweep points come back in
//! machine-declaration order, so the cycles of one benchmark line up with
//! the size grid positionally.

use crate::common::RunOpts;
use dva_core::DvaConfig;
use dva_metrics::Table;
use dva_sim_api::Machine;
use dva_workloads::Benchmark;

/// The latency at which the sizing study is run (the paper uses its full
/// sweep; sensitivity is widest at high latency).
pub const LATENCY: u64 = 50;

/// Runs `machines` over every benchmark at [`LATENCY`] and returns the
/// per-benchmark cycle counts in machine order.
fn cycles_by_machine(opts: RunOpts, machines: Vec<Machine>) -> Vec<(Benchmark, Vec<u64>)> {
    let count = machines.len();
    let sweep = opts
        .sweep()
        .machines(machines)
        .benchmarks(Benchmark::ALL)
        .latencies([LATENCY])
        .run();
    Benchmark::ALL
        .into_iter()
        .map(|benchmark| {
            let cycles: Vec<u64> = sweep.of(benchmark).map(|p| p.result.cycles).collect();
            assert_eq!(cycles.len(), count, "one point per machine");
            (benchmark, cycles)
        })
        .collect()
}

/// Instruction-queue sizing: the paper found 16 entries within 2% of 512.
pub fn instruction_queues(opts: RunOpts) -> Table {
    let sizes = [4usize, 8, 16, 64, 512];
    let mut headers = vec!["Program".to_string()];
    headers.extend(sizes.iter().map(|s| format!("IQ={s}")));
    headers.push("16 vs 512 (%)".to_string());
    let mut table = Table::new(headers);
    let machines = sizes
        .iter()
        .map(|&size| {
            Machine::Dva(
                DvaConfig::builder()
                    .latency(LATENCY)
                    .instruction_queue(size)
                    .build(),
            )
        })
        .collect();
    for (benchmark, cycles) in cycles_by_machine(opts, machines) {
        let c16 = cycles[2] as f64;
        let c512 = cycles[4] as f64;
        let mut row = vec![benchmark.name().to_string()];
        row.extend(cycles.iter().map(|c| c.to_string()));
        row.push(format!("{:+.2}", 100.0 * (c16 / c512 - 1.0)));
        table.row(row);
    }
    table
}

/// Store-queue sizing: the paper found almost no difference between 16,
/// 32 and 256 slots for the base DVA.
pub fn store_queue(opts: RunOpts) -> Table {
    let sizes = [4usize, 8, 16, 32, 256];
    let mut headers = vec!["Program".to_string()];
    headers.extend(sizes.iter().map(|s| format!("SQ={s}")));
    let mut table = Table::new(headers);
    let machines = sizes
        .iter()
        .map(|&size| {
            Machine::Dva(
                DvaConfig::builder()
                    .latency(LATENCY)
                    .store_queue(size)
                    .build(),
            )
        })
        .collect();
    for (benchmark, cycles) in cycles_by_machine(opts, machines) {
        let mut row = vec![benchmark.name().to_string()];
        row.extend(cycles.iter().map(|c| c.to_string()));
        table.row(row);
    }
    table
}

/// Load-queue sizing with bypass enabled (Section 7's conclusion: four
/// slots capture most of an infinite queue).
pub fn load_queue(opts: RunOpts) -> Table {
    let sizes = [2usize, 4, 8, 16, 256];
    let mut headers = vec!["Program".to_string()];
    headers.extend(sizes.iter().map(|s| format!("AVDQ={s}")));
    headers.push("4 vs 256 (%)".to_string());
    let mut table = Table::new(headers);
    let machines = sizes
        .iter()
        .map(|&size| Machine::byp(LATENCY, size, 16))
        .collect();
    for (benchmark, cycles) in cycles_by_machine(opts, machines) {
        let c4 = cycles[1] as f64;
        let c256 = cycles[4] as f64;
        let mut row = vec![benchmark.name().to_string()];
        row.extend(cycles.iter().map(|c| c.to_string()));
        row.push(format!("{:+.2}", 100.0 * (c4 / c256 - 1.0)));
        table.row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use dva_workloads::Scale;

    #[test]
    fn sixteen_entry_instruction_queues_are_near_infinite() {
        // Paper Section 5 reports < 2% from 512; our traces interleave
        // more scalar work per strip and benefit somewhat more from deep
        // queues (documented in EXPERIMENTS.md), so we assert a looser
        // bound plus monotonicity.
        let program = Benchmark::Arc2d.program(Scale::Quick);
        let run = |iq: usize| {
            Machine::Dva(
                DvaConfig::builder()
                    .latency(LATENCY)
                    .instruction_queue(iq)
                    .build(),
            )
            .simulate(&program)
            .cycles
        };
        let c4 = run(4) as f64;
        let c16 = run(16) as f64;
        let c512 = run(512) as f64;
        assert!(c16 / c512 < 1.10, "16-entry IQ {:.3}x of 512", c16 / c512);
        assert!(c4 >= c16 && c16 >= c512, "deeper queues never hurt");
    }

    #[test]
    fn store_queue_sixteen_matches_larger_queues() {
        let program = Benchmark::Flo52.program(Scale::Quick);
        let run = |sq: usize| {
            Machine::Dva(
                DvaConfig::builder()
                    .latency(LATENCY)
                    .store_queue(sq)
                    .build(),
            )
            .simulate(&program)
            .cycles
        };
        let c16 = run(16) as f64;
        let c256 = run(256) as f64;
        assert!(c16 / c256 < 1.03);
    }

    #[test]
    fn tables_have_a_row_per_program() {
        assert_eq!(load_queue(RunOpts::quick()).len(), Benchmark::ALL.len());
    }
}
