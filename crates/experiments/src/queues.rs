//! Queue-sizing sensitivity (Sections 5 and 6): the paper's rationale for
//! 16-entry instruction queues and a 16-slot store queue.
//!
//! Each study is one [`dva_sim_api::Sweep`] whose machine axis is the
//! queue size under test; the sweep points come back in
//! machine-declaration order, so the cycles of one benchmark line up with
//! the size grid positionally.

use crate::common::{RunOpts, SweepOpts};
use dva_artifact::{ExperimentSpec, Section, SweepPlan};
use dva_core::DvaConfig;
use dva_metrics::Table;
use dva_sim_api::{Machine, Sweep, SweepResults};
use dva_workloads::Benchmark;

/// The latency at which the sizing study is run (the paper uses its full
/// sweep; sensitivity is widest at high latency).
pub const LATENCY: u64 = 50;

/// The three section headings the standalone binary prints.
pub const HEADINGS: [&str; 3] = [
    "Instruction-queue sizing (Section 5: 16 within 2% of 512)",
    "Store-queue sizing, base DVA (Section 5: flat from 16 up)",
    "Load-queue sizing with bypass (Section 7: 4 slots suffice)",
];

/// The queue-sizing studies as one declarative spec: three sweeps (one
/// per queue under test), three sections.
pub const SPEC: ExperimentSpec = ExperimentSpec {
    name: "queue_sizing",
    description: "Sections 5-7: queue-sizing sensitivity",
    all_header: Some("== Queue sizing (Sections 5-7) =="),
    sweeps: spec_sweeps,
    render: spec_render,
    invariants: &[],
};

fn spec_sweeps(opts: &RunOpts) -> Vec<SweepPlan> {
    vec![
        sized_sweep(opts, iq_machines()).into(),
        sized_sweep(opts, sq_machines()).into(),
        sized_sweep(opts, lq_machines()).into(),
    ]
}

fn spec_render(_: &RunOpts, results: &[SweepResults]) -> Vec<Section> {
    vec![
        Section::new(
            "instruction_queues",
            HEADINGS[0],
            &render_instruction_queues(&results[0]),
        ),
        Section::new("store_queue", HEADINGS[1], &render_store_queue(&results[1])),
        Section::new("load_queue", HEADINGS[2], &render_load_queue(&results[2])),
    ]
}

/// The instruction-queue sizes under test.
const IQ_SIZES: [usize; 5] = [4, 8, 16, 64, 512];
/// The store-queue sizes under test.
const SQ_SIZES: [usize; 5] = [4, 8, 16, 32, 256];
/// The load-queue (AVDQ) sizes under test.
const LQ_SIZES: [usize; 5] = [2, 4, 8, 16, 256];

fn iq_machines() -> Vec<Machine> {
    IQ_SIZES
        .iter()
        .map(|&size| {
            Machine::Dva(
                DvaConfig::builder()
                    .latency(LATENCY)
                    .instruction_queue(size)
                    .build(),
            )
        })
        .collect()
}

fn sq_machines() -> Vec<Machine> {
    SQ_SIZES
        .iter()
        .map(|&size| {
            Machine::Dva(
                DvaConfig::builder()
                    .latency(LATENCY)
                    .store_queue(size)
                    .build(),
            )
        })
        .collect()
}

fn lq_machines() -> Vec<Machine> {
    LQ_SIZES
        .iter()
        .map(|&size| Machine::byp(LATENCY, size, 16))
        .collect()
}

/// One sizing sweep: `machines` over every benchmark at [`LATENCY`].
fn sized_sweep(opts: &RunOpts, machines: Vec<Machine>) -> Sweep {
    opts.sweep()
        .machines(machines)
        .benchmarks(Benchmark::ALL)
        .latencies([LATENCY])
}

/// Extracts per-benchmark cycle counts in machine-declaration order (the
/// sized machines share one label, so the lookup is positional).
fn cycles_by_machine(sweep: &SweepResults, count: usize) -> Vec<(Benchmark, Vec<u64>)> {
    Benchmark::ALL
        .into_iter()
        .map(|benchmark| {
            let cycles: Vec<u64> = sweep.of(benchmark).map(|p| p.result.cycles).collect();
            assert_eq!(cycles.len(), count, "one point per machine");
            (benchmark, cycles)
        })
        .collect()
}

/// Instruction-queue sizing: the paper found 16 entries within 2% of 512.
pub fn instruction_queues(opts: RunOpts) -> Table {
    render_instruction_queues(&sized_sweep(&opts, iq_machines()).run())
}

/// Renders a precomputed instruction-queue sweep.
pub fn render_instruction_queues(sweep: &SweepResults) -> Table {
    let mut headers = vec!["Program".to_string()];
    headers.extend(IQ_SIZES.iter().map(|s| format!("IQ={s}")));
    headers.push("16 vs 512 (%)".to_string());
    let mut table = Table::new(headers);
    for (benchmark, cycles) in cycles_by_machine(sweep, IQ_SIZES.len()) {
        let c16 = cycles[2] as f64;
        let c512 = cycles[4] as f64;
        let mut row = vec![benchmark.name().to_string()];
        row.extend(cycles.iter().map(|c| c.to_string()));
        row.push(format!("{:+.2}", 100.0 * (c16 / c512 - 1.0)));
        table.row(row);
    }
    table
}

/// Store-queue sizing: the paper found almost no difference between 16,
/// 32 and 256 slots for the base DVA.
pub fn store_queue(opts: RunOpts) -> Table {
    render_store_queue(&sized_sweep(&opts, sq_machines()).run())
}

/// Renders a precomputed store-queue sweep.
pub fn render_store_queue(sweep: &SweepResults) -> Table {
    let mut headers = vec!["Program".to_string()];
    headers.extend(SQ_SIZES.iter().map(|s| format!("SQ={s}")));
    let mut table = Table::new(headers);
    for (benchmark, cycles) in cycles_by_machine(sweep, SQ_SIZES.len()) {
        let mut row = vec![benchmark.name().to_string()];
        row.extend(cycles.iter().map(|c| c.to_string()));
        table.row(row);
    }
    table
}

/// Load-queue sizing with bypass enabled (Section 7's conclusion: four
/// slots capture most of an infinite queue).
pub fn load_queue(opts: RunOpts) -> Table {
    render_load_queue(&sized_sweep(&opts, lq_machines()).run())
}

/// Renders a precomputed load-queue sweep.
pub fn render_load_queue(sweep: &SweepResults) -> Table {
    let mut headers = vec!["Program".to_string()];
    headers.extend(LQ_SIZES.iter().map(|s| format!("AVDQ={s}")));
    headers.push("4 vs 256 (%)".to_string());
    let mut table = Table::new(headers);
    for (benchmark, cycles) in cycles_by_machine(sweep, LQ_SIZES.len()) {
        let c4 = cycles[1] as f64;
        let c256 = cycles[4] as f64;
        let mut row = vec![benchmark.name().to_string()];
        row.extend(cycles.iter().map(|c| c.to_string()));
        row.push(format!("{:+.2}", 100.0 * (c4 / c256 - 1.0)));
        table.row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use dva_workloads::Scale;

    #[test]
    fn sixteen_entry_instruction_queues_are_near_infinite() {
        // Paper Section 5 reports < 2% from 512; our traces interleave
        // more scalar work per strip and benefit somewhat more from deep
        // queues (documented in EXPERIMENTS.md), so we assert a looser
        // bound plus monotonicity.
        let program = Benchmark::Arc2d.program(Scale::Quick);
        let run = |iq: usize| {
            Machine::Dva(
                DvaConfig::builder()
                    .latency(LATENCY)
                    .instruction_queue(iq)
                    .build(),
            )
            .simulate(&program)
            .cycles
        };
        let c4 = run(4) as f64;
        let c16 = run(16) as f64;
        let c512 = run(512) as f64;
        assert!(c16 / c512 < 1.10, "16-entry IQ {:.3}x of 512", c16 / c512);
        assert!(c4 >= c16 && c16 >= c512, "deeper queues never hurt");
    }

    #[test]
    fn store_queue_sixteen_matches_larger_queues() {
        let program = Benchmark::Flo52.program(Scale::Quick);
        let run = |sq: usize| {
            Machine::Dva(
                DvaConfig::builder()
                    .latency(LATENCY)
                    .store_queue(sq)
                    .build(),
            )
            .simulate(&program)
            .cycles
        };
        let c16 = run(16) as f64;
        let c256 = run(256) as f64;
        assert!(c16 / c256 < 1.03);
    }

    #[test]
    fn tables_have_a_row_per_program() {
        assert_eq!(load_queue(RunOpts::quick()).len(), Benchmark::ALL.len());
    }
}
