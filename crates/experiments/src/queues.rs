//! Queue-sizing sensitivity (Sections 5 and 6): the paper's rationale for
//! 16-entry instruction queues and a 16-slot store queue.

use dva_core::{DvaConfig, DvaSim, QueueConfig};
use dva_metrics::Table;
use dva_workloads::{Benchmark, Scale};

/// The latency at which the sizing study is run (the paper uses its full
/// sweep; sensitivity is widest at high latency).
pub const LATENCY: u64 = 50;

/// Instruction-queue sizing: the paper found 16 entries within 2% of 512.
pub fn instruction_queues(scale: Scale) -> Table {
    let sizes = [4usize, 8, 16, 64, 512];
    let mut headers = vec!["Program".to_string()];
    headers.extend(sizes.iter().map(|s| format!("IQ={s}")));
    headers.push("16 vs 512 (%)".to_string());
    let mut table = Table::new(headers);
    for benchmark in Benchmark::ALL {
        let program = benchmark.program(scale);
        let mut cycles = Vec::new();
        for &size in &sizes {
            let mut config = DvaConfig::dva(LATENCY);
            config.queues = QueueConfig {
                instruction_queue: size,
                ..config.queues
            };
            cycles.push(DvaSim::new(config).run(&program).cycles);
        }
        let c16 = cycles[2] as f64;
        let c512 = cycles[4] as f64;
        let mut row = vec![benchmark.name().to_string()];
        row.extend(cycles.iter().map(|c| c.to_string()));
        row.push(format!("{:+.2}", 100.0 * (c16 / c512 - 1.0)));
        table.row(row);
    }
    table
}

/// Store-queue sizing: the paper found almost no difference between 16,
/// 32 and 256 slots for the base DVA.
pub fn store_queue(scale: Scale) -> Table {
    let sizes = [4usize, 8, 16, 32, 256];
    let mut headers = vec!["Program".to_string()];
    headers.extend(sizes.iter().map(|s| format!("SQ={s}")));
    let mut table = Table::new(headers);
    for benchmark in Benchmark::ALL {
        let program = benchmark.program(scale);
        let mut row = vec![benchmark.name().to_string()];
        for &size in &sizes {
            let mut config = DvaConfig::dva(LATENCY);
            config.queues = QueueConfig {
                store_queue: size,
                ..config.queues
            };
            row.push(DvaSim::new(config).run(&program).cycles.to_string());
        }
        table.row(row);
    }
    table
}

/// Load-queue sizing with bypass enabled (Section 7's conclusion: four
/// slots capture most of an infinite queue).
pub fn load_queue(scale: Scale) -> Table {
    let sizes = [2usize, 4, 8, 16, 256];
    let mut headers = vec!["Program".to_string()];
    headers.extend(sizes.iter().map(|s| format!("AVDQ={s}")));
    headers.push("4 vs 256 (%)".to_string());
    let mut table = Table::new(headers);
    for benchmark in Benchmark::ALL {
        let program = benchmark.program(scale);
        let mut cycles = Vec::new();
        for &size in &sizes {
            let config = DvaConfig::byp(LATENCY, size, 16);
            cycles.push(DvaSim::new(config).run(&program).cycles);
        }
        let c4 = cycles[1] as f64;
        let c256 = cycles[4] as f64;
        let mut row = vec![benchmark.name().to_string()];
        row.extend(cycles.iter().map(|c| c.to_string()));
        row.push(format!("{:+.2}", 100.0 * (c4 / c256 - 1.0)));
        table.row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_entry_instruction_queues_are_near_infinite() {
        // Paper Section 5 reports < 2% from 512; our traces interleave
        // more scalar work per strip and benefit somewhat more from deep
        // queues (documented in EXPERIMENTS.md), so we assert a looser
        // bound plus monotonicity.
        let program = Benchmark::Arc2d.program(Scale::Quick);
        let run = |iq: usize| {
            let mut config = DvaConfig::dva(LATENCY);
            config.queues.instruction_queue = iq;
            DvaSim::new(config).run(&program).cycles
        };
        let c4 = run(4) as f64;
        let c16 = run(16) as f64;
        let c512 = run(512) as f64;
        assert!(c16 / c512 < 1.10, "16-entry IQ {:.3}x of 512", c16 / c512);
        assert!(c4 >= c16 && c16 >= c512, "deeper queues never hurt");
    }

    #[test]
    fn store_queue_sixteen_matches_larger_queues() {
        let program = Benchmark::Flo52.program(Scale::Quick);
        let run = |sq: usize| {
            let mut config = DvaConfig::dva(LATENCY);
            config.queues.store_queue = sq;
            DvaSim::new(config).run(&program).cycles
        };
        let c16 = run(16) as f64;
        let c256 = run(256) as f64;
        assert!(c16 / c256 < 1.03);
    }

    #[test]
    fn tables_have_a_row_per_program() {
        assert_eq!(load_queue(Scale::Quick).len(), Benchmark::ALL.len());
    }
}
