//! Figure 1: execution-time breakdown of the reference architecture into
//! the eight (FU2, FU1, LD) machine states, per program and memory
//! latency.

use crate::common::FIG1_LATENCIES;
use dva_metrics::{Table, UnitState};
use dva_ref::{RefParams, RefSim};
use dva_workloads::{Benchmark, Scale};

/// Builds the Figure 1 data: one row per (program, latency) with the total
/// cycles, the share of each of the eight states, and the paper's headline
/// quantity — the fraction of cycles in which the memory port sits idle.
pub fn run(scale: Scale) -> Table {
    let mut headers = vec!["Program".to_string(), "L".to_string(), "cycles".to_string()];
    headers.extend(UnitState::all().iter().map(|s| s.to_string()));
    headers.push("LD idle %".to_string());
    let mut table = Table::new(headers);
    for benchmark in Benchmark::ALL {
        let program = benchmark.program(scale);
        for latency in FIG1_LATENCIES {
            let result = RefSim::new(RefParams::with_latency(latency)).run(&program);
            let mut row = vec![
                benchmark.name().to_string(),
                latency.to_string(),
                result.cycles.to_string(),
            ];
            for state in UnitState::all() {
                row.push(format!("{:.1}", 100.0 * result.states.fraction(state)));
            }
            row.push(format!(
                "{:.1}",
                100.0 * result.states.memory_port_idle_cycles() as f64 / result.cycles as f64
            ));
            table.row(row);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_rows_cover_all_latencies() {
        let t = run(Scale::Quick);
        assert_eq!(t.len(), Benchmark::ALL.len() * FIG1_LATENCIES.len());
    }

    #[test]
    fn idle_state_grows_with_latency() {
        // The paper's central observation: higher memory latency inflates
        // the all-idle state.
        let program = Benchmark::Trfd.program(Scale::Quick);
        let idle_at = |l: u64| {
            let r = RefSim::new(RefParams::with_latency(l)).run(&program);
            r.states.fraction(UnitState::empty())
        };
        assert!(idle_at(100) > idle_at(1));
    }
}
