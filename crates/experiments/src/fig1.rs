//! Figure 1: execution-time breakdown of the reference architecture into
//! the eight (FU2, FU1, LD) machine states, per program and memory
//! latency.

use crate::common::{RunOpts, SweepOpts, FIG1_LATENCIES};
use dva_artifact::{ExperimentSpec, Section, SweepPlan};
use dva_metrics::{Table, UnitState};
use dva_sim_api::{Machine, Sweep, SweepResults};
use dva_workloads::Benchmark;

/// The heading the standalone binary prints.
pub const HEADING: &str =
    "Figure 1: REF execution breakdown into (FU2, FU1, LD) states (% of cycles)";

/// Figure 1 as a declarative spec: one REF sweep over the per-bar
/// latencies.
pub const SPEC: ExperimentSpec = ExperimentSpec {
    name: "fig1",
    description: "Figure 1: REF functional-unit state breakdown",
    all_header: Some("== Figure 1: REF state breakdown (% of cycles) =="),
    sweeps: spec_sweeps,
    render: spec_render,
    invariants: &[],
};

fn spec_sweeps(opts: &RunOpts) -> Vec<SweepPlan> {
    vec![sweep_cfg(opts).into()]
}

fn sweep_cfg(opts: &RunOpts) -> Sweep {
    opts.sweep()
        .machine(Machine::reference(1))
        .benchmarks(Benchmark::ALL)
        .latencies(FIG1_LATENCIES)
}

fn spec_render(_: &RunOpts, results: &[SweepResults]) -> Vec<Section> {
    vec![Section::new("fig1", HEADING, &render(&results[0]))]
}

/// Builds the Figure 1 data: one row per (program, latency) with the total
/// cycles, the share of each of the eight states, and the paper's headline
/// quantity — the fraction of cycles in which the memory port sits idle.
pub fn run(opts: RunOpts) -> Table {
    render(&sweep_cfg(&opts).run())
}

/// Renders a precomputed REF sweep into the Figure 1 table.
pub fn render(sweep: &SweepResults) -> Table {
    let mut headers = vec!["Program".to_string(), "L".to_string(), "cycles".to_string()];
    headers.extend(UnitState::all().iter().map(|s| s.to_string()));
    headers.push("LD idle %".to_string());
    let mut table = Table::new(headers);
    for point in &sweep.points {
        let result = &point.result;
        let mut row = vec![
            point.program.clone(),
            point.latency.to_string(),
            result.cycles.to_string(),
        ];
        for state in UnitState::all() {
            row.push(format!("{:.1}", 100.0 * result.states.fraction(state)));
        }
        row.push(format!(
            "{:.1}",
            100.0 * result.states.memory_port_idle_cycles() as f64 / result.cycles as f64
        ));
        table.row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use dva_workloads::Scale;

    #[test]
    fn breakdown_rows_cover_all_latencies() {
        let t = run(RunOpts::quick());
        assert_eq!(t.len(), Benchmark::ALL.len() * FIG1_LATENCIES.len());
    }

    #[test]
    fn idle_state_grows_with_latency() {
        // The paper's central observation: higher memory latency inflates
        // the all-idle state.
        let program = Benchmark::Trfd.program(Scale::Quick);
        let idle_at = |l: u64| {
            let r = Machine::reference(l).simulate(&program);
            r.states.fraction(UnitState::empty())
        };
        assert!(idle_at(100) > idle_at(1));
    }
}
