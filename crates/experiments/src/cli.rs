//! The shared `main` of every experiment binary.
//!
//! Each binary is a two-line wrapper over [`run_spec`] (or [`run_all`]);
//! parsing, execution, printing, artifact emission and the golden check
//! all live here, against the [`registry`](crate::registry).
//!
//! Exit codes: `0` success (and golden match), `1` invariant violation,
//! I/O failure or golden mismatch, `2` bad command line.

use crate::registry::{find, REGISTRY};
use dva_artifact::{
    golden_check, golden_dir, parse_cli, write_outputs, Artifact, GoldenStatus, OutputOpts,
    RunOpts, Runner,
};
use std::path::Path;

/// Runs one registered spec end to end: parse the command line, execute,
/// print the tables, write artifacts, check the golden. Never returns.
pub fn run_spec(name: &str) -> ! {
    let args = parse_cli();
    let spec = find(name).unwrap_or_else(|| panic!("spec `{name}` not registered"));
    let mut runner = Runner::new();
    let artifact = run_or_die(&mut runner, spec, &args.run);
    print!("{}", artifact.to_text());
    finish(&[artifact], &args.out);
}

/// Runs every spec the `all` binary prints (registry order, skipping
/// `all_header: None`) under one shared runner, so the REF/DVA/IDEAL
/// sweep behind Figures 3–5 simulates once. Never returns.
///
/// With `--json`/`--csv` the given path is a *directory*; one
/// `<name>.json`/`<name>.csv` is written per spec. `--golden-check`
/// checks every produced artifact and fails if any mismatches.
pub fn run_all() -> ! {
    let args = parse_cli();
    let mut runner = Runner::new();
    let mut artifacts = Vec::new();
    for spec in REGISTRY.iter().filter(|s| s.all_header.is_some()) {
        let artifact = run_or_die(&mut runner, spec, &args.run);
        print!(
            "{}\n\n{}\n",
            spec.all_header.expect("filtered above"),
            artifact.tables_text()
        );
        artifacts.push(artifact);
    }
    finish(&artifacts, &args.out);
}

fn run_or_die(
    runner: &mut Runner,
    spec: &dva_artifact::ExperimentSpec,
    opts: &RunOpts,
) -> Artifact {
    runner.run(spec, opts).unwrap_or_else(|err| {
        eprintln!("error: {err}");
        std::process::exit(1);
    })
}

/// Writes the requested outputs and runs the golden check, then exits
/// with the appropriate status. For several artifacts the output paths
/// are directories (one file per artifact); for one they are files.
fn finish(artifacts: &[Artifact], out: &OutputOpts) -> ! {
    for artifact in artifacts {
        let per_artifact = if artifacts.len() == 1 {
            out.clone()
        } else {
            OutputOpts {
                json: out
                    .json
                    .as_ref()
                    .map(|dir| dir.join(format!("{}.json", artifact.experiment))),
                csv: out
                    .csv
                    .as_ref()
                    .map(|dir| dir.join(format!("{}.csv", artifact.experiment))),
                golden_check: out.golden_check,
            }
        };
        ensure_parents(&per_artifact);
        if let Err(message) = write_outputs(artifact, &per_artifact) {
            eprintln!("error: {message}");
            std::process::exit(1);
        }
    }
    if !out.golden_check {
        std::process::exit(0);
    }
    let dir = golden_dir();
    let mut failed = false;
    for artifact in artifacts {
        match golden_check(artifact, &dir) {
            GoldenStatus::Match => {
                eprintln!("golden-check: {} matches", artifact.experiment);
            }
            GoldenStatus::Updated => {
                eprintln!("golden-check: {} golden updated", artifact.experiment);
            }
            GoldenStatus::Mismatch { detail } => {
                eprintln!("golden-check: {} FAILED: {detail}", artifact.experiment);
                failed = true;
            }
        }
    }
    std::process::exit(i32::from(failed));
}

/// Creates the parent directories of the requested output files (the
/// `all` binary's directory mode points into possibly-fresh trees).
fn ensure_parents(out: &OutputOpts) {
    for path in [&out.json, &out.csv].into_iter().flatten() {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() && !Path::new(parent).exists() {
                let _ = std::fs::create_dir_all(parent);
            }
        }
    }
}
