//! Bank-conflict study (not in the paper): execution time vs stride at a
//! fixed memory latency, REF vs DVA, flat vs banked main memory.
//!
//! The paper's flat memory cannot ask this question: its single port
//! streams any access at one element per cycle regardless of stride.
//! Swapping in the banked backend ([`MemoryModelKind::Banked`]) makes
//! non-unit strides revisit busy banks and throttle the address bus — turning
//! memory *bandwidth* (not latency) into the bottleneck. Decoupling
//! hides latency by slipping the address processor ahead; it cannot
//! manufacture bandwidth, so the DVA's banked/flat slowdown grows with
//! stride at least as fast as the reference machine's.

use crate::common::{RunOpts, SweepOpts};
use dva_artifact::{ExperimentSpec, Section, SweepPlan};
use dva_isa::Program;
use dva_metrics::Table;
use dva_sim_api::{Machine, MemoryModelKind, Sweep, SweepResults};
use dva_workloads::{Kernel, LoopSpec, Phase, ProgramSpec, Scale, StripOverhead};

/// The bank-conflict study as a declarative spec. Its strided programs
/// are custom-compiled, but their instruction streams content-address
/// like any benchmark, so the sweep still flows through the cache.
pub const SPEC: ExperimentSpec = ExperimentSpec {
    name: "membanks",
    description: "bank-conflict stride sweep over the memory backends",
    all_header: Some("\n== Bank conflicts: cycles vs stride (beyond the paper) =="),
    sweeps: spec_sweeps,
    render: spec_render,
    invariants: &[],
};

fn spec_sweeps(opts: &RunOpts) -> Vec<SweepPlan> {
    vec![sweep_cfg(*opts).into()]
}

fn spec_render(_: &RunOpts, results: &[SweepResults]) -> Vec<Section> {
    let heading = format!(
        "Bank conflicts: cycles vs stride at L={LATENCY} \
         ({BANKS} banks, {BANK_BUSY}-cycle bank busy time)\n\
         (decoupling hides latency, not bandwidth: the DVA pays bank conflicts in full)"
    );
    vec![Section::new("membanks", heading, &render(&results[0]))]
}

/// The fixed memory latency of the study (the middle of the paper's
/// sweep; the effect under study is bandwidth, not latency).
pub const LATENCY: u64 = 30;

/// Banked-memory geometry: 8 banks, each busy 8 cycles per access —
/// unit strides stream at full speed, stride 8 serializes on one bank.
pub const BANKS: u32 = 8;
/// See [`BANKS`].
pub const BANK_BUSY: u64 = 8;

/// The strides swept: powers of two degrade stepwise as they hit fewer
/// banks; the odd stride 3 stays conflict-free and pins the contrast.
pub const STRIDES: [i64; 6] = [1, 2, 3, 4, 8, 16];

/// The banked backend the study runs against.
pub fn banked() -> MemoryModelKind {
    MemoryModelKind::Banked {
        banks: BANKS,
        bank_busy: BANK_BUSY,
    }
}

/// A strided triad kernel (`y[s*i] = a * x[s*i]`) compiled at the given
/// scale; the kernel's loads and stores both carry the stride, so every
/// vector access in the trace pays the same bank behavior.
pub fn strided_program(stride: i64, scale: Scale) -> Program {
    let mut kernel = Kernel::new(format!("triad-s{stride}"));
    let x = kernel.load_strided("x", stride);
    let ax = kernel.mul_scalar(x);
    kernel.store_strided(ax, "y", stride);
    let strips = match scale {
        Scale::Quick => 16,
        Scale::Default => 96,
        Scale::Full => 384,
    };
    let spec = ProgramSpec {
        name: format!("stride-{stride}"),
        repeat: 1,
        phases: vec![Phase::Loop(LoopSpec {
            kernel,
            strips,
            vl: 64,
            software_pipeline: true,
            overhead: StripOverhead::default(),
        })],
    };
    spec.compile(0xBA2C5)
}

/// The machines × strides × {flat, banked} grid, configured but not run.
pub fn sweep_cfg(opts: RunOpts) -> Sweep {
    let mut sweep = opts
        .sweep()
        .machines([Machine::reference(1), Machine::dva(1)])
        .latencies([LATENCY])
        .memory_models([MemoryModelKind::Flat, banked()]);
    for stride in STRIDES {
        sweep = sweep.program(strided_program(stride, opts.scale));
    }
    sweep
}

/// Runs the machines × strides × {flat, banked} grid in one parallel
/// sweep session.
pub fn sweep(opts: RunOpts) -> SweepResults {
    sweep_cfg(opts).run()
}

/// Builds the stride-sweep table: cycles under flat and banked memory
/// and the banked/flat slowdown, for REF and DVA.
pub fn run(opts: RunOpts) -> Table {
    render(&sweep(opts))
}

/// Renders a precomputed stride sweep into the bank-conflict table.
pub fn render(results: &SweepResults) -> Table {
    let mut table = Table::new([
        "stride",
        "REF flat",
        "REF banked",
        "REF slowdown",
        "DVA flat",
        "DVA banked",
        "DVA slowdown",
    ]);
    for stride in STRIDES {
        let program = format!("stride-{stride}");
        let cycles = |label: &str, memory: MemoryModelKind| {
            results
                .of_memory(memory)
                .find(|p| p.label == label && p.program == program)
                .expect("grid point")
                .result
                .cycles
        };
        let ref_flat = cycles("REF", MemoryModelKind::Flat);
        let ref_banked = cycles("REF", banked());
        let dva_flat = cycles("DVA", MemoryModelKind::Flat);
        let dva_banked = cycles("DVA", banked());
        table.row([
            stride.to_string(),
            ref_flat.to_string(),
            ref_banked.to_string(),
            format!("{:.2}", ref_banked as f64 / ref_flat as f64),
            dva_flat.to_string(),
            dva_banked.to_string(),
            format!("{:.2}", dva_banked as f64 / dva_flat as f64),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_stride_pays_no_bank_penalty() {
        // bank_busy == banks: a unit-stride stream never revisits a busy
        // bank, so the banked run is cycle-identical to the flat one.
        let program = strided_program(1, Scale::Quick);
        for machine in [Machine::reference(LATENCY), Machine::dva(LATENCY)] {
            let flat = machine.simulate(&program);
            let conflicted = machine.with_memory_model(banked()).simulate(&program);
            assert_eq!(flat.cycles, conflicted.cycles, "{}", machine.label());
        }
    }

    #[test]
    fn bank_aligned_stride_is_the_worst_case() {
        let aligned = strided_program(i64::from(BANKS), Scale::Quick);
        let odd = strided_program(3, Scale::Quick);
        for machine in [Machine::reference(LATENCY), Machine::dva(LATENCY)] {
            let machine = machine.with_memory_model(banked());
            let worst = machine.simulate(&aligned);
            let fine = machine.simulate(&odd);
            assert!(
                worst.cycles > 2 * fine.cycles,
                "{}: stride {BANKS} should serialize on one bank ({} vs {})",
                machine.label(),
                worst.cycles,
                fine.cycles
            );
        }
    }

    #[test]
    fn decoupling_cannot_hide_bandwidth_loss() {
        // Decoupling hides latency, so under flat memory DVA beats REF;
        // bank conflicts burn shared bus bandwidth, which decoupling
        // cannot recover — the DVA slows down by at least as large a
        // factor as REF does.
        let program = strided_program(8, Scale::Quick);
        let slow = |machine: Machine, memory| {
            machine.with_memory_model(memory).simulate(&program).cycles as f64
        };
        let ref_ratio = slow(Machine::reference(LATENCY), banked())
            / slow(Machine::reference(LATENCY), MemoryModelKind::Flat);
        let dva_ratio = slow(Machine::dva(LATENCY), banked())
            / slow(Machine::dva(LATENCY), MemoryModelKind::Flat);
        assert!(ref_ratio > 1.5, "REF unaffected by conflicts: {ref_ratio}");
        assert!(
            dva_ratio >= ref_ratio * 0.95,
            "DVA hid a pure-bandwidth penalty: DVA {dva_ratio:.2}x vs REF {ref_ratio:.2}x"
        );
    }

    #[test]
    fn table_covers_every_stride() {
        let table = run(RunOpts::quick());
        assert_eq!(table.len(), STRIDES.len());
        let text = table.to_ascii();
        for stride in STRIDES {
            assert!(text.contains(&format!("{stride}")), "missing {stride}");
        }
    }
}
