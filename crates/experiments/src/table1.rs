//! Table 1: basic operation counts for the benchmark programs.

use dva_artifact::{ExperimentSpec, RunOpts, Section, SweepPlan};
use dva_metrics::Table;
use dva_sim_api::SweepResults;
use dva_workloads::{stats, Benchmark, Scale};

/// The heading the standalone binary prints.
pub const HEADING: &str = "Table 1: basic operation counts (measured vs paper ratios)";

/// Table 1 as a declarative spec: trace statistics only, no sweeps.
pub const SPEC: ExperimentSpec = ExperimentSpec {
    name: "table1",
    description: "Table 1: basic operation counts",
    all_header: Some("== Table 1: basic operation counts =="),
    sweeps: spec_sweeps,
    render: spec_render,
    invariants: &[],
};

fn spec_sweeps(_: &RunOpts) -> Vec<SweepPlan> {
    Vec::new()
}

fn spec_render(opts: &RunOpts, _: &[SweepResults]) -> Vec<Section> {
    vec![Section::new("table1", HEADING, &run(opts.scale))]
}

/// Builds Table 1 for our synthetic traces side by side with the paper's
/// reported ratios. Counts are absolute for our traces; the calibrated
/// quantities are `%Vect` and `avg VL` (and the spill fractions used by
/// Section 7).
pub fn run(scale: Scale) -> Table {
    let mut table = Table::new([
        "Program", "#bbs", "S insts", "V insts", "V ops", "%Vect", "paper", "avg VL", "paper",
        "spill", "paper",
    ]);
    for benchmark in Benchmark::ALL {
        let program = benchmark.program(scale);
        let summary = program.summary();
        let target = benchmark.paper_row();
        let spill = stats::spill_fraction(&program);
        table.row([
            benchmark.name().to_string(),
            summary.basic_blocks.to_string(),
            summary.scalar_insts.to_string(),
            summary.vector_insts.to_string(),
            summary.vector_ops.to_string(),
            format!("{:.1}", summary.vectorization()),
            format!("{:.1}", target.vectorization),
            format!("{:.1}", summary.avg_vector_length()),
            format!("{:.1}", target.avg_vl),
            format!("{:.3}", spill),
            benchmark
                .paper_spill_fraction()
                .map_or("-".to_string(), |f| format!("{f:.3}")),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_one_row_per_program() {
        let t = run(Scale::Quick);
        assert_eq!(t.len(), Benchmark::ALL.len());
        let ascii = t.to_ascii();
        for b in Benchmark::ALL {
            assert!(ascii.contains(b.name()));
        }
    }
}
