//! Experiment drivers that regenerate every table and figure of the
//! paper's evaluation (Sections 2–7).
//!
//! Each module reproduces one artifact and returns a [`dva_metrics::Table`]
//! whose rows mirror what the paper plots; the `src/bin` binaries print
//! them. All simulation fans out through [`dva_sim_api::Sweep`], so every
//! figure parallelizes across the (machine × program × latency) grid. Run
//! with `--release` — the sweeps simulate hundreds of millions of cycles:
//!
//! ```text
//! cargo run --release -p dva-experiments --bin table1
//! cargo run --release -p dva-experiments --bin fig3 -- [--quick|--full] [--threads N]
//! cargo run --release -p dva-experiments --bin all
//! ```
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`table1`] | Table 1: basic operation counts |
//! | [`fig1`] | Figure 1: REF functional-unit state breakdown |
//! | [`fig3`] | Figure 3: IDEAL/REF/DVA execution time vs latency |
//! | [`fig4`] | Figure 4: ratio of `( , , )` cycles REF/DVA |
//! | [`fig5`] | Figure 5: DVA speedup over REF |
//! | [`fig5_adaptive`] | Figure 5 at one-cycle latency resolution, adaptively sampled |
//! | [`fig6`] | Figure 6: AVDQ busy-slot distributions |
//! | [`fig7`] | Figure 7: bypass configurations vs DVA and IDEAL |
//! | [`fig8`] | Figure 8: memory-traffic ratio BYP/DVA |
//! | [`queues`] | Section 5/6: queue-sizing sensitivity |
//! | [`membanks`] | Beyond the paper: bank-conflict stride sweep over the memory backends |
//!
//! Every module also exposes its experiment as a declarative
//! [`dva_artifact::ExperimentSpec`] (`SPEC`), collected in
//! [`registry::REGISTRY`]. The binaries are thin wrappers over
//! [`cli::run_spec`] / [`cli::run_all`], which execute specs through one
//! cache-backed [`dva_artifact::Runner`], emit versioned artifacts
//! (`--json` / `--csv`) and byte-check them against `artifacts/golden/`
//! (`--golden-check`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod cli;
pub mod common;
pub mod fig1;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig5_adaptive;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod membanks;
pub mod queues;
pub mod registry;
pub mod table1;

pub use common::{latencies, latency_sweep, parse_args, scale_from_args, RunOpts, SweepOpts};
pub use dva_artifact::{Artifact, ExperimentSpec, Invariant, RunError, Runner};
pub use dva_sim_api::{Machine, SimResult, Sweep, SweepPoint, SweepResults};
pub use dva_workloads::{Benchmark, Scale};
pub use registry::{find, REGISTRY};
