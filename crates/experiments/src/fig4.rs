//! Figure 4: ratio of cycles spent in the all-idle `( , , )` state between
//! the reference and the decoupled architecture.

use crate::common::{latencies, latency_sweep, RunOpts};
use dva_artifact::{ExperimentSpec, Invariant, Section};
use dva_metrics::Table;
use dva_sim_api::SweepResults;
use dva_workloads::Benchmark;

/// The heading the standalone binary prints.
pub const HEADING: &str = "Figure 4: ratio of cycles in state ( , , ), REF over DVA";

/// Figure 4 as a declarative spec (same sweep as Figures 3 and 5).
pub const SPEC: ExperimentSpec = ExperimentSpec {
    name: "fig4",
    description: "Figure 4: ratio of ( , , ) cycles REF/DVA",
    all_header: Some("== Figure 4: ( , , ) cycle ratio REF/DVA =="),
    sweeps: crate::fig3::spec_sweeps,
    render: spec_render,
    invariants: &Invariant::ideal_dva_ref(0.10),
};

fn spec_render(_: &RunOpts, results: &[SweepResults]) -> Vec<Section> {
    vec![Section::new("fig4", HEADING, &render(&results[0]))]
}

/// Builds the Figure 4 series: per program and latency, the REF/DVA ratio
/// of all-idle cycles (the paper observes up to 5:1 for ARC2D).
pub fn run(opts: RunOpts) -> Table {
    render(&latency_sweep(opts, &latencies(opts.full)))
}

/// REF-over-DVA idle-cycle ratio at one grid point.
pub fn idle_ratio(sweep: &SweepResults, benchmark: Benchmark, latency: u64) -> f64 {
    let idle = |label: &str| {
        sweep
            .get(label, benchmark, latency)
            .expect("grid point")
            .result
            .idle_cycles()
    };
    let dva = idle("DVA");
    if dva == 0 {
        0.0
    } else {
        idle("REF") as f64 / dva as f64
    }
}

/// Renders a precomputed sweep.
pub fn render(sweep: &SweepResults) -> Table {
    let mut table = Table::new(["Program", "L", "REF idle", "DVA idle", "ratio"]);
    for benchmark in Benchmark::ALL {
        for latency in sweep.latencies() {
            let idle = |label: &str| {
                sweep
                    .get(label, benchmark, latency)
                    .expect("grid point")
                    .result
                    .idle_cycles()
            };
            table.row([
                benchmark.name().to_string(),
                latency.to_string(),
                idle("REF").to_string(),
                idle("DVA").to_string(),
                format!("{:.2}", idle_ratio(sweep, benchmark, latency)),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decoupling_reduces_idle_cycles() {
        let sweep = latency_sweep(RunOpts::quick(), &[30]);
        // At moderate latency every program should stall less on the DVA;
        // require a clear reduction for most.
        let reduced = Benchmark::ALL
            .into_iter()
            .filter(|&b| idle_ratio(&sweep, b, 30) > 1.0)
            .count();
        assert!(reduced >= 4, "only {reduced} programs reduced idle cycles");
    }
}
