//! Figure 4: ratio of cycles spent in the all-idle `( , , )` state between
//! the reference and the decoupled architecture.

use crate::common::{latencies, LatencySweep};
use dva_metrics::Table;
use dva_workloads::{Benchmark, Scale};

/// Builds the Figure 4 series: per program and latency, the REF/DVA ratio
/// of all-idle cycles (the paper observes up to 5:1 for ARC2D).
pub fn run(scale: Scale, full: bool) -> Table {
    render(&LatencySweep::run(scale, &latencies(full)))
}

/// Renders a precomputed sweep.
pub fn render(sweep: &LatencySweep) -> Table {
    let mut table = Table::new(["Program", "L", "REF idle", "DVA idle", "ratio"]);
    for benchmark in Benchmark::ALL {
        for point in sweep.of(benchmark) {
            table.row([
                benchmark.name().to_string(),
                point.latency.to_string(),
                point.reference.idle_cycles().to_string(),
                point.dva.idle_cycles().to_string(),
                format!("{:.2}", point.idle_ratio()),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decoupling_reduces_idle_cycles() {
        let sweep = LatencySweep::run(Scale::Quick, &[30]);
        // At moderate latency every program should stall less on the DVA;
        // require a clear reduction for most.
        let reduced = Benchmark::ALL
            .into_iter()
            .filter(|b| {
                let p = sweep.of(*b).next().unwrap();
                p.idle_ratio() > 1.0
            })
            .count();
        assert!(reduced >= 4, "only {reduced} programs reduced idle cycles");
    }
}
