//! Figure 5: speedup of the decoupled architecture over the reference
//! architecture, per memory latency.

use crate::common::{latencies, latency_sweep, RunOpts};
use dva_artifact::{ExperimentSpec, Invariant, Section};
use dva_metrics::Table;
use dva_sim_api::SweepResults;
use dva_workloads::Benchmark;

/// The heading the standalone binary prints (two lines).
pub const HEADING: &str = "Figure 5: speedup of the DVA over the reference architecture\n\
                           (paper at L=100: 1.35 ARC2D .. 2.05 SPEC77, DYFESM ~1.0)";

/// Figure 5 as a declarative spec (same sweep as Figures 3 and 4).
pub const SPEC: ExperimentSpec = ExperimentSpec {
    name: "fig5",
    description: "Figure 5: DVA speedup over REF",
    all_header: Some("== Figure 5: DVA speedup over REF =="),
    sweeps: crate::fig3::spec_sweeps,
    render: spec_render,
    invariants: &Invariant::ideal_dva_ref(0.10),
};

fn spec_render(_: &RunOpts, results: &[SweepResults]) -> Vec<Section> {
    vec![Section::new("fig5", HEADING, &render(&results[0]))]
}

/// Builds the Figure 5 series (paper: speedups at latency 100 range from
/// 1.35 for ARC2D to 2.05 for SPEC77; DYFESM stays at ~1.0).
pub fn run(opts: RunOpts) -> Table {
    render(&latency_sweep(opts, &latencies(opts.full)))
}

/// DVA-over-REF speedup at one grid point.
pub fn speedup(sweep: &SweepResults, benchmark: Benchmark, latency: u64) -> f64 {
    dva_metrics::speedup(
        sweep.cycles("REF", benchmark, latency).expect("grid point"),
        sweep.cycles("DVA", benchmark, latency).expect("grid point"),
    )
}

/// Renders a precomputed sweep: one row per latency, one column per
/// program, exactly like the paper's plot.
pub fn render(sweep: &SweepResults) -> Table {
    let mut headers = vec!["L".to_string()];
    headers.extend(Benchmark::ALL.iter().map(|b| b.name().to_string()));
    let mut table = Table::new(headers);
    for latency in sweep.latencies() {
        let mut row = vec![latency.to_string()];
        for benchmark in Benchmark::ALL {
            row.push(format!("{:.2}", speedup(sweep, benchmark, latency)));
        }
        table.row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_ordering_matches_the_paper_at_high_latency() {
        let sweep = latency_sweep(RunOpts::quick(), &[100]);
        let sp = |b: Benchmark| speedup(&sweep, b, 100);
        // SPEC77 and TRFD lead; DYFESM trails near 1.0 (paper Section 5).
        assert!(sp(Benchmark::Spec77) > sp(Benchmark::Dyfesm));
        assert!(sp(Benchmark::Trfd) > sp(Benchmark::Dyfesm));
        assert!(sp(Benchmark::Dyfesm) < 1.25);
        for b in Benchmark::ALL {
            assert!(sp(b) > 0.9, "{} collapsed: {}", b.name(), sp(b));
        }
    }

    #[test]
    fn table_has_one_row_per_latency() {
        let t = run(RunOpts::quick());
        assert_eq!(t.len(), latencies(false).len());
    }
}
