//! Figure 5: speedup of the decoupled architecture over the reference
//! architecture, per memory latency.

use crate::common::{latencies, LatencySweep};
use dva_metrics::Table;
use dva_workloads::{Benchmark, Scale};

/// Builds the Figure 5 series (paper: speedups at latency 100 range from
/// 1.35 for ARC2D to 2.05 for SPEC77; DYFESM stays at ~1.0).
pub fn run(scale: Scale, full: bool) -> Table {
    render(&LatencySweep::run(scale, &latencies(full)))
}

/// Renders a precomputed sweep: one row per latency, one column per
/// program, exactly like the paper's plot.
pub fn render(sweep: &LatencySweep) -> Table {
    let mut headers = vec!["L".to_string()];
    headers.extend(Benchmark::ALL.iter().map(|b| b.name().to_string()));
    let mut table = Table::new(headers);
    let lats: Vec<u64> = {
        let mut seen = Vec::new();
        for p in &sweep.points {
            if !seen.contains(&p.latency) {
                seen.push(p.latency);
            }
        }
        seen
    };
    for latency in lats {
        let mut row = vec![latency.to_string()];
        for benchmark in Benchmark::ALL {
            let point = sweep
                .of(benchmark)
                .find(|p| p.latency == latency)
                .expect("sweep covers the grid");
            row.push(format!("{:.2}", point.speedup()));
        }
        table.row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_ordering_matches_the_paper_at_high_latency() {
        let sweep = LatencySweep::run(Scale::Quick, &[100]);
        let sp = |b: Benchmark| sweep.of(b).next().unwrap().speedup();
        // SPEC77 and TRFD lead; DYFESM trails near 1.0 (paper Section 5).
        assert!(sp(Benchmark::Spec77) > sp(Benchmark::Dyfesm));
        assert!(sp(Benchmark::Trfd) > sp(Benchmark::Dyfesm));
        assert!(sp(Benchmark::Dyfesm) < 1.25);
        for b in Benchmark::ALL {
            assert!(sp(b) > 0.9, "{} collapsed: {}", b.name(), sp(b));
        }
    }

    #[test]
    fn table_has_one_row_per_latency() {
        let t = run(Scale::Quick, false);
        assert_eq!(t.len(), latencies(false).len());
    }
}
