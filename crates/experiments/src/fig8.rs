//! Figure 8: ratio of total memory traffic between the DVA 256/16 and the
//! BYP 256/16 configurations.

use crate::common::{RunOpts, SweepOpts};
use dva_artifact::{ExperimentSpec, Section, SweepPlan};
use dva_metrics::Table;
use dva_sim_api::{Machine, Sweep, SweepResults};
use dva_workloads::Benchmark;

/// The latency Figure 8 is evaluated at (traffic is nearly latency
/// independent; the paper plots a single bar per program).
pub const LATENCY: u64 = 1;

/// The heading the standalone binary prints (two lines).
pub const HEADING: &str = "Figure 8: total memory traffic, DVA 256/16 vs BYP 256/16\n\
                           (paper: >30% reduction for DYFESM/TRFD, ~10% for BDNA/FLO52)";

/// Figure 8 as a declarative spec: one DVA-vs-BYP traffic sweep.
pub const SPEC: ExperimentSpec = ExperimentSpec {
    name: "fig8",
    description: "Figure 8: memory-traffic ratio BYP/DVA",
    all_header: Some("== Figure 8: memory traffic ratio =="),
    sweeps: spec_sweeps,
    render: spec_render,
    invariants: &[],
};

fn spec_sweeps(opts: &RunOpts) -> Vec<SweepPlan> {
    vec![sweep_cfg(opts).into()]
}

fn sweep_cfg(opts: &RunOpts) -> Sweep {
    opts.sweep()
        .machines([Machine::dva(1), Machine::byp(1, 256, 16)])
        .benchmarks(Benchmark::ALL)
        .latencies([LATENCY])
}

fn spec_render(_: &RunOpts, results: &[SweepResults]) -> Vec<Section> {
    vec![Section::new("fig8", HEADING, &render(&results[0]))]
}

/// Builds the Figure 8 bars: memory words moved with and without bypass
/// and their ratio (the paper reports >30% reduction for DYFESM and TRFD,
/// ~10% for BDNA and FLO52).
pub fn run(opts: RunOpts) -> Table {
    render(&sweep_cfg(&opts).run())
}

/// Renders a precomputed traffic sweep into the Figure 8 table.
pub fn render(sweep: &SweepResults) -> Table {
    let mut table = Table::new([
        "Program",
        "DVA words",
        "BYP words",
        "bypassed",
        "ratio",
        "reduction %",
    ]);
    for benchmark in Benchmark::ALL {
        let traffic = |label: &str| {
            sweep
                .get(label, benchmark, LATENCY)
                .expect("grid point")
                .result
                .traffic
        };
        let (dva, byp) = (traffic("DVA"), traffic("BYP 256/16"));
        let ratio = byp.ratio_to(&dva);
        table.row([
            benchmark.name().to_string(),
            dva.memory_elems().to_string(),
            byp.memory_elems().to_string(),
            byp.bypassed_elems.to_string(),
            format!("{ratio:.3}"),
            format!("{:.1}", 100.0 * (1.0 - ratio)),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use dva_workloads::Scale;

    #[test]
    fn bypass_reduces_traffic_for_reuse_heavy_programs() {
        for benchmark in [Benchmark::Trfd, Benchmark::Bdna, Benchmark::Dyfesm] {
            let program = benchmark.program(Scale::Quick);
            let dva = Machine::dva(1).simulate(&program);
            let byp = Machine::byp(1, 256, 16).simulate(&program);
            assert!(
                byp.traffic.memory_elems() < dva.traffic.memory_elems(),
                "{}: no traffic reduction",
                benchmark.name()
            );
        }
    }

    #[test]
    fn total_requests_are_preserved() {
        // Bypassing changes where loads are served, not how many words
        // the program asks for.
        let program = Benchmark::Trfd.program(Scale::Quick);
        let dva = Machine::dva(1).simulate(&program);
        let byp = Machine::byp(1, 256, 16).simulate(&program);
        assert_eq!(
            dva.traffic.total_request_elems(),
            byp.traffic.total_request_elems()
        );
    }
}
