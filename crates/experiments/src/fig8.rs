//! Figure 8: ratio of total memory traffic between the DVA 256/16 and the
//! BYP 256/16 configurations.

use dva_core::{DvaConfig, DvaSim};
use dva_metrics::Table;
use dva_workloads::{Benchmark, Scale};

/// The latency Figure 8 is evaluated at (traffic is nearly latency
/// independent; the paper plots a single bar per program).
pub const LATENCY: u64 = 1;

/// Builds the Figure 8 bars: memory words moved with and without bypass
/// and their ratio (the paper reports >30% reduction for DYFESM and TRFD,
/// ~10% for BDNA and FLO52).
pub fn run(scale: Scale) -> Table {
    let mut table = Table::new([
        "Program",
        "DVA words",
        "BYP words",
        "bypassed",
        "ratio",
        "reduction %",
    ]);
    for benchmark in Benchmark::ALL {
        let program = benchmark.program(scale);
        let dva = DvaSim::new(DvaConfig::dva(LATENCY)).run(&program);
        let byp = DvaSim::new(DvaConfig::byp(LATENCY, 256, 16)).run(&program);
        let ratio = byp.traffic.ratio_to(&dva.traffic);
        table.row([
            benchmark.name().to_string(),
            dva.traffic.memory_elems().to_string(),
            byp.traffic.memory_elems().to_string(),
            byp.traffic.bypassed_elems.to_string(),
            format!("{ratio:.3}"),
            format!("{:.1}", 100.0 * (1.0 - ratio)),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bypass_reduces_traffic_for_reuse_heavy_programs() {
        for benchmark in [Benchmark::Trfd, Benchmark::Bdna, Benchmark::Dyfesm] {
            let program = benchmark.program(Scale::Quick);
            let dva = DvaSim::new(DvaConfig::dva(1)).run(&program);
            let byp = DvaSim::new(DvaConfig::byp(1, 256, 16)).run(&program);
            assert!(
                byp.traffic.memory_elems() < dva.traffic.memory_elems(),
                "{}: no traffic reduction",
                benchmark.name()
            );
        }
    }

    #[test]
    fn total_requests_are_preserved() {
        // Bypassing changes where loads are served, not how many words
        // the program asks for.
        let program = Benchmark::Trfd.program(Scale::Quick);
        let dva = DvaSim::new(DvaConfig::dva(1)).run(&program);
        let byp = DvaSim::new(DvaConfig::byp(1, 256, 16)).run(&program);
        assert_eq!(
            dva.traffic.total_request_elems(),
            byp.traffic.total_request_elems()
        );
    }
}
