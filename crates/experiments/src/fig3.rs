//! Figure 3: execution time versus memory latency for the IDEAL bound,
//! the reference architecture and the decoupled architecture.

use crate::common::{ideal_of, kcycles, latencies, latency_sweep, RunOpts};
use dva_metrics::Table;
use dva_sim_api::SweepResults;
use dva_workloads::Benchmark;

/// Builds the Figure 3 series: per program, one row per latency with
/// IDEAL/REF/DVA cycle counts (in thousands).
pub fn run(opts: RunOpts) -> Table {
    render(&latency_sweep(opts, &latencies(opts.full)))
}

/// Renders a precomputed sweep (lets the `all` binary reuse one sweep for
/// Figures 3, 4 and 5).
pub fn render(sweep: &SweepResults) -> Table {
    let mut table = Table::new(["Program", "L", "IDEAL (kcyc)", "REF (kcyc)", "DVA (kcyc)"]);
    for benchmark in Benchmark::ALL {
        let ideal = ideal_of(sweep, benchmark);
        for latency in sweep.latencies() {
            table.row([
                benchmark.name().to_string(),
                latency.to_string(),
                kcycles(ideal),
                kcycles(sweep.cycles("REF", benchmark, latency).expect("grid point")),
                kcycles(sweep.cycles("DVA", benchmark, latency).expect("grid point")),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dva_curves_are_flatter_than_ref() {
        // The paper's second headline: the slopes differ substantially.
        let sweep = latency_sweep(RunOpts::quick(), &[1, 100]);
        for benchmark in Benchmark::ALL {
            let growth = |label: &str| {
                sweep.cycles(label, benchmark, 100).unwrap() as f64
                    / sweep.cycles(label, benchmark, 1).unwrap() as f64
            };
            let (ref_growth, dva_growth) = (growth("REF"), growth("DVA"));
            assert!(
                dva_growth < ref_growth,
                "{}: DVA slope {dva_growth:.2} not flatter than REF {ref_growth:.2}",
                benchmark.name()
            );
        }
    }

    #[test]
    fn table_shape_is_programs_by_latencies() {
        let t = run(RunOpts::quick());
        assert_eq!(t.len(), Benchmark::ALL.len() * latencies(false).len());
    }
}
