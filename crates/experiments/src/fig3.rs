//! Figure 3: execution time versus memory latency for the IDEAL bound,
//! the reference architecture and the decoupled architecture.

use crate::common::{kcycles, latencies, LatencySweep};
use dva_metrics::Table;
use dva_workloads::{Benchmark, Scale};

/// Builds the Figure 3 series: per program, one row per latency with
/// IDEAL/REF/DVA cycle counts (in thousands).
pub fn run(scale: Scale, full: bool) -> Table {
    render(&LatencySweep::run(scale, &latencies(full)))
}

/// Renders a precomputed sweep (lets the `all` binary reuse one sweep for
/// Figures 3, 4 and 5).
pub fn render(sweep: &LatencySweep) -> Table {
    let mut table = Table::new(["Program", "L", "IDEAL (kcyc)", "REF (kcyc)", "DVA (kcyc)"]);
    for benchmark in Benchmark::ALL {
        let ideal = sweep.ideal_of(benchmark);
        for point in sweep.of(benchmark) {
            table.row([
                benchmark.name().to_string(),
                point.latency.to_string(),
                kcycles(ideal),
                kcycles(point.reference.cycles),
                kcycles(point.dva.cycles),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::SweepPoint;

    #[test]
    fn dva_curves_are_flatter_than_ref() {
        // The paper's second headline: the slopes differ substantially.
        let sweep = LatencySweep::run(Scale::Quick, &[1, 100]);
        for benchmark in Benchmark::ALL {
            let pts: Vec<&SweepPoint> = sweep.of(benchmark).collect();
            let ref_growth = pts[1].reference.cycles as f64 / pts[0].reference.cycles as f64;
            let dva_growth = pts[1].dva.cycles as f64 / pts[0].dva.cycles as f64;
            assert!(
                dva_growth < ref_growth,
                "{}: DVA slope {dva_growth:.2} not flatter than REF {ref_growth:.2}",
                benchmark.name()
            );
        }
    }

    #[test]
    fn table_shape_is_programs_by_latencies() {
        let t = run(Scale::Quick, false);
        assert_eq!(t.len(), Benchmark::ALL.len() * latencies(false).len());
    }
}
