//! Figure 3: execution time versus memory latency for the IDEAL bound,
//! the reference architecture and the decoupled architecture.

use crate::common::{ideal_of, kcycles, latencies, latency_sweep, latency_sweep_cfg, RunOpts};
use dva_artifact::{ExperimentSpec, Invariant, Section, SweepPlan};
use dva_metrics::Table;
use dva_sim_api::SweepResults;
use dva_workloads::Benchmark;

/// The heading the standalone binary prints.
pub const HEADING: &str = "Figure 3: execution time vs memory latency (kcycles)";

/// Figure 3 as a declarative spec. Figures 3, 4 and 5 declare the same
/// REF/DVA/IDEAL sweep, so under one runner the grid simulates once.
pub const SPEC: ExperimentSpec = ExperimentSpec {
    name: "fig3",
    description: "Figure 3: IDEAL/REF/DVA execution time vs latency",
    all_header: Some("== Figure 3: execution time vs latency (kcycles) =="),
    sweeps: spec_sweeps,
    render: spec_render,
    invariants: &Invariant::ideal_dva_ref(0.10),
};

pub(crate) fn spec_sweeps(opts: &RunOpts) -> Vec<SweepPlan> {
    vec![latency_sweep_cfg(*opts, &latencies(opts.full)).into()]
}

fn spec_render(_: &RunOpts, results: &[SweepResults]) -> Vec<Section> {
    vec![Section::new("fig3", HEADING, &render(&results[0]))]
}

/// Builds the Figure 3 series: per program, one row per latency with
/// IDEAL/REF/DVA cycle counts (in thousands).
pub fn run(opts: RunOpts) -> Table {
    render(&latency_sweep(opts, &latencies(opts.full)))
}

/// Renders a precomputed sweep (lets the `all` binary reuse one sweep for
/// Figures 3, 4 and 5).
pub fn render(sweep: &SweepResults) -> Table {
    let mut table = Table::new(["Program", "L", "IDEAL (kcyc)", "REF (kcyc)", "DVA (kcyc)"]);
    for benchmark in Benchmark::ALL {
        let ideal = ideal_of(sweep, benchmark);
        for latency in sweep.latencies() {
            table.row([
                benchmark.name().to_string(),
                latency.to_string(),
                kcycles(ideal),
                kcycles(sweep.cycles("REF", benchmark, latency).expect("grid point")),
                kcycles(sweep.cycles("DVA", benchmark, latency).expect("grid point")),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dva_curves_are_flatter_than_ref() {
        // The paper's second headline: the slopes differ substantially.
        let sweep = latency_sweep(RunOpts::quick(), &[1, 100]);
        for benchmark in Benchmark::ALL {
            let growth = |label: &str| {
                sweep.cycles(label, benchmark, 100).unwrap() as f64
                    / sweep.cycles(label, benchmark, 1).unwrap() as f64
            };
            let (ref_growth, dva_growth) = (growth("REF"), growth("DVA"));
            assert!(
                dva_growth < ref_growth,
                "{}: DVA slope {dva_growth:.2} not flatter than REF {ref_growth:.2}",
                benchmark.name()
            );
        }
    }

    #[test]
    fn table_shape_is_programs_by_latencies() {
        let t = run(RunOpts::quick());
        assert_eq!(t.len(), Benchmark::ALL.len() * latencies(false).len());
    }
}
