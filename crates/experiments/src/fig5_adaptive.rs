//! Figure 5 at high resolution: DVA-over-REF speedup on a 100-point
//! latency axis, measured adaptively.
//!
//! The dense version of this grid — five machines × six benchmarks ×
//! every integer latency from 1 to 100 — is 3000 simulations, most of
//! them spent on the flat tails of the curves. The adaptive session
//! seeds each curve with [`SEEDS`] evenly spaced latencies, bisects only
//! where the curve actually bends (within [`TOLERANCE`]), and
//! dominance-prunes bypass configurations that a partial curve already
//! shows losing to the base DVA everywhere. Skipped latencies are
//! recovered by linear interpolation, exact to within the refinement
//! tolerance by construction; every *measured* point is byte-identical
//! to the dense run's (same grid spec, same cache key).

use crate::common::{RunOpts, SweepOpts};
use dva_artifact::{ExperimentSpec, Invariant, Section, SweepPlan};
use dva_metrics::Table;
use dva_sim_api::{knee_latency, AdaptiveSweep, Machine, MemoryModelKind, SweepResults};
use dva_workloads::Benchmark;

/// The dense latency axis: every integer latency of the paper's x range.
pub const AXIS: std::ops::RangeInclusive<u64> = 1..=100;

/// Seed samples per curve before any refinement.
pub const SEEDS: usize = 7;

/// Refinement tolerance: a sampled point may deviate from its
/// neighbours' chord by 2% of its own cycle count before the flanking
/// intervals are bisected.
pub const TOLERANCE: f64 = 0.02;

/// The heading the standalone binary prints (two lines).
pub const HEADING: &str =
    "Figure 5 (adaptive): DVA speedup over REF at one-cycle latency resolution\n\
     (unsampled latencies linearly interpolated; see the sampling section)";

/// The heading of the knee table.
pub const KNEE_HEADING: &str =
    "Curve knees: the latency of the largest slope change per machine and program";

/// High-resolution Figure 5 as a declarative spec, measured adaptively.
/// IDEAL bounds the DVA but not the bypass machines (bypassing removes
/// traffic outright and can dip below the latency-idealized bound), so
/// the lineup pins `IDEAL ≤ DVA` and `BYP 256/16 ≤ DVA` instead of the
/// blanket ideal bound.
pub const SPEC: ExperimentSpec = ExperimentSpec {
    name: "fig5_adaptive",
    description: "Figure 5 at 100-latency resolution via adaptive sampling",
    all_header: None,
    sweeps: spec_sweeps,
    render: spec_render,
    invariants: &[
        Invariant::CyclesOrdered {
            lower: "IDEAL",
            upper: "DVA",
            tolerance: 0.0,
        },
        Invariant::CyclesOrdered {
            lower: "BYP 256/16",
            upper: "DVA",
            tolerance: 0.0,
        },
        Invariant::CyclesOrdered {
            lower: "DVA",
            upper: "REF",
            tolerance: 0.10,
        },
    ],
};

/// The adaptive session behind the spec: the Figure 5 core machines plus
/// the extreme bypass configurations, with the bypass machines (and only
/// those) eligible for dominance pruning against the base DVA.
pub fn adaptive_cfg(opts: &RunOpts) -> AdaptiveSweep {
    AdaptiveSweep::over(
        opts.sweep()
            .machines([
                Machine::reference(1),
                Machine::dva(1),
                Machine::byp(1, 4, 4),
                Machine::byp(1, 256, 16),
                Machine::ideal(),
            ])
            .benchmarks(Benchmark::ALL),
        AXIS,
    )
    .seeds(SEEDS)
    .tolerance(TOLERANCE)
    .prune_against("DVA", ["BYP 4/4", "BYP 256/16"])
}

fn spec_sweeps(opts: &RunOpts) -> Vec<SweepPlan> {
    vec![adaptive_cfg(opts).into()]
}

fn spec_render(_: &RunOpts, results: &[SweepResults]) -> Vec<Section> {
    vec![
        Section::new("fig5_adaptive", HEADING, &render(&results[0])),
        Section::new(
            "fig5_adaptive_knees",
            KNEE_HEADING,
            &render_knees(&results[0]),
        ),
    ]
}

/// DVA-over-REF speedup at one latency of an adaptively sampled sweep:
/// exact where both curves were sampled, interpolated otherwise.
pub fn speedup_at(sweep: &SweepResults, benchmark: Benchmark, latency: u64) -> f64 {
    let cycles = |label: &str| {
        sweep
            .interpolated_cycles(label, benchmark.name(), MemoryModelKind::Flat, latency)
            .expect("latency inside the sampled axis")
    };
    cycles("REF") / cycles("DVA")
}

/// Renders the speedup table: one row per latency of the full dense
/// axis, one column per program — the paper's plot at one-cycle
/// resolution, from a fraction of the simulations.
pub fn render(sweep: &SweepResults) -> Table {
    let mut headers = vec!["L".to_string()];
    headers.extend(Benchmark::ALL.iter().map(|b| b.name().to_string()));
    let mut table = Table::new(headers);
    for latency in AXIS {
        let mut row = vec![latency.to_string()];
        for benchmark in Benchmark::ALL {
            row.push(format!("{:.2}", speedup_at(sweep, benchmark, latency)));
        }
        table.row(row);
    }
    table
}

/// The cycles-vs-latency curve of one label as `(latency, cycles)`
/// pairs, ready for [`knee_latency`].
fn cycle_curve(sweep: &SweepResults, label: &str, benchmark: Benchmark) -> Vec<(u64, u64)> {
    sweep
        .curve(label, benchmark, MemoryModelKind::Flat)
        .into_iter()
        .map(|(latency, point)| (latency, point.result.cycles))
        .collect()
}

/// Renders the knee table: per program, where each machine's curve bends
/// hardest ("-" for curves with fewer than three samples — IDEAL is flat
/// and never refines past its seeds, but a seed grid still has knees in
/// the numerical-noise sense, so only genuinely degenerate curves miss).
pub fn render_knees(sweep: &SweepResults) -> Table {
    let labels = ["REF", "DVA", "BYP 4/4", "BYP 256/16"];
    let mut headers = vec!["Program".to_string()];
    headers.extend(labels.iter().map(|l| format!("{l} knee")));
    let mut table = Table::new(headers);
    for benchmark in Benchmark::ALL {
        let mut row = vec![benchmark.name().to_string()];
        for label in labels {
            row.push(
                knee_latency(&cycle_curve(sweep, label, benchmark))
                    .map_or_else(|| "-".to_string(), |l| l.to_string()),
            );
        }
        table.row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The PR's acceptance criterion, end to end on the quick grid: the
    /// adaptive session simulates at most 40% of the 3000-point dense
    /// grid, every emitted point is byte-identical to the dense run's,
    /// and every knee lands within one local sample gap of the dense
    /// curve's knee.
    #[test]
    fn adaptive_figure_meets_the_acceptance_criteria() {
        let opts = RunOpts {
            threads: 0,
            ..RunOpts::quick()
        };
        let adaptive = adaptive_cfg(&opts);
        let outcome = adaptive.run();
        let report = &outcome.report;
        assert_eq!(
            report.dense_points, 3000,
            "5 machines × 6 programs × 100 latencies"
        );
        assert!(
            report.sampled_fraction() <= 0.40,
            "adaptive run must simulate ≤ 40% of the dense grid, got {:.1}% ({} of {})",
            100.0 * report.sampled_fraction(),
            report.sampled_points,
            report.dense_points
        );

        let dense = adaptive.dense().run();
        // Byte identity: every sampled point equals the dense point with
        // the same (label, program, latency) coordinate.
        for point in &outcome.results.points {
            let reference = dense
                .named(&point.label, &point.program, point.latency)
                .expect("dense grid covers every sampled coordinate");
            assert_eq!(point, reference);
            assert_eq!(format!("{point:?}"), format!("{reference:?}"));
        }

        // Knee fidelity: for every curve the session actually refined,
        // the adaptive knee is within one local sample gap of the dense
        // knee. Curves that converged on their seeds alone are linear
        // within tolerance — their dense "knee" is integer-rounding
        // noise and carries no information at this tolerance.
        for curve in report
            .curves
            .iter()
            .filter(|c| c.pruned_round.is_none() && c.sampled > SEEDS)
        {
            let benchmark = Benchmark::ALL
                .into_iter()
                .find(|b| b.name() == curve.program)
                .expect("benchmark program");
            let sparse = cycle_curve(&outcome.results, &curve.label, benchmark);
            let full = cycle_curve(&dense, &curve.label, benchmark);
            let (Some(adaptive_knee), Some(dense_knee)) =
                (knee_latency(&sparse), knee_latency(&full))
            else {
                continue;
            };
            let gap = sparse
                .windows(2)
                .filter(|w| w[0].0 <= adaptive_knee && adaptive_knee <= w[1].0)
                .map(|w| w[1].0 - w[0].0)
                .max()
                .unwrap_or(1);
            assert!(
                adaptive_knee.abs_diff(dense_knee) <= gap,
                "{} {}: adaptive knee {} vs dense knee {} (local gap {})",
                curve.label,
                curve.program,
                adaptive_knee,
                dense_knee,
                gap
            );
        }

        // Pruning only ever fires on the declared bypass candidates.
        for curve in report.pruned() {
            assert!(
                curve.label.starts_with("BYP"),
                "only bypass machines are prunable, pruned {}",
                curve.label
            );
        }
    }

    #[test]
    fn interpolated_speedups_cover_the_whole_axis() {
        let outcome = adaptive_cfg(&RunOpts::quick()).run();
        for latency in AXIS {
            for benchmark in Benchmark::ALL {
                let s = speedup_at(&outcome.results, benchmark, latency);
                assert!(s.is_finite() && s > 0.5, "{benchmark:?} L={latency}: {s}");
            }
        }
        // The rendered table has one row per dense latency even though
        // only a fraction were measured.
        assert_eq!(render(&outcome.results).len(), 100);
    }
}
