//! Figure 7: performance of the bypassing scheme — `BYP load/store`
//! configurations against the base DVA and the IDEAL bound.

use crate::common::{kcycles, latencies};
use dva_core::{ideal_bound, DvaConfig, DvaSim};
use dva_metrics::Table;
use dva_workloads::{Benchmark, Scale};

/// The `(load queue, store queue)` configurations of the paper's Figure 7.
pub const BYP_CONFIGS: [(usize, usize); 4] = [(4, 4), (4, 8), (4, 16), (256, 16)];

/// Builds the Figure 7 series: per program and latency, cycles (in
/// thousands) for DVA, each bypass configuration, and the IDEAL bound.
pub fn run(scale: Scale, full: bool) -> Table {
    let mut table = Table::new([
        "Program", "L", "DVA", "BYP 4/4", "BYP 4/8", "BYP 4/16", "BYP 256/16", "IDEAL",
    ]);
    for benchmark in Benchmark::ALL {
        let program = benchmark.program(scale);
        let ideal = ideal_bound(&program).cycles();
        for latency in latencies(full) {
            let dva = DvaSim::new(DvaConfig::dva(latency)).run(&program);
            let mut row = vec![
                benchmark.name().to_string(),
                latency.to_string(),
                kcycles(dva.cycles),
            ];
            for (load_q, store_q) in BYP_CONFIGS {
                let byp = DvaSim::new(DvaConfig::byp(latency, load_q, store_q)).run(&program);
                row.push(kcycles(byp.cycles));
            }
            row.push(kcycles(ideal));
            table.row(row);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bypass_never_slows_the_full_queue_configuration() {
        // BYP 256/16 has the DVA's queues plus the bypass unit: it should
        // match or beat the DVA everywhere.
        for benchmark in [Benchmark::Trfd, Benchmark::Dyfesm, Benchmark::Bdna] {
            let program = benchmark.program(Scale::Quick);
            let dva = DvaSim::new(DvaConfig::dva(1)).run(&program);
            let byp = DvaSim::new(DvaConfig::byp(1, 256, 16)).run(&program);
            assert!(
                byp.cycles <= dva.cycles,
                "{}: BYP 256/16 {} slower than DVA {}",
                benchmark.name(),
                byp.cycles,
                dva.cycles
            );
        }
    }

    #[test]
    fn store_queue_of_eight_captures_most_of_sixteen() {
        // Paper Section 7: eight slots reach >95% of the 16-slot
        // performance for most programs.
        let program = Benchmark::Trfd.program(Scale::Quick);
        let byp8 = DvaSim::new(DvaConfig::byp(1, 4, 8)).run(&program);
        let byp16 = DvaSim::new(DvaConfig::byp(1, 4, 16)).run(&program);
        let gap = byp8.cycles as f64 / byp16.cycles as f64;
        assert!(gap < 1.10, "4/8 is {gap:.3}x of 4/16");
    }

    #[test]
    fn deep_load_queue_matters_for_spec77() {
        // SPEC77 makes heavy use of the load queue slots: shrinking the
        // AVDQ to 4 costs it performance (the paper's special case).
        let program = Benchmark::Spec77.program(Scale::Quick);
        let byp4 = DvaSim::new(DvaConfig::byp(30, 4, 16)).run(&program);
        let byp256 = DvaSim::new(DvaConfig::byp(30, 256, 16)).run(&program);
        assert!(byp4.cycles >= byp256.cycles);
    }
}
