//! Figure 7: performance of the bypassing scheme — `BYP load/store`
//! configurations against the base DVA and the IDEAL bound.

use crate::common::{kcycles, latencies, RunOpts, SweepOpts};
use dva_artifact::{ExperimentSpec, Invariant, Section, SweepPlan};
use dva_metrics::Table;
use dva_sim_api::{Machine, Sweep, SweepResults};
use dva_workloads::Benchmark;

/// The `(load queue, store queue)` configurations of the paper's Figure 7.
pub const BYP_CONFIGS: [(usize, usize); 4] = [(4, 4), (4, 8), (4, 16), (256, 16)];

/// The heading the standalone binary prints.
pub const HEADING: &str = "Figure 7: performance of the bypassing scheme (kcycles)";

/// Figure 7 as a declarative spec. The full-queue bypass configuration
/// has the DVA's queues plus the bypass unit, so it may never lose to
/// the DVA. IDEAL bounds the DVA but *not* the bypass machines: IDEAL
/// idealizes latency, while bypassing removes memory traffic outright
/// and can dip below that bound (FLO52 does, at latency 1).
pub const SPEC: ExperimentSpec = ExperimentSpec {
    name: "fig7",
    description: "Figure 7: bypass configurations vs DVA and IDEAL",
    all_header: Some("== Figure 7: bypassing performance (kcycles) =="),
    sweeps: spec_sweeps,
    render: spec_render,
    invariants: &[
        Invariant::CyclesOrdered {
            lower: "IDEAL",
            upper: "DVA",
            tolerance: 0.0,
        },
        Invariant::CyclesOrdered {
            lower: "BYP 256/16",
            upper: "DVA",
            tolerance: 0.0,
        },
    ],
};

fn spec_sweeps(opts: &RunOpts) -> Vec<SweepPlan> {
    vec![sweep_cfg(opts).into()]
}

fn sweep_cfg(opts: &RunOpts) -> Sweep {
    opts.sweep()
        .machines(machines())
        .benchmarks(Benchmark::ALL)
        .latencies(latencies(opts.full))
}

fn spec_render(_: &RunOpts, results: &[SweepResults]) -> Vec<Section> {
    vec![Section::new("fig7", HEADING, &render(&results[0]))]
}

/// The machine line-up of Figure 7: DVA, the bypass configurations, and
/// the IDEAL bound.
pub fn machines() -> Vec<Machine> {
    let mut machines = vec![Machine::dva(1)];
    machines.extend(
        BYP_CONFIGS
            .iter()
            .map(|&(load_q, store_q)| Machine::byp(1, load_q, store_q)),
    );
    machines.push(Machine::ideal());
    machines
}

/// Builds the Figure 7 series: per program and latency, cycles (in
/// thousands) for DVA, each bypass configuration, and the IDEAL bound.
pub fn run(opts: RunOpts) -> Table {
    render(&sweep_cfg(&opts).run())
}

/// Renders a precomputed bypass sweep into the Figure 7 table.
pub fn render(sweep: &SweepResults) -> Table {
    let machine_list = machines();
    let mut headers = vec!["Program".to_string(), "L".to_string()];
    headers.extend(machine_list.iter().map(|m| m.label()));
    let mut table = Table::new(headers);
    for benchmark in Benchmark::ALL {
        for latency in sweep.latencies() {
            let mut row = vec![benchmark.name().to_string(), latency.to_string()];
            for machine in &machine_list {
                let cycles = sweep
                    .cycles(&machine.label(), benchmark, latency)
                    .expect("grid point");
                row.push(kcycles(cycles));
            }
            table.row(row);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use dva_workloads::Scale;

    #[test]
    fn bypass_never_slows_the_full_queue_configuration() {
        // BYP 256/16 has the DVA's queues plus the bypass unit: it should
        // match or beat the DVA everywhere.
        for benchmark in [Benchmark::Trfd, Benchmark::Dyfesm, Benchmark::Bdna] {
            let program = benchmark.program(Scale::Quick);
            let dva = Machine::dva(1).simulate(&program);
            let byp = Machine::byp(1, 256, 16).simulate(&program);
            assert!(
                byp.cycles <= dva.cycles,
                "{}: BYP 256/16 {} slower than DVA {}",
                benchmark.name(),
                byp.cycles,
                dva.cycles
            );
        }
    }

    #[test]
    fn store_queue_of_eight_captures_most_of_sixteen() {
        // Paper Section 7: eight slots reach >95% of the 16-slot
        // performance for most programs.
        let program = Benchmark::Trfd.program(Scale::Quick);
        let byp8 = Machine::byp(1, 4, 8).simulate(&program);
        let byp16 = Machine::byp(1, 4, 16).simulate(&program);
        let gap = byp8.cycles as f64 / byp16.cycles as f64;
        assert!(gap < 1.10, "4/8 is {gap:.3}x of 4/16");
    }

    #[test]
    fn deep_load_queue_matters_for_spec77() {
        // SPEC77 makes heavy use of the load queue slots: shrinking the
        // AVDQ to 4 costs it performance (the paper's special case).
        let program = Benchmark::Spec77.program(Scale::Quick);
        let byp4 = Machine::byp(30, 4, 16).simulate(&program);
        let byp256 = Machine::byp(30, 256, 16).simulate(&program);
        assert!(byp4.cycles >= byp256.cycles);
    }

    #[test]
    fn figure_covers_all_machines() {
        let t = run(RunOpts::quick());
        assert_eq!(t.len(), Benchmark::ALL.len() * latencies(false).len());
    }
}
