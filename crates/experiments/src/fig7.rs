//! Figure 7: performance of the bypassing scheme — `BYP load/store`
//! configurations against the base DVA and the IDEAL bound.

use crate::common::{kcycles, latencies, RunOpts};
use dva_metrics::Table;
use dva_sim_api::Machine;
use dva_workloads::Benchmark;

/// The `(load queue, store queue)` configurations of the paper's Figure 7.
pub const BYP_CONFIGS: [(usize, usize); 4] = [(4, 4), (4, 8), (4, 16), (256, 16)];

/// The machine line-up of Figure 7: DVA, the bypass configurations, and
/// the IDEAL bound.
pub fn machines() -> Vec<Machine> {
    let mut machines = vec![Machine::dva(1)];
    machines.extend(
        BYP_CONFIGS
            .iter()
            .map(|&(load_q, store_q)| Machine::byp(1, load_q, store_q)),
    );
    machines.push(Machine::ideal());
    machines
}

/// Builds the Figure 7 series: per program and latency, cycles (in
/// thousands) for DVA, each bypass configuration, and the IDEAL bound.
pub fn run(opts: RunOpts) -> Table {
    let machine_list = machines();
    let mut headers = vec!["Program".to_string(), "L".to_string()];
    headers.extend(machine_list.iter().map(|m| m.label()));
    let mut table = Table::new(headers);
    let sweep = opts
        .sweep()
        .machines(machine_list.iter().copied())
        .benchmarks(Benchmark::ALL)
        .latencies(latencies(opts.full))
        .run();
    for benchmark in Benchmark::ALL {
        for latency in sweep.latencies() {
            let mut row = vec![benchmark.name().to_string(), latency.to_string()];
            for machine in &machine_list {
                let cycles = sweep
                    .cycles(&machine.label(), benchmark, latency)
                    .expect("grid point");
                row.push(kcycles(cycles));
            }
            table.row(row);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use dva_workloads::Scale;

    #[test]
    fn bypass_never_slows_the_full_queue_configuration() {
        // BYP 256/16 has the DVA's queues plus the bypass unit: it should
        // match or beat the DVA everywhere.
        for benchmark in [Benchmark::Trfd, Benchmark::Dyfesm, Benchmark::Bdna] {
            let program = benchmark.program(Scale::Quick);
            let dva = Machine::dva(1).simulate(&program);
            let byp = Machine::byp(1, 256, 16).simulate(&program);
            assert!(
                byp.cycles <= dva.cycles,
                "{}: BYP 256/16 {} slower than DVA {}",
                benchmark.name(),
                byp.cycles,
                dva.cycles
            );
        }
    }

    #[test]
    fn store_queue_of_eight_captures_most_of_sixteen() {
        // Paper Section 7: eight slots reach >95% of the 16-slot
        // performance for most programs.
        let program = Benchmark::Trfd.program(Scale::Quick);
        let byp8 = Machine::byp(1, 4, 8).simulate(&program);
        let byp16 = Machine::byp(1, 4, 16).simulate(&program);
        let gap = byp8.cycles as f64 / byp16.cycles as f64;
        assert!(gap < 1.10, "4/8 is {gap:.3}x of 4/16");
    }

    #[test]
    fn deep_load_queue_matters_for_spec77() {
        // SPEC77 makes heavy use of the load queue slots: shrinking the
        // AVDQ to 4 costs it performance (the paper's special case).
        let program = Benchmark::Spec77.program(Scale::Quick);
        let byp4 = Machine::byp(30, 4, 16).simulate(&program);
        let byp256 = Machine::byp(30, 256, 16).simulate(&program);
        assert!(byp4.cycles >= byp256.cycles);
    }

    #[test]
    fn figure_covers_all_machines() {
        let t = run(RunOpts::quick());
        assert_eq!(t.len(), Benchmark::ALL.len() * latencies(false).len());
    }
}
