//! The exit-code contract of the experiment binaries:
//!
//! | code | meaning |
//! |---|---|
//! | 0 | run (and golden check, if any) succeeded |
//! | 1 | golden mismatch |
//! | 2 | bad command line |
//!
//! `table1` exercises the shared path for all twelve binaries — it is
//! the cheapest spec (no sweeps), and every binary goes through the same
//! `dva_experiments::cli` entry.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn table1() -> Command {
    Command::new(env!("CARGO_BIN_EXE_table1"))
}

fn run(mut cmd: Command) -> Output {
    cmd.output().expect("binary spawns")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dva-cli-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn help_exits_zero_and_names_every_flag() {
    let out = run({
        let mut c = table1();
        c.arg("--help");
        c
    });
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8(out.stdout).unwrap();
    for flag in [
        "--quick",
        "--full",
        "--threads",
        "--json",
        "--csv",
        "--golden-check",
    ] {
        assert!(text.contains(flag), "help misses {flag}");
    }
}

#[test]
fn unknown_flags_exit_two() {
    for args in [
        &["--bogus"][..],
        &["--threads"],
        &["--threads", "zero"],
        &["--json"],
    ] {
        let out = run({
            let mut c = table1();
            c.args(args);
            c
        });
        assert_eq!(out.status.code(), Some(2), "args {args:?}");
        assert!(out.stdout.is_empty(), "usage errors keep stdout clean");
        let err = String::from_utf8(out.stderr).unwrap();
        assert!(err.contains("usage:"), "stderr shows usage for {args:?}");
    }
}

#[test]
fn json_and_csv_flags_write_artifacts() {
    let dir = temp_dir("outputs");
    let json = dir.join("table1.json");
    let csv = dir.join("table1.csv");
    let out = run({
        let mut c = table1();
        c.args(["--quick", "--json"])
            .arg(&json)
            .arg("--csv")
            .arg(&csv);
        c
    });
    assert_eq!(out.status.code(), Some(0));
    let json_text = std::fs::read_to_string(&json).unwrap();
    assert!(json_text.starts_with("{\"experiment\":\"table1\""));
    assert!(json_text.ends_with("}\n"));
    let csv_text = std::fs::read_to_string(&csv).unwrap();
    assert!(csv_text.starts_with("# artifact table1"));
    // stdout is unchanged by the output flags.
    assert!(String::from_utf8(out.stdout)
        .unwrap()
        .starts_with("Table 1:"));
    std::fs::remove_dir_all(&dir).unwrap();
}

/// One golden lifecycle: missing → exit 1; GOLDEN_UPDATE=1 → exit 0 and
/// writes; matching → exit 0; corrupted → exit 1 again.
#[test]
fn golden_check_exit_codes_follow_the_contract() {
    let dir = temp_dir("golden");
    let check = |update: bool| {
        let mut c = table1();
        c.args(["--quick", "--golden-check"])
            .env("GOLDEN_DIR", &dir);
        if update {
            c.env("GOLDEN_UPDATE", "1");
        }
        run(c)
    };

    // No golden yet: mismatch.
    let out = check(false);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8(out.stderr).unwrap().contains("FAILED"));

    // Regenerate, then the check passes.
    assert_eq!(check(true).status.code(), Some(0));
    let golden = dir.join("table1.json");
    assert!(golden.exists());
    let out = check(false);
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8(out.stderr).unwrap().contains("matches"));

    // A corrupted golden fails the check again.
    std::fs::write(&golden, "{\"experiment\":\"table1\",\"tampered\":true}\n").unwrap();
    assert_eq!(check(false).status.code(), Some(1));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn stdout_is_byte_identical_with_and_without_golden_check() {
    let dir = temp_dir("stdout");
    let plain = run({
        let mut c = table1();
        c.arg("--quick");
        c
    });
    let checked = run({
        let mut c = table1();
        c.args(["--quick", "--golden-check"])
            .env("GOLDEN_DIR", &dir)
            .env("GOLDEN_UPDATE", "1");
        c
    });
    assert_eq!(plain.status.code(), Some(0));
    assert_eq!(checked.status.code(), Some(0));
    assert_eq!(plain.stdout, checked.stdout);
    // And that stdout matches the checked-in capture byte for byte.
    let golden =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../../artifacts/golden/text/table1.quick.txt");
    assert_eq!(
        String::from_utf8(plain.stdout).unwrap(),
        std::fs::read_to_string(golden).unwrap()
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
