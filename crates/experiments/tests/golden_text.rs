//! Byte-exact stdout parity with the pre-artifact experiment binaries.
//!
//! `artifacts/golden/text/*.quick.txt` are verbatim captures of every
//! binary's stdout (quick grid) from before the spec/runner refactor.
//! These tests re-render each experiment through the declarative path —
//! [`Runner`] + [`Artifact::to_text`] / [`Artifact::tables_text`] — and
//! require the bytes to be identical, which is the refactor's acceptance
//! criterion.

use dva_artifact::{RunOpts, Runner};
use dva_experiments::registry::REGISTRY;
use std::path::PathBuf;

fn golden_text(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../artifacts/golden/text")
        .join(format!("{name}.quick.txt"));
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden capture {}: {e}", path.display()))
}

#[test]
fn every_standalone_binary_matches_its_captured_stdout() {
    let mut runner = Runner::new();
    for spec in &REGISTRY {
        let artifact = runner.run(spec, &RunOpts::quick()).unwrap();
        assert_eq!(
            artifact.to_text(),
            golden_text(spec.name),
            "stdout drifted for `{}`",
            spec.name
        );
    }
}

#[test]
fn the_all_binary_matches_its_captured_stdout() {
    let mut runner = Runner::new();
    let mut out = String::new();
    for spec in REGISTRY.iter().filter(|s| s.all_header.is_some()) {
        let artifact = runner.run(spec, &RunOpts::quick()).unwrap();
        out.push_str(&format!(
            "{}\n\n{}\n",
            spec.all_header.unwrap(),
            artifact.tables_text()
        ));
    }
    assert_eq!(out, golden_text("all"));
    // The shared runner answers the repeated Figures 3–5 sweep from the
    // cache: at least two full grids' worth of hits.
    assert!(
        runner.cache_hits() >= 2 * 3 * 5 * 6,
        "expected the shared sweep to be cached, got {} hits",
        runner.cache_hits()
    );
}
