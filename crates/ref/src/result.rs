//! Results of a reference-architecture simulation.

use dva_isa::Cycle;
use dva_metrics::{StateTracker, Traffic};

/// Everything measured during one run of the reference simulator.
#[derive(Debug, Clone)]
pub struct RefResult {
    /// Total execution time in cycles.
    pub cycles: Cycle,
    /// Instructions dispatched.
    pub insts: u64,
    /// Per-cycle occupancy of the (FU2, FU1, LD) state tuple — the raw
    /// data of the paper's Figure 1.
    pub states: StateTracker,
    /// Memory traffic counters.
    pub traffic: Traffic,
    /// Cycles the dispatcher spent blocked behind an unissuable
    /// instruction.
    pub dispatch_stalls: u64,
    /// Address bus utilization over the whole run (0..=1).
    pub bus_utilization: f64,
    /// Scalar cache hit rate (0..=1).
    pub cache_hit_rate: f64,
}

impl RefResult {
    /// Cycles spent in the all-idle `( , , )` state.
    pub fn idle_cycles(&self) -> Cycle {
        self.states.idle_cycles()
    }

    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.insts as f64 / self.cycles as f64
        }
    }
}
