//! Results of a reference-architecture simulation.

use dva_isa::Cycle;
use dva_metrics::{Diag, StateTracker, Traffic};

/// Everything measured during one run of the reference simulator.
///
/// Equality compares every *model* quantity; execution diagnostics such
/// as [`ticks_executed`](RefResult::ticks_executed) are carried in
/// [`Diag`] and never affect comparisons or `Debug` output, so a
/// fast-forward run is byte-identical to a naive one.
#[derive(Debug, Clone, PartialEq)]
pub struct RefResult {
    /// Total execution time in cycles.
    pub cycles: Cycle,
    /// Instructions dispatched.
    pub insts: u64,
    /// Per-cycle occupancy of the (FU2, FU1, LD) state tuple — the raw
    /// data of the paper's Figure 1.
    pub states: StateTracker,
    /// Memory traffic counters.
    pub traffic: Traffic,
    /// Cycles the dispatcher spent blocked behind an unissuable
    /// instruction.
    pub dispatch_stalls: u64,
    /// Address bus utilization over the whole run (0..=1).
    pub bus_utilization: f64,
    /// Scalar cache hit rate (0..=1).
    pub cache_hit_rate: f64,
    /// Engine iterations actually executed. Equal to `cycles` under naive
    /// stepping; under fast-forward it counts only the ticks that were
    /// simulated (skipped stall cycles are bulk-accounted). A diagnostic:
    /// excluded from equality and `Debug`.
    pub ticks_executed: Diag<u64>,
}

impl RefResult {
    /// Cycles spent in the all-idle `( , , )` state.
    pub fn idle_cycles(&self) -> Cycle {
        self.states.idle_cycles()
    }

    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.insts as f64 / self.cycles as f64
        }
    }
}
