//! Results of a reference-architecture simulation.

use dva_engine::ResultCore;
use std::ops::Deref;

/// Everything measured during one run of the reference simulator.
///
/// The reference machine measures nothing beyond the shared
/// [`ResultCore`], whose fields and methods are reachable directly
/// through `Deref` — `result.cycles`, `result.ipc()`. The core's
/// front-end [`stall_cycles`](ResultCore::stall_cycles) are this
/// machine's dispatch stalls (see
/// [`dispatch_stalls`](RefResult::dispatch_stalls)).
///
/// Equality compares every *model* quantity; execution diagnostics such
/// as [`ticks_executed`](ResultCore::ticks_executed) are carried in
/// [`dva_metrics::Diag`] and never affect comparisons or `Debug` output,
/// so a fast-forward run is byte-identical to a naive one.
#[derive(Debug, Clone, PartialEq)]
pub struct RefResult {
    /// The measurements every machine shares.
    pub core: ResultCore,
}

impl RefResult {
    /// Cycles the dispatcher spent blocked behind an unissuable
    /// instruction — this machine's name for the core's
    /// [`stall_cycles`](ResultCore::stall_cycles).
    pub fn dispatch_stalls(&self) -> u64 {
        self.core.stall_cycles
    }
}

impl Deref for RefResult {
    type Target = ResultCore;

    fn deref(&self) -> &ResultCore {
        &self.core
    }
}
