//! Cycle-level simulator of the paper's *Reference Vector Architecture*: a
//! close model of the Convex C3400 (Section 2.1).
//!
//! The machine has:
//!
//! * a scalar part issuing at most one instruction per cycle, with scalar
//!   memory accesses served by a small scalar cache;
//! * a vector part with two computation units — `FU2` general purpose,
//!   `FU1` everything except multiply/divide/square-root — and one memory
//!   unit (`LD`) behind a single pipelined memory port;
//! * eight 128-element vector registers in two-register banks (2R + 1W
//!   ports per bank);
//! * flexible FU→FU and FU→store chaining, but **no** chaining of memory
//!   loads into functional units;
//! * one common in-order dispatch: the instruction at the head of the
//!   stream blocks everything behind it until it can issue — precisely the
//!   coupling that the decoupled architecture removes.
//!
//! # Examples
//!
//! ```
//! use dva_ref::{RefParams, RefSim};
//! use dva_workloads::{Benchmark, Scale};
//!
//! let program = Benchmark::Dyfesm.program(Scale::Quick);
//! let params = RefParams::builder().latency(30).build();
//! let result = RefSim::new(params).run(&program);
//! assert!(result.cycles > 0);
//! ```
//!
//! For experiments over several machines, prefer the unified `Machine`
//! and `Sweep` API of the `dva-sim-api` crate, which wraps this
//! simulator, the decoupled machine and the IDEAL bound behind one front
//! door.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compiled;
mod result;
mod sim;

pub use compiled::CompiledProgram;
pub use result::RefResult;
pub use sim::{RefParams, RefParamsBuilder, RefRunner, RefSim};
