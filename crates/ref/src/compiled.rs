//! Translate-once compiled programs for the reference machine.
//!
//! The reference dispatcher re-derived its issue metadata — operand read
//! lists, scalar gate registers, unit routing, access strides — from the
//! architectural [`Inst`] on *every* issue attempt, including the stalled
//! ones. A [`CompiledProgram`] decodes each instruction exactly once into
//! a flat [`RefOp`] stream of plain `Copy` data, so a sweep decodes each
//! program once instead of once per grid point and the dispatcher's hot
//! loop never allocates.

use dva_isa::{InlineVec, Inst, Program, ScalarReg, Stride, VOperand, VectorLength, VectorReg};

/// One pre-decoded instruction, carrying exactly the fields the
/// dispatcher's issue checks consume.
#[derive(Debug, Clone, Copy)]
pub(crate) enum RefOp {
    /// Scalar ALU operation (1 cycle).
    SAlu {
        dst: ScalarReg,
        srcs: [Option<ScalarReg>; 2],
    },
    /// Scalar load through the scalar cache.
    SLoad { dst: ScalarReg, addr: u64 },
    /// Scalar store (write-through).
    SStore { src: ScalarReg, addr: u64 },
    /// Conditional branch; issues once the condition is ready.
    Branch { cond: ScalarReg },
    /// Vector computation on FU1/FU2.
    VCompute {
        dst: VectorReg,
        /// Vector register sources, in operand order.
        reads: InlineVec<VectorReg, 2>,
        /// Scalar broadcast operands gating issue.
        sregs: [Option<ScalarReg>; 2],
        /// Whether the opcode is restricted to the general-purpose unit.
        general_unit: bool,
        vl: VectorLength,
    },
    /// Reduction; the scalar result reaches the scoreboard.
    VReduce {
        dst: ScalarReg,
        src: VectorReg,
        vl: VectorLength,
    },
    /// Strided vector load.
    VLoad {
        dst: VectorReg,
        vl: VectorLength,
        stride: Stride,
    },
    /// Strided vector store.
    VStore {
        src: VectorReg,
        vl: VectorLength,
        stride: Stride,
    },
    /// Indexed gather (streams the index register).
    VGather {
        dst: VectorReg,
        index: VectorReg,
        vl: VectorLength,
    },
    /// Indexed scatter (streams data and index).
    VScatter {
        src: VectorReg,
        index: VectorReg,
        vl: VectorLength,
    },
}

fn decode(inst: &Inst) -> RefOp {
    match inst {
        Inst::SAlu { dst, src1, src2 } => RefOp::SAlu {
            dst: *dst,
            srcs: [*src1, *src2],
        },
        Inst::SLoad { dst, addr } => RefOp::SLoad {
            dst: *dst,
            addr: *addr,
        },
        Inst::SStore { src, addr } => RefOp::SStore {
            src: *src,
            addr: *addr,
        },
        Inst::Branch { cond, .. } => RefOp::Branch { cond: *cond },
        Inst::VCompute {
            op,
            dst,
            src1,
            src2,
            vl,
        } => {
            let mut reads: InlineVec<VectorReg, 2> = InlineVec::new();
            let mut sregs = [None, None];
            for (i, operand) in [Some(src1), src2.as_ref()].into_iter().enumerate() {
                match operand {
                    Some(VOperand::Reg(v)) => reads.push(*v),
                    Some(VOperand::Scalar(s)) => sregs[i] = Some(*s),
                    None => {}
                }
            }
            RefOp::VCompute {
                dst: *dst,
                reads,
                sregs,
                general_unit: op.requires_general_unit(),
                vl: *vl,
            }
        }
        Inst::VReduce { dst, src, vl, .. } => RefOp::VReduce {
            dst: *dst,
            src: *src,
            vl: *vl,
        },
        Inst::VLoad { dst, access } => RefOp::VLoad {
            dst: *dst,
            vl: access.vl,
            stride: access.stride,
        },
        Inst::VStore { src, access } => RefOp::VStore {
            src: *src,
            vl: access.vl,
            stride: access.stride,
        },
        Inst::VGather { dst, index, vl, .. } => RefOp::VGather {
            dst: *dst,
            index: *index,
            vl: *vl,
        },
        Inst::VScatter { src, index, vl, .. } => RefOp::VScatter {
            src: *src,
            index: *index,
            vl: *vl,
        },
    }
}

/// A [`Program`] pre-decoded into the reference dispatcher's issue form.
///
/// Compiling is configuration-independent — one compiled program serves
/// every [`RefParams`](crate::RefParams) and may be shared across threads
/// behind an [`Arc`](std::sync::Arc). Results are byte-identical to
/// decoding at dispatch time.
///
/// # Examples
///
/// ```
/// use dva_ref::{CompiledProgram, RefParams, RefSim};
/// use dva_workloads::{Benchmark, Scale};
/// use std::sync::Arc;
///
/// let program = Benchmark::Trfd.program(Scale::Quick);
/// let compiled = Arc::new(CompiledProgram::compile(&program));
/// let sim = RefSim::new(RefParams::with_latency(30));
/// assert_eq!(sim.run_compiled(&compiled), sim.run(&program));
/// ```
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    program: Program,
    ops: Box<[RefOp]>,
}

impl CompiledProgram {
    /// Decodes `program` into its issue stream. The program's instruction
    /// storage is shared, not copied.
    pub fn compile(program: &Program) -> CompiledProgram {
        CompiledProgram {
            program: program.clone(),
            ops: program.insts().iter().map(decode).collect(),
        }
    }

    /// The source program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    pub(crate) fn ops(&self) -> &[RefOp] {
        &self.ops
    }

    /// Number of dynamic instructions.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dva_isa::{ReduceOp, VectorAccess, VectorOp};
    use dva_testutil::vl;

    #[test]
    fn decode_flattens_operands_in_order() {
        let op = decode(&Inst::VCompute {
            op: VectorOp::Mul,
            dst: VectorReg::V4,
            src1: VOperand::Scalar(ScalarReg::scalar(1)),
            src2: Some(VOperand::Reg(VectorReg::V2)),
            vl: vl(16),
        });
        let RefOp::VCompute {
            reads,
            sregs,
            general_unit,
            ..
        } = op
        else {
            panic!("expected a compute op");
        };
        assert_eq!(&reads[..], &[VectorReg::V2]);
        assert_eq!(sregs, [Some(ScalarReg::scalar(1)), None]);
        assert!(general_unit, "multiply routes to FU2 only");
    }

    #[test]
    fn compile_covers_every_instruction_and_shares_storage() {
        let program = Program::from_insts(
            "t",
            vec![
                Inst::VLoad {
                    dst: VectorReg::V0,
                    access: VectorAccess::unit(0x1000, vl(64)),
                },
                Inst::VReduce {
                    op: ReduceOp::Sum,
                    dst: ScalarReg::scalar(2),
                    src: VectorReg::V0,
                    vl: vl(64),
                },
            ],
        );
        let compiled = CompiledProgram::compile(&program);
        assert_eq!(compiled.len(), program.len());
        assert!(matches!(compiled.ops()[0], RefOp::VLoad { .. }));
        assert!(matches!(compiled.ops()[1], RefOp::VReduce { .. }));
        assert_eq!(
            compiled.program().insts().as_ptr(),
            program.insts().as_ptr()
        );
    }
}
