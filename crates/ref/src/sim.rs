//! The cycle-stepped reference simulator.
//!
//! The engine is a [`dva_engine::Processor`]: it advances the in-order
//! dispatcher one tick at a time; the clock, the fast-forward stepping,
//! the watchdog and the statistics bookkeeping all live in the shared
//! [`dva_engine::Driver`].

use crate::result::RefResult;
use dva_engine::{Driver, Observers, Processor, Progress, Report};
use dva_isa::{Cycle, Inst, Program, VOperand};
use dva_memory::{CacheAccess, MemoryModel, MemoryParams};
use dva_metrics::UnitState;
use dva_uarch::{ChainPolicy, FuPipe, Producer, Scoreboard, UarchParams, VectorRegFile};

/// Configuration of the reference machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RefParams {
    /// Vector engine timing.
    pub uarch: UarchParams,
    /// Memory system (latency is the paper's sweep parameter).
    pub memory: MemoryParams,
}

impl RefParams {
    /// Default microarchitecture with the given memory latency.
    pub fn with_latency(latency: u64) -> RefParams {
        RefParams {
            uarch: UarchParams::default(),
            memory: MemoryParams::with_latency(latency),
        }
    }

    /// Starts an ergonomic builder from the default configuration,
    /// mirroring [`DvaConfig::builder`](https://docs.rs/dva-core) on the
    /// decoupled machine's side.
    ///
    /// ```
    /// use dva_ref::RefParams;
    ///
    /// let params = RefParams::builder().latency(30).build();
    /// assert_eq!(params.memory.latency, 30);
    /// ```
    pub fn builder() -> RefParamsBuilder {
        RefParamsBuilder {
            params: RefParams::with_latency(1),
        }
    }
}

/// Builder for [`RefParams`], created by [`RefParams::builder`].
#[derive(Debug, Clone, Copy)]
pub struct RefParamsBuilder {
    params: RefParams,
}

impl RefParamsBuilder {
    /// Sets the main memory latency `L` in cycles.
    pub fn latency(mut self, latency: u64) -> Self {
        self.params.memory.latency = latency;
        self
    }

    /// Replaces the whole memory configuration.
    pub fn memory(mut self, memory: MemoryParams) -> Self {
        self.params.memory = memory;
        self
    }

    /// Replaces the vector engine timing.
    pub fn uarch(mut self, uarch: UarchParams) -> Self {
        self.params.uarch = uarch;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> RefParams {
        self.params
    }
}

/// The reference (coupled) vector architecture simulator.
///
/// Create one per run; [`RefSim::run`] consumes the simulator's state.
///
/// By default the engine *fast-forwards*: whenever the dispatcher stalls
/// it jumps straight to the next cycle at which anything can change,
/// bulk-accounting the skipped stall cycles. The results are
/// byte-identical to naive per-cycle stepping;
/// [`RefSim::with_fast_forward`] opts back into naive stepping for
/// verification.
#[derive(Debug)]
pub struct RefSim {
    params: RefParams,
    chain: ChainPolicy,
    fast_forward: bool,
}

impl RefSim {
    /// Creates a simulator (fast-forward enabled).
    pub fn new(params: RefParams) -> RefSim {
        RefSim {
            params,
            chain: ChainPolicy::reference(),
            fast_forward: true,
        }
    }

    /// Overrides the chaining policy (for ablation studies).
    pub fn with_chain_policy(mut self, chain: ChainPolicy) -> RefSim {
        self.chain = chain;
        self
    }

    /// Enables or disables the next-event fast-forward (on by default;
    /// turning it off forces naive per-cycle stepping).
    #[must_use]
    pub fn with_fast_forward(mut self, fast_forward: bool) -> RefSim {
        self.fast_forward = fast_forward;
        self
    }

    /// Runs `program` to completion and reports the measurements.
    pub fn run(&self, program: &Program) -> RefResult {
        let mut engine = Engine::new(self.params, self.chain, program);
        let mut observers = Observers::new();
        let completion = Driver::new()
            .fast_forward(self.fast_forward)
            .run(&mut engine, &mut observers);
        let (core, _) = completion.into_core(&engine, observers);
        RefResult { core }
    }
}

struct Engine<'a> {
    params: RefParams,
    chain: ChainPolicy,
    now: Cycle,
    insts: &'a [Inst],
    pc: usize,
    regs: VectorRegFile,
    sb: Scoreboard,
    fu1: FuPipe,
    fu2: FuPipe,
    mem: Box<dyn MemoryModel>,
    dispatch_stalls: u64,
}

impl<'a> Engine<'a> {
    fn new(params: RefParams, chain: ChainPolicy, program: &'a Program) -> Engine<'a> {
        Engine {
            params,
            chain,
            now: 0,
            insts: program.insts(),
            pc: 0,
            regs: VectorRegFile::new(&params.uarch),
            sb: Scoreboard::new(),
            fu1: FuPipe::new("FU1"),
            fu2: FuPipe::new("FU2"),
            mem: params.memory.build(),
            dispatch_stalls: 0,
        }
    }

    fn state_at(&self, now: Cycle) -> UnitState {
        UnitState::from_flags(
            self.fu2.is_busy_at(now),
            self.fu1.is_busy_at(now),
            self.mem.busy(now),
        )
    }

    /// Attempts to issue `inst` at the current cycle. Returns `true` when
    /// the instruction left the dispatcher.
    fn try_issue(&mut self, inst: &Inst) -> bool {
        let now = self.now;
        let startup = self.params.uarch.fu_startup;
        match inst {
            Inst::SAlu { dst, src1, src2 } => {
                if !self.sb.all_ready(&[*src1, *src2], now) {
                    return false;
                }
                self.sb.set_ready(*dst, now + 1);
                true
            }
            Inst::SLoad { dst, addr } => {
                if self.mem.probe_scalar(*addr) == CacheAccess::Miss && !self.mem.port_free(now) {
                    return false;
                }
                let issue = self.mem.scalar_load(now, *addr);
                self.sb.set_ready(*dst, issue.data_complete_at);
                true
            }
            Inst::SStore { src, addr } => {
                if !self.sb.is_ready(*src, now) || !self.mem.port_free(now) {
                    return false;
                }
                self.mem.scalar_store(now, *addr);
                true
            }
            Inst::Branch { cond, .. } => self.sb.is_ready(*cond, now),
            Inst::VCompute {
                op,
                dst,
                src1,
                src2,
                vl,
            } => {
                let mut reads = Vec::with_capacity(2);
                let mut sregs = [None, None];
                for (i, operand) in [Some(src1), src2.as_ref()].into_iter().enumerate() {
                    match operand {
                        Some(VOperand::Reg(v)) => reads.push(*v),
                        Some(VOperand::Scalar(s)) => sregs[i] = Some(*s),
                        None => {}
                    }
                }
                if !self.sb.all_ready(&sregs, now) {
                    return false;
                }
                if !self.regs.can_issue(now, &reads, Some(*dst), self.chain) {
                    return false;
                }
                let unit = if op.requires_general_unit() {
                    &mut self.fu2
                } else if self.fu1.is_free(now) {
                    &mut self.fu1
                } else {
                    &mut self.fu2
                };
                if !unit.is_free(now) {
                    return false;
                }
                unit.reserve(now, vl.cycles());
                self.regs.begin_reads(now, &reads, vl.cycles());
                self.regs.begin_write(
                    *dst,
                    now,
                    now + startup,
                    now + startup + vl.cycles(),
                    Producer::FunctionalUnit,
                );
                true
            }
            Inst::VReduce { dst, src, vl, .. } => {
                if !self.regs.can_issue(now, &[*src], None, self.chain) {
                    return false;
                }
                let unit = if self.fu1.is_free(now) {
                    &mut self.fu1
                } else if self.fu2.is_free(now) {
                    &mut self.fu2
                } else {
                    return false;
                };
                unit.reserve(now, vl.cycles());
                self.regs.begin_reads(now, &[*src], vl.cycles());
                // The scalar result is available once the whole vector has
                // streamed through the adder tree.
                self.sb.set_ready(*dst, now + startup + vl.cycles() + 1);
                true
            }
            Inst::VLoad { dst, access } => {
                if !self.mem.port_free(now)
                    || !self.regs.can_issue(now, &[], Some(*dst), self.chain)
                {
                    return false;
                }
                let issue = self
                    .mem
                    .issue_vector_load(now, access.vl, Some(access.stride));
                self.regs.begin_write(
                    *dst,
                    now,
                    issue.data_first_at,
                    issue.data_complete_at,
                    Producer::MemoryLoad,
                );
                true
            }
            Inst::VStore { src, access } => {
                if !self.mem.port_free(now) || !self.regs.can_issue(now, &[*src], None, self.chain)
                {
                    return false;
                }
                self.mem
                    .issue_vector_store(now, access.vl, Some(access.stride));
                self.regs.begin_reads(now, &[*src], access.vl.cycles());
                true
            }
            Inst::VGather { dst, index, vl, .. } => {
                if !self.mem.port_free(now)
                    || !self.regs.can_issue(now, &[*index], Some(*dst), self.chain)
                {
                    return false;
                }
                let issue = self.mem.issue_vector_load(now, *vl, None);
                self.regs.begin_reads(now, &[*index], vl.cycles());
                self.regs.begin_write(
                    *dst,
                    now,
                    issue.data_first_at,
                    issue.data_complete_at,
                    Producer::MemoryLoad,
                );
                true
            }
            Inst::VScatter { src, index, vl, .. } => {
                if !self.mem.port_free(now)
                    || !self.regs.can_issue(now, &[*src, *index], None, self.chain)
                {
                    return false;
                }
                self.mem.issue_vector_store(now, *vl, None);
                self.regs.begin_reads(now, &[*src, *index], vl.cycles());
                true
            }
        }
    }
}

impl Processor for Engine<'_> {
    fn step(&mut self, now: Cycle) -> Progress {
        self.now = now;
        let insts = self.insts;
        if self.try_issue(&insts[self.pc]) {
            self.pc += 1;
            Progress::Advanced
        } else {
            self.dispatch_stalls += 1;
            Progress::Stalled
        }
    }

    fn is_done(&self) -> bool {
        self.pc >= self.insts.len()
    }

    /// The earliest cycle strictly after `now` at which any gating
    /// condition of [`Engine::try_issue`] can change: a scalar register
    /// or vector register becoming ready, a chaining window opening, a
    /// functional unit freeing, or an address port freeing. `None` when
    /// the machine is fully quiet (the stalled instruction can then never
    /// issue — impossible for valid traces).
    fn next_event_after(&self, now: Cycle) -> Option<Cycle> {
        let mut next = dva_isa::EarliestAfter::new(now);
        next.consider_opt(self.mem.next_free_at(now));
        next.consider(self.fu1.free_at());
        next.consider(self.fu2.free_at());
        next.consider_opt(self.sb.next_ready_after(now));
        next.consider_opt(self.regs.next_event_after(now));
        next.get()
    }

    fn quiesce_at(&self) -> Cycle {
        self.regs
            .quiesce_at()
            .max(self.sb.quiesce_at())
            .max(self.fu1.free_at())
            .max(self.fu2.free_at())
            .max(self.mem.quiesce_at())
    }

    fn sample(&self, now: Cycle, obs: &mut Observers) {
        obs.record_state(self.state_at(now));
    }

    fn account_skipped(&mut self, _now: Cycle, skipped: u64) {
        self.dispatch_stalls += skipped;
    }

    fn report(&self, cycles: Cycle) -> Report {
        Report {
            insts: self.insts.len() as u64,
            traffic: self.mem.traffic(),
            bus_utilization: self.mem.utilization(cycles),
            port_utilization: self.mem.port_utilizations(cycles),
            cache_hit_rate: self.mem.cache().hit_rate(),
            cache: self.mem.cache().stats(),
            stall_cycles: self.dispatch_stalls,
        }
    }

    fn deadlock_context(&self, _now: Cycle) -> String {
        format!(
            "REF pc={}/{} cannot issue {:?}",
            self.pc,
            self.insts.len(),
            self.insts[self.pc],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dva_isa::{ReduceOp, ScalarReg, VectorAccess, VectorOp, VectorReg};
    use dva_testutil::{vadd, vl, vload};

    fn run(insts: Vec<Inst>, latency: u64) -> RefResult {
        let program = Program::from_insts("t", insts);
        RefSim::new(RefParams::with_latency(latency)).run(&program)
    }

    #[test]
    fn single_vector_load_pays_latency_plus_vl() {
        // Load issues at cycle 0; data complete at L + VL = 30 + 64.
        let r = run(vec![vload(VectorReg::V0, 0x1000, 64)], 30);
        assert_eq!(r.cycles, 94);
        assert_eq!(r.traffic.vector_load_elems, 64);
    }

    #[test]
    fn two_loads_serialize_on_the_bus() {
        // Bus: [0,64) then [64,128); second data complete at 64+30+64.
        let r = run(
            vec![
                vload(VectorReg::V0, 0x1000, 64),
                vload(VectorReg::V2, 0x9000, 64),
            ],
            30,
        );
        assert_eq!(r.cycles, 64 + 30 + 64);
    }

    #[test]
    fn load_use_does_not_chain() {
        // add must wait for the load to be complete at 30+64=94; add then
        // takes startup+64 more.
        let startup = UarchParams::default().fu_startup;
        let r = run(
            vec![
                vload(VectorReg::V0, 0x1000, 64),
                vload(VectorReg::V2, 0x9000, 64),
                vadd(VectorReg::V4, VectorReg::V0, VectorReg::V2, 64),
            ],
            30,
        );
        // Second load complete at 64+30+64 = 158; add: 158+startup+64.
        assert_eq!(r.cycles, 158 + startup + 64);
    }

    #[test]
    fn fu_to_fu_chaining_overlaps_execution() {
        let startup = UarchParams::default().fu_startup;
        // Two dependent adds on pre-ready registers: the second chains one
        // cycle after the first's first element.
        let r = run(
            vec![
                vadd(VectorReg::V2, VectorReg::V0, VectorReg::V1, 64),
                vadd(VectorReg::V4, VectorReg::V2, VectorReg::V6, 64),
            ],
            1,
        );
        // First add: issues at 0 on FU1, first element at `startup`, done
        // at startup+64. Second chains at startup+1 (on FU2, FU1 is busy)
        // and completes at (startup+1) + startup + 64.
        assert_eq!(r.cycles, 2 * startup + 1 + 64);
    }

    #[test]
    fn store_chains_from_functional_unit() {
        let startup = UarchParams::default().fu_startup;
        let r = run(
            vec![
                vadd(VectorReg::V2, VectorReg::V0, VectorReg::V1, 32),
                Inst::VStore {
                    src: VectorReg::V2,
                    access: VectorAccess::unit(0x2000, vl(32)),
                },
            ],
            100,
        );
        // Store chains at startup+1 and holds the bus 32 cycles; stores
        // hide memory latency.
        assert_eq!(r.cycles, startup + 1 + 32);
        assert_eq!(r.traffic.vector_store_elems, 32);
    }

    #[test]
    fn scalar_code_runs_at_one_ipc() {
        let insts: Vec<Inst> = (0..100)
            .map(|_| Inst::SAlu {
                dst: ScalarReg::scalar(2),
                src1: Some(ScalarReg::scalar(2)),
                src2: None,
            })
            .collect();
        let r = run(insts, 50);
        // 100 instructions at 1 per cycle; the last result lands exactly
        // as the clock stops.
        assert_eq!(r.cycles, 100);
        assert!((r.ipc() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dependent_scalar_load_blocks_dispatch() {
        let r = run(
            vec![
                Inst::SLoad {
                    dst: ScalarReg::scalar(3),
                    addr: 0x100,
                },
                Inst::SAlu {
                    dst: ScalarReg::scalar(2),
                    src1: Some(ScalarReg::scalar(3)),
                    src2: None,
                },
            ],
            40,
        );
        // Miss: data at cycle 40; ALU issues at 40, result at 41.
        assert_eq!(r.cycles, 41);
        assert!(r.dispatch_stalls() > 30);
    }

    #[test]
    fn reduction_result_reaches_scoreboard() {
        let startup = UarchParams::default().fu_startup;
        let r = run(
            vec![
                Inst::VReduce {
                    op: ReduceOp::Sum,
                    dst: ScalarReg::scalar(1),
                    src: VectorReg::V0,
                    vl: vl(16),
                },
                Inst::SAlu {
                    dst: ScalarReg::scalar(2),
                    src1: Some(ScalarReg::scalar(1)),
                    src2: None,
                },
            ],
            1,
        );
        // Reduce result at startup+16+1; SAlu one cycle later.
        assert_eq!(r.cycles, startup + 16 + 2);
    }

    #[test]
    fn mul_only_issues_on_fu2() {
        // A mul and an add can overlap (different units); two muls cannot.
        let two_muls = run(
            vec![
                Inst::VCompute {
                    op: VectorOp::Mul,
                    dst: VectorReg::V2,
                    src1: VOperand::Reg(VectorReg::V0),
                    src2: Some(VOperand::Reg(VectorReg::V1)),
                    vl: vl(64),
                },
                Inst::VCompute {
                    op: VectorOp::Mul,
                    dst: VectorReg::V4,
                    src1: VOperand::Reg(VectorReg::V6),
                    src2: Some(VOperand::Reg(VectorReg::V7)),
                    vl: vl(64),
                },
            ],
            1,
        );
        let mul_add = run(
            vec![
                Inst::VCompute {
                    op: VectorOp::Mul,
                    dst: VectorReg::V2,
                    src1: VOperand::Reg(VectorReg::V0),
                    src2: Some(VOperand::Reg(VectorReg::V1)),
                    vl: vl(64),
                },
                vadd(VectorReg::V4, VectorReg::V6, VectorReg::V7, 64),
            ],
            1,
        );
        assert!(two_muls.cycles > mul_add.cycles);
    }

    #[test]
    fn state_breakdown_accounts_every_cycle() {
        let program = dva_workloads::Benchmark::Arc2d.program(dva_workloads::Scale::Quick);
        let r = RefSim::new(RefParams::with_latency(30)).run(&program);
        assert_eq!(r.states.total_cycles(), r.cycles);
        assert!(r.states.idle_cycles() < r.cycles);
        assert!(r.bus_utilization > 0.0 && r.bus_utilization <= 1.0);
    }

    #[test]
    fn longer_latency_never_speeds_up_execution() {
        let program = dva_workloads::Benchmark::Trfd.program(dva_workloads::Scale::Quick);
        let mut prev = 0;
        for latency in [1, 10, 30, 70, 100] {
            let r = RefSim::new(RefParams::with_latency(latency)).run(&program);
            assert!(
                r.cycles >= prev,
                "latency {latency} ran faster: {} < {prev}",
                r.cycles
            );
            prev = r.cycles;
        }
    }

    #[test]
    fn branch_waits_for_condition() {
        let r = run(
            vec![
                Inst::SLoad {
                    dst: ScalarReg::scalar(3),
                    addr: 0x100,
                },
                Inst::Branch {
                    cond: ScalarReg::scalar(3),
                    taken: true,
                },
            ],
            25,
        );
        // Branch issues once the miss returns at cycle 25.
        assert_eq!(r.cycles, 26);
    }
}
