//! The cycle-stepped reference simulator.
//!
//! The engine is a [`dva_engine::Processor`]: it advances the in-order
//! dispatcher one tick at a time; the clock, the fast-forward stepping,
//! the watchdog and the statistics bookkeeping all live in the shared
//! [`dva_engine::Driver`].

use crate::compiled::{CompiledProgram, RefOp};
use crate::result::RefResult;
use dva_engine::{Driver, Lane, Observers, Processor, Progress, Report, SimError};
use dva_isa::{Cycle, Program};
use dva_memory::{CacheAccess, Memory, MemoryModel, MemoryParams};
use dva_metrics::UnitState;
use dva_uarch::{ChainPolicy, FuPipe, Producer, Scoreboard, UarchParams, VectorRegFile};
use std::sync::Arc;

/// Configuration of the reference machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RefParams {
    /// Vector engine timing.
    pub uarch: UarchParams,
    /// Memory system (latency is the paper's sweep parameter).
    pub memory: MemoryParams,
}

impl dva_json::ToJson for RefParams {
    fn to_json(&self) -> dva_json::Json {
        dva_json::Json::obj([
            ("uarch", self.uarch.to_json()),
            ("memory", self.memory.to_json()),
        ])
    }
}

impl dva_json::FromJson for RefParams {
    fn from_json(json: &dva_json::Json) -> Result<RefParams, dva_json::JsonError> {
        Ok(RefParams {
            uarch: UarchParams::from_json(json.field("uarch")?)?,
            memory: MemoryParams::from_json(json.field("memory")?)?,
        })
    }
}

impl RefParams {
    /// Default microarchitecture with the given memory latency.
    pub fn with_latency(latency: u64) -> RefParams {
        RefParams {
            uarch: UarchParams::default(),
            memory: MemoryParams::with_latency(latency),
        }
    }

    /// Starts an ergonomic builder from the default configuration,
    /// mirroring [`DvaConfig::builder`](https://docs.rs/dva-core) on the
    /// decoupled machine's side.
    ///
    /// ```
    /// use dva_ref::RefParams;
    ///
    /// let params = RefParams::builder().latency(30).build();
    /// assert_eq!(params.memory.latency, 30);
    /// ```
    pub fn builder() -> RefParamsBuilder {
        RefParamsBuilder {
            params: RefParams::with_latency(1),
        }
    }
}

/// Builder for [`RefParams`], created by [`RefParams::builder`].
#[derive(Debug, Clone, Copy)]
pub struct RefParamsBuilder {
    params: RefParams,
}

impl RefParamsBuilder {
    /// Sets the main memory latency `L` in cycles.
    pub fn latency(mut self, latency: u64) -> Self {
        self.params.memory.latency = latency;
        self
    }

    /// Replaces the whole memory configuration.
    pub fn memory(mut self, memory: MemoryParams) -> Self {
        self.params.memory = memory;
        self
    }

    /// Replaces the vector engine timing.
    pub fn uarch(mut self, uarch: UarchParams) -> Self {
        self.params.uarch = uarch;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> RefParams {
        self.params
    }
}

/// The reference (coupled) vector architecture simulator.
///
/// Create one per run; [`RefSim::run`] consumes the simulator's state.
///
/// By default the engine *fast-forwards*: whenever the dispatcher stalls
/// it jumps straight to the next cycle at which anything can change,
/// bulk-accounting the skipped stall cycles. The results are
/// byte-identical to naive per-cycle stepping;
/// [`RefSim::with_fast_forward`] opts back into naive stepping for
/// verification.
#[derive(Debug)]
pub struct RefSim {
    params: RefParams,
    chain: ChainPolicy,
    fast_forward: bool,
}

impl RefSim {
    /// Creates a simulator (fast-forward enabled).
    pub fn new(params: RefParams) -> RefSim {
        RefSim {
            params,
            chain: ChainPolicy::reference(),
            fast_forward: true,
        }
    }

    /// Overrides the chaining policy (for ablation studies).
    pub fn with_chain_policy(mut self, chain: ChainPolicy) -> RefSim {
        self.chain = chain;
        self
    }

    /// Enables or disables the next-event fast-forward (on by default;
    /// turning it off forces naive per-cycle stepping).
    #[must_use]
    pub fn with_fast_forward(mut self, fast_forward: bool) -> RefSim {
        self.fast_forward = fast_forward;
        self
    }

    /// Runs `program` to completion and reports the measurements.
    ///
    /// Decodes the program on the fly; when the same program runs more
    /// than once (latency sweeps, model sweeps), compile it once with
    /// [`CompiledProgram::compile`] and use [`RefSim::run_compiled`] or a
    /// [`RefRunner`] instead.
    pub fn run(&self, program: &Program) -> RefResult {
        self.run_compiled(&Arc::new(CompiledProgram::compile(program)))
    }

    /// Runs a pre-decoded program to completion — byte-identical to
    /// [`RefSim::run`] on the source program, without re-decoding it.
    pub fn run_compiled(&self, compiled: &Arc<CompiledProgram>) -> RefResult {
        let mut engine = Engine::new(self.params, self.chain, Arc::clone(compiled));
        drive(&mut engine, self.fast_forward)
    }
}

/// A reusable reference-machine engine, mirroring
/// [`DvaRunner`](https://docs.rs/dva-core) on the decoupled side: each
/// [`run`](RefRunner::run) resets the engine and drives it to completion,
/// byte-identical to a fresh [`RefSim::run`] (the reset contract), while
/// reusing the engine's allocations across runs.
///
/// # Examples
///
/// ```
/// use dva_ref::{CompiledProgram, RefParams, RefRunner, RefSim};
/// use dva_workloads::{Benchmark, Scale};
/// use std::sync::Arc;
///
/// let compiled = Arc::new(CompiledProgram::compile(
///     &Benchmark::Trfd.program(Scale::Quick),
/// ));
/// let mut runner = RefRunner::new();
/// for latency in [1, 30, 100] {
///     let sim = RefSim::new(RefParams::with_latency(latency));
///     assert_eq!(runner.run(&sim, &compiled), sim.run_compiled(&compiled));
/// }
/// ```
#[derive(Debug, Default)]
pub struct RefRunner {
    /// The engine pool: one per batch lane, all reused across runs.
    /// Sequential runs use the first engine only.
    engines: Vec<Engine>,
}

impl RefRunner {
    /// A runner with no engine yet; the first run constructs one.
    pub fn new() -> RefRunner {
        RefRunner::default()
    }

    /// Runs `compiled` under `sim`'s parameters, chaining policy and
    /// stepping strategy, reusing this runner's engine allocations.
    pub fn run(&mut self, sim: &RefSim, compiled: &Arc<CompiledProgram>) -> RefResult {
        self.arm(std::slice::from_ref(sim), compiled);
        drive(&mut self.engines[0], sim.fast_forward)
    }

    /// [`run`](RefRunner::run), but a detected deadlock comes back as a
    /// [`SimError`] instead of a panic. The pooled engine is left
    /// mid-flight on error; the next run's reset restores it, so the
    /// runner stays reusable.
    pub fn try_run(
        &mut self,
        sim: &RefSim,
        compiled: &Arc<CompiledProgram>,
    ) -> Result<RefResult, SimError> {
        self.arm(std::slice::from_ref(sim), compiled);
        try_drive(&mut self.engines[0], sim.fast_forward)
    }

    /// Runs one decoded program under each of `sims`' parameters in a
    /// single lockstep pass, returning one result per sim, in order —
    /// byte-identical to calling [`run`](RefRunner::run) for each sim in
    /// sequence. The decoded issue stream is the batch's shared
    /// read-only structure; each lane gets its own engine (scoreboard,
    /// pipes, memory model) from this runner's pool.
    ///
    /// # Panics
    ///
    /// Panics if the sims disagree on the stepping strategy (a batch
    /// runs under one fast-forward mode; group sims by it first).
    pub fn run_batch(
        &mut self,
        sims: &[RefSim],
        compiled: &Arc<CompiledProgram>,
    ) -> Vec<RefResult> {
        self.try_run_batch(sims, compiled)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`run_batch`](RefRunner::run_batch), but a detected deadlock on
    /// any lane comes back as a [`SimError`] instead of a panic. On
    /// error the whole batch is abandoned; the caller re-runs lanes
    /// individually via [`try_run`](RefRunner::try_run) to salvage the
    /// healthy ones. Still panics if the sims disagree on the stepping
    /// strategy — that is a caller bug, not a simulation fault.
    pub fn try_run_batch(
        &mut self,
        sims: &[RefSim],
        compiled: &Arc<CompiledProgram>,
    ) -> Result<Vec<RefResult>, SimError> {
        let Some(first) = sims.first() else {
            return Ok(Vec::new());
        };
        assert!(
            sims.iter()
                .all(|sim| sim.fast_forward == first.fast_forward),
            "a batch runs under one stepping strategy; group sims by fast-forward first"
        );
        self.arm(sims, compiled);
        let mut observers: Vec<Observers> = sims.iter().map(|_| Observers::new()).collect();
        let mut lanes: Vec<Lane<'_, Engine>> = self.engines[..sims.len()]
            .iter_mut()
            .zip(observers.iter_mut())
            .map(|(processor, observers)| Lane {
                processor,
                observers,
            })
            .collect();
        let completions = Driver::new()
            .fast_forward(first.fast_forward)
            .try_run_batch(&mut lanes)?;
        drop(lanes);
        Ok(completions
            .into_iter()
            .zip(&self.engines)
            .zip(observers)
            .map(|((completion, engine), observers)| {
                let (core, _) = completion.into_core(engine, observers);
                RefResult { core }
            })
            .collect())
    }

    /// Readies one pooled engine per sim — reset when it exists, grown
    /// when it does not — all against one shared decoded program.
    fn arm(&mut self, sims: &[RefSim], compiled: &Arc<CompiledProgram>) {
        for (i, sim) in sims.iter().enumerate() {
            match self.engines.get_mut(i) {
                Some(engine) => engine.reset(sim.params, sim.chain, Arc::clone(compiled)),
                None => self
                    .engines
                    .push(Engine::new(sim.params, sim.chain, Arc::clone(compiled))),
            }
        }
    }
}

/// Drives `engine` (fresh or reset) to completion through the shared
/// [`Driver`] and assembles the reference machine's result.
fn drive(engine: &mut Engine, fast_forward: bool) -> RefResult {
    try_drive(engine, fast_forward).unwrap_or_else(|e| panic!("{e}"))
}

/// [`drive`], but a tripped deadlock watchdog comes back as a
/// [`SimError`] instead of a panic.
fn try_drive(engine: &mut Engine, fast_forward: bool) -> Result<RefResult, SimError> {
    let mut observers = Observers::new();
    let completion = Driver::new()
        .fast_forward(fast_forward)
        .try_run(engine, &mut observers)?;
    let (core, _) = completion.into_core(engine, observers);
    Ok(RefResult { core })
}

#[derive(Debug)]
struct Engine {
    params: RefParams,
    chain: ChainPolicy,
    now: Cycle,
    compiled: Arc<CompiledProgram>,
    pc: usize,
    regs: VectorRegFile,
    sb: Scoreboard,
    fu1: FuPipe,
    fu2: FuPipe,
    mem: Memory,
    dispatch_stalls: u64,
}

impl Engine {
    fn new(params: RefParams, chain: ChainPolicy, compiled: Arc<CompiledProgram>) -> Engine {
        Engine {
            params,
            chain,
            now: 0,
            compiled,
            pc: 0,
            regs: VectorRegFile::new(&params.uarch),
            sb: Scoreboard::new(),
            fu1: FuPipe::new("FU1"),
            fu2: FuPipe::new("FU2"),
            mem: params.memory.instantiate(),
            dispatch_stalls: 0,
        }
    }

    /// Restores the engine to its initial state for a fresh run — the
    /// same reset contract as the decoupled engine: a run after `reset`
    /// is byte-identical to a run on a freshly constructed engine.
    fn reset(&mut self, params: RefParams, chain: ChainPolicy, compiled: Arc<CompiledProgram>) {
        self.params = params;
        self.chain = chain;
        self.now = 0;
        self.compiled = compiled;
        self.pc = 0;
        self.regs = VectorRegFile::new(&params.uarch);
        self.sb = Scoreboard::new();
        self.fu1 = FuPipe::new("FU1");
        self.fu2 = FuPipe::new("FU2");
        self.mem = params.memory.instantiate();
        self.dispatch_stalls = 0;
    }

    fn state_at(&self, now: Cycle) -> UnitState {
        UnitState::from_flags(
            self.fu2.is_busy_at(now),
            self.fu1.is_busy_at(now),
            self.mem.busy(now),
        )
    }

    /// Attempts to issue the pre-decoded `op` at the current cycle.
    /// Returns `true` when the instruction left the dispatcher.
    fn try_issue(&mut self, op: RefOp) -> bool {
        let now = self.now;
        let startup = self.params.uarch.fu_startup;
        match op {
            RefOp::SAlu { dst, srcs } => {
                if !self.sb.all_ready(&srcs, now) {
                    return false;
                }
                self.sb.set_ready(dst, now + 1);
                true
            }
            RefOp::SLoad { dst, addr } => {
                if self.mem.probe_scalar(addr) == CacheAccess::Miss && !self.mem.port_free(now) {
                    return false;
                }
                let issue = self.mem.scalar_load(now, addr);
                self.sb.set_ready(dst, issue.data_complete_at);
                true
            }
            RefOp::SStore { src, addr } => {
                if !self.sb.is_ready(src, now) || !self.mem.port_free(now) {
                    return false;
                }
                self.mem.scalar_store(now, addr);
                true
            }
            RefOp::Branch { cond } => self.sb.is_ready(cond, now),
            RefOp::VCompute {
                dst,
                reads,
                sregs,
                general_unit,
                vl,
            } => {
                if !self.sb.all_ready(&sregs, now) {
                    return false;
                }
                if !self.regs.can_issue(now, &reads, Some(dst), self.chain) {
                    return false;
                }
                let unit = if general_unit {
                    &mut self.fu2
                } else if self.fu1.is_free(now) {
                    &mut self.fu1
                } else {
                    &mut self.fu2
                };
                if !unit.is_free(now) {
                    return false;
                }
                unit.reserve(now, vl.cycles());
                self.regs.begin_reads(now, &reads, vl.cycles());
                self.regs.begin_write(
                    dst,
                    now,
                    now + startup,
                    now + startup + vl.cycles(),
                    Producer::FunctionalUnit,
                );
                true
            }
            RefOp::VReduce { dst, src, vl } => {
                if !self.regs.can_issue(now, &[src], None, self.chain) {
                    return false;
                }
                let unit = if self.fu1.is_free(now) {
                    &mut self.fu1
                } else if self.fu2.is_free(now) {
                    &mut self.fu2
                } else {
                    return false;
                };
                unit.reserve(now, vl.cycles());
                self.regs.begin_reads(now, &[src], vl.cycles());
                // The scalar result is available once the whole vector has
                // streamed through the adder tree.
                self.sb.set_ready(dst, now + startup + vl.cycles() + 1);
                true
            }
            RefOp::VLoad { dst, vl, stride } => {
                if !self.mem.port_free(now) || !self.regs.can_issue(now, &[], Some(dst), self.chain)
                {
                    return false;
                }
                let issue = self.mem.issue_vector_load(now, vl, Some(stride));
                self.regs.begin_write(
                    dst,
                    now,
                    issue.data_first_at,
                    issue.data_complete_at,
                    Producer::MemoryLoad,
                );
                true
            }
            RefOp::VStore { src, vl, stride } => {
                if !self.mem.port_free(now) || !self.regs.can_issue(now, &[src], None, self.chain) {
                    return false;
                }
                self.mem.issue_vector_store(now, vl, Some(stride));
                self.regs.begin_reads(now, &[src], vl.cycles());
                true
            }
            RefOp::VGather { dst, index, vl } => {
                if !self.mem.port_free(now)
                    || !self.regs.can_issue(now, &[index], Some(dst), self.chain)
                {
                    return false;
                }
                let issue = self.mem.issue_vector_load(now, vl, None);
                self.regs.begin_reads(now, &[index], vl.cycles());
                self.regs.begin_write(
                    dst,
                    now,
                    issue.data_first_at,
                    issue.data_complete_at,
                    Producer::MemoryLoad,
                );
                true
            }
            RefOp::VScatter { src, index, vl } => {
                if !self.mem.port_free(now)
                    || !self.regs.can_issue(now, &[src, index], None, self.chain)
                {
                    return false;
                }
                self.mem.issue_vector_store(now, vl, None);
                self.regs.begin_reads(now, &[src, index], vl.cycles());
                true
            }
        }
    }

    /// The first cycle at which at least one address port can accept an
    /// access, given no new reservations.
    fn port_ready_at(&self, now: Cycle) -> Cycle {
        if self.mem.port_free(now) {
            now
        } else {
            self.mem.next_free_at(now).unwrap_or(now)
        }
    }

    /// The exact earliest cycle the stalled front instruction can issue,
    /// assuming the machine keeps stalling until then: the max over the
    /// same gate conditions [`Engine::try_issue`] checks, each of which
    /// only opens over time while nothing issues.
    fn wake_at(&self, now: Cycle) -> Cycle {
        let either_fu = self.fu1.free_at().min(self.fu2.free_at());
        match self.compiled.ops()[self.pc] {
            RefOp::SAlu { srcs, .. } => self.sb.ready_after(&srcs),
            RefOp::SLoad { addr, .. } => {
                if self.mem.probe_scalar(addr) == CacheAccess::Miss {
                    self.port_ready_at(now)
                } else {
                    now // a hit always issues; unreachable on a stall
                }
            }
            RefOp::SStore { src, .. } => self.sb.ready_at(src).max(self.port_ready_at(now)),
            RefOp::Branch { cond } => self.sb.ready_at(cond),
            RefOp::VCompute {
                dst,
                reads,
                sregs,
                general_unit,
                ..
            } => {
                let unit = if general_unit {
                    self.fu2.free_at()
                } else {
                    either_fu
                };
                self.sb
                    .ready_after(&sregs)
                    .max(self.regs.issue_ready_at(&reads, Some(dst), self.chain))
                    .max(unit)
            }
            RefOp::VReduce { src, .. } => self
                .regs
                .issue_ready_at(&[src], None, self.chain)
                .max(either_fu),
            RefOp::VLoad { dst, .. } => {
                self.port_ready_at(now)
                    .max(self.regs.issue_ready_at(&[], Some(dst), self.chain))
            }
            RefOp::VStore { src, .. } => {
                self.port_ready_at(now)
                    .max(self.regs.issue_ready_at(&[src], None, self.chain))
            }
            RefOp::VGather { dst, index, .. } => self
                .port_ready_at(now)
                .max(self.regs.issue_ready_at(&[index], Some(dst), self.chain)),
            RefOp::VScatter { src, index, .. } => self
                .port_ready_at(now)
                .max(self.regs.issue_ready_at(&[src, index], None, self.chain)),
        }
    }
}

impl Processor for Engine {
    fn step(&mut self, now: Cycle) -> Progress {
        self.now = now;
        let op = self.compiled.ops()[self.pc];
        if self.try_issue(op) {
            self.pc += 1;
            Progress::Advanced
        } else {
            self.dispatch_stalls += 1;
            Progress::Stalled
        }
    }

    fn is_done(&self) -> bool {
        self.pc >= self.compiled.len()
    }

    /// The earliest cycle strictly after `now` at which anything
    /// observable can change: a sampled state flag flipping (a functional
    /// unit or address port freeing), or the stalled front instruction's
    /// gates all opening. The dispatcher is the machine's only actor, so
    /// its wake time — the max over the specific gate times
    /// [`Engine::try_issue`] checks, each monotone while the machine
    /// stalls — is exact: the jump lands on the issue cycle itself
    /// instead of on every intermediate timer. `None` when the machine is
    /// fully quiet (the stalled instruction can then never issue —
    /// impossible for valid traces).
    fn next_event_after(&self, now: Cycle) -> Option<Cycle> {
        let mut next = dva_isa::EarliestAfter::new(now);
        // Sample-exactness events: the Figure 1 state tuple.
        next.consider(self.fu1.free_at());
        next.consider(self.fu2.free_at());
        next.consider_opt(self.mem.next_free_at(now));
        // The stalled instruction's precise wake time.
        next.consider(self.wake_at(now));
        next.get()
    }

    fn quiesce_at(&self) -> Cycle {
        self.regs
            .quiesce_at()
            .max(self.sb.quiesce_at())
            .max(self.fu1.free_at())
            .max(self.fu2.free_at())
            .max(self.mem.quiesce_at())
    }

    fn sample(&self, now: Cycle, obs: &mut Observers) {
        obs.record_state(self.state_at(now));
    }

    fn account_skipped(&mut self, _now: Cycle, skipped: u64) {
        self.dispatch_stalls += skipped;
    }

    fn report(&self, cycles: Cycle) -> Report {
        Report {
            insts: self.compiled.len() as u64,
            traffic: self.mem.traffic(),
            bus_utilization: self.mem.utilization(cycles),
            port_utilization: self.mem.port_utilizations(cycles),
            cache_hit_rate: self.mem.cache().hit_rate(),
            cache: self.mem.cache().stats(),
            stall_cycles: self.dispatch_stalls,
        }
    }

    fn deadlock_context(&self, _now: Cycle) -> String {
        format!(
            "REF pc={}/{} cannot issue {:?}",
            self.pc,
            self.compiled.len(),
            self.compiled.program().insts()[self.pc],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dva_isa::{Inst, ReduceOp, ScalarReg, VOperand, VectorAccess, VectorOp, VectorReg};
    use dva_testutil::{vadd, vl, vload};

    fn run(insts: Vec<Inst>, latency: u64) -> RefResult {
        let program = Program::from_insts("t", insts);
        RefSim::new(RefParams::with_latency(latency)).run(&program)
    }

    /// A lockstep batch over mixed latencies and memory models must
    /// produce, lane for lane, the bytes of sequential runs.
    #[test]
    fn batched_lanes_are_byte_identical_to_sequential_runs() {
        let program = Program::from_insts(
            "t",
            vec![
                vload(VectorReg::V0, 0x1000, 64),
                vload(VectorReg::V2, 0x9000, 64),
                vadd(VectorReg::V4, VectorReg::V0, VectorReg::V2, 64),
            ],
        );
        let compiled = Arc::new(CompiledProgram::compile(&program));
        let mut banked = RefParams::with_latency(30);
        banked.memory.model = dva_memory::MemoryModelKind::Banked {
            banks: 8,
            bank_busy: 8,
        };
        let sims: Vec<RefSim> = [
            RefParams::with_latency(1),
            RefParams::with_latency(100),
            banked,
        ]
        .into_iter()
        .map(RefSim::new)
        .collect();
        let expected: Vec<RefResult> = sims.iter().map(|sim| sim.run_compiled(&compiled)).collect();
        for lanes in 1..=sims.len() {
            let mut runner = RefRunner::new();
            let batch = runner.run_batch(&sims[..lanes], &compiled);
            assert_eq!(batch, expected[..lanes], "lane count {lanes}");
            assert_eq!(runner.run_batch(&sims[..lanes], &compiled), batch);
        }
        assert!(RefRunner::new().run_batch(&[], &compiled).is_empty());
    }

    #[test]
    fn single_vector_load_pays_latency_plus_vl() {
        // Load issues at cycle 0; data complete at L + VL = 30 + 64.
        let r = run(vec![vload(VectorReg::V0, 0x1000, 64)], 30);
        assert_eq!(r.cycles, 94);
        assert_eq!(r.traffic.vector_load_elems, 64);
    }

    #[test]
    fn two_loads_serialize_on_the_bus() {
        // Bus: [0,64) then [64,128); second data complete at 64+30+64.
        let r = run(
            vec![
                vload(VectorReg::V0, 0x1000, 64),
                vload(VectorReg::V2, 0x9000, 64),
            ],
            30,
        );
        assert_eq!(r.cycles, 64 + 30 + 64);
    }

    #[test]
    fn load_use_does_not_chain() {
        // add must wait for the load to be complete at 30+64=94; add then
        // takes startup+64 more.
        let startup = UarchParams::default().fu_startup;
        let r = run(
            vec![
                vload(VectorReg::V0, 0x1000, 64),
                vload(VectorReg::V2, 0x9000, 64),
                vadd(VectorReg::V4, VectorReg::V0, VectorReg::V2, 64),
            ],
            30,
        );
        // Second load complete at 64+30+64 = 158; add: 158+startup+64.
        assert_eq!(r.cycles, 158 + startup + 64);
    }

    #[test]
    fn fu_to_fu_chaining_overlaps_execution() {
        let startup = UarchParams::default().fu_startup;
        // Two dependent adds on pre-ready registers: the second chains one
        // cycle after the first's first element.
        let r = run(
            vec![
                vadd(VectorReg::V2, VectorReg::V0, VectorReg::V1, 64),
                vadd(VectorReg::V4, VectorReg::V2, VectorReg::V6, 64),
            ],
            1,
        );
        // First add: issues at 0 on FU1, first element at `startup`, done
        // at startup+64. Second chains at startup+1 (on FU2, FU1 is busy)
        // and completes at (startup+1) + startup + 64.
        assert_eq!(r.cycles, 2 * startup + 1 + 64);
    }

    #[test]
    fn store_chains_from_functional_unit() {
        let startup = UarchParams::default().fu_startup;
        let r = run(
            vec![
                vadd(VectorReg::V2, VectorReg::V0, VectorReg::V1, 32),
                Inst::VStore {
                    src: VectorReg::V2,
                    access: VectorAccess::unit(0x2000, vl(32)),
                },
            ],
            100,
        );
        // Store chains at startup+1 and holds the bus 32 cycles; stores
        // hide memory latency.
        assert_eq!(r.cycles, startup + 1 + 32);
        assert_eq!(r.traffic.vector_store_elems, 32);
    }

    #[test]
    fn scalar_code_runs_at_one_ipc() {
        let insts: Vec<Inst> = (0..100)
            .map(|_| Inst::SAlu {
                dst: ScalarReg::scalar(2),
                src1: Some(ScalarReg::scalar(2)),
                src2: None,
            })
            .collect();
        let r = run(insts, 50);
        // 100 instructions at 1 per cycle; the last result lands exactly
        // as the clock stops.
        assert_eq!(r.cycles, 100);
        assert!((r.ipc() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dependent_scalar_load_blocks_dispatch() {
        let r = run(
            vec![
                Inst::SLoad {
                    dst: ScalarReg::scalar(3),
                    addr: 0x100,
                },
                Inst::SAlu {
                    dst: ScalarReg::scalar(2),
                    src1: Some(ScalarReg::scalar(3)),
                    src2: None,
                },
            ],
            40,
        );
        // Miss: data at cycle 40; ALU issues at 40, result at 41.
        assert_eq!(r.cycles, 41);
        assert!(r.dispatch_stalls() > 30);
    }

    #[test]
    fn reduction_result_reaches_scoreboard() {
        let startup = UarchParams::default().fu_startup;
        let r = run(
            vec![
                Inst::VReduce {
                    op: ReduceOp::Sum,
                    dst: ScalarReg::scalar(1),
                    src: VectorReg::V0,
                    vl: vl(16),
                },
                Inst::SAlu {
                    dst: ScalarReg::scalar(2),
                    src1: Some(ScalarReg::scalar(1)),
                    src2: None,
                },
            ],
            1,
        );
        // Reduce result at startup+16+1; SAlu one cycle later.
        assert_eq!(r.cycles, startup + 16 + 2);
    }

    #[test]
    fn mul_only_issues_on_fu2() {
        // A mul and an add can overlap (different units); two muls cannot.
        let two_muls = run(
            vec![
                Inst::VCompute {
                    op: VectorOp::Mul,
                    dst: VectorReg::V2,
                    src1: VOperand::Reg(VectorReg::V0),
                    src2: Some(VOperand::Reg(VectorReg::V1)),
                    vl: vl(64),
                },
                Inst::VCompute {
                    op: VectorOp::Mul,
                    dst: VectorReg::V4,
                    src1: VOperand::Reg(VectorReg::V6),
                    src2: Some(VOperand::Reg(VectorReg::V7)),
                    vl: vl(64),
                },
            ],
            1,
        );
        let mul_add = run(
            vec![
                Inst::VCompute {
                    op: VectorOp::Mul,
                    dst: VectorReg::V2,
                    src1: VOperand::Reg(VectorReg::V0),
                    src2: Some(VOperand::Reg(VectorReg::V1)),
                    vl: vl(64),
                },
                vadd(VectorReg::V4, VectorReg::V6, VectorReg::V7, 64),
            ],
            1,
        );
        assert!(two_muls.cycles > mul_add.cycles);
    }

    #[test]
    fn state_breakdown_accounts_every_cycle() {
        let program = dva_workloads::Benchmark::Arc2d.program(dva_workloads::Scale::Quick);
        let r = RefSim::new(RefParams::with_latency(30)).run(&program);
        assert_eq!(r.states.total_cycles(), r.cycles);
        assert!(r.states.idle_cycles() < r.cycles);
        assert!(r.bus_utilization > 0.0 && r.bus_utilization <= 1.0);
    }

    #[test]
    fn longer_latency_never_speeds_up_execution() {
        let program = dva_workloads::Benchmark::Trfd.program(dva_workloads::Scale::Quick);
        let mut prev = 0;
        for latency in [1, 10, 30, 70, 100] {
            let r = RefSim::new(RefParams::with_latency(latency)).run(&program);
            assert!(
                r.cycles >= prev,
                "latency {latency} ran faster: {} < {prev}",
                r.cycles
            );
            prev = r.cycles;
        }
    }

    #[test]
    fn branch_waits_for_condition() {
        let r = run(
            vec![
                Inst::SLoad {
                    dst: ScalarReg::scalar(3),
                    addr: 0x100,
                },
                Inst::Branch {
                    cond: ScalarReg::scalar(3),
                    taken: true,
                },
            ],
            25,
        );
        // Branch issues once the miss returns at cycle 25.
        assert_eq!(r.cycles, 26);
    }
}
