//! Trace statistics: the raw material of the paper's Table 1.

use dva_isa::{Inst, Program};

/// Address above which generated traces place vector spill slots (see
/// `ArrayAllocator`).
const SPILL_REGION_START: u64 = 0x8000_0000;
const SPILL_REGION_END: u64 = 0xC000_0000;

/// Whether an instruction is a vector spill access (load or store of a
/// compiler-generated spill slot).
pub fn is_spill_access(inst: &Inst) -> bool {
    let base = match inst {
        Inst::VLoad { access, .. } | Inst::VStore { access, .. } => access.base,
        _ => return false,
    };
    (SPILL_REGION_START..SPILL_REGION_END).contains(&base)
}

/// Fraction of vector memory *operations* (elements moved) that are spill
/// loads/stores — the quantity the paper quotes in Section 7 (e.g. 69.5%
/// for BDNA). Spills of vector registers are themselves vector memory
/// operations, so the fraction is taken over vector memory traffic.
pub fn spill_fraction(program: &Program) -> f64 {
    let mut mem_ops = 0u64;
    let mut spill_ops = 0u64;
    for inst in program.insts() {
        if inst.is_memory() && inst.is_vector() {
            mem_ops += inst.operations();
            if is_spill_access(inst) {
                spill_ops += inst.operations();
            }
        }
    }
    if mem_ops == 0 {
        0.0
    } else {
        spill_ops as f64 / mem_ops as f64
    }
}

/// Count of vector memory instructions that re-access an address range
/// written by an earlier vector store of the *identical* shape — an upper
/// bound on bypass opportunities in a trace.
pub fn identical_reuse_pairs(program: &Program) -> u64 {
    use std::collections::HashMap;
    let mut last_store: HashMap<(u64, i64, u32), u64> = HashMap::new();
    let mut pairs = 0;
    for inst in program.insts() {
        match inst {
            Inst::VStore { access, .. } => {
                let key = (access.base, access.stride.elems(), access.vl.get());
                *last_store.entry(key).or_insert(0) += 1;
            }
            Inst::VLoad { access, .. } => {
                let key = (access.base, access.stride.elems(), access.vl.get());
                if let Some(count) = last_store.get_mut(&key) {
                    if *count > 0 {
                        *count -= 1;
                        pairs += 1;
                    }
                }
            }
            _ => {}
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use dva_isa::{ProgramBuilder, VectorAccess, VectorReg};
    use dva_testutil::vl;

    #[test]
    fn spill_fraction_counts_only_spill_region() {
        let mut b = ProgramBuilder::new("p");
        b.push(Inst::VLoad {
            dst: VectorReg::V0,
            access: VectorAccess::unit(0x0100_0000, vl(8)),
        });
        b.push(Inst::VStore {
            src: VectorReg::V0,
            access: VectorAccess::unit(0x8000_0000, vl(8)),
        });
        b.push(Inst::VLoad {
            dst: VectorReg::V1,
            access: VectorAccess::unit(0x8000_0000, vl(8)),
        });
        b.push(Inst::SLoad {
            dst: dva_isa::ScalarReg::scalar(0),
            addr: 0xC000_0000,
        });
        let p = b.finish();
        // Vector memory ops: 8 real + 16 spill (the scalar load does not
        // count); spill fraction = 16/24.
        assert!((spill_fraction(&p) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn identical_reuse_requires_matching_shape() {
        let mut b = ProgramBuilder::new("p");
        b.push(Inst::VStore {
            src: VectorReg::V0,
            access: VectorAccess::unit(0x1000, vl(16)),
        });
        b.push(Inst::VLoad {
            dst: VectorReg::V1,
            access: VectorAccess::unit(0x1000, vl(16)),
        });
        b.push(Inst::VLoad {
            dst: VectorReg::V2,
            access: VectorAccess::unit(0x1000, vl(8)), // different VL
        });
        let p = b.finish();
        assert_eq!(identical_reuse_pairs(&p), 1);
    }

    #[test]
    fn empty_program_has_zero_spill_fraction() {
        let p = ProgramBuilder::new("e").finish();
        assert_eq!(spill_fraction(&p), 0.0);
    }
}
