//! Models of the six Perfect Club programs the paper studies.
//!
//! We cannot run the original Fortran sources through the Convex compiler,
//! so each program is modeled as a mixture of loop kernels and scalar
//! sections whose *trace-level characteristics* are calibrated against the
//! paper's own data:
//!
//! * Table 1 — degree of vectorization, average vector length and the
//!   scalar/vector instruction split;
//! * Section 7 — the fraction of memory operations that are spill code
//!   (BDNA 69.5%, ARC2D 12.2%, FLO52 11.9%, SPEC77 3%);
//! * Section 5 — DYFESM's structure: one loop with a 3-chime resource
//!   bound covering 68% of vector operations and two reduction loops with
//!   a distance-1 self-dependence (7.1% each).
//!
//! Counts are reproduced at roughly 1/40,000 of the paper's dynamic
//! instruction counts; the calibrated quantities are the *ratios*.

use crate::compile::{LoopSpec, Phase, ProgramSpec, ScalarSection, StripOverhead};
use crate::kernel::Kernel;
use dva_isa::{Program, ReduceOp, VectorOp};

/// Trace volume knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Scale {
    /// Very small traces for unit tests and Criterion benches.
    Quick,
    /// The default experiment size (tens of thousands of instructions).
    #[default]
    Default,
    /// Four times the default, for smoother statistics.
    Full,
}

impl Scale {
    fn repeat(self, base: u32) -> u32 {
        match self {
            Scale::Quick => (base / 8).max(1),
            Scale::Default => base,
            Scale::Full => base * 4,
        }
    }

    /// The stable lowercase spelling of this scale, used on the wire and
    /// in result artifacts (`quick` / `default` / `full`).
    pub fn name(self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Default => "default",
            Scale::Full => "full",
        }
    }

    /// Parses a [`Scale::name`] spelling.
    pub fn from_name(name: &str) -> Option<Scale> {
        match name {
            "quick" => Some(Scale::Quick),
            "default" => Some(Scale::Default),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }
}

/// The Table 1 row the paper reports for a program (dynamic counts in
/// millions). `v_insts`/`v_ops` for DYFESM and SPEC77 are estimates — the
/// scanned table is partially illegible — chosen to be consistent with the
/// paper's prose (both have "relatively small vector lengths" and are
/// > 70% vectorized).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperRow {
    /// Basic blocks executed (millions).
    pub basic_blocks: f64,
    /// Scalar instructions (millions).
    pub scalar_insts: f64,
    /// Vector instructions (millions).
    pub vector_insts: f64,
    /// Vector operations (millions).
    pub vector_ops: f64,
    /// Degree of vectorization (%).
    pub vectorization: f64,
    /// Average vector length.
    pub avg_vl: f64,
}

/// The six benchmark programs selected by the paper (vectorization above
/// 70%).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Benchmark {
    Arc2d,
    Flo52,
    Bdna,
    Trfd,
    Dyfesm,
    Spec77,
}

impl Benchmark {
    /// All six, in the paper's Figure 3 order.
    pub const ALL: [Benchmark; 6] = [
        Benchmark::Bdna,
        Benchmark::Arc2d,
        Benchmark::Dyfesm,
        Benchmark::Flo52,
        Benchmark::Trfd,
        Benchmark::Spec77,
    ];

    /// The program's name as the paper spells it.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Arc2d => "ARC2D",
            Benchmark::Flo52 => "FLO52",
            Benchmark::Bdna => "BDNA",
            Benchmark::Trfd => "TRFD",
            Benchmark::Dyfesm => "DYFESM",
            Benchmark::Spec77 => "SPEC77",
        }
    }

    /// Looks a benchmark up by (case-insensitive) name.
    pub fn from_name(name: &str) -> Option<Benchmark> {
        Benchmark::ALL
            .into_iter()
            .find(|b| b.name().eq_ignore_ascii_case(name))
    }

    /// The paper's Table 1 row.
    pub fn paper_row(self) -> PaperRow {
        match self {
            Benchmark::Arc2d => PaperRow {
                basic_blocks: 5.2,
                scalar_insts: 63.3,
                vector_insts: 42.9,
                vector_ops: 4086.5,
                vectorization: 98.5,
                avg_vl: 95.0,
            },
            Benchmark::Flo52 => PaperRow {
                basic_blocks: 5.7,
                scalar_insts: 37.7,
                vector_insts: 22.8,
                vector_ops: 1242.0,
                vectorization: 97.1,
                avg_vl: 54.0,
            },
            // The scanned Table 1 prints BDNA's scalar count as "23.9",
            // which is inconsistent with the stated 86.9% vectorization
            // (1589.9/(S+1589.9) = 0.869 requires S ≈ 239.7). We use the
            // self-consistent value.
            Benchmark::Bdna => PaperRow {
                basic_blocks: 47.0,
                scalar_insts: 239.7,
                vector_insts: 19.6,
                vector_ops: 1589.9,
                vectorization: 86.9,
                avg_vl: 81.0,
            },
            Benchmark::Trfd => PaperRow {
                basic_blocks: 44.8,
                scalar_insts: 352.2,
                vector_insts: 49.5,
                vector_ops: 1095.3,
                vectorization: 75.7,
                avg_vl: 22.0,
            },
            Benchmark::Dyfesm => PaperRow {
                basic_blocks: 34.5,
                scalar_insts: 236.1,
                vector_insts: 50.9,  // estimated
                vector_ops: 1731.4,  // estimated
                vectorization: 88.0, // estimated
                avg_vl: 34.0,        // estimated
            },
            Benchmark::Spec77 => PaperRow {
                basic_blocks: 166.2,
                scalar_insts: 1147.8,
                vector_insts: 158.3, // estimated
                vector_ops: 4591.2,  // estimated
                vectorization: 80.0, // estimated
                avg_vl: 29.0,        // estimated
            },
        }
    }

    /// The spill fraction the paper reports in Section 7 (fraction of all
    /// memory operations that are spill loads/stores), where stated.
    pub fn paper_spill_fraction(self) -> Option<f64> {
        match self {
            Benchmark::Bdna => Some(0.695),
            Benchmark::Arc2d => Some(0.122),
            Benchmark::Flo52 => Some(0.119),
            Benchmark::Spec77 => Some(0.03),
            Benchmark::Trfd | Benchmark::Dyfesm => None,
        }
    }

    /// A deterministic seed per program, so traces are reproducible.
    fn seed(self) -> u64 {
        match self {
            Benchmark::Arc2d => 0xa2c2d,
            Benchmark::Flo52 => 0xf1052,
            Benchmark::Bdna => 0xbd7a,
            Benchmark::Trfd => 0x79fd,
            Benchmark::Dyfesm => 0xd1fe,
            Benchmark::Spec77 => 0x59ec77,
        }
    }

    /// The program's synthetic trace at the given scale.
    ///
    /// Generation is deterministic, so the trace is built once per
    /// process and served from a cache afterwards — the returned
    /// [`Program`] shares the cached instruction storage (programs are
    /// reference-counted), so repeated sweeps pay nothing for the
    /// program axis.
    pub fn program(self, scale: Scale) -> Program {
        use std::collections::HashMap;
        use std::sync::{Mutex, OnceLock};
        static CACHE: OnceLock<Mutex<HashMap<(Benchmark, Scale), Program>>> = OnceLock::new();
        let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        if let Some(program) = cache.lock().unwrap().get(&(self, scale)) {
            return program.clone();
        }
        // Generate outside the lock: traces take long enough to build
        // that blocking other worker threads on the mutex would serialize
        // a parallel sweep's startup.
        let program = self.generate(scale);
        cache
            .lock()
            .unwrap()
            .entry((self, scale))
            .or_insert(program)
            .clone()
    }

    /// Builds the program's synthetic trace at the given scale, bypassing
    /// the cache (generation is deterministic: this always equals
    /// [`Benchmark::program`]).
    pub fn generate(self, scale: Scale) -> Program {
        self.spec(scale).compile(self.seed())
    }

    /// The phase mixture modeling this program.
    pub fn spec(self, scale: Scale) -> ProgramSpec {
        match self {
            Benchmark::Arc2d => arc2d(scale),
            Benchmark::Flo52 => flo52(scale),
            Benchmark::Bdna => bdna(scale),
            Benchmark::Trfd => trfd(scale),
            Benchmark::Dyfesm => dyfesm(scale),
            Benchmark::Spec77 => spec77(scale),
        }
    }
}

// ---------------------------------------------------------------------------
// Kernel library
// ---------------------------------------------------------------------------

/// `d = (a + b) * s + c`: a 3-load stencil-ish sweep (pressure 3,
/// pipelineable).
fn k_stencil(tag: &str) -> Kernel {
    let mut k = Kernel::new(format!("stencil_{tag}"));
    let a = k.load(format!("{tag}_a"));
    let b = k.load(format!("{tag}_b"));
    let c = k.load(format!("{tag}_c"));
    let t1 = k.add(a, b);
    let t2 = k.mul_scalar(t1);
    let t3 = k.add(t2, c);
    k.store(t3, format!("{tag}_d"));
    k
}

/// `c = a + b`: the minimal 3-chime memory-bound loop (2 loads + 1 store
/// on one memory port cannot beat 3 chimes).
fn k_triad(tag: &str) -> Kernel {
    let mut k = Kernel::new(format!("triad_{tag}"));
    let a = k.load(format!("{tag}_a"));
    let b = k.load(format!("{tag}_b"));
    let c = k.add(a, b);
    k.store(c, format!("{tag}_c"));
    k
}

/// A division/square-root heavy loop: FU2-bound.
fn k_divsqrt(tag: &str) -> Kernel {
    let mut k = Kernel::new(format!("divsqrt_{tag}"));
    let a = k.load(format!("{tag}_a"));
    let b = k.load(format!("{tag}_b"));
    let q = k.binary(VectorOp::Div, a, b);
    let r = k.unary(VectorOp::Sqrt, q);
    let t = k.mul_scalar(r);
    k.store(t, format!("{tag}_q"));
    k
}

/// A compute-bound kernel (more FU2 chime-time than memory chime-time):
/// fills the vector load data queue because the address processor runs
/// ahead of the vector processor.
fn k_compute_bound(tag: &str) -> Kernel {
    let mut k = Kernel::new(format!("compute_{tag}"));
    let u = k.load(format!("{tag}_u"));
    let v = k.load(format!("{tag}_v"));
    let m1 = k.mul(u, v);
    let m2 = k.mul_scalar(m1);
    let a1 = k.add(m2, v);
    let m3 = k.mul_scalar(a1);
    let m4 = k.mul(m3, a1);
    let a2 = k.add_scalar(m4);
    k.store(a2, format!("{tag}_w"));
    k
}

/// A wide expression with `loads` arrays all live across a long window:
/// register pressure far above 8 forces the allocator to spill, producing
/// the same-iteration store→reload pairs the bypass mechanism feeds on.
fn k_fat(tag: &str, loads: usize) -> Kernel {
    let mut k = Kernel::new(format!("fat{loads}_{tag}"));
    let ls: Vec<_> = (0..loads).map(|i| k.load(format!("{tag}_l{i}"))).collect();
    // First phase: scale every input (keeps all inputs live — they are
    // re-read in the reversed second phase).
    let ms: Vec<_> = ls.iter().map(|&l| k.mul_scalar(l)).collect();
    // Second phase: combine m[i] with l[n-1-i], so every l survives the
    // whole first phase.
    let mut acc = None;
    for (i, &m) in ms.iter().enumerate() {
        let pair = k.add(m, ls[loads - 1 - i]);
        acc = Some(match acc {
            None => pair,
            Some(a) => k.add(a, pair),
        });
    }
    k.store(acc.expect("at least one load"), format!("{tag}_out"));
    k
}

/// An in-place update *without* a recurrence: every strip reloads the
/// region the previous strip stored (workspace arrays rewritten per
/// iteration). The cross-iteration store→load pairs are identical
/// accesses — bypass candidates of the paper's "different iterations of
/// the same loop" kind.
fn k_inplace(tag: &str) -> Kernel {
    let mut k = Kernel::new(format!("inplace_{tag}"));
    let x = k.load_in_place(format!("{tag}_ws"));
    let y = k.load(format!("{tag}_in"));
    let t1 = k.mul_scalar(x);
    let t2 = k.add(t1, y);
    k.store_in_place(t2, format!("{tag}_ws"));
    k
}

/// An in-place update with a recurrent reduction: `x = f(x)` where the
/// reduction result feeds the next strip's address computation. This is
/// the DYFESM pattern: the scalar, address and vector processors are
/// forced into lockstep, and the in-place store→load pair is a
/// cross-iteration bypass candidate.
fn k_recurrence(tag: &str) -> Kernel {
    let mut k = Kernel::new(format!("rec_{tag}"));
    let x = k.load_in_place(format!("{tag}_state"));
    let t = k.mul_scalar(x);
    k.reduce_recurrent(ReduceOp::Sum, t);
    k.store_in_place(t, format!("{tag}_state"));
    k
}

/// A gather/scatter kernel (indices loaded, data gathered, results
/// scattered): exercises the conservative disambiguation path.
fn k_gather(tag: &str) -> Kernel {
    let mut k = Kernel::new(format!("gather_{tag}"));
    let idx = k.load(format!("{tag}_idx"));
    let g = k.gather(idx, format!("{tag}_tbl"));
    let t = k.add_scalar(g);
    k.scatter(t, idx, format!("{tag}_tbl"));
    k
}

fn oh(addr_ops: u32, scalar_ops: u32, scalar_loads: u32) -> StripOverhead {
    StripOverhead {
        addr_ops,
        scalar_ops,
        scalar_loads,
    }
}

fn lp(kernel: Kernel, strips: u32, vl: u32, overhead: StripOverhead) -> Phase {
    Phase::Loop(LoopSpec {
        kernel,
        strips,
        vl,
        software_pipeline: true,
        overhead,
    })
}

fn lp_nopipe(kernel: Kernel, strips: u32, vl: u32, overhead: StripOverhead) -> Phase {
    Phase::Loop(LoopSpec {
        kernel,
        strips,
        vl,
        software_pipeline: false,
        overhead,
    })
}

fn scal(insts: u32, memory_fraction: f64) -> Phase {
    Phase::Scalar(ScalarSection {
        insts,
        memory_fraction,
    })
}

// ---------------------------------------------------------------------------
// Program mixtures
// ---------------------------------------------------------------------------

/// ARC2D: implicit finite-difference code. Very long vectors (VL 95),
/// 98.5% vectorized, memory bound, 12.2% spill.
fn arc2d(scale: Scale) -> ProgramSpec {
    ProgramSpec {
        name: "ARC2D".into(),
        repeat: scale.repeat(36),
        phases: vec![
            lp(k_stencil("xi"), 18, 95, oh(4, 2, 1)),
            lp(k_triad("res"), 12, 95, oh(4, 2, 0)),
            lp_nopipe(k_stencil("eta"), 10, 95, oh(4, 2, 1)),
            lp_nopipe(k_fat("visc", 6), 2, 95, oh(4, 2, 1)),
            scal(150, 0.3),
        ],
    }
}

/// FLO52: transonic flow solver. VL 54, 97.1% vectorized, 11.9% spill,
/// includes an FU2-heavy dissipation loop.
fn flo52(scale: Scale) -> ProgramSpec {
    ProgramSpec {
        name: "FLO52".into(),
        repeat: scale.repeat(40),
        phases: vec![
            lp_nopipe(k_stencil("flux"), 12, 54, oh(4, 2, 1)),
            // The dissipation and update loops are simple enough for the
            // compiler to software-pipeline (pressure fits half the
            // register file), so the reference machine hides part of the
            // memory latency on them.
            lp(k_divsqrt("diss"), 10, 54, oh(4, 2, 0)),
            lp(k_triad("upd"), 12, 54, oh(4, 2, 0)),
            lp_nopipe(k_fat("stage", 6), 2, 54, oh(4, 2, 1)),
            scal(130, 0.3),
        ],
    }
}

/// BDNA: molecular dynamics of DNA. VL 81, 86.9% vectorized and
/// spill-dominated: 69.5% of all memory operations are spill code.
fn bdna(scale: Scale) -> ProgramSpec {
    ProgramSpec {
        name: "BDNA".into(),
        repeat: scale.repeat(8),
        phases: vec![
            lp_nopipe(k_fat("force", 18), 2, 81, oh(4, 2, 1)),
            scal(3000, 0.3),
            lp_nopipe(k_triad("pos"), 3, 81, oh(4, 2, 0)),
            lp_nopipe(k_fat("pot", 16), 2, 81, oh(4, 2, 1)),
            scal(3000, 0.35),
        ],
    }
}

/// TRFD: two-electron integral transformation. Short vectors (VL 22),
/// only 75.7% vectorized (scalar sections dominate the instruction count)
/// and heavy same-iteration reuse.
fn trfd(scale: Scale) -> ProgramSpec {
    ProgramSpec {
        name: "TRFD".into(),
        repeat: scale.repeat(12),
        phases: vec![
            // TRFD's scalar work is interleaved with its short-vector
            // loops (index bookkeeping for the integral transformation),
            // so most of it lives in per-strip overhead rather than in
            // separate scalar sections — this is what the decoupled
            // machine overlaps with the memory port.
            lp_nopipe(k_fat("xform", 8), 2, 22, oh(5, 6, 2)),
            scal(650, 0.25),
            lp_nopipe(k_inplace("pass1"), 10, 22, oh(6, 8, 3)),
            scal(650, 0.25),
            lp_nopipe(k_stencil("int"), 16, 22, oh(6, 8, 3)),
            lp_nopipe(k_inplace("pass2"), 10, 22, oh(6, 8, 3)),
        ],
    }
}

/// DYFESM: structural dynamics. One 3-chime-bound loop carries 68% of the
/// vector operations; two reduction loops (7.1% each) have a distance-1
/// self-dependence that forces lockstep execution; in-place updates give
/// heavy cross-iteration reuse.
fn dyfesm(scale: Scale) -> ProgramSpec {
    // Vector op budget per pass: triad 4*34*strips. With strips chosen so
    // loop1 ≈ 68% and each recurrence loop ≈ 7%.
    ProgramSpec {
        name: "DYFESM".into(),
        repeat: scale.repeat(30),
        phases: vec![
            // Loop 1 (~68% of vector operations): already at its 3-chime
            // resource bound; the compiler software-pipelines it, so the
            // reference machine achieves the bound too and decoupling
            // cannot help.
            lp(k_triad("solve"), 22, 34, oh(3, 2, 1)),
            // Loops 2 and 3 (~7% each): reductions with a distance-1
            // self-dependence; all processors run in lockstep.
            lp_nopipe(k_recurrence("r1"), 4, 34, oh(2, 1, 0)),
            scal(220, 0.25),
            lp_nopipe(k_recurrence("r2"), 4, 34, oh(2, 1, 0)),
            lp_nopipe(k_inplace("ws"), 8, 34, oh(3, 2, 1)),
            scal(220, 0.25),
        ],
    }
}

/// SPEC77: atmospheric flow simulation. Small vectors (VL 29), low spill
/// (3%), scalar-heavy, and its compute-bound spectral loops keep many
/// independent loads in flight — it is the program that actually uses a
/// deep vector load data queue (Figure 6).
fn spec77(scale: Scale) -> ProgramSpec {
    ProgramSpec {
        name: "SPEC77".into(),
        repeat: scale.repeat(10),
        phases: vec![
            // Spectral transforms carry their index arithmetic with them:
            // heavy per-strip scalar overhead that the decoupled machine
            // overlaps with the compute-bound vector work.
            lp_nopipe(k_compute_bound("spec"), 20, 29, oh(6, 8, 3)),
            scal(930, 0.25),
            lp_nopipe(k_compute_bound("leg"), 16, 29, oh(6, 8, 3)),
            lp_nopipe(k_gather("wave"), 6, 29, oh(6, 8, 3)),
            scal(930, 0.25),
            lp_nopipe(k_triad("tend"), 10, 29, oh(6, 8, 3)),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::spill_fraction;

    #[test]
    fn all_programs_build_and_are_nonempty() {
        for b in Benchmark::ALL {
            let p = b.program(Scale::Quick);
            assert!(!p.is_empty(), "{} empty", b.name());
            assert!(p.basic_blocks() > 2);
        }
    }

    #[test]
    fn names_round_trip() {
        for b in Benchmark::ALL {
            assert_eq!(Benchmark::from_name(b.name()), Some(b));
            assert_eq!(Benchmark::from_name(&b.name().to_lowercase()), Some(b));
        }
        assert_eq!(Benchmark::from_name("nope"), None);
    }

    #[test]
    fn traces_are_deterministic() {
        for b in Benchmark::ALL {
            assert_eq!(b.program(Scale::Quick), b.program(Scale::Quick));
        }
    }

    #[test]
    fn scale_orders_trace_sizes() {
        let q = Benchmark::Arc2d.program(Scale::Quick).len();
        let d = Benchmark::Arc2d.program(Scale::Default).len();
        let f = Benchmark::Arc2d.program(Scale::Full).len();
        assert!(q < d && d < f);
    }

    /// The central calibration test: vectorization and average VL must
    /// match Table 1 of the paper.
    #[test]
    fn table1_ratios_match_paper() {
        for b in Benchmark::ALL {
            let p = b.program(Scale::Default);
            let s = p.summary();
            let target = b.paper_row();
            let vect = s.vectorization();
            let vl = s.avg_vector_length();
            assert!(
                (vect - target.vectorization).abs() < 3.0,
                "{}: vectorization {vect:.1}% vs paper {:.1}%",
                b.name(),
                target.vectorization
            );
            assert!(
                (vl - target.avg_vl).abs() / target.avg_vl < 0.15,
                "{}: avg VL {vl:.1} vs paper {:.1}",
                b.name(),
                target.avg_vl
            );
        }
    }

    /// Spill fractions should be in the neighbourhood the paper reports.
    #[test]
    fn spill_fractions_match_paper() {
        for b in Benchmark::ALL {
            let Some(target) = b.paper_spill_fraction() else {
                continue;
            };
            let p = b.program(Scale::Default);
            let measured = spill_fraction(&p);
            assert!(
                (measured - target).abs() < 0.12,
                "{}: spill fraction {measured:.3} vs paper {target:.3}",
                b.name()
            );
        }
    }

    #[test]
    fn dyfesm_contains_recurrence_loops() {
        let spec = Benchmark::Dyfesm.spec(Scale::Quick);
        let rec_loops = spec
            .phases
            .iter()
            .filter(|p| matches!(p, Phase::Loop(l) if l.kernel.has_recurrence()))
            .count();
        assert_eq!(rec_loops, 2);
    }
}
