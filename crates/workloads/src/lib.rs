//! Synthetic workload generation for the *Decoupled Vector Architectures*
//! reproduction.
//!
//! The paper drives its simulators with Dixie-generated traces of the
//! Perfect Club programs compiled by the Convex Fortran compiler. This
//! crate replaces that pipeline end to end:
//!
//! 1. loop bodies are written in a small [`Kernel`] DSL over virtual
//!    vector values;
//! 2. the [compiler](crate::compile) strip-mines each loop, allocates the
//!    eight architectural vector registers (inserting spill stores and
//!    reloads — the bypass fodder of the paper's Section 7), optionally
//!    software-pipelines the loads, and adds per-strip scalar overhead;
//! 3. the six [`Benchmark`] models mix kernels and scalar sections so
//!    that the resulting traces match the paper's own characterization of
//!    each program (Table 1 ratios, spill fractions, loop structure).
//!
//! # Examples
//!
//! ```
//! use dva_workloads::{Benchmark, Scale};
//!
//! let program = Benchmark::Arc2d.program(Scale::Quick);
//! let summary = program.summary();
//! assert!(summary.vectorization() > 90.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arrays;
pub mod compile;
mod kernel;
mod programs;
pub mod stats;

pub use arrays::{ArrayAllocator, ARRAY_REGION_BYTES, SPILL_SLOT_BYTES};
pub use compile::{LoopSpec, Phase, ProgramSpec, ScalarSection, StripOverhead};
pub use kernel::{Advance, KOperand, KStmt, Kernel, VVal};
pub use programs::{Benchmark, PaperRow, Scale};
