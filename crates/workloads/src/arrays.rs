//! Address-space layout for generated workloads.

use std::collections::HashMap;

/// Assigns non-overlapping base addresses to named arrays, spill slots and
/// scalar data.
///
/// Layout (byte addresses):
///
/// * arrays: 4 MiB regions from `0x0100_0000` upward;
/// * vector spill slots: 2 KiB slots (one full vector register plus
///   padding) from `0x8000_0000`;
/// * scalar data: from `0xC000_0000`.
///
/// Keeping the regions disjoint guarantees that memory-range
/// disambiguation conflicts only arise from *intended* reuse (spill
/// reloads, in-place updates), not from accidental collisions.
#[derive(Debug, Clone, Default)]
pub struct ArrayAllocator {
    arrays: HashMap<String, u64>,
    next_array: u64,
    spills: HashMap<(String, u32), u64>,
    next_spill: u64,
    next_scalar: u64,
}

/// Size of one array region in bytes (4 MiB).
pub const ARRAY_REGION_BYTES: u64 = 4 << 20;

/// Size of one spill slot in bytes (holds one 128-element register, padded
/// to 2 KiB so neighbouring slots never share a disambiguation range).
pub const SPILL_SLOT_BYTES: u64 = 2048;

const ARRAY_BASE: u64 = 0x0100_0000;
const SPILL_BASE: u64 = 0x8000_0000;
const SCALAR_BASE: u64 = 0xC000_0000;

impl ArrayAllocator {
    /// Creates an empty allocator.
    pub fn new() -> ArrayAllocator {
        ArrayAllocator::default()
    }

    /// The base address of array `name`, allocating a region on first use.
    pub fn array_base(&mut self, name: &str) -> u64 {
        if let Some(&base) = self.arrays.get(name) {
            return base;
        }
        let base = ARRAY_BASE + self.next_array * ARRAY_REGION_BYTES;
        self.next_array += 1;
        self.arrays.insert(name.to_string(), base);
        base
    }

    /// The stable spill-slot address for virtual value `val` of `kernel`.
    ///
    /// The same (kernel, value) pair always maps to the same address, so a
    /// spill store and its reload are *identical* accesses — the paper's
    /// bypass candidates.
    pub fn spill_slot(&mut self, kernel: &str, val: u32) -> u64 {
        let key = (kernel.to_string(), val);
        if let Some(&addr) = self.spills.get(&key) {
            return addr;
        }
        let addr = SPILL_BASE + self.next_spill * SPILL_SLOT_BYTES;
        self.next_spill += 1;
        self.spills.insert(key, addr);
        addr
    }

    /// A fresh scalar data address. Fresh addresses advance by more than a
    /// cache line, so first-touch accesses miss (re-touches of pooled
    /// addresses still hit) — matching the moderate scalar hit rates of
    /// real codes rather than an artificially warm cache.
    pub fn scalar_addr(&mut self) -> u64 {
        let addr = SCALAR_BASE + self.next_scalar * 40;
        self.next_scalar += 1;
        addr
    }

    /// Number of distinct arrays allocated.
    pub fn array_count(&self) -> usize {
        self.arrays.len()
    }

    /// Number of distinct spill slots allocated.
    pub fn spill_count(&self) -> usize {
        self.spills.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn array_bases_are_stable_and_disjoint() {
        let mut a = ArrayAllocator::new();
        let x = a.array_base("x");
        let y = a.array_base("y");
        assert_ne!(x, y);
        assert_eq!(a.array_base("x"), x);
        assert!(y - x >= ARRAY_REGION_BYTES || x - y >= ARRAY_REGION_BYTES);
        assert_eq!(a.array_count(), 2);
    }

    #[test]
    fn spill_slots_are_stable_per_kernel_value() {
        let mut a = ArrayAllocator::new();
        let s1 = a.spill_slot("k", 3);
        let s2 = a.spill_slot("k", 4);
        assert_ne!(s1, s2);
        assert_eq!(a.spill_slot("k", 3), s1);
        assert_ne!(a.spill_slot("other", 3), s1);
        assert_eq!(a.spill_count(), 3);
    }

    #[test]
    fn regions_do_not_interleave() {
        let mut a = ArrayAllocator::new();
        let arr = a.array_base("arr");
        let spill = a.spill_slot("k", 0);
        let scalar = a.scalar_addr();
        assert!(arr < spill && spill < scalar);
    }

    #[test]
    fn scalar_addrs_cross_cache_lines() {
        let mut a = ArrayAllocator::new();
        let s0 = a.scalar_addr();
        let s1 = a.scalar_addr();
        // Fresh scalar addresses land on different 32-byte lines.
        assert_ne!(s0 / 32, s1 / 32);
    }
}
