//! The loop-kernel DSL.
//!
//! The paper traces Perfect Club programs compiled by the Convex Fortran
//! compiler. We replace that pipeline with a small kernel language: a
//! kernel describes one vectorized inner-loop body over *virtual* vector
//! values; the [compiler](crate::compile) strip-mines it, allocates the
//! eight architectural vector registers (spilling when pressure exceeds
//! them, exactly the spill code the paper's Section 7 discusses), and emits
//! a decoded instruction trace.

use dva_isa::{ReduceOp, VectorOp};
use std::fmt;

/// A virtual vector value produced inside a kernel body.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VVal(pub(crate) u32);

impl fmt::Display for VVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// The second operand of a binary vector operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KOperand {
    /// Another virtual vector value.
    Val(VVal),
    /// A scalar (`S` register) broadcast. In the decoupled machine this
    /// operand travels from the scalar processor to the vector processor
    /// through a data queue.
    Scalar,
}

/// How an array access advances between consecutive strips of the loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Advance {
    /// The access walks forward through the array (the usual case).
    Sequential,
    /// The access re-reads the same region every strip (in-place update
    /// loops; the source of cross-iteration store→load bypass hits).
    InPlace,
}

/// One statement of a kernel body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KStmt {
    /// Strided vector load from a named array.
    Load {
        /// Defined value.
        dst: VVal,
        /// Array name (bound to a base address at compile time).
        array: String,
        /// Stride in elements.
        stride: i64,
        /// Whether the access advances between strips.
        advance: Advance,
    },
    /// Strided vector store to a named array.
    Store {
        /// Stored value.
        src: VVal,
        /// Array name.
        array: String,
        /// Stride in elements.
        stride: i64,
        /// Whether the access advances between strips.
        advance: Advance,
    },
    /// Indexed gather through an index value.
    Gather {
        /// Defined value.
        dst: VVal,
        /// Index vector.
        index: VVal,
        /// Array name.
        array: String,
    },
    /// Indexed scatter through an index value.
    Scatter {
        /// Stored value.
        src: VVal,
        /// Index vector.
        index: VVal,
        /// Array name.
        array: String,
    },
    /// Unary vector operation.
    Unary {
        /// Opcode.
        op: VectorOp,
        /// Defined value.
        dst: VVal,
        /// Source value.
        src: VVal,
    },
    /// Binary vector operation.
    Binary {
        /// Opcode.
        op: VectorOp,
        /// Defined value.
        dst: VVal,
        /// First source.
        a: VVal,
        /// Second source.
        b: KOperand,
    },
    /// Reduction to a scalar.
    Reduce {
        /// Opcode.
        op: ReduceOp,
        /// Source value.
        src: VVal,
        /// Whether the scalar result feeds the *address computation* of
        /// the next strip (a loop-carried dependence of distance one — the
        /// DYFESM pattern that forces the processors into lockstep).
        recurrent: bool,
    },
}

impl KStmt {
    /// The virtual value defined by this statement, if any.
    pub fn def(&self) -> Option<VVal> {
        match self {
            KStmt::Load { dst, .. } | KStmt::Gather { dst, .. } => Some(*dst),
            KStmt::Unary { dst, .. } | KStmt::Binary { dst, .. } => Some(*dst),
            _ => None,
        }
    }

    /// The virtual values used by this statement (up to two).
    pub fn uses(&self) -> [Option<VVal>; 2] {
        match self {
            KStmt::Store { src, .. } => [Some(*src), None],
            KStmt::Gather { index, .. } => [Some(*index), None],
            KStmt::Scatter { src, index, .. } => [Some(*src), Some(*index)],
            KStmt::Unary { src, .. } => [Some(*src), None],
            KStmt::Binary { a, b, .. } => {
                let b = match b {
                    KOperand::Val(v) => Some(*v),
                    KOperand::Scalar => None,
                };
                [Some(*a), b]
            }
            KStmt::Reduce { src, .. } => [Some(*src), None],
            KStmt::Load { .. } => [None, None],
        }
    }

    /// Whether this statement is a vector memory access.
    pub fn is_memory(&self) -> bool {
        matches!(
            self,
            KStmt::Load { .. } | KStmt::Store { .. } | KStmt::Gather { .. } | KStmt::Scatter { .. }
        )
    }
}

/// A vectorized inner-loop body over virtual values.
///
/// # Examples
///
/// A DAXPY-style kernel (`y = a*x + y`):
///
/// ```
/// use dva_workloads::Kernel;
///
/// let mut k = Kernel::new("daxpy");
/// let x = k.load("x");
/// let ax = k.mul_scalar(x);
/// let y = k.load("y");
/// let s = k.add(ax, y);
/// k.store(s, "y");
/// assert_eq!(k.vector_stmt_count(), 5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Kernel {
    name: String,
    stmts: Vec<KStmt>,
    next_val: u32,
}

impl Kernel {
    /// Creates an empty kernel.
    pub fn new(name: impl Into<String>) -> Kernel {
        Kernel {
            name: name.into(),
            stmts: Vec::new(),
            next_val: 0,
        }
    }

    /// The kernel name (used for spill-slot naming and diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The statement list.
    pub fn stmts(&self) -> &[KStmt] {
        &self.stmts
    }

    fn fresh(&mut self) -> VVal {
        let v = VVal(self.next_val);
        self.next_val += 1;
        v
    }

    /// Validates that every use is dominated by its definition.
    ///
    /// # Panics
    ///
    /// Panics on a use of an undefined value; kernels are built
    /// programmatically, so this is a programming error.
    pub fn validate(&self) {
        let mut defined = vec![false; self.next_val as usize];
        for (i, stmt) in self.stmts.iter().enumerate() {
            for used in stmt.uses().into_iter().flatten() {
                assert!(
                    defined.get(used.0 as usize).copied().unwrap_or(false),
                    "kernel {}: statement {i} uses undefined {used}",
                    self.name
                );
            }
            if let Some(def) = stmt.def() {
                defined[def.0 as usize] = true;
            }
        }
    }

    /// Appends a sequential unit-stride load.
    pub fn load(&mut self, array: impl Into<String>) -> VVal {
        self.load_strided(array, 1)
    }

    /// Appends a sequential load with the given stride.
    pub fn load_strided(&mut self, array: impl Into<String>, stride: i64) -> VVal {
        let dst = self.fresh();
        self.stmts.push(KStmt::Load {
            dst,
            array: array.into(),
            stride,
            advance: Advance::Sequential,
        });
        dst
    }

    /// Appends an in-place load: every strip re-reads the same addresses.
    pub fn load_in_place(&mut self, array: impl Into<String>) -> VVal {
        let dst = self.fresh();
        self.stmts.push(KStmt::Load {
            dst,
            array: array.into(),
            stride: 1,
            advance: Advance::InPlace,
        });
        dst
    }

    /// Appends a sequential unit-stride store.
    pub fn store(&mut self, src: VVal, array: impl Into<String>) {
        self.store_strided(src, array, 1);
    }

    /// Appends a sequential store with the given stride.
    pub fn store_strided(&mut self, src: VVal, array: impl Into<String>, stride: i64) {
        self.stmts.push(KStmt::Store {
            src,
            array: array.into(),
            stride,
            advance: Advance::Sequential,
        });
    }

    /// Appends an in-place store (pairs with [`Kernel::load_in_place`]).
    pub fn store_in_place(&mut self, src: VVal, array: impl Into<String>) {
        self.stmts.push(KStmt::Store {
            src,
            array: array.into(),
            stride: 1,
            advance: Advance::InPlace,
        });
    }

    /// Appends a gather through `index`.
    pub fn gather(&mut self, index: VVal, array: impl Into<String>) -> VVal {
        let dst = self.fresh();
        self.stmts.push(KStmt::Gather {
            dst,
            index,
            array: array.into(),
        });
        dst
    }

    /// Appends a scatter of `src` through `index`.
    pub fn scatter(&mut self, src: VVal, index: VVal, array: impl Into<String>) {
        self.stmts.push(KStmt::Scatter {
            src,
            index,
            array: array.into(),
        });
    }

    /// Appends a unary operation.
    pub fn unary(&mut self, op: VectorOp, src: VVal) -> VVal {
        let dst = self.fresh();
        self.stmts.push(KStmt::Unary { op, dst, src });
        dst
    }

    /// Appends a binary operation over two vector values.
    pub fn binary(&mut self, op: VectorOp, a: VVal, b: VVal) -> VVal {
        let dst = self.fresh();
        self.stmts.push(KStmt::Binary {
            op,
            dst,
            a,
            b: KOperand::Val(b),
        });
        dst
    }

    /// Appends a binary operation with a broadcast scalar operand.
    pub fn binary_scalar(&mut self, op: VectorOp, a: VVal) -> VVal {
        let dst = self.fresh();
        self.stmts.push(KStmt::Binary {
            op,
            dst,
            a,
            b: KOperand::Scalar,
        });
        dst
    }

    /// Convenience: vector addition.
    pub fn add(&mut self, a: VVal, b: VVal) -> VVal {
        self.binary(VectorOp::Add, a, b)
    }

    /// Convenience: vector subtraction.
    pub fn sub(&mut self, a: VVal, b: VVal) -> VVal {
        self.binary(VectorOp::Sub, a, b)
    }

    /// Convenience: vector multiplication (FU2 only).
    pub fn mul(&mut self, a: VVal, b: VVal) -> VVal {
        self.binary(VectorOp::Mul, a, b)
    }

    /// Convenience: multiply by a broadcast scalar (FU2 only).
    pub fn mul_scalar(&mut self, a: VVal) -> VVal {
        self.binary_scalar(VectorOp::Mul, a)
    }

    /// Convenience: add a broadcast scalar.
    pub fn add_scalar(&mut self, a: VVal) -> VVal {
        self.binary_scalar(VectorOp::Add, a)
    }

    /// Appends a reduction whose result stays on the scalar processor.
    pub fn reduce(&mut self, op: ReduceOp, src: VVal) {
        self.stmts.push(KStmt::Reduce {
            op,
            src,
            recurrent: false,
        });
    }

    /// Appends a *recurrent* reduction: its scalar result feeds the next
    /// strip's address computation, creating a distance-1 loop-carried
    /// dependence through the scalar and address processors.
    pub fn reduce_recurrent(&mut self, op: ReduceOp, src: VVal) {
        self.stmts.push(KStmt::Reduce {
            op,
            src,
            recurrent: true,
        });
    }

    /// Number of vector instructions one strip of this kernel expands to,
    /// *excluding* spill code (which depends on register allocation).
    pub fn vector_stmt_count(&self) -> usize {
        self.stmts.len()
    }

    /// Number of virtual values defined.
    pub fn num_vals(&self) -> u32 {
        self.next_val
    }

    /// Whether the kernel contains a recurrent reduction.
    pub fn has_recurrence(&self) -> bool {
        self.stmts.iter().any(|s| {
            matches!(
                s,
                KStmt::Reduce {
                    recurrent: true,
                    ..
                }
            )
        })
    }

    /// Maximum number of simultaneously live virtual values, assuming
    /// statements execute in order and values die at their last use.
    ///
    /// A statement's destination is counted as live *alongside* its
    /// operands (the allocator never assigns a destination register that
    /// is still sourcing the same instruction), so e.g. `c = a + b`
    /// contributes pressure 3.
    pub fn max_pressure(&self) -> usize {
        let n = self.next_val as usize;
        let mut last_use = vec![0usize; n];
        for (i, stmt) in self.stmts.iter().enumerate() {
            for used in stmt.uses().into_iter().flatten() {
                last_use[used.0 as usize] = i;
            }
        }
        let mut live = vec![false; n];
        let mut max = 0usize;
        for (i, stmt) in self.stmts.iter().enumerate() {
            if let Some(def) = stmt.def() {
                live[def.0 as usize] = true;
            }
            max = max.max(live.iter().filter(|&&l| l).count());
            for used in stmt.uses().into_iter().flatten() {
                if last_use[used.0 as usize] == i {
                    live[used.0 as usize] = false;
                }
            }
        }
        max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn daxpy() -> Kernel {
        let mut k = Kernel::new("daxpy");
        let x = k.load("x");
        let ax = k.mul_scalar(x);
        let y = k.load("y");
        let s = k.add(ax, y);
        k.store(s, "y");
        k
    }

    #[test]
    fn def_use_chains_are_tracked() {
        let k = daxpy();
        k.validate();
        assert_eq!(k.num_vals(), 4);
        let defs: Vec<Option<VVal>> = k.stmts().iter().map(KStmt::def).collect();
        assert_eq!(defs[0], Some(VVal(0)));
        assert_eq!(defs[4], None); // store defines nothing
        assert_eq!(k.stmts()[4].uses()[0], Some(VVal(3)));
    }

    #[test]
    fn max_pressure_counts_overlapping_lifetimes() {
        // daxpy peaks at `s = ax + y`: ax, y and the destination s.
        assert_eq!(daxpy().max_pressure(), 3);

        // Four loads live at once, plus the first combining destination.
        let mut k = Kernel::new("wide");
        let a = k.load("a");
        let b = k.load("b");
        let c = k.load("c");
        let d = k.load("d");
        let ab = k.add(a, b);
        let cd = k.add(c, d);
        let r = k.add(ab, cd);
        k.store(r, "out");
        assert_eq!(k.max_pressure(), 5);
    }

    #[test]
    fn recurrence_detection() {
        let mut k = Kernel::new("rec");
        let v = k.load_in_place("s");
        let t = k.add_scalar(v);
        k.reduce_recurrent(dva_isa::ReduceOp::Sum, t);
        k.store_in_place(t, "s");
        assert!(k.has_recurrence());
        assert!(!daxpy().has_recurrence());
    }

    #[test]
    #[should_panic(expected = "uses undefined")]
    fn validate_rejects_use_before_def() {
        let mut a = Kernel::new("a");
        let va = a.load("x");
        let mut b = Kernel::new("b");
        // Smuggle a value from another kernel (undefined in `b`).
        b.store(va, "y");
        b.validate();
    }

    #[test]
    fn memory_statements_are_classified() {
        let k = daxpy();
        let mems: Vec<bool> = k.stmts().iter().map(KStmt::is_memory).collect();
        assert_eq!(mems, vec![true, false, true, false, true]);
    }
}
