//! The vectorizing "compiler": lowers [`Kernel`]s to decoded instruction
//! traces.
//!
//! This module plays the role of the Convex Fortran compiler in the
//! paper's toolchain:
//!
//! * **strip-mining**: a loop over `N` elements becomes `strips` vector
//!   strips of length `VL`;
//! * **register allocation** onto the eight architectural vector
//!   registers, inserting *spill* stores and reloads to stable stack slots
//!   when pressure exceeds the register file — precisely the spill traffic
//!   the bypass mechanism of Section 7 targets;
//! * **software pipelining** (double buffering): when pressure allows,
//!   the loads of strip `s+1` are hoisted above the computation of strip
//!   `s` using the opposite half of the register file, compensating for
//!   the machine's lack of load→FU chaining — the paper notes the Convex
//!   compiler schedules with that restriction in mind;
//! * **loop overhead**: per-strip address arithmetic, scalar bookkeeping
//!   and the closing branch.

use crate::arrays::ArrayAllocator;
use crate::kernel::{Advance, KOperand, KStmt, Kernel, VVal};
use dva_isa::{
    Inst, Program, ProgramBuilder, ScalarReg, Stride, VOperand, VectorAccess, VectorLength,
    VectorReg,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Scalar bookkeeping emitted for every strip of a loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StripOverhead {
    /// `A`-register address-arithmetic instructions.
    pub addr_ops: u32,
    /// `S`-register scalar instructions.
    pub scalar_ops: u32,
    /// Scalar loads (through the scalar cache).
    pub scalar_loads: u32,
}

impl Default for StripOverhead {
    /// Two address updates and one scalar op per strip, plus the implicit
    /// branch.
    fn default() -> Self {
        StripOverhead {
            addr_ops: 2,
            scalar_ops: 1,
            scalar_loads: 0,
        }
    }
}

impl StripOverhead {
    /// Total scalar instructions per strip including the closing branch.
    pub fn insts_per_strip(&self) -> u32 {
        self.addr_ops + self.scalar_ops + self.scalar_loads + 1
    }
}

/// A strip-mined vector loop: `strips` executions of a [`Kernel`] body at
/// vector length `vl`.
#[derive(Debug, Clone)]
pub struct LoopSpec {
    /// The loop body.
    pub kernel: Kernel,
    /// Number of strips executed.
    pub strips: u32,
    /// Vector length of every strip.
    pub vl: u32,
    /// Ask for software pipelining (honored only when the kernel's
    /// register pressure fits half the register file and the kernel has no
    /// recurrence or in-place access).
    pub software_pipeline: bool,
    /// Per-strip scalar bookkeeping.
    pub overhead: StripOverhead,
}

impl LoopSpec {
    /// A loop with default overhead and pipelining enabled.
    pub fn new(kernel: Kernel, strips: u32, vl: u32) -> LoopSpec {
        LoopSpec {
            kernel,
            strips,
            vl,
            software_pipeline: true,
            overhead: StripOverhead::default(),
        }
    }
}

/// A stretch of purely scalar execution (scalar sections dominate weakly
/// vectorized programs such as TRFD).
#[derive(Debug, Clone, Copy)]
pub struct ScalarSection {
    /// Number of scalar instructions.
    pub insts: u32,
    /// Fraction of them that are memory accesses (alternating load/store).
    pub memory_fraction: f64,
}

/// One phase of a program: a vector loop or a scalar section.
#[derive(Debug, Clone)]
pub enum Phase {
    /// A strip-mined vector loop.
    Loop(LoopSpec),
    /// A scalar-only section.
    Scalar(ScalarSection),
}

/// A whole synthetic program: `repeat` passes over a phase list.
#[derive(Debug, Clone)]
pub struct ProgramSpec {
    /// Program name (e.g. `"ARC2D"`).
    pub name: String,
    /// Number of passes over `phases`.
    pub repeat: u32,
    /// The phase list.
    pub phases: Vec<Phase>,
}

impl ProgramSpec {
    /// Compiles the spec into a decoded trace. Generation is fully
    /// deterministic for a given `seed`.
    pub fn compile(&self, seed: u64) -> Program {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut alloc = ArrayAllocator::new();
        let mut builder = ProgramBuilder::new(self.name.clone());
        let mut scalar_pool = ScalarAddrPool::new();
        for _ in 0..self.repeat {
            for phase in &self.phases {
                match phase {
                    Phase::Loop(spec) => {
                        compile_loop(&mut builder, &mut alloc, &mut scalar_pool, spec, &mut rng)
                    }
                    Phase::Scalar(sec) => emit_scalar_section(
                        &mut builder,
                        &mut alloc,
                        &mut scalar_pool,
                        sec,
                        &mut rng,
                    ),
                }
            }
        }
        builder.finish()
    }
}

/// Scalar register conventions used by generated code.
pub mod regs {
    use dva_isa::ScalarReg;

    /// Loop counter (address processor).
    pub fn loop_counter() -> ScalarReg {
        ScalarReg::addr(0)
    }
    /// Address-arithmetic temporary.
    pub fn addr_temp() -> ScalarReg {
        ScalarReg::addr(1)
    }
    /// Address derived from a recurrent reduction (the lockstep path).
    pub fn recurrence_addr() -> ScalarReg {
        ScalarReg::addr(2)
    }
    /// Broadcast scalar operand of vector computations.
    pub fn broadcast() -> ScalarReg {
        ScalarReg::scalar(0)
    }
    /// Reduction result.
    pub fn reduction() -> ScalarReg {
        ScalarReg::scalar(1)
    }
    /// Scalar compute accumulator.
    pub fn scalar_acc() -> ScalarReg {
        ScalarReg::scalar(2)
    }
    /// Scalar load destination.
    pub fn scalar_load_dst() -> ScalarReg {
        ScalarReg::scalar(3)
    }
}

/// A pool of recently-touched scalar addresses: 80% of scalar accesses
/// revisit the working set (cache hits), the rest touch fresh lines.
#[derive(Debug)]
struct ScalarAddrPool {
    recent: VecDeque<u64>,
}

impl ScalarAddrPool {
    fn new() -> ScalarAddrPool {
        ScalarAddrPool {
            recent: VecDeque::new(),
        }
    }

    fn next(&mut self, alloc: &mut ArrayAllocator, rng: &mut SmallRng) -> u64 {
        if !self.recent.is_empty() && rng.gen_bool(0.8) {
            let idx = rng.gen_range(0..self.recent.len());
            self.recent[idx]
        } else {
            let addr = alloc.scalar_addr();
            self.recent.push_back(addr);
            if self.recent.len() > 32 {
                self.recent.pop_front();
            }
            addr
        }
    }
}

/// Where a virtual value currently lives during allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    Reg(VectorReg),
    Spilled(u64),
    /// Defined but dead (no remaining uses) and evicted.
    Gone,
}

/// Code for one strip, split so the loads can be software-pipelined ahead.
#[derive(Debug, Default)]
struct StripCode {
    /// The leading run of loads (hoistable).
    loads: Vec<Inst>,
    /// Everything else: computation, stores, spill code, recurrence ALU.
    rest: Vec<Inst>,
}

/// The schedule a kernel compiles under: its statements with hoistable
/// loads moved to the front (loads carry no input dependences, so any load
/// appearing before the first store/scatter may legally lead the strip —
/// this is what lets the machine overlap next-strip loads with current
/// computation despite the lack of load chaining).
#[derive(Debug, Clone)]
struct Schedule {
    stmts: Vec<KStmt>,
    hoisted: usize,
}

impl Schedule {
    fn of(kernel: &Kernel) -> Schedule {
        let mut loads = Vec::new();
        let mut rest = Vec::new();
        let mut seen_store = false;
        for stmt in kernel.stmts() {
            let is_store = matches!(stmt, KStmt::Store { .. } | KStmt::Scatter { .. });
            if !seen_store && matches!(stmt, KStmt::Load { .. }) {
                loads.push(stmt.clone());
            } else {
                seen_store = seen_store || is_store;
                rest.push(stmt.clone());
            }
        }
        let hoisted = loads.len();
        loads.extend(rest);
        Schedule {
            stmts: loads,
            hoisted,
        }
    }

    /// Register pressure of the scheduled order (destination counted live
    /// alongside its operands, matching the allocator).
    fn pressure(&self, num_vals: u32) -> usize {
        let n = num_vals as usize;
        let mut last_use = vec![0usize; n];
        for (i, stmt) in self.stmts.iter().enumerate() {
            for used in stmt.uses().into_iter().flatten() {
                last_use[used.0 as usize] = i;
            }
        }
        let mut live = vec![false; n];
        let mut max = 0usize;
        for (i, stmt) in self.stmts.iter().enumerate() {
            if let Some(def) = stmt.def() {
                live[def.0 as usize] = true;
            }
            max = max.max(live.iter().filter(|&&l| l).count());
            for used in stmt.uses().into_iter().flatten() {
                if last_use[used.0 as usize] == i {
                    live[used.0 as usize] = false;
                }
            }
        }
        max
    }
}

/// Per-strip linear-scan register allocator over a [`Schedule`].
struct StripAlloc<'a> {
    kernel_name: &'a str,
    vl: VectorLength,
    strip: u32,
    free: VecDeque<VectorReg>,
    loc: Vec<Loc>,
    owner: [Option<VVal>; 8],
    /// use_positions[v] = sorted schedule indices that read v.
    use_positions: Vec<Vec<usize>>,
    out: Vec<Inst>,
}

impl<'a> StripAlloc<'a> {
    fn new(
        kernel_name: &'a str,
        schedule: &'a Schedule,
        num_vals: u32,
        vl: VectorLength,
        strip: u32,
        pool: &[VectorReg],
    ) -> StripAlloc<'a> {
        let n = num_vals as usize;
        let mut use_positions = vec![Vec::new(); n];
        for (i, stmt) in schedule.stmts.iter().enumerate() {
            for used in stmt.uses().into_iter().flatten() {
                use_positions[used.0 as usize].push(i);
            }
        }
        StripAlloc {
            kernel_name,
            vl,
            strip,
            free: pool.iter().copied().collect(),
            loc: vec![Loc::Gone; n],
            owner: [None; 8],
            use_positions,
            out: Vec::new(),
        }
    }

    fn next_use_after(&self, v: VVal, pos: usize) -> Option<usize> {
        self.use_positions[v.0 as usize]
            .iter()
            .copied()
            .find(|&u| u > pos)
    }

    fn spill_slot(&self, alloc: &mut ArrayAllocator, v: VVal) -> u64 {
        alloc.spill_slot(self.kernel_name, v.0)
    }

    /// Allocates a register, spilling the live value with the furthest
    /// next use when none are free. `locked` registers (operands of the
    /// current statement) are never spilled.
    fn alloc_reg(
        &mut self,
        alloc: &mut ArrayAllocator,
        pos: usize,
        locked: &[VectorReg],
    ) -> VectorReg {
        if let Some(r) = self.free.pop_front() {
            return r;
        }
        // Pick the victim with the furthest next use (dead values were
        // already freed, so every owner has a future use or is current).
        let mut victim: Option<(VectorReg, VVal, usize)> = None;
        for (idx, owner) in self.owner.iter().enumerate() {
            let Some(v) = owner else { continue };
            let reg = VectorReg::from_index(idx).expect("owner index in range");
            if locked.contains(&reg) {
                continue;
            }
            let nu = self.next_use_after(*v, pos).unwrap_or(usize::MAX);
            if victim.is_none_or(|(_, _, best)| nu > best) {
                victim = Some((reg, *v, nu));
            }
        }
        let (reg, v, _) = victim.expect("register pool exhausted by one statement");
        let slot = self.spill_slot(alloc, v);
        self.out.push(Inst::VStore {
            src: reg,
            access: VectorAccess::unit(slot, self.vl),
        });
        self.loc[v.0 as usize] = Loc::Spilled(slot);
        self.owner[reg.index()] = None;
        reg
    }

    fn bind(&mut self, v: VVal, reg: VectorReg) {
        self.loc[v.0 as usize] = Loc::Reg(reg);
        self.owner[reg.index()] = Some(v);
    }

    /// Ensures `v` is in a register, reloading from its spill slot if
    /// needed.
    fn ensure_reg(
        &mut self,
        alloc: &mut ArrayAllocator,
        v: VVal,
        pos: usize,
        locked: &[VectorReg],
    ) -> VectorReg {
        match self.loc[v.0 as usize] {
            Loc::Reg(r) => r,
            Loc::Spilled(slot) => {
                let r = self.alloc_reg(alloc, pos, locked);
                self.out.push(Inst::VLoad {
                    dst: r,
                    access: VectorAccess::unit(slot, self.vl),
                });
                self.bind(v, r);
                r
            }
            Loc::Gone => panic!(
                "kernel {}: value {v} used at statement {pos} but dead",
                self.kernel_name
            ),
        }
    }

    /// Releases values whose last use is at or before `pos`.
    fn release_dead(&mut self, uses: &[Option<VVal>], pos: usize) {
        for v in uses.iter().flatten() {
            if self.next_use_after(*v, pos).is_none() {
                if let Loc::Reg(r) = self.loc[v.0 as usize] {
                    self.loc[v.0 as usize] = Loc::Gone;
                    self.owner[r.index()] = None;
                    self.free.push_back(r);
                }
            }
        }
    }

    fn access(
        &self,
        alloc: &mut ArrayAllocator,
        array: &str,
        stride: i64,
        advance: Advance,
    ) -> VectorAccess {
        let base = alloc.array_base(array);
        let offset = match advance {
            Advance::Sequential => {
                u64::from(self.strip) * self.vl.cycles() * stride.unsigned_abs() * 8
            }
            Advance::InPlace => 0,
        };
        VectorAccess::new(base + offset, Stride::new(stride), self.vl)
    }

    /// Lowers one kernel statement, returning emitted instructions via
    /// `self.out`.
    fn lower(&mut self, alloc: &mut ArrayAllocator, pos: usize, stmt: &KStmt) {
        // Bring all uses into registers first.
        let uses = stmt.uses();
        let mut locked: Vec<VectorReg> = Vec::with_capacity(3);
        let mut use_regs: [Option<VectorReg>; 2] = [None, None];
        for (slot, v) in uses.iter().enumerate() {
            if let Some(v) = v {
                let r = self.ensure_reg(alloc, *v, pos, &locked);
                locked.push(r);
                use_regs[slot] = Some(r);
            }
        }
        // Allocate the destination, if any.
        let def_reg = stmt.def().map(|d| {
            let r = self.alloc_reg(alloc, pos, &locked);
            self.bind(d, r);
            r
        });

        let vl = self.vl;
        match stmt {
            KStmt::Load {
                array,
                stride,
                advance,
                ..
            } => {
                let access = self.access(alloc, array, *stride, *advance);
                self.out.push(Inst::VLoad {
                    dst: def_reg.expect("load defines"),
                    access,
                });
            }
            KStmt::Store {
                array,
                stride,
                advance,
                ..
            } => {
                let access = self.access(alloc, array, *stride, *advance);
                self.out.push(Inst::VStore {
                    src: use_regs[0].expect("store uses"),
                    access,
                });
            }
            KStmt::Gather { array, .. } => {
                let base = alloc.array_base(array);
                self.out.push(Inst::VGather {
                    dst: def_reg.expect("gather defines"),
                    index: use_regs[0].expect("gather uses index"),
                    base,
                    vl,
                });
            }
            KStmt::Scatter { array, .. } => {
                let base = alloc.array_base(array);
                self.out.push(Inst::VScatter {
                    src: use_regs[0].expect("scatter uses src"),
                    index: use_regs[1].expect("scatter uses index"),
                    base,
                    vl,
                });
            }
            KStmt::Unary { op, .. } => {
                self.out.push(Inst::VCompute {
                    op: *op,
                    dst: def_reg.expect("unary defines"),
                    src1: VOperand::Reg(use_regs[0].expect("unary uses")),
                    src2: None,
                    vl,
                });
            }
            KStmt::Binary { op, b, .. } => {
                let src2 = match b {
                    KOperand::Val(_) => VOperand::Reg(use_regs[1].expect("binary uses b")),
                    KOperand::Scalar => VOperand::Scalar(regs::broadcast()),
                };
                self.out.push(Inst::VCompute {
                    op: *op,
                    dst: def_reg.expect("binary defines"),
                    src1: VOperand::Reg(use_regs[0].expect("binary uses a")),
                    src2: Some(src2),
                    vl,
                });
            }
            KStmt::Reduce { op, recurrent, .. } => {
                self.out.push(Inst::VReduce {
                    op: *op,
                    dst: regs::reduction(),
                    src: use_regs[0].expect("reduce uses"),
                    vl,
                });
                if *recurrent {
                    // Address computation consuming the reduction result:
                    // the distance-1 dependence that serializes the
                    // processors.
                    self.out.push(Inst::SAlu {
                        dst: regs::recurrence_addr(),
                        src1: Some(regs::reduction()),
                        src2: None,
                    });
                }
            }
        }
        self.release_dead(&uses, pos);
    }
}

/// Generates the code for one strip. `pool` is the register half (or the
/// whole file) this strip may use.
fn gen_strip(
    alloc: &mut ArrayAllocator,
    kernel: &Kernel,
    schedule: &Schedule,
    vl: VectorLength,
    strip: u32,
    pool: &[VectorReg],
) -> StripCode {
    let mut sa = StripAlloc::new(kernel.name(), schedule, kernel.num_vals(), vl, strip, pool);
    let mut code = StripCode::default();
    let stmts: Vec<KStmt> = schedule.stmts.clone();
    for (pos, stmt) in stmts.iter().enumerate() {
        sa.lower(alloc, pos, stmt);
        let sink = if pos < schedule.hoisted {
            &mut code.loads
        } else {
            &mut code.rest
        };
        sink.append(&mut sa.out);
    }
    code
}

fn emit_overhead(
    builder: &mut ProgramBuilder,
    alloc: &mut ArrayAllocator,
    pool: &mut ScalarAddrPool,
    overhead: &StripOverhead,
    rng: &mut SmallRng,
) {
    for i in 0..overhead.addr_ops {
        let dst = if i == 0 {
            regs::loop_counter()
        } else {
            regs::addr_temp()
        };
        builder.push(Inst::SAlu {
            dst,
            src1: Some(regs::loop_counter()),
            src2: None,
        });
    }
    for _ in 0..overhead.scalar_ops {
        builder.push(Inst::SAlu {
            dst: regs::scalar_acc(),
            src1: Some(regs::scalar_acc()),
            src2: None,
        });
    }
    for _ in 0..overhead.scalar_loads {
        let addr = pool.next(alloc, rng);
        builder.push(Inst::SLoad {
            dst: regs::scalar_load_dst(),
            addr,
        });
    }
}

/// Whether a kernel has the exact `load a; load b; c = a op b; store c`
/// shape (with sequential accesses) that the compiler can modulo-schedule
/// at depth 2: loads hoisted *two* strips ahead using three rotating
/// register pairs plus two alternating result registers — 8 registers,
/// exactly the architectural file. This is how the Convex compiler keeps
/// the paper's 3-chime DYFESM loop at its resource bound even at long
/// memory latencies.
fn is_triad_shape(kernel: &Kernel) -> bool {
    let stmts = kernel.stmts();
    if stmts.len() != 4 {
        return false;
    }
    let seq_load = |s: &KStmt| {
        matches!(
            s,
            KStmt::Load {
                advance: Advance::Sequential,
                ..
            }
        )
    };
    let (KStmt::Binary { dst, a, b, .. }, KStmt::Store { src, advance, .. }) =
        (&stmts[2], &stmts[3])
    else {
        return false;
    };
    seq_load(&stmts[0])
        && seq_load(&stmts[1])
        && *advance == Advance::Sequential
        && src == dst
        && stmts[0].def() == Some(*a)
        && stmts[1].def().map(KOperand::Val) == Some(*b)
}

/// Depth-2 modulo schedule for triad-shaped loops: loads of strip `s+2`
/// issue before the computation of strip `s`.
fn compile_loop_depth2(
    builder: &mut ProgramBuilder,
    alloc: &mut ArrayAllocator,
    pool: &mut ScalarAddrPool,
    spec: &LoopSpec,
    rng: &mut SmallRng,
) {
    let kernel = &spec.kernel;
    let vl = VectorLength::clamped(spec.vl);
    // Three rotating load-register pairs and two alternating results. The
    // pairs are chosen so the two loads of a strip live in *different*
    // banks (a load holds its bank's single write port for L+VL cycles)
    // and consecutive strips do not revisit a bank before its port frees.
    const LOAD_GROUPS: [[VectorReg; 2]; 3] = [
        [VectorReg::V0, VectorReg::V2],
        [VectorReg::V4, VectorReg::V1],
        [VectorReg::V3, VectorReg::V5],
    ];
    const RESULTS: [VectorReg; 2] = [VectorReg::V6, VectorReg::V7];

    let (arrays, op, scalar_b, store_array): (Vec<(String, i64)>, _, bool, (String, i64)) = {
        let mut loads = Vec::new();
        let mut op = None;
        let mut scalar_b = false;
        let mut store = None;
        for stmt in kernel.stmts() {
            match stmt {
                KStmt::Load { array, stride, .. } => loads.push((array.clone(), *stride)),
                KStmt::Binary { op: o, b, .. } => {
                    op = Some(*o);
                    scalar_b = matches!(b, KOperand::Scalar);
                }
                KStmt::Store { array, stride, .. } => store = Some((array.clone(), *stride)),
                _ => unreachable!("is_triad_shape guarantees the statement mix"),
            }
        }
        (loads, op.expect("binary"), scalar_b, store.expect("store"))
    };
    let emit_loads = |builder: &mut ProgramBuilder, alloc: &mut ArrayAllocator, s: u32| {
        let group = LOAD_GROUPS[(s as usize) % 3];
        for (i, (array, stride)) in arrays.iter().enumerate() {
            let base =
                alloc.array_base(array) + u64::from(s) * vl.cycles() * stride.unsigned_abs() * 8;
            builder.push(Inst::VLoad {
                dst: group[i],
                access: VectorAccess::new(base, Stride::new(*stride), vl),
            });
        }
    };
    let branch = |taken: bool| Inst::Branch {
        cond: regs::loop_counter(),
        taken,
    };

    // Prologue: two strips of loads in flight before any computation.
    for s in 0..spec.strips.min(2) {
        emit_overhead(builder, alloc, pool, &spec.overhead, rng);
        emit_loads(builder, alloc, s);
    }
    for s in 0..spec.strips {
        if s + 2 < spec.strips {
            emit_overhead(builder, alloc, pool, &spec.overhead, rng);
            emit_loads(builder, alloc, s + 2);
        }
        let group = LOAD_GROUPS[(s as usize) % 3];
        let result = RESULTS[(s as usize) % 2];
        let src2 = if scalar_b {
            VOperand::Scalar(regs::broadcast())
        } else {
            VOperand::Reg(group[1])
        };
        builder.push(Inst::VCompute {
            op,
            dst: result,
            src1: VOperand::Reg(group[0]),
            src2: Some(src2),
            vl,
        });
        let (array, stride) = &store_array;
        let base = alloc.array_base(array) + u64::from(s) * vl.cycles() * stride.unsigned_abs() * 8;
        builder.push(Inst::VStore {
            src: result,
            access: VectorAccess::new(base, Stride::new(*stride), vl),
        });
        builder.push(branch(s + 1 < spec.strips));
    }
}

/// Compiles one strip-mined loop into the trace.
fn compile_loop(
    builder: &mut ProgramBuilder,
    alloc: &mut ArrayAllocator,
    pool: &mut ScalarAddrPool,
    spec: &LoopSpec,
    rng: &mut SmallRng,
) {
    let kernel = &spec.kernel;
    kernel.validate();
    let vl = VectorLength::clamped(spec.vl);
    let has_in_place = kernel.stmts().iter().any(|s| {
        matches!(
            s,
            KStmt::Load {
                advance: Advance::InPlace,
                ..
            } | KStmt::Store {
                advance: Advance::InPlace,
                ..
            }
        )
    });
    if spec.software_pipeline && spec.strips >= 3 && is_triad_shape(kernel) {
        return compile_loop_depth2(builder, alloc, pool, spec, rng);
    }
    let schedule = Schedule::of(kernel);
    let pipelined = spec.software_pipeline
        && spec.strips >= 2
        && schedule.pressure(kernel.num_vals()) <= 4
        && !kernel.has_recurrence()
        && !has_in_place;

    const HALF_A: [VectorReg; 4] = [VectorReg::V0, VectorReg::V1, VectorReg::V2, VectorReg::V3];
    const HALF_B: [VectorReg; 4] = [VectorReg::V4, VectorReg::V5, VectorReg::V6, VectorReg::V7];

    let branch = |taken: bool| Inst::Branch {
        cond: regs::loop_counter(),
        taken,
    };

    if pipelined {
        let pool_for = |s: u32| -> &[VectorReg] {
            if s.is_multiple_of(2) {
                &HALF_A
            } else {
                &HALF_B
            }
        };
        // Prologue: overhead and loads of strip 0.
        emit_overhead(builder, alloc, pool, &spec.overhead, rng);
        let mut current = gen_strip(alloc, kernel, &schedule, vl, 0, pool_for(0));
        builder.extend(current.loads.drain(..));
        for s in 0..spec.strips {
            let next = if s + 1 < spec.strips {
                emit_overhead(builder, alloc, pool, &spec.overhead, rng);
                let mut next = gen_strip(alloc, kernel, &schedule, vl, s + 1, pool_for(s + 1));
                builder.extend(next.loads.drain(..));
                Some(next)
            } else {
                None
            };
            builder.extend(current.rest.drain(..));
            builder.push(branch(s + 1 < spec.strips));
            if let Some(next) = next {
                current = next;
            }
        }
    } else {
        for s in 0..spec.strips {
            emit_overhead(builder, alloc, pool, &spec.overhead, rng);
            let mut code = gen_strip(alloc, kernel, &schedule, vl, s, &VectorReg::ALL);
            builder.extend(code.loads.drain(..));
            builder.extend(code.rest.drain(..));
            builder.push(branch(s + 1 < spec.strips));
        }
    }
}

fn emit_scalar_section(
    builder: &mut ProgramBuilder,
    alloc: &mut ArrayAllocator,
    pool: &mut ScalarAddrPool,
    sec: &ScalarSection,
    rng: &mut SmallRng,
) {
    // Several independent dependence chains, as real scalar code has:
    // four accumulators and two load destinations rotate, so a load's
    // consumer sits a few instructions downstream instead of immediately
    // after it.
    let accs = [
        regs::scalar_acc(),
        ScalarReg::scalar(4),
        ScalarReg::scalar(5),
        ScalarReg::scalar(6),
    ];
    let load_dsts = [regs::scalar_load_dst(), ScalarReg::scalar(7)];
    let mut store_next = false;
    for i in 0..sec.insts {
        let i = i as usize;
        if rng.gen_bool(sec.memory_fraction) {
            let addr = pool.next(alloc, rng);
            if store_next {
                builder.push(Inst::SStore {
                    src: accs[i % accs.len()],
                    addr,
                });
            } else {
                builder.push(Inst::SLoad {
                    dst: load_dsts[i % load_dsts.len()],
                    addr,
                });
            }
            store_next = !store_next;
        } else {
            let acc = accs[i % accs.len()];
            builder.push(Inst::SAlu {
                dst: acc,
                src1: Some(acc),
                src2: Some(load_dsts[(i / 2) % load_dsts.len()]),
            });
        }
        // A branch roughly every 16 instructions keeps basic blocks
        // scalar-section sized.
        if i % 16 == 15 {
            builder.push(Inst::Branch {
                cond: accs[i % accs.len()],
                taken: rng.gen_bool(0.5),
            });
        }
    }
    builder.end_block();
}

#[cfg(test)]
mod tests {
    use super::*;
    use dva_isa::VectorOp;

    fn daxpy() -> Kernel {
        let mut k = Kernel::new("daxpy");
        let x = k.load("x");
        let ax = k.mul_scalar(x);
        let y = k.load("y");
        let s = k.add(ax, y);
        k.store(s, "y");
        k
    }

    fn compile_one(spec: LoopSpec) -> Program {
        let prog = ProgramSpec {
            name: "test".into(),
            repeat: 1,
            phases: vec![Phase::Loop(spec)],
        };
        prog.compile(42)
    }

    #[test]
    fn daxpy_strip_has_expected_shape() {
        let program = compile_one(LoopSpec::new(daxpy(), 4, 64));
        let s = program.summary();
        // 5 vector insts per strip, no spills (pressure 2).
        assert_eq!(s.vector_insts, 20);
        assert_eq!(s.vector_ops, 20 * 64);
        assert_eq!(program.basic_blocks(), 4);
    }

    #[test]
    fn pipelined_loop_hoists_next_strip_loads() {
        let program = compile_one(LoopSpec::new(daxpy(), 3, 32));
        // Count loads appearing before the first VCompute: prologue must
        // contain strip 0's loads... and the loop body should interleave.
        let insts = program.insts();
        let first_compute = insts
            .iter()
            .position(|i| matches!(i, Inst::VCompute { .. }))
            .unwrap();
        let loads_before: usize = insts[..first_compute]
            .iter()
            .filter(|i| matches!(i, Inst::VLoad { .. }))
            .count();
        // Strip 0's two loads plus strip 1's two hoisted loads.
        assert_eq!(loads_before, 4);
    }

    #[test]
    fn pipelined_strips_alternate_register_halves() {
        let program = compile_one(LoopSpec::new(daxpy(), 2, 16));
        let mut low = false;
        let mut high = false;
        for inst in program.insts() {
            if let Inst::VLoad { dst, .. } = inst {
                if dst.index() < 4 {
                    low = true;
                } else {
                    high = true;
                }
            }
        }
        assert!(low && high, "expected both register halves in use");
    }

    #[test]
    fn high_pressure_kernel_spills_to_stable_slots() {
        // 10 values live at once: guaranteed spills with 8 registers.
        let mut k = Kernel::new("fat");
        let loads: Vec<_> = (0..10).map(|i| k.load(format!("a{i}"))).collect();
        let mut acc = loads[0];
        for &l in loads.iter().skip(1).rev() {
            acc = k.add(acc, l);
        }
        k.store(acc, "out");
        assert!(k.max_pressure() > 8);

        let program = compile_one(LoopSpec {
            kernel: k,
            strips: 2,
            vl: 32,
            software_pipeline: false,
            overhead: StripOverhead::default(),
        });
        // Spill slots live at 0x8000_0000 and up.
        let mut spill_stores = Vec::new();
        let mut spill_loads = Vec::new();
        for inst in program.insts() {
            match inst {
                Inst::VStore { access, .. } if access.base >= 0x8000_0000 => {
                    spill_stores.push(access.base)
                }
                Inst::VLoad { access, .. } if access.base >= 0x8000_0000 => {
                    spill_loads.push(access.base)
                }
                _ => {}
            }
        }
        assert!(!spill_stores.is_empty(), "expected spill stores");
        assert!(!spill_loads.is_empty(), "expected spill reloads");
        // Every reload address matches some earlier spill store (identical
        // accesses — bypass candidates).
        for l in &spill_loads {
            assert!(spill_stores.contains(l));
        }
    }

    #[test]
    fn recurrent_reduce_emits_address_alu_after_reduce() {
        let mut k = Kernel::new("rec");
        let v = k.load("x");
        let t = k.add_scalar(v);
        k.reduce_recurrent(dva_isa::ReduceOp::Sum, t);
        let program = compile_one(LoopSpec {
            kernel: k,
            strips: 2,
            vl: 32,
            software_pipeline: true, // must be refused due to recurrence
            overhead: StripOverhead::default(),
        });
        let insts = program.insts();
        let reduce_pos = insts
            .iter()
            .position(|i| matches!(i, Inst::VReduce { .. }))
            .unwrap();
        assert!(matches!(
            insts[reduce_pos + 1],
            Inst::SAlu {
                src1: Some(s),
                ..
            } if s == regs::reduction()
        ));
    }

    #[test]
    fn scalar_sections_emit_mixed_scalar_code() {
        let prog = ProgramSpec {
            name: "scal".into(),
            repeat: 1,
            phases: vec![Phase::Scalar(ScalarSection {
                insts: 64,
                memory_fraction: 0.3,
            })],
        };
        let program = prog.compile(7);
        let s = program.summary();
        assert_eq!(s.vector_insts, 0);
        assert!(s.scalar_insts >= 64);
        assert!(s.scalar_mem_insts > 5);
        assert!(program.basic_blocks() >= 2);
    }

    #[test]
    fn in_place_kernel_reuses_addresses_across_strips() {
        let mut k = Kernel::new("inplace");
        let v = k.load_in_place("state");
        let t = k.mul_scalar(v);
        k.store_in_place(t, "state");
        let program = compile_one(LoopSpec::new(k, 3, 16));
        let mut load_bases = Vec::new();
        let mut store_bases = Vec::new();
        for inst in program.insts() {
            match inst {
                Inst::VLoad { access, .. } => load_bases.push(access.base),
                Inst::VStore { access, .. } => store_bases.push(access.base),
                _ => {}
            }
        }
        assert!(load_bases.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(load_bases[0], store_bases[0]);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let spec = ProgramSpec {
            name: "det".into(),
            repeat: 2,
            phases: vec![
                Phase::Loop(LoopSpec::new(daxpy(), 3, 48)),
                Phase::Scalar(ScalarSection {
                    insts: 20,
                    memory_fraction: 0.5,
                }),
            ],
        };
        assert_eq!(spec.compile(99), spec.compile(99));
        assert_ne!(spec.compile(99), spec.compile(100));
    }

    #[test]
    fn mul_requires_general_unit_in_lowered_code() {
        let program = compile_one(LoopSpec::new(daxpy(), 1, 8));
        let has_mul = program.insts().iter().any(|i| {
            matches!(
                i,
                Inst::VCompute {
                    op: VectorOp::Mul,
                    ..
                }
            )
        });
        assert!(has_mul);
    }
}
