use dva_workloads::stats::spill_fraction;
use dva_workloads::{Benchmark, Scale};

#[test]
fn calibration_dump() {
    for b in Benchmark::ALL {
        let p = b.program(Scale::Default);
        let s = p.summary();
        let t = b.paper_row();
        println!(
            "{:8} insts={:7} bbs={:6} S={:7} V={:6} vops={:9} vect={:5.1} (paper {:5.1}) VL={:5.1} (paper {:5.1}) spill={:.3} (paper {:?}) S:V={:.2} (paper {:.2})",
            b.name(), p.len(), p.basic_blocks(), s.scalar_insts, s.vector_insts, s.vector_ops,
            s.vectorization(), t.vectorization, s.avg_vector_length(), t.avg_vl,
            spill_fraction(&p), b.paper_spill_fraction(),
            s.scalar_insts as f64 / s.vector_insts as f64,
            t.scalar_insts / t.vector_insts,
        );
    }
}
