//! Support crate for the Criterion benchmarks.
//!
//! One bench target exists per table/figure of the paper
//! (`benches/table1.rs`, `benches/fig1_unit_usage.rs`, …). Each target
//! exercises the code path that regenerates its artifact on reduced
//! inputs, so `cargo bench --workspace` both times the simulators and
//! re-derives every result. The *full* regeneration (paper-scale traces,
//! full latency grids) is done by the `dva-experiments` binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dva_workloads::{Benchmark, Scale};

/// The trace size benchmarks run at.
pub const BENCH_SCALE: Scale = Scale::Quick;

/// A small representative program pair: one long-vector memory-bound
/// program and one short-vector scalar-heavy program.
pub fn bench_programs() -> Vec<(Benchmark, dva_isa::Program)> {
    [Benchmark::Arc2d, Benchmark::Trfd]
        .into_iter()
        .map(|b| (b, b.program(BENCH_SCALE)))
        .collect()
}
