//! Bench: Figure 6 — AVDQ occupancy histogram collection.

use criterion::{criterion_group, criterion_main, Criterion};
use dva_bench::BENCH_SCALE;
use dva_sim_api::Machine;
use dva_workloads::Benchmark;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_avdq_occupancy");
    group.sample_size(10);
    // SPEC77 is the program that actually exercises deep queue occupancy.
    let program = Benchmark::Spec77.program(BENCH_SCALE);
    for latency in [1u64, 100] {
        group.bench_function(format!("spec77_L{latency}"), |b| {
            b.iter(|| {
                let r = Machine::dva(latency).simulate(&program);
                (
                    r.avdq_occupancy().expect("DVA histogram").mean(),
                    r.max_avdq(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
