//! Bench: Figure 3 — IDEAL/REF/DVA execution times.

use criterion::{criterion_group, criterion_main, Criterion};
use dva_bench::bench_programs;
use dva_core::{ideal_bound, DvaConfig, DvaSim};
use dva_ref::{RefParams, RefSim};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_exec_time");
    group.sample_size(10);
    for (benchmark, program) in bench_programs() {
        group.bench_function(format!("{}_ideal", benchmark.name()), |b| {
            b.iter(|| ideal_bound(&program))
        });
        group.bench_function(format!("{}_ref_L30", benchmark.name()), |b| {
            b.iter(|| RefSim::new(RefParams::with_latency(30)).run(&program))
        });
        group.bench_function(format!("{}_dva_L30", benchmark.name()), |b| {
            b.iter(|| DvaSim::new(DvaConfig::dva(30)).run(&program))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
