//! Bench: Figure 3 — IDEAL/REF/DVA execution times.

use criterion::{criterion_group, criterion_main, Criterion};
use dva_bench::bench_programs;
use dva_sim_api::Machine;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_exec_time");
    group.sample_size(10);
    for (benchmark, program) in bench_programs() {
        group.bench_function(format!("{}_ideal", benchmark.name()), |b| {
            b.iter(|| Machine::ideal().simulate(&program))
        });
        group.bench_function(format!("{}_ref_L30", benchmark.name()), |b| {
            b.iter(|| Machine::reference(30).simulate(&program))
        });
        group.bench_function(format!("{}_dva_L30", benchmark.name()), |b| {
            b.iter(|| Machine::dva(30).simulate(&program))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
