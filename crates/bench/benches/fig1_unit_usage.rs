//! Bench: Figure 1 — reference-machine state breakdown.

use criterion::{criterion_group, criterion_main, Criterion};
use dva_bench::bench_programs;
use dva_sim_api::Machine;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_unit_usage");
    group.sample_size(10);
    for (benchmark, program) in bench_programs() {
        for latency in [1u64, 100] {
            group.bench_function(format!("{}_L{latency}", benchmark.name()), |b| {
                b.iter(|| Machine::reference(latency).simulate(&program))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
