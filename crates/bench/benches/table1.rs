//! Bench: regenerate Table 1 (workload generation + trace statistics).

use criterion::{criterion_group, criterion_main, Criterion};
use dva_bench::BENCH_SCALE;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.bench_function("generate_and_summarize", |b| {
        b.iter(|| dva_experiments::table1::run(BENCH_SCALE))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
