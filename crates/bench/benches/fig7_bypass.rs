//! Bench: Figure 7 — bypass configurations.

use criterion::{criterion_group, criterion_main, Criterion};
use dva_bench::BENCH_SCALE;
use dva_experiments::fig7::BYP_CONFIGS;
use dva_sim_api::Machine;
use dva_workloads::Benchmark;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_bypass");
    group.sample_size(10);
    // TRFD is one of the two biggest bypass winners in the paper.
    let program = Benchmark::Trfd.program(BENCH_SCALE);
    for (load_q, store_q) in BYP_CONFIGS {
        group.bench_function(format!("trfd_byp_{load_q}_{store_q}_L1"), |b| {
            b.iter(|| Machine::byp(1, load_q, store_q).simulate(&program))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
