//! Bench: Figure 8 — memory traffic with and without bypass.

use criterion::{criterion_group, criterion_main, Criterion};
use dva_bench::BENCH_SCALE;
use dva_sim_api::Machine;
use dva_workloads::Benchmark;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_traffic");
    group.sample_size(10);
    let program = Benchmark::Bdna.program(BENCH_SCALE);
    group.bench_function("bdna_traffic_ratio", |b| {
        b.iter(|| {
            let dva = Machine::dva(1).simulate(&program);
            let byp = Machine::byp(1, 256, 16).simulate(&program);
            byp.traffic.ratio_to(&dva.traffic)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
