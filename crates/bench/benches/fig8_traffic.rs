//! Bench: Figure 8 — memory traffic with and without bypass.

use criterion::{criterion_group, criterion_main, Criterion};
use dva_bench::BENCH_SCALE;
use dva_core::{DvaConfig, DvaSim};
use dva_workloads::Benchmark;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_traffic");
    group.sample_size(10);
    let program = Benchmark::Bdna.program(BENCH_SCALE);
    group.bench_function("bdna_traffic_ratio", |b| {
        b.iter(|| {
            let dva = DvaSim::new(DvaConfig::dva(1)).run(&program);
            let byp = DvaSim::new(DvaConfig::byp(1, 256, 16)).run(&program);
            byp.traffic.ratio_to(&dva.traffic)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
