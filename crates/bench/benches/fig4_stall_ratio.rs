//! Bench: Figure 4 — all-idle cycle ratio between the machines.

use criterion::{criterion_group, criterion_main, Criterion};
use dva_bench::BENCH_SCALE;
use dva_experiments::common::{run_point, LatencySweep};
use dva_workloads::Benchmark;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_stall_ratio");
    group.sample_size(10);
    let program = Benchmark::Flo52.program(BENCH_SCALE);
    group.bench_function("flo52_point_L50", |b| {
        b.iter(|| run_point(Benchmark::Flo52, &program, 50).idle_ratio())
    });
    group.bench_function("sweep_two_latencies", |b| {
        b.iter(|| LatencySweep::run(BENCH_SCALE, &[1, 100]))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
