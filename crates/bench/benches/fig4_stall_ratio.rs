//! Bench: Figure 4 — all-idle cycle ratio between the machines, plus the
//! parallel sweep session that backs Figures 3–5.

use criterion::{criterion_group, criterion_main, Criterion};
use dva_bench::BENCH_SCALE;
use dva_sim_api::{Machine, Sweep};
use dva_workloads::Benchmark;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_stall_ratio");
    group.sample_size(10);
    let program = Benchmark::Flo52.program(BENCH_SCALE);
    group.bench_function("flo52_point_L50", |b| {
        b.iter(|| {
            let r = Machine::reference(50).simulate(&program);
            let d = Machine::dva(50).simulate(&program);
            r.idle_cycles() as f64 / d.idle_cycles().max(1) as f64
        })
    });
    for threads in [1usize, 4] {
        group.bench_function(format!("sweep_two_latencies_t{threads}"), |b| {
            b.iter(|| {
                Sweep::new()
                    .machines([Machine::reference(1), Machine::dva(1)])
                    .benchmarks(Benchmark::ALL)
                    .latencies([1, 100])
                    .scale(BENCH_SCALE)
                    .threads(threads)
                    .run()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
