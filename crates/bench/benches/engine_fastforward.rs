//! Bench: fast-forward (next-event skip) engine vs naive stepping.
//!
//! The first entry in the workspace's performance trajectory: times both
//! machines with and without fast-forward at the two ends of the paper's
//! latency sweep, so `BENCH_engine.json` captures REF and DVA alike.
//! Both run through the one shared `dva_engine::Driver` — this bench is
//! therefore also the timing watchpoint for the driver kernel itself:
//! a regression in the shared tick loop moves every row. The
//! `DVA-banked` rows time the same machine against the `Banked` memory
//! backend, so the baseline also tracks the `MemoryModel` trait's
//! dispatch overhead (the flat rows go through the same `Box<dyn>`
//! call, so a dispatch regression moves everything together). With
//! `BENCH_UPDATE` set it rewrites the `BENCH_engine.json` baseline at
//! the workspace root; otherwise (and always under `BENCH_SMOKE`) the
//! checked-in baseline is left untouched, so a plain
//! `cargo bench --workspace` never dirties the tree.

use dva_sim_api::{Machine, MemoryModelKind};
use dva_workloads::{Benchmark, Scale};
use std::fmt::Write as _;
use std::time::Instant;

const PROGRAM: Benchmark = Benchmark::Arc2d;
const LATENCIES: [u64; 2] = [1, 100];

struct Point {
    machine: &'static str,
    latency: u64,
    cycles: u64,
    naive_ticks: u64,
    fast_ticks: u64,
    naive_secs: f64,
    fast_secs: f64,
}

impl Point {
    fn speedup(&self) -> f64 {
        self.naive_secs / self.fast_secs
    }
}

fn median_secs(samples: usize, mut run: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            run();
            start.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn main() {
    let smoke = criterion::smoke_mode();
    let samples = if smoke { 1 } else { 7 };
    let program = PROGRAM.program(Scale::Quick);

    let banked = MemoryModelKind::Banked {
        banks: 8,
        bank_busy: 8,
    };
    let mut points = Vec::new();
    for (name, machine) in [
        ("REF", Machine::reference(1)),
        ("DVA", Machine::dva(1)),
        ("DVA-banked", Machine::dva(1).with_memory_model(banked)),
    ] {
        for latency in LATENCIES {
            let machine = machine.with_latency(latency);
            let naive = machine.simulate_with(&program, false);
            let fast = machine.simulate_with(&program, true);
            assert_eq!(naive, fast, "fast-forward changed the {name} model");
            assert_eq!(
                naive.ticks_executed.get(),
                naive.cycles,
                "the shared driver must execute one tick per cycle when naive"
            );
            let naive_secs = median_secs(samples, || {
                criterion::black_box(machine.simulate_with(&program, false));
            });
            let fast_secs = median_secs(samples, || {
                criterion::black_box(machine.simulate_with(&program, true));
            });
            let point = Point {
                machine: name,
                latency,
                cycles: fast.cycles,
                naive_ticks: naive.ticks_executed.get(),
                fast_ticks: fast.ticks_executed.get(),
                naive_secs,
                fast_secs,
            };
            println!(
                "engine_fastforward/{name}_L{latency}: {} cycles, ticks {} -> {}, \
                 naive {:.3}ms, fast-forward {:.3}ms ({:.2}x)",
                point.cycles,
                point.naive_ticks,
                point.fast_ticks,
                1e3 * point.naive_secs,
                1e3 * point.fast_secs,
                point.speedup(),
            );
            points.push(point);
        }
    }

    if smoke || std::env::var_os("BENCH_UPDATE").is_none() {
        println!("engine_fastforward: set BENCH_UPDATE=1 to rewrite BENCH_engine.json");
        return;
    }
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    std::fs::write(path, render_json(&points)).expect("write BENCH_engine.json");
    println!("engine_fastforward: wrote {path}");
}

fn render_json(points: &[Point]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"engine_fastforward\",\n");
    let _ = writeln!(out, "  \"program\": \"{}\",", PROGRAM.name());
    out.push_str("  \"scale\": \"quick\",\n");
    out.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"machine\": \"{}\", \"latency\": {}, \"cycles\": {}, \
             \"naive_ticks\": {}, \"fast_forward_ticks\": {}, \
             \"naive_seconds\": {:.6}, \"fast_forward_seconds\": {:.6}, \
             \"speedup\": {:.2}}}",
            p.machine,
            p.latency,
            p.cycles,
            p.naive_ticks,
            p.fast_ticks,
            p.naive_secs,
            p.fast_secs,
            p.speedup(),
        );
        out.push_str(if i + 1 < points.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}
