//! Bench: Figure 5 — DVA-over-REF speedup computation.

use criterion::{criterion_group, criterion_main, Criterion};
use dva_bench::bench_programs;
use dva_sim_api::Machine;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_speedup");
    group.sample_size(10);
    for (benchmark, program) in bench_programs() {
        group.bench_function(format!("{}_speedup_L100", benchmark.name()), |b| {
            b.iter(|| {
                let d = Machine::dva(100).simulate(&program);
                let r = Machine::reference(100).simulate(&program);
                d.speedup_over(&r)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
