//! Bench: sweep throughput (grid points per second).
//!
//! The headline number for the translate-once + zero-allocation engine
//! work: how many grid points per second one `Sweep` session measures on
//! the full quick-scale grid — every benchmark × the four paper machines
//! × three latencies × two memory backends, single-threaded so the
//! number is comparable across machines with different core counts. The
//! session shares one compiled program per benchmark and one set of
//! engine allocations per worker; the checked-in `BENCH_sweep.json`
//! baseline also records the pre-compiled-programs throughput for
//! history.
//!
//! Besides the sequential headline row, the baseline records a
//! batched-lanes row (the same grid through the lane-batched driver at
//! the sweep's default lane width), a multi-threaded row (as many
//! workers as the machine offers), and an adaptive row: the
//! high-resolution latency figure measured through knee-finding
//! refinement + dominance pruning against its own dense grid. The
//! sequential, batched and adaptive throughputs each gate independently
//! under `PERF_GATE`, and the adaptive sampling fraction — which is
//! deterministic — gates exactly against its ≤40% budget.
//!
//! Under `BENCH_SMOKE` (CI) a single sample runs and is compared against
//! the checked-in baseline. Inside the noise band a shortfall prints a
//! `PERF-WARN:` line; below [`GATE_FRACTION`] of the baseline **and**
//! with `PERF_GATE` set in the environment, the bench prints `PERF-FAIL`
//! and exits nonzero — the CI regression gate. Without `PERF_GATE` every
//! check stays warn-only (developer machines vary too widely to gate).
//! With `BENCH_UPDATE` set the baseline is rewritten; otherwise the tree
//! is left untouched.

use dva_serve::{ResultCache, SweepService, DEFAULT_MEMORY_CAPACITY};
use dva_sim_api::{AdaptiveOutcome, AdaptiveSweep, Machine, MemoryModelKind, Sweep, SweepResults};
use dva_workloads::{Benchmark, Scale};
use std::fmt::Write as _;
use std::time::Instant;

const LATENCIES: [u64; 3] = [1, 30, 100];
/// Throughput below this fraction of the checked-in baseline prints a
/// PERF-WARN in smoke mode (generous: CI machines vary widely).
const WARN_FRACTION: f64 = 0.5;
/// With `PERF_GATE` set, throughput below this fraction of the baseline
/// fails the bench (>25% regression — beyond same-class-machine noise).
const GATE_FRACTION: f64 = 0.75;

/// Measured pre-PR (translate-per-point, allocate-per-tick engines) with
/// the same grid, machine and method; kept for the history books.
const PRE_COMPILED_POINTS_PER_SEC: f64 = 1965.3;

/// The adaptive run may sample at most this fraction of its dense grid —
/// the PR's acceptance bar, checked deterministically under `PERF_GATE`.
const ADAPTIVE_MAX_FRACTION: f64 = 0.40;

fn grid() -> Sweep {
    Sweep::new()
        .machines([
            Machine::reference(1),
            Machine::dva(1),
            Machine::byp(1, 4, 8),
            Machine::ideal(),
        ])
        .benchmarks(Benchmark::ALL)
        .latencies(LATENCIES)
        .memory_models([
            MemoryModelKind::Flat,
            MemoryModelKind::Banked {
                banks: 8,
                bank_busy: 8,
            },
        ])
        .scale(Scale::Quick)
        .threads(1)
}

/// The adaptive session of the high-resolution latency figure
/// (`fig5_adaptive`): five machines × six benchmarks × a 100-point
/// latency axis, seeded at seven latencies per curve with the bypass
/// machines dominance-pruned against the base DVA.
fn adaptive_session() -> AdaptiveSweep {
    AdaptiveSweep::over(
        Sweep::new()
            .machines([
                Machine::reference(1),
                Machine::dva(1),
                Machine::byp(1, 4, 4),
                Machine::byp(1, 256, 16),
                Machine::ideal(),
            ])
            .benchmarks(Benchmark::ALL)
            .scale(Scale::Quick)
            .threads(1)
            .lanes(1),
        1..=100,
    )
    .seeds(7)
    .tolerance(0.02)
    .prune_against("DVA", ["BYP 4/4", "BYP 256/16"])
}

/// What the checked-in baseline records about the adaptive session.
struct AdaptiveRow {
    dense_points: usize,
    sampled_points: usize,
    fraction: f64,
    median_secs: f64,
    points_per_sec: f64,
    speedup_vs_dense: f64,
}

/// Median wall-clock seconds for one full adaptive session, checking
/// every sample against the warmup outcome for reproducibility.
fn median_adaptive_secs(adaptive: &AdaptiveSweep, samples: usize, warm: &AdaptiveOutcome) -> f64 {
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            let outcome = criterion::black_box(adaptive.run());
            let secs = start.elapsed().as_secs_f64();
            assert_eq!(&outcome, warm, "adaptive sessions must be reproducible");
            secs
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// Median wall-clock seconds for one full run of `sweep`, checking every
/// sample against the warmup results for reproducibility.
fn median_run_secs(sweep: &Sweep, samples: usize, warm: &SweepResults) -> f64 {
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            let results = criterion::black_box(sweep.run());
            let secs = start.elapsed().as_secs_f64();
            assert_eq!(results.points, warm.points, "sweeps must be reproducible");
            secs
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn main() {
    let smoke = criterion::smoke_mode();
    // The headline row stays sequential (one lane) so the figure remains
    // comparable with baselines that predate lane batching.
    let sweep = grid().lanes(1);
    let points = sweep.len();

    // Warmup: populate the program and compiled-program caches and touch
    // every code path once, so the samples measure steady-state sweeps.
    let warm = sweep.run();
    assert_eq!(warm.points.len(), points, "grid must measure every point");

    let samples = if smoke { 3 } else { 9 };
    let median = median_run_secs(&sweep, samples, &warm);
    let points_per_sec = points as f64 / median;
    println!(
        "sweep_throughput: {points} points in {:.1}ms -> {points_per_sec:.1} points/sec \
         (1 thread, median of {samples}; pre-compiled-programs baseline {PRE_COMPILED_POINTS_PER_SEC:.1})",
        1e3 * median,
    );

    // Batched-lanes row: the same grid through the lane-batched driver at
    // the sweep's default lane width. Results are asserted identical to
    // the sequential warmup inside `median_run_secs`.
    let batched = grid();
    let lanes = batched.effective_lanes();
    let batched_median = median_run_secs(&batched, samples, &warm);
    let batched_points_per_sec = points as f64 / batched_median;
    println!(
        "sweep_throughput: batched x{lanes} {points} points in {:.1}ms -> \
         {batched_points_per_sec:.1} points/sec ({:.2}x sequential)",
        1e3 * batched_median,
        batched_points_per_sec / points_per_sec,
    );

    // Multi-threaded row: every core the machine offers (at least two
    // workers, so the work-stealing path is exercised even on one core).
    let workers = std::thread::available_parallelism().map_or(2, |n| n.get().max(2));
    let threaded = grid().threads(workers);
    let threaded_median = median_run_secs(&threaded, samples, &warm);
    let threaded_points_per_sec = points as f64 / threaded_median;
    println!(
        "sweep_throughput: {workers} threads {points} points in {:.1}ms -> \
         {threaded_points_per_sec:.1} points/sec ({:.2}x one thread)",
        1e3 * threaded_median,
        threaded_points_per_sec / points_per_sec,
    );

    // Warm-cache throughput through the sweep service: the first job pays
    // for every grid point, a repeat of the identical job is answered
    // entirely from the content-addressed cache.
    let service = SweepService::new(ResultCache::in_memory(DEFAULT_MEMORY_CAPACITY));
    let (cached, summary) = service.run(&sweep).expect("grid is serializable");
    assert_eq!(summary.simulated, points, "cold service run simulates all");
    assert_eq!(cached.points, warm.points, "served results are identical");
    let mut warm_times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            let (results, summary) = criterion::black_box(service.run(&sweep).expect("warm run"));
            let secs = start.elapsed().as_secs_f64();
            assert_eq!(summary.cache_hits, points, "warm run is all cache hits");
            assert_eq!(results.points, warm.points, "cached results are identical");
            secs
        })
        .collect();
    warm_times.sort_by(f64::total_cmp);
    let warm_median = warm_times[warm_times.len() / 2];
    let warm_points_per_sec = points as f64 / warm_median;
    println!(
        "sweep_throughput: warm cache {points} points in {:.2}ms -> {warm_points_per_sec:.1} \
         points/sec ({:.1}x the cold sweep)",
        1e3 * warm_median,
        warm_points_per_sec / points_per_sec,
    );
    if warm_points_per_sec < 10.0 * points_per_sec {
        println!(
            "PERF-WARN: warm-cache throughput {warm_points_per_sec:.1} points/sec is below 10x \
             the cold sweep {points_per_sec:.1} (cache lookups should dwarf simulation)"
        );
    }

    // Adaptive row: the high-resolution latency figure measured through
    // knee-finding refinement + dominance pruning, against its own dense
    // grid. Both run sequentially on the same engines, so the speedup is
    // the sampling plan's doing alone.
    let adaptive = adaptive_session();
    let warm_adaptive = adaptive.run();
    let report = warm_adaptive.report.clone();
    let adaptive_median = median_adaptive_secs(&adaptive, samples, &warm_adaptive);
    let dense_sweep = adaptive.dense();
    let warm_dense = dense_sweep.run();
    let dense_median = median_run_secs(&dense_sweep, samples, &warm_dense);
    let adaptive_row = AdaptiveRow {
        dense_points: report.dense_points,
        sampled_points: report.sampled_points,
        fraction: report.sampled_fraction(),
        median_secs: adaptive_median,
        points_per_sec: report.sampled_points as f64 / adaptive_median,
        speedup_vs_dense: dense_median / adaptive_median,
    };
    println!(
        "sweep_throughput: adaptive {} of {} dense points ({:.1}%) in {:.1}ms -> \
         {:.1} points/sec, {:.2}x the dense sweep ({:.1}ms)",
        adaptive_row.sampled_points,
        adaptive_row.dense_points,
        100.0 * adaptive_row.fraction,
        1e3 * adaptive_row.median_secs,
        adaptive_row.points_per_sec,
        adaptive_row.speedup_vs_dense,
        1e3 * dense_median,
    );

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep.json");
    if std::env::var_os("BENCH_UPDATE").is_some() && !smoke {
        std::fs::write(
            path,
            render_json(
                points,
                median,
                points_per_sec,
                warm_points_per_sec,
                lanes,
                batched_points_per_sec,
                workers,
                threaded_points_per_sec,
                &adaptive_row,
            ),
        )
        .expect("write baseline");
        println!("sweep_throughput: wrote {path}");
        return;
    }

    // Regression check against the checked-in baseline: warn inside the
    // noise band, fail (under PERF_GATE) beyond it. The sequential and
    // the batched figures gate independently — a scheduler regression in
    // the lane-batched driver must not hide behind a healthy sequential
    // number, or vice versa.
    let gated = std::env::var_os("PERF_GATE").is_some();
    let doc = std::fs::read_to_string(path).ok();
    let mut failed = false;
    let rows = [
        ("points_per_sec", points_per_sec),
        ("batched_lanes_points_per_sec", batched_points_per_sec),
        ("adaptive_points_per_sec", adaptive_row.points_per_sec),
    ];
    for (key, measured) in rows {
        match doc.as_deref().and_then(|s| json_f64(s, key)) {
            Some(baseline) => {
                let ratio = measured / baseline;
                println!(
                    "sweep_throughput: {key} {:.2}x the checked-in baseline \
                     ({baseline:.1} points/sec)",
                    ratio
                );
                if gated && ratio < GATE_FRACTION {
                    println!(
                        "PERF-FAIL: {key} {measured:.1} points/sec is below \
                         {GATE_FRACTION}x the checked-in baseline {baseline:.1} — a >25% \
                         regression (rebaseline deliberately with BENCH_UPDATE=1 if intended)"
                    );
                    failed = true;
                }
                if ratio < WARN_FRACTION {
                    println!(
                        "PERF-WARN: {key} {measured:.1} points/sec is below \
                         {WARN_FRACTION}x the checked-in baseline {baseline:.1} \
                         (machines differ; investigate only if this regressed on the same hardware)"
                    );
                }
            }
            None if gated => {
                println!(
                    "PERF-FAIL: no readable {key} baseline at {path} (required under PERF_GATE)"
                );
                failed = true;
            }
            None => println!("sweep_throughput: no readable {key} baseline at {path}"),
        }
    }
    // The sampling fraction is deterministic — the same curves produce
    // the same plan on every machine — so it gates exactly, with no
    // noise band: the adaptive figure must stay within the PR's ≤40%
    // budget of its dense grid.
    if adaptive_row.fraction > ADAPTIVE_MAX_FRACTION {
        println!(
            "PERF-{}: adaptive session sampled {:.1}% of its dense grid, above the \
             {:.0}% budget ({} of {} points)",
            if gated { "FAIL" } else { "WARN" },
            100.0 * adaptive_row.fraction,
            100.0 * ADAPTIVE_MAX_FRACTION,
            adaptive_row.sampled_points,
            adaptive_row.dense_points,
        );
        failed |= gated;
    }
    if failed {
        std::process::exit(1);
    }
    println!("sweep_throughput: set BENCH_UPDATE=1 to rewrite BENCH_sweep.json");
}

/// Extracts `"key": <number>` from a flat JSON document — enough for the
/// baseline file this bench writes itself.
fn json_f64(doc: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let rest = &doc[doc.find(&needle)? + needle.len()..];
    let end = rest.find([',', '}', '\n']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    points: usize,
    median_secs: f64,
    points_per_sec: f64,
    warm_cache_points_per_sec: f64,
    batched_lanes: usize,
    batched_lanes_points_per_sec: f64,
    multi_thread_workers: usize,
    multi_thread_points_per_sec: f64,
    adaptive: &AdaptiveRow,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"sweep_throughput\",\n");
    out.push_str("  \"grid\": {\n");
    out.push_str("    \"machines\": [\"REF\", \"DVA\", \"BYP 4/8\", \"IDEAL\"],\n");
    out.push_str("    \"programs\": 6,\n");
    let _ = writeln!(out, "    \"latencies\": {LATENCIES:?},");
    out.push_str("    \"memory_models\": [\"flat\", \"banked8x8\"],\n");
    out.push_str("    \"scale\": \"quick\",\n");
    out.push_str("    \"threads\": 1\n");
    out.push_str("  },\n");
    let _ = writeln!(out, "  \"points\": {points},");
    let _ = writeln!(out, "  \"median_seconds\": {median_secs:.6},");
    let _ = writeln!(out, "  \"points_per_sec\": {points_per_sec:.1},");
    let _ = writeln!(
        out,
        "  \"warm_cache_points_per_sec\": {warm_cache_points_per_sec:.1},"
    );
    let _ = writeln!(out, "  \"batched_lanes\": {batched_lanes},");
    let _ = writeln!(
        out,
        "  \"batched_lanes_points_per_sec\": {batched_lanes_points_per_sec:.1},"
    );
    let _ = writeln!(out, "  \"multi_thread_workers\": {multi_thread_workers},");
    let _ = writeln!(
        out,
        "  \"multi_thread_points_per_sec\": {multi_thread_points_per_sec:.1},"
    );
    let _ = writeln!(
        out,
        "  \"adaptive_dense_points\": {},",
        adaptive.dense_points
    );
    let _ = writeln!(
        out,
        "  \"adaptive_sampled_points\": {},",
        adaptive.sampled_points
    );
    let _ = writeln!(
        out,
        "  \"adaptive_points_fraction\": {:.4},",
        adaptive.fraction
    );
    let _ = writeln!(
        out,
        "  \"adaptive_median_seconds\": {:.6},",
        adaptive.median_secs
    );
    let _ = writeln!(
        out,
        "  \"adaptive_points_per_sec\": {:.1},",
        adaptive.points_per_sec
    );
    let _ = writeln!(
        out,
        "  \"adaptive_speedup_vs_dense\": {:.2},",
        adaptive.speedup_vs_dense
    );
    let _ = writeln!(
        out,
        "  \"pre_compiled_programs_points_per_sec\": {PRE_COMPILED_POINTS_PER_SEC:.1}"
    );
    out.push_str("}\n");
    out
}
