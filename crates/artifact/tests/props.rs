//! Property-based tests for the artifact wire forms: every generated
//! `Artifact` / `SpecManifest` survives a JSON round trip intact, and the
//! canonical rendering is a fixed point (render → parse → render is
//! byte-identical — the property `artifacts/golden/` relies on).

use dva_artifact::{Artifact, Invariant, Section, SpecManifest, TableData};
use dva_json::{FromJson, Json, ToJson};
use dva_workloads::Scale;
use proptest::prelude::*;

/// Characters worth stressing in string cells: ASCII, escapes, unicode.
const PIECES: &[&str] = &["a", "Z9", " ", "\"", "\\", "\n", "µs", "≤", ",", "-1.5"];

fn arb_text() -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..PIECES.len(), 0..5)
        .prop_map(|ix| ix.into_iter().map(|i| PIECES[i]).collect())
}

fn arb_table() -> impl Strategy<Value = TableData> {
    (
        proptest::collection::vec(arb_text(), 1..4),
        proptest::collection::vec(proptest::collection::vec(arb_text(), 0..5), 0..4),
    )
        .prop_map(|(headers, rows)| {
            // Rows must be exactly as wide as the header row; pad or
            // truncate whatever the generator produced.
            let width = headers.len();
            let rows = rows
                .into_iter()
                .map(|mut row| {
                    row.resize(width, "pad".to_string());
                    row
                })
                .collect();
            TableData { headers, rows }
        })
}

fn arb_section() -> impl Strategy<Value = Section> {
    (arb_text(), arb_text(), arb_table()).prop_map(|(key, heading, table)| Section {
        key,
        heading,
        table,
    })
}

fn arb_scale() -> impl Strategy<Value = Scale> {
    prop_oneof![Just(Scale::Quick), Just(Scale::Default), Just(Scale::Full),]
}

fn arb_artifact() -> impl Strategy<Value = Artifact> {
    (
        arb_text(),
        0u32..1000,
        arb_scale(),
        prop_oneof![Just(false), Just(true)],
        proptest::collection::vec(arb_section(), 0..4),
    )
        .prop_map(
            |(experiment, engine_version, scale, full, sections)| Artifact {
                experiment,
                engine_version,
                scale,
                full,
                sections,
            },
        )
}

fn arb_invariant() -> impl Strategy<Value = Invariant> {
    prop_oneof![
        Just(Invariant::IdealLowerBound),
        (0u32..3, 0u32..3, 0u32..20).prop_map(|(lo, hi, tol)| {
            const LABELS: [&str; 3] = ["IDEAL", "DVA", "REF"];
            Invariant::CyclesOrdered {
                lower: LABELS[lo as usize],
                upper: LABELS[hi as usize],
                tolerance: f64::from(tol) / 10.0,
            }
        }),
    ]
}

fn arb_manifest() -> impl Strategy<Value = SpecManifest> {
    (
        arb_text(),
        arb_text(),
        prop_oneof![Just(false), Just(true)],
        proptest::collection::vec(arb_invariant(), 0..4),
    )
        .prop_map(|(name, description, in_all, invariants)| SpecManifest {
            name,
            description,
            in_all,
            invariants,
        })
}

proptest! {
    /// Decode(encode(artifact)) == artifact, through actual JSON text.
    #[test]
    fn artifact_round_trips_through_json_text(artifact in arb_artifact()) {
        let text = artifact.to_json().render();
        let parsed = Json::parse(&text).expect("canonical rendering parses");
        let back = Artifact::from_json(&parsed).expect("decodes");
        prop_assert_eq!(back, artifact);
    }

    /// The canonical rendering is a fixed point: render → parse → render
    /// changes no bytes. Golden byte-diffs depend on this.
    #[test]
    fn artifact_rendering_is_a_fixed_point(artifact in arb_artifact()) {
        let first = artifact.to_json().render();
        let reparsed = Json::parse(&first).expect("parses");
        let second = Artifact::from_json(&reparsed).expect("decodes").to_json().render();
        prop_assert_eq!(first, second);
    }

    /// Spec manifests (name, description, `all` membership, invariants)
    /// also round trip exactly.
    #[test]
    fn manifest_round_trips_through_json_text(manifest in arb_manifest()) {
        let text = manifest.to_json().render();
        let parsed = Json::parse(&text).expect("parses");
        prop_assert_eq!(SpecManifest::from_json(&parsed).expect("decodes"), manifest);
    }

    /// TableData → Table → TableData loses nothing (the artifact's text
    /// rendering path).
    #[test]
    fn table_survives_the_render_type(table in arb_table()) {
        prop_assert_eq!(TableData::from_table(&table.to_table()), table);
    }
}
