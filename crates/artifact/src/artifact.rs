//! The versioned result artifact: what one experiment run produces.
//!
//! An [`Artifact`] is the machine-checkable record of one experiment —
//! the tables the paper's figure would plot, stamped with the
//! [`dva_engine::ENGINE_VERSION`] that produced them and the grid options
//! they were measured at. Every cell is a pre-formatted string (exactly
//! what the ASCII table prints), so the serialized form is byte-stable by
//! construction: no float re-formatting can drift between a write and a
//! later comparison.
//!
//! Three renderings exist, all derived from the same data:
//!
//! * [`Artifact::to_text`] — the human ASCII form, byte-identical to the
//!   pre-artifact experiment binaries' stdout.
//! * [`Artifact::to_json`] — the canonical versioned form
//!   ([`dva_json`] rendering, insertion-ordered, no whitespace). This is
//!   what `artifacts/golden/` pins and CI byte-diffs.
//! * [`Artifact::to_csv`] — a flat form for plotting tools.

use dva_json::{FromJson, Json, JsonError, ToJson};
use dva_metrics::Table;
use dva_workloads::Scale;

/// One experiment's complete, versioned output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Artifact {
    /// The experiment's registry name (`fig3`, `table1`, …).
    pub experiment: String,
    /// The [`dva_engine::ENGINE_VERSION`] that produced the results.
    pub engine_version: u32,
    /// The trace scale the workloads were generated at.
    pub scale: Scale,
    /// Whether the full latency grid was swept.
    pub full: bool,
    /// The experiment's sections, in print order.
    pub sections: Vec<Section>,
}

/// One headed table within an artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Section {
    /// A stable machine-readable key (`instruction_queues`, `fig3`, …).
    pub key: String,
    /// The heading printed above the table (may span multiple lines).
    pub heading: String,
    /// The table data.
    pub table: TableData,
}

/// A table as plain data: a header row plus string rows, exactly what
/// [`dva_metrics::Table`] renders.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TableData {
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows; every row has one cell per header.
    pub rows: Vec<Vec<String>>,
}

impl Section {
    /// Builds a section from a rendered [`Table`].
    pub fn new(key: impl Into<String>, heading: impl Into<String>, table: &Table) -> Section {
        Section {
            key: key.into(),
            heading: heading.into(),
            table: TableData::from_table(table),
        }
    }
}

impl TableData {
    /// Captures a [`Table`]'s headers and rows.
    pub fn from_table(table: &Table) -> TableData {
        TableData {
            headers: table.headers().to_vec(),
            rows: table.rows().to_vec(),
        }
    }

    /// Rebuilds the renderable [`Table`] (default alignment — which is
    /// what every experiment table uses).
    pub fn to_table(&self) -> Table {
        Table::from_parts(self.headers.iter().cloned(), self.rows.iter().cloned())
    }
}

impl Artifact {
    /// The standalone ASCII rendering: per section, its heading, a blank
    /// line, the aligned table, and a blank line before the next
    /// section's heading. Byte-identical to what the pre-artifact
    /// experiment binaries printed.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (i, section) in self.sections.iter().enumerate() {
            if i > 0 {
                out.push('\n');
            }
            out.push_str(&section.heading);
            out.push_str("\n\n");
            out.push_str(&section.table.to_table().to_ascii());
            out.push('\n');
        }
        out
    }

    /// The sections' ASCII tables alone (no headings), separated by blank
    /// lines — what the `all` binary prints under its own `== … ==`
    /// headers. Each table already ends in a newline, so the `"\n\n"`
    /// separator yields one blank line between tables.
    pub fn tables_text(&self) -> String {
        let tables: Vec<String> = self
            .sections
            .iter()
            .map(|s| s.table.to_table().to_ascii())
            .collect();
        tables.join("\n\n")
    }

    /// The CSV rendering: a comment line identifying the artifact, then
    /// per section a `# section <key>` comment and the table as CSV,
    /// sections separated by blank lines.
    pub fn to_csv(&self) -> String {
        let mut out = format!(
            "# artifact {} engine_version={} scale={} full={}\n",
            self.experiment,
            self.engine_version,
            self.scale.name(),
            self.full
        );
        for (i, section) in self.sections.iter().enumerate() {
            if i > 0 {
                out.push('\n');
            }
            out.push_str(&format!("# section {}\n", section.key));
            out.push_str(&section.table.to_table().to_csv());
        }
        out
    }
}

impl ToJson for TableData {
    fn to_json(&self) -> Json {
        Json::obj([
            (
                "headers",
                Json::Array(
                    self.headers
                        .iter()
                        .map(|h| Json::from(h.as_str()))
                        .collect(),
                ),
            ),
            (
                "rows",
                Json::Array(
                    self.rows
                        .iter()
                        .map(|row| {
                            Json::Array(row.iter().map(|c| Json::from(c.as_str())).collect())
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

impl FromJson for TableData {
    fn from_json(json: &Json) -> Result<TableData, JsonError> {
        let headers = json
            .field("headers")?
            .as_array()?
            .iter()
            .map(|h| Ok(h.as_str()?.to_string()))
            .collect::<Result<Vec<_>, JsonError>>()?;
        let rows = json
            .field("rows")?
            .as_array()?
            .iter()
            .map(|row| {
                row.as_array()?
                    .iter()
                    .map(|c| Ok(c.as_str()?.to_string()))
                    .collect::<Result<Vec<_>, JsonError>>()
            })
            .collect::<Result<Vec<_>, JsonError>>()?;
        for row in &rows {
            if row.len() != headers.len() {
                return Err(JsonError(format!(
                    "table row width {} != header width {}",
                    row.len(),
                    headers.len()
                )));
            }
        }
        Ok(TableData { headers, rows })
    }
}

impl ToJson for Section {
    fn to_json(&self) -> Json {
        Json::obj([
            ("key", Json::from(self.key.as_str())),
            ("heading", Json::from(self.heading.as_str())),
            ("table", self.table.to_json()),
        ])
    }
}

impl FromJson for Section {
    fn from_json(json: &Json) -> Result<Section, JsonError> {
        Ok(Section {
            key: json.field("key")?.as_str()?.to_string(),
            heading: json.field("heading")?.as_str()?.to_string(),
            table: TableData::from_json(json.field("table")?)?,
        })
    }
}

impl ToJson for Artifact {
    fn to_json(&self) -> Json {
        Json::obj([
            ("experiment", Json::from(self.experiment.as_str())),
            ("engine_version", Json::from(self.engine_version)),
            ("scale", Json::from(self.scale.name())),
            ("full", Json::from(self.full)),
            (
                "sections",
                Json::Array(self.sections.iter().map(ToJson::to_json).collect()),
            ),
        ])
    }
}

impl FromJson for Artifact {
    fn from_json(json: &Json) -> Result<Artifact, JsonError> {
        let scale = json.field("scale")?.as_str()?;
        Ok(Artifact {
            experiment: json.field("experiment")?.as_str()?.to_string(),
            engine_version: u32::try_from(json.field("engine_version")?.as_u64()?)
                .map_err(|_| JsonError("engine_version out of range".to_string()))?,
            scale: Scale::from_name(scale)
                .ok_or_else(|| JsonError(format!("unknown scale `{scale}`")))?,
            full: json.field("full")?.as_bool()?,
            sections: json
                .field("sections")?
                .as_array()?
                .iter()
                .map(Section::from_json)
                .collect::<Result<_, _>>()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Artifact {
        let mut table = Table::new(["Program", "cycles"]);
        table.row(["TRFD", "123"]);
        table.row(["BDNA", "45"]);
        Artifact {
            experiment: "demo".to_string(),
            engine_version: 6,
            scale: Scale::Quick,
            full: false,
            sections: vec![Section::new("demo", "Demo heading", &table)],
        }
    }

    #[test]
    fn json_round_trips() {
        let artifact = sample();
        let json = artifact.to_json();
        let back = Artifact::from_json(&json).unwrap();
        assert_eq!(back, artifact);
        assert_eq!(back.to_json().render(), json.render());
    }

    /// Pins the exact artifact bytes. If this fails you changed the
    /// artifact format: regenerate `artifacts/golden/` (GOLDEN_UPDATE=1)
    /// and update this expectation.
    #[test]
    fn golden_artifact_format() {
        assert_eq!(
            sample().to_json().render(),
            "{\"experiment\":\"demo\",\"engine_version\":6,\"scale\":\"quick\",\
             \"full\":false,\"sections\":[{\"key\":\"demo\",\"heading\":\"Demo heading\",\
             \"table\":{\"headers\":[\"Program\",\"cycles\"],\
             \"rows\":[[\"TRFD\",\"123\"],[\"BDNA\",\"45\"]]}}]}"
        );
    }

    #[test]
    fn text_rendering_matches_the_println_layout() {
        let artifact = sample();
        let ascii = artifact.sections[0].table.to_table().to_ascii();
        assert_eq!(artifact.to_text(), format!("Demo heading\n\n{ascii}\n"));
        // A second section gets a separating blank line.
        let mut two = artifact.clone();
        two.sections.push(two.sections[0].clone());
        assert_eq!(
            two.to_text(),
            format!("Demo heading\n\n{ascii}\n\nDemo heading\n\n{ascii}\n")
        );
        assert_eq!(two.tables_text(), format!("{ascii}\n\n{ascii}"));
    }

    #[test]
    fn csv_names_the_artifact_and_sections() {
        let csv = sample().to_csv();
        assert!(csv.starts_with("# artifact demo engine_version=6 scale=quick full=false\n"));
        assert!(csv.contains("# section demo\n"));
        assert!(csv.contains("TRFD,123\n"));
    }

    #[test]
    fn ragged_rows_are_rejected_on_decode() {
        let json = Json::parse(r#"{"headers":["a","b"],"rows":[["1"]]}"#).unwrap();
        assert!(TableData::from_json(&json).is_err());
    }
}
