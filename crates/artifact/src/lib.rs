//! Declarative experiment specs and versioned result artifacts.
//!
//! Before this crate, each of the twelve experiment binaries owned its
//! sweep construction, invariant assumptions, table printing and argument
//! parsing. This crate collapses them onto three pieces:
//!
//! * [`ExperimentSpec`] — a declarative description of one experiment:
//!   its name, the sweep plans it needs (as a function of the grid
//!   options — each plan a dense sweep or an adaptive latency-refinement
//!   session, see [`SweepPlan`]), how its sections render from the
//!   measured results, and the invariants (e.g. `IDEAL ≤ DVA ≤ REF`)
//!   the results must satisfy.
//! * [`Runner`] — the one execution path: sweeps flow through the
//!   `dva-serve` content-addressed cache (so identical grid points across
//!   specs simulate once), invariants are checked, and the rendered
//!   sections are stamped into an artifact.
//! * [`Artifact`] — the versioned output: pre-formatted table cells
//!   (byte-stable by construction), the producing
//!   [`ENGINE_VERSION`](dva_engine::ENGINE_VERSION), and the grid
//!   options, serializable to canonical JSON (what `artifacts/golden/`
//!   pins), ASCII (byte-identical to the pre-artifact binaries' stdout)
//!   and CSV.
//!
//! The [`cli`] module carries the shared argument parser
//! (`--quick`/`--full`/`--threads` plus `--json`/`--csv`/
//! `--golden-check`) and the golden-file comparison used by CI.

pub mod artifact;
pub mod cli;
pub mod runner;
pub mod spec;

pub use artifact::{Artifact, Section, TableData};
pub use cli::{
    golden_bytes, golden_check, golden_dir, golden_path, parse_args, parse_cli, try_parse,
    write_outputs, CliArgs, GoldenStatus, OutputOpts, Parsed, RunOpts,
};
pub use runner::{RunError, Runner};
pub use spec::{ExperimentSpec, Invariant, SpecManifest, SweepPlan};
