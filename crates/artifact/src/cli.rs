//! The command line every experiment binary shares, and the golden-check
//! flow behind `--golden-check` / `GOLDEN_UPDATE=1`.
//!
//! One parser serves all twelve binaries: the grid options (`--quick`,
//! `--full`, `--threads N`) that existed before the artifact layer, plus
//! the artifact outputs (`--json <path>`, `--csv <path>`) and the CI
//! gate (`--golden-check`). Exit codes are part of the contract:
//!
//! | code | meaning |
//! |---|---|
//! | 0 | run completed (and the golden check, if requested, matched) |
//! | 1 | golden mismatch, or a declared invariant failed |
//! | 2 | bad command line |

use crate::artifact::Artifact;
use dva_json::ToJson;
use dva_workloads::Scale;
use std::path::{Path, PathBuf};

/// Grid options shared by every experiment binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOpts {
    /// Trace size the workloads are generated at.
    pub scale: Scale,
    /// Whether to sweep the full latency grid.
    pub full: bool,
    /// Sweep worker threads (`0` = the machine's available parallelism).
    pub threads: usize,
}

impl Default for RunOpts {
    fn default() -> Self {
        RunOpts {
            scale: Scale::Default,
            full: false,
            threads: 0,
        }
    }
}

impl RunOpts {
    /// Quick single-threaded options for tests (and the golden quick
    /// grid).
    pub fn quick() -> RunOpts {
        RunOpts {
            scale: Scale::Quick,
            full: false,
            threads: 1,
        }
    }
}

/// Where the run's artifact goes, beyond stdout.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OutputOpts {
    /// Write the artifact as canonical JSON to this path.
    pub json: Option<PathBuf>,
    /// Write the artifact as CSV to this path.
    pub csv: Option<PathBuf>,
    /// Compare the artifact byte-for-byte against its checked-in golden
    /// file (exit 1 on mismatch); with `GOLDEN_UPDATE=1`, rewrite the
    /// golden instead.
    pub golden_check: bool,
}

/// Everything the shared command line specifies.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CliArgs {
    /// The grid options.
    pub run: RunOpts,
    /// The artifact outputs.
    pub out: OutputOpts,
}

/// What [`try_parse`] understood from the command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Parsed {
    /// Normal run with these arguments.
    Args(CliArgs),
    /// `--help` / `-h`: print the usage text and exit successfully.
    Help,
}

/// The flags every experiment binary accepts.
pub fn usage() -> String {
    [
        "usage: [--quick | --full] [--threads N] [--json PATH] [--csv PATH]",
        "       [--golden-check] [--help]",
        "",
        "  --quick         small traces, the short latency grid",
        "  --full          full-scale traces, the full latency grid",
        "  --threads N     sweep worker threads (0 = all cores; default 0)",
        "  --json PATH     also write the result artifact as JSON to PATH",
        "  --csv PATH      also write the result artifact as CSV to PATH",
        "  --golden-check  byte-compare the artifact against artifacts/golden/",
        "                  (exit 1 on mismatch; GOLDEN_UPDATE=1 rewrites it,",
        "                  GOLDEN_DIR overrides the directory)",
        "  --help, -h      print this help and exit",
    ]
    .join("\n")
}

/// Parses the shared experiment flags from an argument iterator.
///
/// `--help` (or `-h`) anywhere wins. Unknown arguments are an error: the
/// caller prints the usage message and exits 2 rather than silently
/// measuring something other than what was asked for.
pub fn try_parse(args: impl Iterator<Item = String>) -> Result<Parsed, String> {
    let args: Vec<String> = args.collect();
    if args.iter().any(|arg| arg == "--help" || arg == "-h") {
        return Ok(Parsed::Help);
    }
    let mut parsed = CliArgs::default();
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => parsed.run.scale = Scale::Quick,
            "--full" => {
                parsed.run.scale = Scale::Full;
                parsed.run.full = true;
            }
            "--threads" => {
                let value = args
                    .next()
                    .ok_or_else(|| "--threads needs a value".to_string())?;
                parsed.run.threads = value
                    .parse()
                    .map_err(|_| format!("invalid thread count {value:?}"))?;
            }
            "--json" => {
                let path = args
                    .next()
                    .ok_or_else(|| "--json needs a path".to_string())?;
                parsed.out.json = Some(PathBuf::from(path));
            }
            "--csv" => {
                let path = args
                    .next()
                    .ok_or_else(|| "--csv needs a path".to_string())?;
                parsed.out.csv = Some(PathBuf::from(path));
            }
            "--golden-check" => parsed.out.golden_check = true,
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(Parsed::Args(parsed))
}

/// Parses the process arguments, printing help (exit 0) or a usage error
/// (exit 2) as required.
pub fn parse_cli() -> CliArgs {
    match try_parse(std::env::args().skip(1)) {
        Ok(Parsed::Args(args)) => args,
        Ok(Parsed::Help) => {
            println!("{}", usage());
            std::process::exit(0);
        }
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("{}", usage());
            std::process::exit(2);
        }
    }
}

/// Parses the process arguments and keeps only the grid options (the
/// output flags are accepted and dropped — prefer [`parse_cli`]).
pub fn parse_args() -> RunOpts {
    parse_cli().run
}

/// The golden-artifact directory: `$GOLDEN_DIR`, or `artifacts/golden`
/// relative to the current directory.
pub fn golden_dir() -> PathBuf {
    std::env::var_os("GOLDEN_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("artifacts/golden"))
}

/// The golden file an experiment's artifact is compared against.
pub fn golden_path(dir: &Path, experiment: &str) -> PathBuf {
    dir.join(format!("{experiment}.json"))
}

/// The outcome of a golden comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GoldenStatus {
    /// The artifact matches the checked-in golden byte for byte.
    Match,
    /// The artifact differs from (or is missing) its golden.
    Mismatch {
        /// What went wrong, human-readable.
        detail: String,
    },
    /// `GOLDEN_UPDATE=1`: the golden file was rewritten.
    Updated,
}

/// The canonical serialized form of an artifact as stored on disk: the
/// compact JSON rendering plus a trailing newline.
pub fn golden_bytes(artifact: &Artifact) -> String {
    let mut text = artifact.to_json().render();
    text.push('\n');
    text
}

/// Compares `artifact` against its golden file under `dir` — or rewrites
/// the golden when `GOLDEN_UPDATE` is set in the environment.
pub fn golden_check(artifact: &Artifact, dir: &Path) -> GoldenStatus {
    let path = golden_path(dir, &artifact.experiment);
    let ours = golden_bytes(artifact);
    if std::env::var_os("GOLDEN_UPDATE").is_some() {
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        return match std::fs::write(&path, &ours) {
            Ok(()) => GoldenStatus::Updated,
            Err(e) => GoldenStatus::Mismatch {
                detail: format!("cannot write {}: {e}", path.display()),
            },
        };
    }
    match std::fs::read_to_string(&path) {
        Ok(theirs) if theirs == ours => GoldenStatus::Match,
        Ok(theirs) => GoldenStatus::Mismatch {
            detail: format!(
                "{} differs from the checked-in golden ({} vs {} bytes); \
                 rerun with GOLDEN_UPDATE=1 to regenerate",
                path.display(),
                ours.len(),
                theirs.len()
            ),
        },
        Err(e) => GoldenStatus::Mismatch {
            detail: format!(
                "cannot read {}: {e}; run with GOLDEN_UPDATE=1 to create it",
                path.display()
            ),
        },
    }
}

/// Writes the artifact's requested output files. Returns an error
/// message naming the path on failure.
pub fn write_outputs(artifact: &Artifact, out: &OutputOpts) -> Result<(), String> {
    if let Some(path) = &out.json {
        std::fs::write(path, golden_bytes(artifact))
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    if let Some(path) = &out.csv {
        std::fs::write(path, artifact.to_csv())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::{Section, TableData};

    fn parse(args: &[&str]) -> Result<Parsed, String> {
        try_parse(args.iter().map(|s| s.to_string()))
    }

    fn parse_ok(args: &[&str]) -> CliArgs {
        match parse(args) {
            Ok(Parsed::Args(a)) => a,
            other => panic!("expected args, got {other:?}"),
        }
    }

    #[test]
    fn grid_flags_parse_as_before() {
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--threads"]).is_err());
        assert!(parse(&["--threads", "zero"]).is_err());
        let args = parse_ok(&["--quick", "--threads", "4"]);
        assert_eq!(args.run.scale, Scale::Quick);
        assert_eq!(args.run.threads, 4);
        let args = parse_ok(&["--full"]);
        assert!(args.run.full);
        assert_eq!(args.run.scale, Scale::Full);
    }

    #[test]
    fn output_flags_parse() {
        let args = parse_ok(&["--json", "out.json", "--csv", "out.csv", "--golden-check"]);
        assert_eq!(args.out.json.as_deref(), Some(Path::new("out.json")));
        assert_eq!(args.out.csv.as_deref(), Some(Path::new("out.csv")));
        assert!(args.out.golden_check);
        assert!(parse(&["--json"]).is_err());
        assert!(parse(&["--csv"]).is_err());
    }

    #[test]
    fn help_wins_anywhere_and_names_every_flag() {
        assert_eq!(parse(&["--help"]), Ok(Parsed::Help));
        assert_eq!(parse(&["-h"]), Ok(Parsed::Help));
        assert_eq!(parse(&["--quick", "--help"]), Ok(Parsed::Help));
        assert_eq!(parse(&["--threads", "--help"]), Ok(Parsed::Help));
        assert_eq!(parse(&["--json", "-h"]), Ok(Parsed::Help));
        assert_eq!(parse(&["--bogus", "-h"]), Ok(Parsed::Help));
        for flag in [
            "--quick",
            "--full",
            "--threads",
            "--json",
            "--csv",
            "--golden-check",
            "--help",
        ] {
            assert!(usage().contains(flag), "usage misses {flag}");
        }
    }

    fn demo_artifact() -> Artifact {
        Artifact {
            experiment: "demo-golden".to_string(),
            engine_version: 1,
            scale: Scale::Quick,
            full: false,
            sections: vec![Section {
                key: "k".to_string(),
                heading: "h".to_string(),
                table: TableData {
                    headers: vec!["a".to_string()],
                    rows: vec![vec!["1".to_string()]],
                },
            }],
        }
    }

    #[test]
    fn golden_check_matches_mismatches_and_reports_missing() {
        let dir = std::env::temp_dir().join(format!("dva-golden-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let artifact = demo_artifact();

        // Missing golden: mismatch naming the file.
        let missing = golden_check(&artifact, &dir);
        assert!(
            matches!(&missing, GoldenStatus::Mismatch { detail } if detail.contains("demo-golden.json"))
        );

        // Write the golden by hand; now it matches.
        std::fs::write(golden_path(&dir, "demo-golden"), golden_bytes(&artifact)).unwrap();
        assert_eq!(golden_check(&artifact, &dir), GoldenStatus::Match);

        // A changed artifact mismatches.
        let mut changed = artifact.clone();
        changed.sections[0].table.rows[0][0] = "2".to_string();
        assert!(matches!(
            golden_check(&changed, &dir),
            GoldenStatus::Mismatch { .. }
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_outputs_emits_both_forms() {
        let dir = std::env::temp_dir().join(format!("dva-out-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let artifact = demo_artifact();
        let out = OutputOpts {
            json: Some(dir.join("a.json")),
            csv: Some(dir.join("a.csv")),
            golden_check: false,
        };
        write_outputs(&artifact, &out).unwrap();
        assert_eq!(
            std::fs::read_to_string(dir.join("a.json")).unwrap(),
            golden_bytes(&artifact)
        );
        assert_eq!(
            std::fs::read_to_string(dir.join("a.csv")).unwrap(),
            artifact.to_csv()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
