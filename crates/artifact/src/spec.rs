//! Declarative experiment specifications.
//!
//! An [`ExperimentSpec`] is the whole of one figure or table of the
//! paper, stated as data: which sweeps to run, how to derive the
//! reported tables from the measured points, and which invariants the
//! measurements must satisfy. The [`Runner`](crate::Runner) is the only
//! execution path — every spec goes through the same cache-backed sweep
//! machinery and the same invariant checks, and produces the same
//! versioned [`Artifact`](crate::Artifact) shape.

use crate::artifact::Section;
use crate::cli::RunOpts;
use dva_json::{FromJson, Json, JsonError, ToJson};
use dva_sim_api::{AdaptiveSweep, Sweep, SweepResults};

/// One experiment, declaratively: its identity, grid, derived tables and
/// invariants.
///
/// Specs are plain `'static` data (function pointers, no captures) so the
/// full set forms a `const` registry.
#[derive(Clone, Copy)]
pub struct ExperimentSpec {
    /// Registry name; also the binary name and the golden-artifact stem.
    pub name: &'static str,
    /// One-line description (shown by `--help` via the registry).
    pub description: &'static str,
    /// The `== … ==` header the `all` binary prints for this experiment,
    /// or `None` to exclude it from `all` (the ablation studies).
    pub all_header: Option<&'static str>,
    /// Declares the sweep grids: every simulation the experiment needs,
    /// each either a dense [`Sweep`] or an adaptive session. Specs
    /// without a sweep (static trace statistics) return none.
    pub sweeps: fn(&RunOpts) -> Vec<SweepPlan>,
    /// Derives the reported sections from the executed sweeps. Receives
    /// one [`SweepResults`] per declared plan, in declaration order —
    /// sparse (adaptively sampled) for adaptive plans, so renderers use
    /// [`SweepResults::curve`] / [`SweepResults::interpolated_cycles`]
    /// rather than assuming a dense axis.
    pub render: fn(&RunOpts, &[SweepResults]) -> Vec<Section>,
    /// Invariants checked on every executed sweep; a violation fails the
    /// run before any artifact is produced.
    pub invariants: &'static [Invariant],
}

impl std::fmt::Debug for ExperimentSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExperimentSpec")
            .field("name", &self.name)
            .field("description", &self.description)
            .field("all_header", &self.all_header)
            .field("invariants", &self.invariants)
            .finish_non_exhaustive()
    }
}

impl ExperimentSpec {
    /// The serializable face of this spec: everything except the function
    /// pointers (which cannot cross a process boundary).
    pub fn manifest(&self) -> SpecManifest {
        SpecManifest {
            name: self.name.to_string(),
            description: self.description.to_string(),
            in_all: self.all_header.is_some(),
            invariants: self.invariants.to_vec(),
        }
    }
}

/// One grid of an experiment: measure every point, or sample the
/// latency axis adaptively.
///
/// Dense plans are what every figure used before adaptive sampling
/// existed (and `From<Sweep>` keeps their declarations unchanged);
/// adaptive plans trade unmeasured flat-region points for interpolation
/// within the session's tolerance, and report what they skipped in an
/// extra artifact section.
#[derive(Debug, Clone)]
pub enum SweepPlan {
    /// Measure every grid point of the sweep.
    Dense(Sweep),
    /// Sample the session's latency axis adaptively (seed + refine +
    /// dominance-prune).
    Adaptive(AdaptiveSweep),
}

impl From<Sweep> for SweepPlan {
    fn from(sweep: Sweep) -> SweepPlan {
        SweepPlan::Dense(sweep)
    }
}

impl From<AdaptiveSweep> for SweepPlan {
    fn from(adaptive: AdaptiveSweep) -> SweepPlan {
        SweepPlan::Adaptive(adaptive)
    }
}

/// The serializable description of an [`ExperimentSpec`] — its name,
/// description, `all`-membership and declared invariants.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecManifest {
    /// See [`ExperimentSpec::name`].
    pub name: String,
    /// See [`ExperimentSpec::description`].
    pub description: String,
    /// Whether the `all` binary includes this experiment.
    pub in_all: bool,
    /// See [`ExperimentSpec::invariants`].
    pub invariants: Vec<Invariant>,
}

impl ToJson for SpecManifest {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::from(self.name.as_str())),
            ("description", Json::from(self.description.as_str())),
            ("in_all", Json::from(self.in_all)),
            (
                "invariants",
                Json::Array(self.invariants.iter().map(ToJson::to_json).collect()),
            ),
        ])
    }
}

impl FromJson for SpecManifest {
    fn from_json(json: &Json) -> Result<SpecManifest, JsonError> {
        Ok(SpecManifest {
            name: json.field("name")?.as_str()?.to_string(),
            description: json.field("description")?.as_str()?.to_string(),
            in_all: json.field("in_all")?.as_bool()?,
            invariants: json
                .field("invariants")?
                .as_array()?
                .iter()
                .map(Invariant::from_json)
                .collect::<Result<_, _>>()?,
        })
    }
}

/// A declared property of an experiment's measurements, checked by the
/// [`Runner`](crate::Runner) on every executed sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Invariant {
    /// At every grid coordinate (program × latency × memory model) where
    /// both labels were measured: `cycles(lower) ≤ cycles(upper) × (1 +
    /// tolerance)`. A `tolerance` of `0.0` is an exact bound — the
    /// paper's `IDEAL ≤ DVA` and `IDEAL ≤ REF` orderings hold exactly;
    /// `DVA ≤ REF` holds within a small tolerance (DYFESM at latency 1
    /// trades a few percent for decoupling overhead).
    CyclesOrdered {
        /// Label of the machine that must not be slower (modulo
        /// tolerance).
        lower: &'static str,
        /// Label of the machine it is compared against.
        upper: &'static str,
        /// Fractional slack: `0.10` allows `lower` to exceed `upper` by
        /// 10%.
        tolerance: f64,
    },
    /// Every point labeled `IDEAL` lower-bounds every other label at the
    /// same grid coordinate, exactly.
    IdealLowerBound,
}

impl Invariant {
    /// The paper's central ordering, `IDEAL ≤ DVA ≤ REF`: the bound is
    /// exact; decoupling may cost at most `tolerance` at any point.
    pub const fn ideal_dva_ref(tolerance: f64) -> [Invariant; 2] {
        [
            Invariant::IdealLowerBound,
            Invariant::CyclesOrdered {
                lower: "DVA",
                upper: "REF",
                tolerance,
            },
        ]
    }

    /// Checks this invariant against one executed sweep. Returns a
    /// human-readable violation description, or `None` if it holds.
    pub fn check(&self, results: &SweepResults) -> Option<String> {
        match *self {
            Invariant::CyclesOrdered {
                lower,
                upper,
                tolerance,
            } => check_ordered(results, lower, upper, tolerance),
            Invariant::IdealLowerBound => check_ideal_bound(results),
        }
    }
}

/// The grid coordinate of a point, ignoring the machine axis.
fn coordinate(point: &dva_sim_api::SweepPoint) -> (&str, u64, dva_sim_api::MemoryModelKind) {
    (point.program.as_str(), point.latency, point.memory)
}

fn check_ordered(
    results: &SweepResults,
    lower: &str,
    upper: &str,
    tolerance: f64,
) -> Option<String> {
    for point in results.points.iter().filter(|p| p.label == lower) {
        let coord = coordinate(point);
        let Some(other) = results
            .points
            .iter()
            .find(|p| p.label == upper && coordinate(p) == coord)
        else {
            continue;
        };
        let limit = other.result.cycles as f64 * (1.0 + tolerance);
        if point.result.cycles as f64 > limit {
            return Some(format!(
                "{lower} ≤ {upper} (+{:.0}%) violated at ({}, L={}, {:?}): \
                 {lower}={} cycles vs {upper}={}",
                100.0 * tolerance,
                point.program,
                point.latency,
                point.memory,
                point.result.cycles,
                other.result.cycles,
            ));
        }
    }
    None
}

fn check_ideal_bound(results: &SweepResults) -> Option<String> {
    for ideal in results.points.iter().filter(|p| p.label == "IDEAL") {
        // The IDEAL bound is latency independent: it bounds every
        // measured point of its program, whatever the coordinate.
        for point in results
            .points
            .iter()
            .filter(|p| p.label != "IDEAL" && p.program == ideal.program)
        {
            if ideal.result.cycles > point.result.cycles {
                return Some(format!(
                    "IDEAL bound violated on {}: IDEAL={} cycles above {}={} (L={}, {:?})",
                    point.program,
                    ideal.result.cycles,
                    point.label,
                    point.result.cycles,
                    point.latency,
                    point.memory,
                ));
            }
        }
    }
    None
}

impl ToJson for Invariant {
    fn to_json(&self) -> Json {
        match *self {
            Invariant::CyclesOrdered {
                lower,
                upper,
                tolerance,
            } => Json::obj([
                ("kind", Json::from("cycles_ordered")),
                ("lower", Json::from(lower)),
                ("upper", Json::from(upper)),
                ("tolerance", Json::Float(tolerance)),
            ]),
            Invariant::IdealLowerBound => Json::obj([("kind", Json::from("ideal_lower_bound"))]),
        }
    }
}

impl FromJson for Invariant {
    fn from_json(json: &Json) -> Result<Invariant, JsonError> {
        match json.field("kind")?.as_str()? {
            // Labels decode to leaked statics: invariants are a handful of
            // fixed machine names, declared once per spec.
            "cycles_ordered" => Ok(Invariant::CyclesOrdered {
                lower: leak(json.field("lower")?.as_str()?),
                upper: leak(json.field("upper")?.as_str()?),
                tolerance: json.field("tolerance")?.as_f64()?,
            }),
            "ideal_lower_bound" => Ok(Invariant::IdealLowerBound),
            other => Err(JsonError(format!("unknown invariant kind `{other}`"))),
        }
    }
}

/// Interns a decoded label. The set of machine labels appearing in
/// invariants is tiny and fixed, so the leak is bounded.
fn leak(s: &str) -> &'static str {
    static KNOWN: &[&str] = &[
        "IDEAL",
        "DVA",
        "REF",
        "BYP 256/16",
        "BYP 4/16",
        "BYP 4/8",
        "BYP 4/4",
    ];
    KNOWN
        .iter()
        .find(|k| **k == s)
        .copied()
        .unwrap_or_else(|| Box::leak(s.to_string().into_boxed_str()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dva_sim_api::Machine;
    use dva_workloads::{Benchmark, Scale};

    fn small_results() -> SweepResults {
        Sweep::new()
            .machines([Machine::reference(1), Machine::dva(1), Machine::ideal()])
            .benchmark(Benchmark::Trfd)
            .latencies([1, 30])
            .scale(Scale::Quick)
            .threads(1)
            .run()
    }

    #[test]
    fn true_invariants_hold_on_a_real_sweep() {
        let results = small_results();
        for invariant in Invariant::ideal_dva_ref(0.10) {
            assert_eq!(invariant.check(&results), None, "{invariant:?}");
        }
    }

    #[test]
    fn violated_ordering_is_reported_with_the_coordinate() {
        let results = small_results();
        // REF ≤ IDEAL is false by construction.
        let violation = Invariant::CyclesOrdered {
            lower: "REF",
            upper: "IDEAL",
            tolerance: 0.0,
        }
        .check(&results)
        .expect("REF is never at the IDEAL bound");
        assert!(violation.contains("TRFD"), "{violation}");
        assert!(violation.contains("REF"), "{violation}");
    }

    #[test]
    fn ideal_bound_check_catches_a_doctored_result() {
        let mut results = small_results();
        // Inflate the IDEAL point above everything else.
        let ideal = results
            .points
            .iter_mut()
            .find(|p| p.label == "IDEAL")
            .unwrap();
        ideal.result.core.cycles = u64::MAX / 2;
        let violation = Invariant::IdealLowerBound.check(&results).unwrap();
        assert!(violation.contains("IDEAL bound violated"), "{violation}");
    }

    #[test]
    fn tolerance_gives_slack_exactly() {
        let results = small_results();
        let dva = results.cycles("DVA", Benchmark::Trfd, 30).unwrap();
        let refc = results.cycles("REF", Benchmark::Trfd, 30).unwrap();
        assert!(refc > dva, "premise: REF slower at L=30");
        // REF ≤ DVA fails with no slack but passes with enough.
        let strict = Invariant::CyclesOrdered {
            lower: "REF",
            upper: "DVA",
            tolerance: 0.0,
        };
        assert!(strict.check(&results).is_some());
        let slack = Invariant::CyclesOrdered {
            lower: "REF",
            upper: "DVA",
            tolerance: refc as f64 / dva as f64,
        };
        assert_eq!(slack.check(&results), None);
    }

    #[test]
    fn invariants_round_trip_through_json() {
        for invariant in [
            Invariant::IdealLowerBound,
            Invariant::CyclesOrdered {
                lower: "DVA",
                upper: "REF",
                tolerance: 0.1,
            },
        ] {
            let json = invariant.to_json();
            assert_eq!(Invariant::from_json(&json).unwrap(), invariant);
            assert_eq!(
                Invariant::from_json(&json).unwrap().to_json().render(),
                json.render()
            );
        }
    }

    #[test]
    fn manifests_round_trip_through_json() {
        let manifest = SpecManifest {
            name: "fig3".to_string(),
            description: "execution time vs latency".to_string(),
            in_all: true,
            invariants: Invariant::ideal_dva_ref(0.1).to_vec(),
        };
        let json = manifest.to_json();
        assert_eq!(SpecManifest::from_json(&json).unwrap(), manifest);
    }
}
