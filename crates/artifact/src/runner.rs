//! The one execution path for every experiment.
//!
//! A [`Runner`] takes an [`ExperimentSpec`] and run options, executes the
//! spec's declared sweeps through a [`SweepService`] (so identical grid
//! points across specs — the shared REF/DVA/IDEAL latency sweep behind
//! Figures 3, 4 and 5, say — simulate **once** and hit the
//! content-addressed cache thereafter), checks the declared invariants,
//! and stamps the rendered sections into a versioned
//! [`Artifact`].

use crate::artifact::{Artifact, Section};
use crate::cli::RunOpts;
use crate::spec::{ExperimentSpec, SweepPlan};
use dva_engine::ENGINE_VERSION;
use dva_metrics::Table;
use dva_serve::{JobSummary, ResultCache, SweepService, DEFAULT_MEMORY_CAPACITY};
use dva_sim_api::{AdaptiveReport, AdaptiveSweep, Sweep, SweepResults};
use std::fmt;

/// Executes [`ExperimentSpec`]s: one cache-backed sweep path, one
/// invariant checker, one artifact shape.
///
/// A `Runner` is cheap to create; share one across several specs (as the
/// `all` binary does) to reuse simulated points between them.
pub struct Runner {
    service: SweepService,
    /// Running totals across every sweep this runner executed.
    hits: usize,
    simulated: usize,
}

/// Why a run produced no artifact.
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// A declared invariant does not hold on the measured results.
    InvariantViolated {
        /// The experiment that declared the invariant.
        experiment: String,
        /// The violation, with the offending grid coordinate.
        detail: String,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::InvariantViolated { experiment, detail } => {
                write!(f, "experiment `{experiment}`: invariant violated: {detail}")
            }
        }
    }
}

impl std::error::Error for RunError {}

impl Default for Runner {
    fn default() -> Runner {
        Runner::new()
    }
}

impl Runner {
    /// A runner over a fresh in-memory result cache.
    pub fn new() -> Runner {
        Runner {
            service: SweepService::new(ResultCache::in_memory(DEFAULT_MEMORY_CAPACITY)),
            hits: 0,
            simulated: 0,
        }
    }

    /// A runner over an existing service (e.g. one backed by the
    /// `dva-serve` disk cache).
    pub fn with_service(service: SweepService) -> Runner {
        Runner {
            service,
            hits: 0,
            simulated: 0,
        }
    }

    /// Executes one sweep through the service's content-addressed cache;
    /// sweeps the cache cannot address (custom machines) run directly.
    /// Either way the results are byte-identical to `sweep.run()`.
    fn run_sweep(&mut self, sweep: &Sweep) -> SweepResults {
        match self.service.run(sweep) {
            Ok((
                results,
                JobSummary {
                    cache_hits,
                    simulated,
                    ..
                },
            )) => {
                self.hits += cache_hits;
                self.simulated += simulated;
                results
            }
            Err(_) => {
                let results = sweep.run();
                self.simulated += results.points.len();
                results
            }
        }
    }

    /// Executes one adaptive session, preferring the cache-backed path
    /// (cache keys are shared with dense jobs); sessions the cache cannot
    /// address run directly. Either way every sampled point is
    /// byte-identical to the dense run's.
    fn run_adaptive(&mut self, adaptive: &AdaptiveSweep) -> (SweepResults, AdaptiveReport) {
        match self.service.run_adaptive(adaptive) {
            Ok((outcome, job)) => {
                self.hits += job.cache_hits;
                self.simulated += job.simulated;
                (outcome.results, outcome.report)
            }
            Err(_) => {
                let outcome = adaptive.run();
                self.simulated += outcome.report.sampled_points;
                (outcome.results, outcome.report)
            }
        }
    }

    /// Runs a spec end to end: execute its sweep plans (cache-backed),
    /// check its invariants on every measured result set, render its
    /// sections, stamp the artifact. Each adaptive plan additionally
    /// appends an auto-generated "Adaptive sampling" section — the
    /// sampled / skipped / pruned accounting of the session — after the
    /// spec's own sections.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::InvariantViolated`] — and no artifact — if any
    /// declared invariant fails on any executed sweep.
    pub fn run(&mut self, spec: &ExperimentSpec, opts: &RunOpts) -> Result<Artifact, RunError> {
        let plans = (spec.sweeps)(opts);
        let mut results = Vec::with_capacity(plans.len());
        let mut reports: Vec<AdaptiveReport> = Vec::new();
        for plan in &plans {
            let measured = match plan {
                SweepPlan::Dense(sweep) => self.run_sweep(sweep),
                SweepPlan::Adaptive(adaptive) => {
                    let (measured, report) = self.run_adaptive(adaptive);
                    reports.push(report);
                    measured
                }
            };
            for invariant in spec.invariants {
                if let Some(detail) = invariant.check(&measured) {
                    return Err(RunError::InvariantViolated {
                        experiment: spec.name.to_string(),
                        detail,
                    });
                }
            }
            results.push(measured);
        }
        let mut sections = (spec.render)(opts, &results);
        for (i, report) in reports.iter().enumerate() {
            sections.push(adaptive_section(i, reports.len(), report));
        }
        Ok(Artifact {
            experiment: spec.name.to_string(),
            engine_version: ENGINE_VERSION,
            scale: opts.scale,
            full: opts.full,
            sections,
        })
    }

    /// Grid points answered from the cache so far (across all sweeps this
    /// runner executed).
    pub fn cache_hits(&self) -> usize {
        self.hits
    }

    /// Grid points actually simulated so far.
    pub fn simulated(&self) -> usize {
        self.simulated
    }
}

/// The auto-generated accounting section of one adaptive plan: per
/// machine label, how many curve points were sampled out of the dense
/// grid, and which curves were dominance-pruned (as `PROGRAM@rN`, the
/// round after which refinement stopped).
fn adaptive_section(index: usize, plans: usize, report: &AdaptiveReport) -> Section {
    let mut table = Table::new(["Machine", "Curves", "Sampled", "Dense", "Pruned"]);
    let mut labels: Vec<&str> = Vec::new();
    for curve in &report.curves {
        if !labels.contains(&curve.label.as_str()) {
            labels.push(&curve.label);
        }
    }
    for label in labels {
        let curves: Vec<_> = report.curves.iter().filter(|c| c.label == label).collect();
        let sampled: usize = curves.iter().map(|c| c.sampled).sum();
        let pruned: Vec<String> = curves
            .iter()
            .filter_map(|c| {
                c.pruned_round
                    .map(|round| format!("{}@r{round}", c.program))
            })
            .collect();
        table.row([
            label.to_string(),
            curves.len().to_string(),
            sampled.to_string(),
            (curves.len() * report.axis_len).to_string(),
            if pruned.is_empty() {
                "-".to_string()
            } else {
                pruned.join(", ")
            },
        ]);
    }
    table.row([
        "total".to_string(),
        report.curves.len().to_string(),
        report.sampled_points.to_string(),
        report.dense_points.to_string(),
        report.skipped_dominated.to_string(),
    ]);
    let key = if plans == 1 {
        "adaptive_sampling".to_string()
    } else {
        format!("adaptive_sampling_{index}")
    };
    let heading = format!(
        "Adaptive sampling: {} of {} dense points ({:.0}%), {} rounds, \
         {} interpolated + {} dominated skips",
        report.sampled_points,
        report.dense_points,
        100.0 * report.sampled_points as f64 / report.dense_points.max(1) as f64,
        report.rounds,
        report.skipped_interpolated,
        report.skipped_dominated,
    );
    Section::new(key, heading, &table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::Section;
    use crate::spec::Invariant;
    use dva_metrics::Table;
    use dva_sim_api::Machine;
    use dva_workloads::Benchmark;

    fn demo_sweeps(opts: &RunOpts) -> Vec<SweepPlan> {
        vec![Sweep::new()
            .machines([Machine::reference(1), Machine::dva(1), Machine::ideal()])
            .benchmark(Benchmark::Trfd)
            .latencies([1, 30])
            .scale(opts.scale)
            .threads(opts.threads)
            .into()]
    }

    fn demo_render(_: &RunOpts, results: &[SweepResults]) -> Vec<Section> {
        let mut table = Table::new(["L", "REF", "DVA"]);
        for latency in results[0].latencies() {
            table.row([
                latency.to_string(),
                results[0]
                    .cycles("REF", Benchmark::Trfd, latency)
                    .unwrap()
                    .to_string(),
                results[0]
                    .cycles("DVA", Benchmark::Trfd, latency)
                    .unwrap()
                    .to_string(),
            ]);
        }
        vec![Section::new("demo", "Demo", &table)]
    }

    const DEMO: ExperimentSpec = ExperimentSpec {
        name: "demo",
        description: "runner test spec",
        all_header: None,
        sweeps: demo_sweeps,
        render: demo_render,
        invariants: &Invariant::ideal_dva_ref(0.10),
    };

    #[test]
    fn runner_produces_a_stamped_artifact() {
        let mut runner = Runner::new();
        let artifact = runner.run(&DEMO, &RunOpts::quick()).unwrap();
        assert_eq!(artifact.experiment, "demo");
        assert_eq!(artifact.engine_version, ENGINE_VERSION);
        assert_eq!(artifact.sections.len(), 1);
        assert_eq!(artifact.sections[0].table.rows.len(), 2);
        // First run simulated everything…
        assert_eq!(runner.simulated(), 6);
        assert_eq!(runner.cache_hits(), 0);
        // …and a re-run of the same spec is answered from the cache,
        // byte-identically.
        let again = runner.run(&DEMO, &RunOpts::quick()).unwrap();
        assert_eq!(again, artifact);
        assert_eq!(runner.simulated(), 6);
        assert_eq!(runner.cache_hits(), 6);
    }

    fn adaptive_sweeps(opts: &RunOpts) -> Vec<SweepPlan> {
        vec![AdaptiveSweep::over(
            Sweep::new()
                .machines([Machine::reference(1), Machine::dva(1), Machine::ideal()])
                .benchmark(Benchmark::Trfd)
                .scale(opts.scale)
                .threads(opts.threads),
            1..=40,
        )
        .seeds(5)
        .prune_against("DVA", ["REF"])
        .into()]
    }

    fn adaptive_render(_: &RunOpts, results: &[SweepResults]) -> Vec<Section> {
        let mut table = Table::new(["L", "DVA"]);
        for (latency, point) in
            results[0].curve("DVA", Benchmark::Trfd, dva_sim_api::MemoryModelKind::Flat)
        {
            table.row([latency.to_string(), point.result.cycles.to_string()]);
        }
        vec![Section::new("demo", "Demo", &table)]
    }

    const ADAPTIVE_DEMO: ExperimentSpec = ExperimentSpec {
        name: "adaptive_demo",
        description: "runner adaptive test spec",
        all_header: None,
        sweeps: adaptive_sweeps,
        render: adaptive_render,
        invariants: &Invariant::ideal_dva_ref(0.10),
    };

    #[test]
    fn adaptive_plans_append_a_sampling_section() {
        let mut runner = Runner::new();
        let artifact = runner.run(&ADAPTIVE_DEMO, &RunOpts::quick()).unwrap();
        assert_eq!(
            artifact.sections.len(),
            2,
            "render section + sampling section"
        );
        let sampling = &artifact.sections[1];
        assert_eq!(sampling.key, "adaptive_sampling");
        assert!(
            sampling.heading.starts_with("Adaptive sampling:"),
            "{}",
            sampling.heading
        );
        assert_eq!(
            sampling.table.headers,
            ["Machine", "Curves", "Sampled", "Dense", "Pruned"]
        );
        // One row per label (REF, DVA, IDEAL) plus the total row.
        assert_eq!(sampling.table.rows.len(), 4);
        let ref_row = &sampling.table.rows[0];
        assert_eq!(ref_row[0], "REF");
        assert!(ref_row[4].contains("TRFD@r0"), "REF is pruned: {ref_row:?}");
        // Fewer points than dense, reported consistently with the runner.
        let total = &sampling.table.rows[3];
        assert_eq!(total[3], (3 * 40).to_string());
        assert_eq!(total[2], runner.simulated().to_string());
        assert!(runner.simulated() < 3 * 40);
        // Invariants were checked on the sparse results and passed; a
        // cache-warm re-run is byte-identical.
        let again = runner.run(&ADAPTIVE_DEMO, &RunOpts::quick()).unwrap();
        assert_eq!(again, artifact);
    }

    /// The satellite-task acceptance test: a spec whose declared
    /// `IDEAL ≤ DVA ≤ REF` ordering is violated (here stated backwards)
    /// fails the run instead of producing an artifact.
    #[test]
    fn violated_invariant_fails_the_run() {
        const BROKEN: ExperimentSpec = ExperimentSpec {
            invariants: &[Invariant::CyclesOrdered {
                lower: "REF",
                upper: "IDEAL",
                tolerance: 0.0,
            }],
            ..DEMO
        };
        let err = Runner::new().run(&BROKEN, &RunOpts::quick()).unwrap_err();
        let RunError::InvariantViolated { experiment, detail } = &err;
        assert_eq!(experiment, "demo");
        assert!(detail.contains("violated"), "{detail}");
        assert!(err.to_string().contains("invariant violated"));
    }
}
