//! The one execution path for every experiment.
//!
//! A [`Runner`] takes an [`ExperimentSpec`] and run options, executes the
//! spec's declared sweeps through a [`SweepService`] (so identical grid
//! points across specs — the shared REF/DVA/IDEAL latency sweep behind
//! Figures 3, 4 and 5, say — simulate **once** and hit the
//! content-addressed cache thereafter), checks the declared invariants,
//! and stamps the rendered sections into a versioned
//! [`Artifact`].

use crate::artifact::Artifact;
use crate::cli::RunOpts;
use crate::spec::ExperimentSpec;
use dva_engine::ENGINE_VERSION;
use dva_serve::{JobSummary, ResultCache, SweepService, DEFAULT_MEMORY_CAPACITY};
use dva_sim_api::{Sweep, SweepResults};
use std::fmt;

/// Executes [`ExperimentSpec`]s: one cache-backed sweep path, one
/// invariant checker, one artifact shape.
///
/// A `Runner` is cheap to create; share one across several specs (as the
/// `all` binary does) to reuse simulated points between them.
pub struct Runner {
    service: SweepService,
    /// Running totals across every sweep this runner executed.
    hits: usize,
    simulated: usize,
}

/// Why a run produced no artifact.
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// A declared invariant does not hold on the measured results.
    InvariantViolated {
        /// The experiment that declared the invariant.
        experiment: String,
        /// The violation, with the offending grid coordinate.
        detail: String,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::InvariantViolated { experiment, detail } => {
                write!(f, "experiment `{experiment}`: invariant violated: {detail}")
            }
        }
    }
}

impl std::error::Error for RunError {}

impl Default for Runner {
    fn default() -> Runner {
        Runner::new()
    }
}

impl Runner {
    /// A runner over a fresh in-memory result cache.
    pub fn new() -> Runner {
        Runner {
            service: SweepService::new(ResultCache::in_memory(DEFAULT_MEMORY_CAPACITY)),
            hits: 0,
            simulated: 0,
        }
    }

    /// A runner over an existing service (e.g. one backed by the
    /// `dva-serve` disk cache).
    pub fn with_service(service: SweepService) -> Runner {
        Runner {
            service,
            hits: 0,
            simulated: 0,
        }
    }

    /// Executes one sweep through the service's content-addressed cache;
    /// sweeps the cache cannot address (custom machines) run directly.
    /// Either way the results are byte-identical to `sweep.run()`.
    fn run_sweep(&mut self, sweep: &Sweep) -> SweepResults {
        match self.service.run(sweep) {
            Ok((
                results,
                JobSummary {
                    cache_hits,
                    simulated,
                    ..
                },
            )) => {
                self.hits += cache_hits;
                self.simulated += simulated;
                results
            }
            Err(_) => {
                let results = sweep.run();
                self.simulated += results.points.len();
                results
            }
        }
    }

    /// Runs a spec end to end: execute its sweeps (cache-backed), check
    /// its invariants on every sweep, render its sections, stamp the
    /// artifact.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::InvariantViolated`] — and no artifact — if any
    /// declared invariant fails on any executed sweep.
    pub fn run(&mut self, spec: &ExperimentSpec, opts: &RunOpts) -> Result<Artifact, RunError> {
        let sweeps = (spec.sweeps)(opts);
        let mut results = Vec::with_capacity(sweeps.len());
        for sweep in &sweeps {
            let measured = self.run_sweep(sweep);
            for invariant in spec.invariants {
                if let Some(detail) = invariant.check(&measured) {
                    return Err(RunError::InvariantViolated {
                        experiment: spec.name.to_string(),
                        detail,
                    });
                }
            }
            results.push(measured);
        }
        Ok(Artifact {
            experiment: spec.name.to_string(),
            engine_version: ENGINE_VERSION,
            scale: opts.scale,
            full: opts.full,
            sections: (spec.render)(opts, &results),
        })
    }

    /// Grid points answered from the cache so far (across all sweeps this
    /// runner executed).
    pub fn cache_hits(&self) -> usize {
        self.hits
    }

    /// Grid points actually simulated so far.
    pub fn simulated(&self) -> usize {
        self.simulated
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::Section;
    use crate::spec::Invariant;
    use dva_metrics::Table;
    use dva_sim_api::Machine;
    use dva_workloads::Benchmark;

    fn demo_sweeps(opts: &RunOpts) -> Vec<Sweep> {
        vec![Sweep::new()
            .machines([Machine::reference(1), Machine::dva(1), Machine::ideal()])
            .benchmark(Benchmark::Trfd)
            .latencies([1, 30])
            .scale(opts.scale)
            .threads(opts.threads)]
    }

    fn demo_render(_: &RunOpts, results: &[SweepResults]) -> Vec<Section> {
        let mut table = Table::new(["L", "REF", "DVA"]);
        for latency in results[0].latencies() {
            table.row([
                latency.to_string(),
                results[0]
                    .cycles("REF", Benchmark::Trfd, latency)
                    .unwrap()
                    .to_string(),
                results[0]
                    .cycles("DVA", Benchmark::Trfd, latency)
                    .unwrap()
                    .to_string(),
            ]);
        }
        vec![Section::new("demo", "Demo", &table)]
    }

    const DEMO: ExperimentSpec = ExperimentSpec {
        name: "demo",
        description: "runner test spec",
        all_header: None,
        sweeps: demo_sweeps,
        render: demo_render,
        invariants: &Invariant::ideal_dva_ref(0.10),
    };

    #[test]
    fn runner_produces_a_stamped_artifact() {
        let mut runner = Runner::new();
        let artifact = runner.run(&DEMO, &RunOpts::quick()).unwrap();
        assert_eq!(artifact.experiment, "demo");
        assert_eq!(artifact.engine_version, ENGINE_VERSION);
        assert_eq!(artifact.sections.len(), 1);
        assert_eq!(artifact.sections[0].table.rows.len(), 2);
        // First run simulated everything…
        assert_eq!(runner.simulated(), 6);
        assert_eq!(runner.cache_hits(), 0);
        // …and a re-run of the same spec is answered from the cache,
        // byte-identically.
        let again = runner.run(&DEMO, &RunOpts::quick()).unwrap();
        assert_eq!(again, artifact);
        assert_eq!(runner.simulated(), 6);
        assert_eq!(runner.cache_hits(), 6);
    }

    /// The satellite-task acceptance test: a spec whose declared
    /// `IDEAL ≤ DVA ≤ REF` ordering is violated (here stated backwards)
    /// fails the run instead of producing an artifact.
    #[test]
    fn violated_invariant_fails_the_run() {
        const BROKEN: ExperimentSpec = ExperimentSpec {
            invariants: &[Invariant::CyclesOrdered {
                lower: "REF",
                upper: "IDEAL",
                tolerance: 0.0,
            }],
            ..DEMO
        };
        let err = Runner::new().run(&BROKEN, &RunOpts::quick()).unwrap_err();
        let RunError::InvariantViolated { experiment, detail } = &err;
        assert_eq!(experiment, "demo");
        assert!(detail.contains("violated"), "{detail}");
        assert!(err.to_string().contains("invariant violated"));
    }
}
