//! Serving the protocol: a generic line loop, plus stdio and Unix-socket
//! front ends.
//!
//! The daemon is built to stay up: a malformed request, a client that
//! hangs up mid-stream, a grid point that panics, or a failed `accept`
//! each cost at most the connection (usually just one response line) —
//! never the process. See the README's Robustness section for the full
//! taxonomy.

use crate::exec::{AdaptiveSummary, SweepService};
use crate::proto::{Request, Response};
use dva_engine::ENGINE_VERSION;
use dva_sim_api::CancelToken;
use dva_testutil::failpoint;
use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::UnixListener;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Transport knobs for the Unix-socket server.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeOptions {
    /// How long a connection may sit idle between request lines before
    /// the server closes it. `None` (the default) waits forever — the
    /// library default suits long-lived interactive clients; the
    /// `dva-serve` binary sets its own bound.
    pub read_timeout: Option<Duration>,
    /// How long one response-line write may block before the connection
    /// is abandoned. `None` (the default) waits forever.
    pub write_timeout: Option<Duration>,
}

/// The cancel token governing a job with an optional deadline.
fn cancel_for(deadline_ms: Option<u64>) -> CancelToken {
    match deadline_ms {
        Some(ms) => CancelToken::with_deadline(Duration::from_millis(ms)),
        None => CancelToken::new(),
    }
}

/// Whether a read error means "the client went quiet or went away" —
/// routine connection lifecycle, not a server fault.
fn is_disconnect(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock
            | io::ErrorKind::TimedOut
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::BrokenPipe
    )
}

/// Serves one connection: reads request lines until EOF or a shutdown
/// request, writing response lines (flushed per line, so clients see
/// points as they complete). Returns `true` if the client asked the
/// whole server to shut down.
///
/// An idle timeout or reset on the read side closes the connection
/// quietly (`Ok(false)`); write failures — the client hung up mid-stream
/// — cancel the in-flight job and surface as the error.
pub fn serve_connection(
    service: &SweepService,
    reader: impl BufRead,
    mut writer: impl Write,
) -> io::Result<bool> {
    let respond = |writer: &mut dyn Write, response: &Response| -> io::Result<()> {
        let line = response
            .render()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        failpoint::hit("serve.socket.write", || line.clone())?;
        writeln!(writer, "{line}")?;
        writer.flush()
    };
    for line in reader.lines() {
        let line = match line {
            Ok(line) => line,
            Err(e) if is_disconnect(&e) => return Ok(false),
            Err(e) => return Err(e),
        };
        if line.trim().is_empty() {
            continue;
        }
        let request = match Request::parse(&line) {
            Ok(request) => request,
            Err(e) => {
                respond(
                    &mut writer,
                    &Response::Error {
                        message: e.to_string(),
                    },
                )?;
                continue;
            }
        };
        match request {
            Request::Ping => respond(
                &mut writer,
                &Response::Pong {
                    engine_version: ENGINE_VERSION,
                },
            )?,
            Request::Shutdown => {
                respond(&mut writer, &Response::Bye)?;
                return Ok(true);
            }
            Request::Sweep { spec, deadline_ms } => {
                let cancel = cancel_for(deadline_ms);
                let sweep = spec.cancel_token(cancel.clone());
                match service.submit(&sweep) {
                    Err(e) => respond(
                        &mut writer,
                        &Response::Error {
                            message: e.to_string(),
                        },
                    )?,
                    Ok(mut run) => {
                        let mut index = 0;
                        while let Some(outcome) = run.next_outcome() {
                            let frame = match outcome {
                                Ok(point) => Response::Point {
                                    index,
                                    point: Box::new(point),
                                },
                                Err(error) => Response::PointError(error),
                            };
                            index += 1;
                            if let Err(e) = respond(&mut writer, &frame) {
                                // The client is gone: stop simulating
                                // the rest of the job, keep the daemon.
                                cancel.cancel();
                                return Err(e);
                            }
                        }
                        if run.interrupted() {
                            respond(
                                &mut writer,
                                &Response::Error {
                                    message: run.interruption().to_string(),
                                },
                            )?;
                        } else {
                            respond(&mut writer, &Response::Summary(run.summary()))?;
                        }
                    }
                }
            }
            Request::Adaptive { spec, deadline_ms } => {
                let cancel = cancel_for(deadline_ms);
                let adaptive = spec.cancel_token(cancel.clone());
                // Points stream from inside the adaptive driver's rounds;
                // a write failure is carried out through this slot and
                // cancels the session so no further round is simulated.
                let mut write_error: Option<io::Error> = None;
                let outcome = service.run_adaptive_with(&adaptive, |index, point| {
                    if write_error.is_none() {
                        if let Err(e) = respond(
                            &mut writer,
                            &Response::Point {
                                index,
                                point: Box::new(point.clone()),
                            },
                        ) {
                            cancel.cancel();
                            write_error = Some(e);
                        }
                    }
                });
                if let Some(e) = write_error {
                    return Err(e);
                }
                match outcome {
                    Err(e) => respond(
                        &mut writer,
                        &Response::Error {
                            message: e.to_string(),
                        },
                    )?,
                    Ok((outcome, job)) => respond(
                        &mut writer,
                        &Response::AdaptiveSummary(AdaptiveSummary::of(&outcome.report, job)),
                    )?,
                }
            }
        }
    }
    Ok(false)
}

/// Serves the protocol over stdin/stdout until EOF or a shutdown
/// request.
pub fn serve_stdio(service: &SweepService) -> io::Result<()> {
    let stdin = io::stdin();
    let stdout = io::stdout();
    serve_connection(service, stdin.lock(), stdout.lock())?;
    Ok(())
}

/// [`serve_unix_with`] under default [`ServeOptions`] (no timeouts).
pub fn serve_unix(service: Arc<SweepService>, path: &Path) -> io::Result<()> {
    serve_unix_with(service, path, ServeOptions::default())
}

/// Binds `path` and serves connections until a client sends a shutdown
/// request. Each connection is handled on its own thread; they share the
/// service (and therefore the result cache). A pre-existing socket file
/// at `path` is replaced.
///
/// The accept loop is deliberately hard to kill: a failed `accept` (or a
/// socket that cannot take its timeouts) is logged and skipped, a
/// connection thread that errors out takes only its own client with it,
/// and finished worker threads are reaped as new connections arrive, so
/// a long-lived daemon does not accumulate handles.
pub fn serve_unix_with(
    service: Arc<SweepService>,
    path: &Path,
    options: ServeOptions,
) -> io::Result<()> {
    if path.exists() {
        std::fs::remove_file(path)?;
    }
    let listener = UnixListener::bind(path)?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    for connection in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        workers.retain(|worker| !worker.is_finished());
        let stream = match connection {
            Ok(stream) => stream,
            Err(e) => {
                eprintln!("dva-serve: accept failed ({e}); still listening");
                continue;
            }
        };
        if let Err(e) = stream
            .set_read_timeout(options.read_timeout)
            .and_then(|()| stream.set_write_timeout(options.write_timeout))
        {
            eprintln!("dva-serve: dropping connection (cannot set timeouts: {e})");
            continue;
        }
        let service = Arc::clone(&service);
        let shutdown_flag = Arc::clone(&shutdown);
        let wake_path = path.to_path_buf();
        workers.push(std::thread::spawn(move || {
            let Ok(reader) = stream.try_clone().map(BufReader::new) else {
                return;
            };
            if let Ok(true) = serve_connection(&service, reader, &stream) {
                shutdown_flag.store(true, Ordering::SeqCst);
                // The accept loop is blocked in `incoming`; a throwaway
                // connection unblocks it so it can observe the flag.
                let _ = std::os::unix::net::UnixStream::connect(&wake_path);
            }
        }));
    }
    for worker in workers {
        let _ = worker.join();
    }
    let _ = std::fs::remove_file(path);
    Ok(())
}
