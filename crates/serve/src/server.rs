//! Serving the protocol: a generic line loop, plus stdio and Unix-socket
//! front ends.

use crate::exec::{AdaptiveSummary, SweepService};
use crate::proto::{Request, Response};
use dva_engine::ENGINE_VERSION;
use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::UnixListener;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Serves one connection: reads request lines until EOF or a shutdown
/// request, writing response lines (flushed per line, so clients see
/// points as they complete). Returns `true` if the client asked the
/// whole server to shut down.
pub fn serve_connection(
    service: &SweepService,
    reader: impl BufRead,
    mut writer: impl Write,
) -> io::Result<bool> {
    let respond = |writer: &mut dyn Write, response: &Response| -> io::Result<()> {
        let line = response
            .render()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        writeln!(writer, "{line}")?;
        writer.flush()
    };
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let request = match Request::parse(&line) {
            Ok(request) => request,
            Err(e) => {
                respond(
                    &mut writer,
                    &Response::Error {
                        message: e.to_string(),
                    },
                )?;
                continue;
            }
        };
        match request {
            Request::Ping => respond(
                &mut writer,
                &Response::Pong {
                    engine_version: ENGINE_VERSION,
                },
            )?,
            Request::Shutdown => {
                respond(&mut writer, &Response::Bye)?;
                return Ok(true);
            }
            Request::Sweep(sweep) => match service.submit(&sweep) {
                Err(e) => respond(
                    &mut writer,
                    &Response::Error {
                        message: e.to_string(),
                    },
                )?,
                Ok(mut run) => {
                    let summary = run.summary();
                    for (index, point) in run.by_ref().enumerate() {
                        respond(
                            &mut writer,
                            &Response::Point {
                                index,
                                point: Box::new(point),
                            },
                        )?;
                    }
                    respond(&mut writer, &Response::Summary(summary))?;
                }
            },
            Request::Adaptive(adaptive) => {
                // Points stream from inside the adaptive driver's rounds;
                // a write failure is carried out through this slot (the
                // simulation itself cannot be cancelled mid-round).
                let mut write_error: Option<io::Error> = None;
                let outcome = service.run_adaptive_with(&adaptive, |index, point| {
                    if write_error.is_none() {
                        write_error = respond(
                            &mut writer,
                            &Response::Point {
                                index,
                                point: Box::new(point.clone()),
                            },
                        )
                        .err();
                    }
                });
                if let Some(e) = write_error {
                    return Err(e);
                }
                match outcome {
                    Err(e) => respond(
                        &mut writer,
                        &Response::Error {
                            message: e.to_string(),
                        },
                    )?,
                    Ok((outcome, job)) => respond(
                        &mut writer,
                        &Response::AdaptiveSummary(AdaptiveSummary::of(&outcome.report, job)),
                    )?,
                }
            }
        }
    }
    Ok(false)
}

/// Serves the protocol over stdin/stdout until EOF or a shutdown
/// request.
pub fn serve_stdio(service: &SweepService) -> io::Result<()> {
    let stdin = io::stdin();
    let stdout = io::stdout();
    serve_connection(service, stdin.lock(), stdout.lock())?;
    Ok(())
}

/// Binds `path` and serves connections until a client sends a shutdown
/// request. Each connection is handled on its own thread; they share the
/// service (and therefore the result cache). A pre-existing socket file
/// at `path` is replaced.
pub fn serve_unix(service: Arc<SweepService>, path: &Path) -> io::Result<()> {
    if path.exists() {
        std::fs::remove_file(path)?;
    }
    let listener = UnixListener::bind(path)?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let mut workers = Vec::new();
    for connection in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let stream = connection?;
        let service = Arc::clone(&service);
        let shutdown_flag = Arc::clone(&shutdown);
        let wake_path = path.to_path_buf();
        workers.push(std::thread::spawn(move || {
            let Ok(reader) = stream.try_clone().map(BufReader::new) else {
                return;
            };
            if let Ok(true) = serve_connection(&service, reader, &stream) {
                shutdown_flag.store(true, Ordering::SeqCst);
                // The accept loop is blocked in `incoming`; a throwaway
                // connection unblocks it so it can observe the flag.
                let _ = std::os::unix::net::UnixStream::connect(&wake_path);
            }
        }));
    }
    for worker in workers {
        let _ = worker.join();
    }
    let _ = std::fs::remove_file(path);
    Ok(())
}
