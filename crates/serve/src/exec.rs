//! The sweep service: jobs in, streamed points out, every simulation
//! checked against the result cache first.

use crate::cache::ResultCache;
use crate::key::PointKey;
use dva_json::JsonError;
use dva_sim_api::{IndexedSweepStream, PointSpec, Sweep, SweepPoint, SweepResults};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// What a job cost: how many points it covered, and how many of those
/// were served from cache versus actually simulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobSummary {
    /// Grid points in the job.
    pub total: usize,
    /// Points answered from the result cache.
    pub cache_hits: usize,
    /// Points simulated (and then cached) by this job.
    pub simulated: usize,
}

/// A persistent sweep service: submit [`Sweep`] sessions, get streamed
/// points back, never simulate the same point twice.
///
/// The service is cheap to share (`Arc` it for a multi-connection
/// server); the cache behind it is a single mutex-guarded store, touched
/// only at job setup and once per completed point.
pub struct SweepService {
    cache: Arc<Mutex<ResultCache>>,
}

impl SweepService {
    /// A service over the given result cache.
    pub fn new(cache: ResultCache) -> SweepService {
        SweepService {
            cache: Arc::new(Mutex::new(cache)),
        }
    }

    /// Submits a job: resolves the sweep's grid against the cache, starts
    /// simulating only the misses (work-stealing, streaming), and returns
    /// a [`ServeRun`] yielding every point — hit or miss — in
    /// deterministic grid order, byte-identical to `sweep.run()`.
    ///
    /// # Errors
    ///
    /// Fails if the sweep contains a machine that cannot be
    /// content-addressed (a [`Machine::custom`](dva_sim_api::Machine::custom)
    /// machine).
    pub fn submit(&self, sweep: &Sweep) -> Result<ServeRun, JsonError> {
        let specs = sweep.grid();
        let total = specs.len();
        let mut hits: VecDeque<(usize, SweepPoint)> = VecDeque::new();
        let mut misses: Vec<PointSpec> = Vec::new();
        let mut miss_keys: VecDeque<PointKey> = VecDeque::new();
        {
            let mut cache = self.cache.lock().unwrap();
            for spec in specs {
                let key = PointKey::of(&spec, sweep.fast_forward_enabled())?;
                match cache.get(&key) {
                    Some(result) => hits.push_back((spec.index, point_from(&spec, result))),
                    None => {
                        misses.push(spec);
                        miss_keys.push_back(key);
                    }
                }
            }
        }
        let summary = JobSummary {
            total,
            cache_hits: hits.len(),
            simulated: misses.len(),
        };
        // Misses are submitted in grid order, so the stream yields them
        // by ascending grid index — mergeable against the hit queue.
        let stream = sweep.run_subset_streaming(misses);
        Ok(ServeRun {
            cache: Arc::clone(&self.cache),
            hits,
            stream,
            miss_keys,
            summary,
            yielded: 0,
        })
    }

    /// Runs a job to completion, returning the collected results (equal
    /// to `sweep.run()`) and what they cost.
    pub fn run(&self, sweep: &Sweep) -> Result<(SweepResults, JobSummary), JsonError> {
        let mut run = self.submit(sweep)?;
        let points: Vec<SweepPoint> = run.by_ref().collect();
        Ok((SweepResults { points }, run.summary()))
    }

    /// Results resident in the cache's memory tier.
    pub fn cached_results(&self) -> usize {
        self.cache.lock().unwrap().memory_len()
    }
}

/// Rebuilds the full sweep point for a cached result. Every field except
/// the measurement is a pure function of the spec, so a cached point is
/// byte-identical to a freshly measured one.
fn point_from(spec: &PointSpec, result: dva_sim_api::SimResult) -> SweepPoint {
    SweepPoint {
        machine: spec.machine,
        label: spec.machine.label(),
        benchmark: spec.benchmark,
        program: spec.program.name().to_string(),
        latency: spec.latency,
        memory: spec.memory,
        result,
    }
}

/// A running job: an iterator over its points in grid order, merging
/// cached hits with freshly simulated misses as they stream in. Created
/// by [`SweepService::submit`].
pub struct ServeRun {
    cache: Arc<Mutex<ResultCache>>,
    /// Cached points, ascending grid index.
    hits: VecDeque<(usize, SweepPoint)>,
    /// Simulated points arrive here, also by ascending grid index.
    stream: IndexedSweepStream,
    /// Keys of the streamed points, aligned with the stream's order.
    miss_keys: VecDeque<PointKey>,
    summary: JobSummary,
    yielded: usize,
}

impl ServeRun {
    /// What this job cost. Known from the moment the job was submitted —
    /// callable before, during or after consuming the stream.
    pub fn summary(&self) -> JobSummary {
        self.summary
    }
}

impl Iterator for ServeRun {
    type Item = SweepPoint;

    fn next(&mut self) -> Option<SweepPoint> {
        let take_hit = match (self.hits.front(), self.stream.size_hint().0) {
            (Some(_), 0) => true,
            (Some((hit_index, _)), _) => {
                // The next streamed point has the smallest unseen miss
                // index; compare against position instead of peeking by
                // noting indices are yielded in ascending interleaved
                // order: the next overall index is `yielded`.
                *hit_index == self.yielded
            }
            (None, _) => false,
        };
        let point = if take_hit {
            Some(self.hits.pop_front().expect("checked").1)
        } else {
            match self.stream.next() {
                Some((_, point)) => {
                    let key = self.miss_keys.pop_front().expect("one key per miss");
                    // A disk-tier write failure must not kill the job;
                    // the result is still correct and still in memory.
                    let _ = self.cache.lock().unwrap().store(key, point.result.clone());
                    Some(point)
                }
                None => self.hits.pop_front().map(|(_, point)| point),
            }
        };
        if point.is_some() {
            self.yielded += 1;
        }
        point
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.summary.total - self.yielded;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for ServeRun {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::ResultCache;
    use dva_sim_api::Machine;
    use dva_workloads::{Benchmark, Scale};

    fn sweep_at(latencies: Vec<u64>) -> Sweep {
        Sweep::new()
            .machines([Machine::reference(1), Machine::dva(1), Machine::ideal()])
            .benchmarks([Benchmark::Trfd, Benchmark::Dyfesm])
            .latencies(latencies)
            .scale(Scale::Quick)
            .threads(2)
    }

    fn sweep() -> Sweep {
        sweep_at(vec![1, 30])
    }

    #[test]
    fn first_job_simulates_second_job_hits() {
        let service = SweepService::new(ResultCache::in_memory(1024));
        let fresh = sweep().threads(1).run();

        let (first, cost) = service.run(&sweep()).unwrap();
        assert_eq!(first, fresh, "served results equal a fresh run");
        assert_eq!(cost.total, 12);
        assert_eq!(cost.cache_hits, 0);
        assert_eq!(cost.simulated, 12);

        let (second, cost) = service.run(&sweep()).unwrap();
        assert_eq!(second, fresh, "cached results are byte-identical");
        assert_eq!(cost.cache_hits, 12);
        assert_eq!(cost.simulated, 0, "repeat jobs simulate nothing");
    }

    #[test]
    fn overlapping_jobs_only_simulate_the_new_points() {
        let service = SweepService::new(ResultCache::in_memory(1024));
        let narrow = sweep().clone();
        let (_, cost) = service.run(&narrow).unwrap();
        assert_eq!(cost.simulated, 12);

        // Widen the latency axis: old latencies hit, new ones miss —
        // except IDEAL, whose key ignores latency entirely.
        let wide = sweep_at(vec![1, 30, 70]);
        let (results, cost) = service.run(&wide).unwrap();
        assert_eq!(results, wide.clone().threads(1).run());
        assert_eq!(cost.total, 18);
        // New points: REF and DVA at latency 70 for both benchmarks (4).
        // IDEAL at 70 hits the latency-free cached bound.
        assert_eq!(cost.simulated, 4);
        assert_eq!(cost.cache_hits, 14);
    }

    #[test]
    fn streamed_points_arrive_in_grid_order_and_summary_is_upfront() {
        let service = SweepService::new(ResultCache::in_memory(1024));
        // Preload the latency-1 half of the grid.
        let half = sweep_at(vec![1]);
        service.run(&half).unwrap();

        let job = sweep();
        let run = service.submit(&job).unwrap();
        let summary = run.summary();
        // Latency-1 points all hit (6), and so do the IDEAL points at
        // latency 30 — IDEAL keys carry no latency.
        assert_eq!(summary.cache_hits, 8);
        assert_eq!(summary.simulated, 4);
        let streamed: Vec<SweepPoint> = run.collect();
        assert_eq!(streamed, job.threads(1).run().points);
    }
}
