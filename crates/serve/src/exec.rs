//! The sweep service: jobs in, streamed points out, every simulation
//! checked against the result cache first.

use crate::cache::ResultCache;
use crate::error::ServeError;
use crate::key::PointKey;
use dva_sim_api::{
    AdaptiveOutcome, AdaptiveReport, AdaptiveSweep, CancelToken, IndexedSweepStream, PointError,
    PointSpec, Sweep, SweepPoint, SweepResults,
};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// What a job cost: how many points it covered, and how many of those
/// were served from cache versus actually simulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobSummary {
    /// Grid points in the job.
    pub total: usize,
    /// Points answered from the result cache.
    pub cache_hits: usize,
    /// Points the job set out to simulate (failed attempts included, so
    /// `total = cache_hits + simulated` always holds).
    pub simulated: usize,
    /// Simulation attempts that ended in an isolated point fault
    /// (deadlock or panic). Failed points are never cached. Counted as
    /// the stream drains — final once the job has been consumed.
    pub errors: usize,
}

/// A persistent sweep service: submit [`Sweep`] sessions, get streamed
/// points back, never simulate the same point twice.
///
/// The service is cheap to share (`Arc` it for a multi-connection
/// server); the cache behind it is a single mutex-guarded store, touched
/// only at job setup and once per completed point.
pub struct SweepService {
    cache: Arc<Mutex<ResultCache>>,
}

impl SweepService {
    /// A service over the given result cache.
    pub fn new(cache: ResultCache) -> SweepService {
        SweepService {
            cache: Arc::new(Mutex::new(cache)),
        }
    }

    /// Submits a job: resolves the sweep's grid against the cache, starts
    /// simulating only the misses (work-stealing, streaming), and returns
    /// a [`ServeRun`] yielding every point — hit or miss — in
    /// deterministic grid order, byte-identical to `sweep.run()`.
    ///
    /// # Errors
    ///
    /// Fails if the sweep contains a machine that cannot be
    /// content-addressed (a [`Machine::custom`](dva_sim_api::Machine::custom)
    /// machine).
    pub fn submit(&self, sweep: &Sweep) -> Result<ServeRun, ServeError> {
        self.submit_specs(sweep, sweep.grid())
    }

    /// [`submit`](SweepService::submit) for a subset of a sweep's grid:
    /// resolves exactly the given specs against the cache and streams
    /// the rest, yielding points in **submission order** (an adaptive
    /// refinement round, say, rather than a full grid). The specs'
    /// cache keys are the same as in a full-grid job — subset and dense
    /// runs share cache entries in both directions.
    ///
    /// # Errors
    ///
    /// Fails under the same conditions as [`submit`](SweepService::submit).
    pub fn submit_specs(
        &self,
        sweep: &Sweep,
        specs: Vec<PointSpec>,
    ) -> Result<ServeRun, ServeError> {
        let total = specs.len();
        let mut hits: VecDeque<(usize, SweepPoint)> = VecDeque::new();
        let mut misses: Vec<PointSpec> = Vec::new();
        let mut miss_keys: VecDeque<PointKey> = VecDeque::new();
        {
            let mut cache = self.cache.lock().unwrap();
            // Hit/miss merge runs on submission position, not grid index
            // — a subset's grid indices are sparse, but its positions are
            // dense, which is what the in-order merge below needs. (For a
            // full grid the two coincide.)
            for (position, mut spec) in specs.into_iter().enumerate() {
                let key = PointKey::of(&spec, sweep.fast_forward_enabled())?;
                match cache.get(&key) {
                    Some(result) => hits.push_back((position, point_from(&spec, result))),
                    None => {
                        spec.index = position;
                        misses.push(spec);
                        miss_keys.push_back(key);
                    }
                }
            }
        }
        let summary = JobSummary {
            total,
            cache_hits: hits.len(),
            simulated: misses.len(),
            errors: 0,
        };
        // Misses are submitted in ascending position order, so the
        // stream yields them that way too — mergeable against the hit
        // queue.
        let stream = sweep.run_subset_streaming(misses);
        Ok(ServeRun {
            cache: Arc::clone(&self.cache),
            hits,
            stream,
            miss_keys,
            summary,
            yielded: 0,
            cancel: sweep.cancel_handle(),
        })
    }

    /// Runs a job to completion, returning the collected results (equal
    /// to `sweep.run()`) and what they cost.
    ///
    /// # Errors
    ///
    /// The all-or-nothing counterpart of the streaming surface: the
    /// first isolated point fault comes back as [`ServeError::Point`],
    /// and an interrupted job (cancelled token, expired deadline) as
    /// [`ServeError::Cancelled`] / [`ServeError::DeadlineExceeded`].
    /// Points measured before the failure stay cached either way.
    pub fn run(&self, sweep: &Sweep) -> Result<(SweepResults, JobSummary), ServeError> {
        let mut run = self.submit(sweep)?;
        let mut points = Vec::with_capacity(run.summary().total);
        while let Some(outcome) = run.next_outcome() {
            points.push(outcome?);
        }
        if run.interrupted() {
            return Err(run.interruption());
        }
        Ok((SweepResults { points }, run.summary()))
    }

    /// Runs an [`AdaptiveSweep`] session through the cache: every
    /// refinement round the planner requests goes through
    /// [`submit_specs`](SweepService::submit_specs), so previously
    /// measured points — from earlier rounds, earlier adaptive jobs, or
    /// **dense** jobs over the same axis — are cache hits, and every
    /// point this job simulates warm-starts later dense jobs in turn.
    ///
    /// `on_point` sees each measured point with its **dense grid index**
    /// (the index a full-axis [`Sweep::grid`] assigns it), as the rounds
    /// complete. The returned [`JobSummary`] is the accumulated cost
    /// across rounds; its `total` equals the outcome's sampled points.
    ///
    /// # Errors
    ///
    /// Fails under the same conditions as [`submit`](SweepService::submit);
    /// additionally, an isolated point fault aborts the refinement (a
    /// planner fed a partial round would refine a different curve) as
    /// [`ServeError::Point`], and a cancelled token or expired deadline
    /// on the adaptive session stops the job between rounds as
    /// [`ServeError::Cancelled`] / [`ServeError::DeadlineExceeded`].
    /// Points measured before the interruption stay cached, so a
    /// resubmitted job resumes nearly for free.
    pub fn run_adaptive_with(
        &self,
        adaptive: &AdaptiveSweep,
        mut on_point: impl FnMut(usize, &SweepPoint),
    ) -> Result<(AdaptiveOutcome, JobSummary), ServeError> {
        let sweep = adaptive.dense();
        let cancel = adaptive.cancel_handle();
        let mut planner = adaptive.planner();
        let mut summary = JobSummary {
            total: 0,
            cache_hits: 0,
            simulated: 0,
            errors: 0,
        };
        loop {
            if cancel.is_cancelled() {
                return Err(interruption_of(&cancel));
            }
            let specs = planner.next_round();
            if specs.is_empty() {
                break;
            }
            // The round's dense indices, in submission order — the run
            // below yields points in exactly this order.
            let indices: Vec<usize> = specs.iter().map(|spec| spec.index).collect();
            let mut run = self.submit_specs(&sweep, specs)?;
            let round = run.summary();
            summary.total += round.total;
            summary.cache_hits += round.cache_hits;
            summary.simulated += round.simulated;
            let mut indices = indices.into_iter();
            while let Some(outcome) = run.next_outcome() {
                let index = indices.next().expect("one index per submitted spec");
                let point = outcome?;
                on_point(index, &point);
                planner.record(index, point);
            }
            if run.interrupted() {
                return Err(run.interruption());
            }
        }
        Ok((planner.finish(), summary))
    }

    /// [`run_adaptive_with`](SweepService::run_adaptive_with) without a
    /// per-point callback.
    pub fn run_adaptive(
        &self,
        adaptive: &AdaptiveSweep,
    ) -> Result<(AdaptiveOutcome, JobSummary), ServeError> {
        self.run_adaptive_with(adaptive, |_, _| {})
    }

    /// Results resident in the cache's memory tier.
    pub fn cached_results(&self) -> usize {
        self.cache.lock().unwrap().memory_len()
    }

    /// Disk-tier write failures the cache has absorbed (the first one
    /// demotes the tier to memory-only; see
    /// [`ResultCache::disk_errors`]).
    pub fn disk_errors(&self) -> usize {
        self.cache.lock().unwrap().disk_errors()
    }
}

/// The wire summary of an adaptive job: the sampling accounting of the
/// [`AdaptiveReport`] plus what the sampled points cost through the
/// cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveSummary {
    /// Points the equivalent dense job would have covered.
    pub dense: usize,
    /// Points actually sampled (= `cache_hits + simulated`).
    pub sampled: usize,
    /// Sampled points answered from the result cache.
    pub cache_hits: usize,
    /// Sampled points simulated (and then cached) by this job.
    pub simulated: usize,
    /// Dense points skipped as recoverable by interpolation.
    pub interpolated: usize,
    /// Dense points skipped because their curve was dominance-pruned.
    pub dominated: usize,
    /// Curves that were dominance-pruned.
    pub pruned_curves: usize,
    /// Refinement rounds executed.
    pub rounds: usize,
}

impl AdaptiveSummary {
    /// Folds a finished adaptive run's report and accumulated job cost
    /// into the wire summary.
    pub fn of(report: &AdaptiveReport, job: JobSummary) -> AdaptiveSummary {
        AdaptiveSummary {
            dense: report.dense_points,
            sampled: report.sampled_points,
            cache_hits: job.cache_hits,
            simulated: job.simulated,
            interpolated: report.skipped_interpolated,
            dominated: report.skipped_dominated,
            pruned_curves: report.pruned().count(),
            rounds: report.rounds,
        }
    }
}

/// Rebuilds the full sweep point for a cached result. Every field except
/// the measurement is a pure function of the spec, so a cached point is
/// byte-identical to a freshly measured one.
fn point_from(spec: &PointSpec, result: dva_sim_api::SimResult) -> SweepPoint {
    SweepPoint {
        machine: spec.machine,
        label: spec.machine.label(),
        benchmark: spec.benchmark,
        program: spec.program.name().to_string(),
        latency: spec.latency,
        memory: spec.memory,
        result,
    }
}

/// The [`ServeError`] describing why a cancelled token stopped a job.
fn interruption_of(cancel: &CancelToken) -> ServeError {
    if cancel.deadline_exceeded() {
        ServeError::DeadlineExceeded
    } else {
        ServeError::Cancelled
    }
}

/// A running job: an iterator over its points in grid order, merging
/// cached hits with freshly simulated misses as they stream in. Created
/// by [`SweepService::submit`].
///
/// The plain [`Iterator`] keeps the all-or-nothing contract (an
/// isolated point fault re-raises as a panic); fault-tolerant consumers
/// — the daemon — poll [`next_outcome`](ServeRun::next_outcome) and
/// receive each fault as a typed [`PointError`] alongside the healthy
/// points. A cancelled token or expired deadline on the submitted sweep
/// truncates the run (see [`interrupted`](ServeRun::interrupted)).
pub struct ServeRun {
    cache: Arc<Mutex<ResultCache>>,
    /// Cached points, ascending grid index.
    hits: VecDeque<(usize, SweepPoint)>,
    /// Simulated points arrive here, also by ascending grid index.
    stream: IndexedSweepStream,
    /// Keys of the streamed points, aligned with the stream's order.
    miss_keys: VecDeque<PointKey>,
    summary: JobSummary,
    yielded: usize,
    cancel: CancelToken,
}

impl ServeRun {
    /// What this job cost. The hit/miss split is known from the moment
    /// the job was submitted; the `errors` count grows as faults are
    /// discovered, so it is final only once the run has been consumed.
    pub fn summary(&self) -> JobSummary {
        self.summary
    }

    /// Whether the run stopped early because its sweep's cancel token
    /// tripped (explicitly, or by deadline). The second clause catches
    /// jobs interrupted before the stream noticed — e.g. a fully cached
    /// job whose deadline had already passed at submission.
    pub fn interrupted(&self) -> bool {
        self.stream.cancelled() || (self.cancel.is_cancelled() && self.yielded < self.summary.total)
    }

    /// The [`ServeError`] describing an interruption; meaningful only
    /// when [`interrupted`](ServeRun::interrupted) is true.
    pub fn interruption(&self) -> ServeError {
        interruption_of(&self.cancel)
    }

    /// The next point of the job in order — or the typed [`PointError`]
    /// of a point whose simulation failed. `None` once the job is
    /// exhausted or its cancel token tripped. Failed points are never
    /// cached, so a resubmitted job retries exactly them.
    pub fn next_outcome(&mut self) -> Option<Result<SweepPoint, PointError>> {
        if self.cancel.is_cancelled() {
            return None;
        }
        let take_hit = match (self.hits.front(), self.stream.size_hint().0) {
            (Some(_), 0) => true,
            (Some((hit_index, _)), _) => {
                // The next streamed point has the smallest unseen miss
                // index; compare against position instead of peeking by
                // noting indices are yielded in ascending interleaved
                // order: the next overall index is `yielded`.
                *hit_index == self.yielded
            }
            (None, _) => false,
        };
        let outcome = if take_hit {
            Some(Ok(self.hits.pop_front().expect("checked").1))
        } else {
            match self.stream.next_outcome() {
                Some((_, outcome)) => {
                    let key = self.miss_keys.pop_front().expect("one key per miss");
                    match outcome {
                        Ok(point) => {
                            self.cache.lock().unwrap().store(key, point.result.clone());
                            Some(Ok(point))
                        }
                        Err(error) => {
                            self.summary.errors += 1;
                            Some(Err(error))
                        }
                    }
                }
                None if self.stream.cancelled() => None,
                None => self.hits.pop_front().map(|(_, point)| Ok(point)),
            }
        };
        if outcome.is_some() {
            self.yielded += 1;
        }
        outcome
    }
}

impl Iterator for ServeRun {
    type Item = SweepPoint;

    fn next(&mut self) -> Option<SweepPoint> {
        self.next_outcome()
            .map(|outcome| outcome.unwrap_or_else(|e| panic!("{e}")))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.summary.total - self.yielded;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for ServeRun {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::ResultCache;
    use dva_sim_api::Machine;
    use dva_workloads::{Benchmark, Scale};

    fn sweep_at(latencies: Vec<u64>) -> Sweep {
        Sweep::new()
            .machines([Machine::reference(1), Machine::dva(1), Machine::ideal()])
            .benchmarks([Benchmark::Trfd, Benchmark::Dyfesm])
            .latencies(latencies)
            .scale(Scale::Quick)
            .threads(2)
    }

    fn sweep() -> Sweep {
        sweep_at(vec![1, 30])
    }

    #[test]
    fn first_job_simulates_second_job_hits() {
        let service = SweepService::new(ResultCache::in_memory(1024));
        let fresh = sweep().threads(1).run();

        let (first, cost) = service.run(&sweep()).unwrap();
        assert_eq!(first, fresh, "served results equal a fresh run");
        assert_eq!(cost.total, 12);
        assert_eq!(cost.cache_hits, 0);
        assert_eq!(cost.simulated, 12);

        let (second, cost) = service.run(&sweep()).unwrap();
        assert_eq!(second, fresh, "cached results are byte-identical");
        assert_eq!(cost.cache_hits, 12);
        assert_eq!(cost.simulated, 0, "repeat jobs simulate nothing");
    }

    #[test]
    fn overlapping_jobs_only_simulate_the_new_points() {
        let service = SweepService::new(ResultCache::in_memory(1024));
        let narrow = sweep().clone();
        let (_, cost) = service.run(&narrow).unwrap();
        assert_eq!(cost.simulated, 12);

        // Widen the latency axis: old latencies hit, new ones miss —
        // except IDEAL, whose key ignores latency entirely.
        let wide = sweep_at(vec![1, 30, 70]);
        let (results, cost) = service.run(&wide).unwrap();
        assert_eq!(results, wide.clone().threads(1).run());
        assert_eq!(cost.total, 18);
        // New points: REF and DVA at latency 70 for both benchmarks (4).
        // IDEAL at 70 hits the latency-free cached bound.
        assert_eq!(cost.simulated, 4);
        assert_eq!(cost.cache_hits, 14);
    }

    #[test]
    fn subset_jobs_rebase_hits_onto_submission_positions() {
        let service = SweepService::new(ResultCache::in_memory(1024));
        let job = sweep();
        // Preload the latency-1 half, then submit a subset interleaving
        // cached and uncached points: the merge must still yield them in
        // submission order.
        service.run(&sweep_at(vec![1])).unwrap();
        let grid = job.grid();
        let subset: Vec<PointSpec> = grid.iter().filter(|s| s.index % 3 != 1).cloned().collect();
        let expected: Vec<SweepPoint> = {
            let dense = job.clone().threads(1).run();
            subset
                .iter()
                .map(|s| dense.points[s.index].clone())
                .collect()
        };
        let run = service.submit_specs(&job, subset).unwrap();
        assert!(run.summary().cache_hits > 0 && run.summary().simulated > 0);
        let streamed: Vec<SweepPoint> = run.collect();
        assert_eq!(
            streamed, expected,
            "subset points stream in submission order"
        );
    }

    fn adaptive() -> AdaptiveSweep {
        AdaptiveSweep::over(
            Sweep::new()
                .machines([Machine::reference(1), Machine::dva(1), Machine::ideal()])
                .benchmarks([Benchmark::Trfd, Benchmark::Dyfesm])
                .scale(Scale::Quick)
                .threads(2),
            1..=40,
        )
        .seeds(5)
    }

    #[test]
    fn adaptive_jobs_share_the_cache_with_dense_jobs_both_ways() {
        let adaptive = adaptive();
        let dense = adaptive.dense();

        // Adaptive first: a later dense job hits on every sampled point.
        let service = SweepService::new(ResultCache::in_memory(4096));
        let (outcome, job) = service.run_adaptive(&adaptive).unwrap();
        assert_eq!(job.total, outcome.report.sampled_points);
        assert_eq!(job.cache_hits, 0, "cold adaptive run hits nothing");
        let (results, cost) = service.run(&dense).unwrap();
        assert_eq!(results, dense.clone().threads(1).run());
        assert!(
            cost.cache_hits >= outcome.report.sampled_points,
            "every adaptive sample warm-starts the dense run"
        );

        // Dense first: the adaptive job simulates nothing at all.
        let service = SweepService::new(ResultCache::in_memory(4096));
        service.run(&dense).unwrap();
        let mut streamed = Vec::new();
        let (warm, job) = service
            .run_adaptive_with(&adaptive, |index, point| {
                streamed.push((index, point.clone()));
            })
            .unwrap();
        assert_eq!(job.simulated, 0, "dense run pre-paid every point");
        assert_eq!(job.cache_hits, warm.report.sampled_points);
        assert_eq!(warm.results, outcome.results, "cache round-trip is exact");
        // The callback saw every sampled point, keyed by dense index.
        assert_eq!(streamed.len(), warm.report.sampled_points);
        let reference = dense.clone().threads(1).run();
        for (index, point) in &streamed {
            assert_eq!(*point, reference.points[*index]);
        }
    }

    #[test]
    fn adaptive_summary_folds_report_and_cost() {
        let service = SweepService::new(ResultCache::in_memory(4096));
        let adaptive = adaptive();
        let (outcome, job) = service.run_adaptive(&adaptive).unwrap();
        let summary = AdaptiveSummary::of(&outcome.report, job);
        assert_eq!(summary.dense, adaptive.dense_len());
        assert_eq!(summary.sampled, summary.cache_hits + summary.simulated);
        assert_eq!(
            summary.dense,
            summary.sampled + summary.interpolated + summary.dominated
        );
        assert!(
            summary.sampled < summary.dense,
            "refinement must skip points"
        );
        assert!(summary.rounds >= 1);
    }

    #[test]
    fn streamed_points_arrive_in_grid_order_and_summary_is_upfront() {
        let service = SweepService::new(ResultCache::in_memory(1024));
        // Preload the latency-1 half of the grid.
        let half = sweep_at(vec![1]);
        service.run(&half).unwrap();

        let job = sweep();
        let run = service.submit(&job).unwrap();
        let summary = run.summary();
        // Latency-1 points all hit (6), and so do the IDEAL points at
        // latency 30 — IDEAL keys carry no latency.
        assert_eq!(summary.cache_hits, 8);
        assert_eq!(summary.simulated, 4);
        let streamed: Vec<SweepPoint> = run.collect();
        assert_eq!(streamed, job.threads(1).run().points);
    }
}
