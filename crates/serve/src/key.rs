//! Content-addressed identity of a grid point.
//!
//! A [`PointKey`] names everything that determines a simulation's
//! outcome — the program's instruction stream (by content hash), the full
//! machine configuration (including the stamped latency and memory
//! model), the fast-forward flag, and the engine version — and nothing
//! that doesn't (program *names*, benchmark labels, grid position).
//! Two points with equal keys are guaranteed byte-identical results, so
//! the cache in [`crate::cache`] never simulates the same point twice,
//! across jobs or across process restarts.
//!
//! Because IDEAL machines carry no latency or memory knob, every IDEAL
//! point of a latency grid collapses onto one key: a 4-machine × 6-latency
//! sweep simulates IDEAL once and serves the other five from cache.

use dva_engine::ENGINE_VERSION;
use dva_isa::Program;
use dva_json::JsonError;
use dva_sim_api::PointSpec;
use std::collections::HashMap;
use std::fmt::{self, Write as _};
use std::sync::{Mutex, OnceLock};

/// The canonical identity of one simulation, usable as a cache key and
/// stable across processes (for one engine version).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PointKey(String);

impl PointKey {
    /// Computes the key of a grid point.
    ///
    /// # Errors
    ///
    /// Fails for points on a [`Machine::custom`](dva_sim_api::Machine::custom)
    /// machine: its behaviour lives in a function pointer, which has no
    /// content address.
    pub fn of(spec: &PointSpec, fast_forward: bool) -> Result<PointKey, JsonError> {
        let machine = spec.machine.to_json()?.render();
        let program = program_hash(&spec.program);
        Ok(PointKey(format!(
            "v{ENGINE_VERSION};prog={program:032x};ff={fast_forward};machine={machine}"
        )))
    }

    /// The canonical string form (what the disk tier stores).
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Wraps a key string read back from the disk tier. No validation:
    /// the string *is* the identity.
    pub(crate) fn from_string(key: String) -> PointKey {
        PointKey(key)
    }
}

impl fmt::Display for PointKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// FNV-1a, 128-bit: tiny, dependency-free, and collision-safe far beyond
/// the handful of distinct programs a sweep service ever sees.
struct Fnv128(u128);

const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV_PRIME: u128 = 0x0000000001000000000000000000013b;

impl Fnv128 {
    fn new() -> Fnv128 {
        Fnv128(FNV_OFFSET)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u128::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
}

impl fmt::Write for Fnv128 {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        self.update(s.as_bytes());
        Ok(())
    }
}

/// Hashes a program's instruction stream by content: each instruction's
/// canonical `Debug` rendering (a pure function of the instruction's
/// fields) is fed through FNV-1a without materializing the text.
fn hash_insts(program: &Program) -> u128 {
    let mut hasher = Fnv128::new();
    for inst in program.insts() {
        // The separator keeps adjacent instructions from sharing bytes.
        let _ = write!(hasher, "{inst:?};");
    }
    hasher.0
}

/// Process-wide memo of program content hashes, keyed by the identity of
/// the shared instruction storage. Each entry holds a clone of its
/// program, which pins the storage — an equal pointer is therefore the
/// same allocation, hence the same content (the same soundness argument
/// as `dva-sim-api`'s compiled-program cache). Cleared wholesale past a
/// bound so unique-program workloads don't accumulate entries forever.
static HASHES: OnceLock<Mutex<HashMap<usize, (Program, u128)>>> = OnceLock::new();

/// Distinct programs memoized before the memo is flushed.
const HASH_CACHE_BOUND: usize = 64;

/// The content hash of a program's instruction stream, memoized by
/// storage identity: sweeping one program across a big grid hashes it
/// once, not once per point.
pub fn program_hash(program: &Program) -> u128 {
    let key = program.insts().as_ptr() as usize;
    let map = HASHES.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some((_, hash)) = map.lock().unwrap().get(&key) {
        return *hash;
    }
    let hash = hash_insts(program);
    let mut map = map.lock().unwrap();
    if map.len() >= HASH_CACHE_BOUND {
        map.clear();
    }
    map.insert(key, (program.clone(), hash));
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use dva_sim_api::{Machine, Sweep};
    use dva_workloads::{Benchmark, Scale};

    fn spec_grid() -> Vec<PointSpec> {
        Sweep::new()
            .machines([Machine::reference(1), Machine::dva(1), Machine::ideal()])
            .benchmarks([Benchmark::Trfd, Benchmark::Dyfesm])
            .latencies([1, 30])
            .scale(Scale::Quick)
            .grid()
    }

    #[test]
    fn keys_are_stable_across_grid_rebuilds() {
        // Two independently generated grids produce the same keys, and so
        // does a spec whose program was copied into fresh storage:
        // content, not identity.
        let a = spec_grid();
        let b = spec_grid();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                PointKey::of(x, true).unwrap(),
                PointKey::of(y, true).unwrap()
            );
        }
        let spec = &a[0];
        let mut copied = spec.clone();
        copied.program =
            dva_isa::Program::from_insts(copied.program.name(), copied.program.insts().to_vec());
        assert_ne!(
            copied.program.insts().as_ptr(),
            spec.program.insts().as_ptr(),
            "the copy must not share storage for this test to mean anything"
        );
        assert_eq!(
            PointKey::of(&copied, true).unwrap(),
            PointKey::of(spec, true).unwrap()
        );
    }

    #[test]
    fn keys_separate_every_axis() {
        let grid = spec_grid();
        // REF/DVA keys are unique per (machine, program, latency) point;
        // IDEAL collapses across the latency axis by design.
        let mut seen = std::collections::HashMap::new();
        for spec in &grid {
            let key = PointKey::of(spec, true).unwrap();
            if let Some(prev) = seen.insert(key.clone(), spec) {
                assert_eq!(prev.machine, Machine::ideal(), "{key} collided");
                assert_eq!(prev.benchmark, spec.benchmark);
            }
        }
        let ideal_keys: std::collections::HashSet<_> = grid
            .iter()
            .filter(|s| s.machine == Machine::ideal())
            .map(|s| PointKey::of(s, true).unwrap())
            .collect();
        // 2 benchmarks × 2 latencies, but only 2 distinct IDEAL keys.
        assert_eq!(ideal_keys.len(), 2);
    }

    #[test]
    fn fast_forward_and_engine_version_are_part_of_the_key() {
        let spec = &spec_grid()[0];
        let fast = PointKey::of(spec, true).unwrap();
        let naive = PointKey::of(spec, false).unwrap();
        assert_ne!(fast, naive);
        assert!(fast.as_str().starts_with(&format!("v{ENGINE_VERSION};")));
    }

    #[test]
    fn program_hashes_are_content_hashes() {
        let a = Benchmark::Trfd.program(Scale::Quick);
        let b = Benchmark::Trfd.program(Scale::Quick);
        let c = Benchmark::Trfd.program(Scale::Default);
        assert_eq!(program_hash(&a), program_hash(&b));
        assert_ne!(program_hash(&a), program_hash(&c));
        // Renaming shares storage, so the hash (and the memo hit) agree.
        assert_eq!(program_hash(&a.with_name("other")), program_hash(&a));
    }

    #[test]
    fn custom_machines_have_no_key() {
        fn build(_: &dva_isa::Program) -> dva_sim_api::CustomSim<'_> {
            unreachable!()
        }
        let mut spec = spec_grid().remove(0);
        spec.machine = Machine::custom("LOCAL", build);
        assert!(PointKey::of(&spec, true).is_err());
    }
}
