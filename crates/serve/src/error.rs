//! The serving stack's failure taxonomy.
//!
//! Three layers of fault are kept distinct end-to-end:
//!
//! * **Job faults** ([`ServeError::Spec`]) — the request itself is
//!   unservable (a machine that cannot be content-addressed). Nothing
//!   ran; the client gets one error line.
//! * **Point faults** ([`ServeError::Point`]) — one grid point
//!   deadlocked or panicked. The point is isolated by the streaming
//!   executor; every other point of the job is still served,
//!   byte-identical to a fault-free run, and the failed point travels
//!   the wire as a `point_error` frame.
//! * **Interruptions** ([`ServeError::DeadlineExceeded`],
//!   [`ServeError::Cancelled`]) — the job stopped early because its
//!   deadline passed or its client went away. Work already done stays
//!   cached; the rest was never simulated.

use dva_json::JsonError;
use dva_sim_api::PointError;
use std::fmt;

/// Why a serve job (or part of one) failed. See the [module
/// docs](self) for the taxonomy.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The job specification cannot be served (e.g. a custom machine
    /// that cannot be content-addressed for caching).
    Spec(JsonError),
    /// One grid point failed; carries the point's coordinates and the
    /// diagnosis.
    Point(PointError),
    /// The job's deadline passed before it finished; the remaining
    /// points were not simulated.
    DeadlineExceeded,
    /// The job was cancelled (typically: the client hung up) before it
    /// finished; the remaining points were not simulated.
    Cancelled,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Spec(e) => write!(f, "unservable job: {e}"),
            ServeError::Point(e) => write!(f, "{e}"),
            ServeError::DeadlineExceeded => write!(f, "job deadline exceeded"),
            ServeError::Cancelled => write!(f, "job cancelled"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<JsonError> for ServeError {
    fn from(e: JsonError) -> ServeError {
        ServeError::Spec(e)
    }
}

impl From<PointError> for ServeError {
    fn from(e: PointError) -> ServeError {
        ServeError::Point(e)
    }
}
