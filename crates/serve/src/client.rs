//! A typed client for the `dva-serve` protocol.

use crate::exec::{AdaptiveSummary, JobSummary};
use crate::proto::{Request, Response};
use dva_sim_api::{AdaptiveSweep, Sweep, SweepPoint, SweepResults};
use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;

fn bad_data(message: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.into())
}

/// A connection to a sweep server. Generic over the transport so tests
/// can drive an in-memory pipe; [`Client::connect`] makes the Unix-socket
/// one.
pub struct Client<R, W> {
    reader: BufReader<R>,
    writer: W,
}

impl Client<UnixStream, UnixStream> {
    /// Connects to a server's Unix socket.
    pub fn connect(path: &Path) -> io::Result<Client<UnixStream, UnixStream>> {
        let stream = UnixStream::connect(path)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: stream,
        })
    }
}

impl<R: io::Read, W: Write> Client<R, W> {
    /// A client over an arbitrary transport (the read and write halves of
    /// a connection to a server).
    pub fn over(reader: R, writer: W) -> Client<R, W> {
        Client {
            reader: BufReader::new(reader),
            writer,
        }
    }

    fn send(&mut self, request: &Request) -> io::Result<()> {
        let line = request.render().map_err(|e| bad_data(e.to_string()))?;
        writeln!(self.writer, "{line}")?;
        self.writer.flush()
    }

    fn receive(&mut self) -> io::Result<Response> {
        let mut line = String::new();
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            if !line.trim().is_empty() {
                return Response::parse(line.trim_end()).map_err(|e| bad_data(e.to_string()));
            }
        }
    }

    /// Probes the server, returning its engine version.
    pub fn ping(&mut self) -> io::Result<u32> {
        self.send(&Request::Ping)?;
        match self.receive()? {
            Response::Pong { engine_version } => Ok(engine_version),
            other => Err(bad_data(format!("expected pong, got {other:?}"))),
        }
    }

    /// Submits a sweep and calls `on_point` for every grid point as it
    /// streams in (in deterministic grid order), returning the job
    /// summary once the server reports completion.
    pub fn submit_streaming(
        &mut self,
        sweep: &Sweep,
        mut on_point: impl FnMut(usize, SweepPoint),
    ) -> io::Result<JobSummary> {
        self.send(&Request::Sweep(Box::new(sweep.clone())))?;
        loop {
            match self.receive()? {
                Response::Point { index, point } => on_point(index, *point),
                Response::Summary(summary) => return Ok(summary),
                Response::Error { message } => return Err(bad_data(message)),
                other => return Err(bad_data(format!("unexpected response {other:?}"))),
            }
        }
    }

    /// Submits a sweep and collects the streamed points, returning the
    /// full result set — byte-identical to a local `sweep.run()` — and
    /// the job summary.
    pub fn submit(&mut self, sweep: &Sweep) -> io::Result<(SweepResults, JobSummary)> {
        let mut points = Vec::new();
        let summary = self.submit_streaming(sweep, |_, point| points.push(point))?;
        Ok((SweepResults { points }, summary))
    }

    /// Submits an adaptive sweep and calls `on_point` for every
    /// **sampled** point as it streams in (keyed by its dense grid
    /// index, in refinement-round order), returning the adaptive summary
    /// once the server reports completion.
    pub fn submit_adaptive_streaming(
        &mut self,
        adaptive: &AdaptiveSweep,
        mut on_point: impl FnMut(usize, SweepPoint),
    ) -> io::Result<AdaptiveSummary> {
        self.send(&Request::Adaptive(Box::new(adaptive.clone())))?;
        loop {
            match self.receive()? {
                Response::Point { index, point } => on_point(index, *point),
                Response::AdaptiveSummary(summary) => return Ok(summary),
                Response::Error { message } => return Err(bad_data(message)),
                other => return Err(bad_data(format!("unexpected response {other:?}"))),
            }
        }
    }

    /// Submits an adaptive sweep and collects the sampled points into a
    /// (sparse) result set in dense grid order — every point
    /// byte-identical to the same point of a dense run — plus the
    /// adaptive summary.
    pub fn submit_adaptive(
        &mut self,
        adaptive: &AdaptiveSweep,
    ) -> io::Result<(SweepResults, AdaptiveSummary)> {
        let mut indexed: Vec<(usize, SweepPoint)> = Vec::new();
        let summary =
            self.submit_adaptive_streaming(adaptive, |index, point| indexed.push((index, point)))?;
        indexed.sort_by_key(|&(index, _)| index);
        let points = indexed.into_iter().map(|(_, point)| point).collect();
        Ok((SweepResults { points }, summary))
    }

    /// Asks the server to shut down (acknowledged with a `bye`).
    pub fn shutdown(&mut self) -> io::Result<()> {
        self.send(&Request::Shutdown)?;
        match self.receive()? {
            Response::Bye => Ok(()),
            other => Err(bad_data(format!("expected bye, got {other:?}"))),
        }
    }
}
