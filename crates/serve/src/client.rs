//! A typed client for the `dva-serve` protocol.
//!
//! Connection-level faults are made explicit: [`Client::connect`] turns
//! a missing or stale socket into a "daemon not running" error,
//! [`RetryPolicy`] adds capped-exponential-backoff reconnects, and
//! [`Client::submit_with_retry`] re-submits a dropped job wholesale —
//! idempotent by construction, because the server's content-addressed
//! cache answers every already-measured point without re-simulating.

use crate::exec::{AdaptiveSummary, JobSummary};
use crate::proto::{Request, Response};
use dva_sim_api::{AdaptiveSweep, PointError, Sweep, SweepPoint, SweepResults};
use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::Duration;

fn bad_data(message: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.into())
}

/// Whether an error is worth a reconnect-and-retry: connection
/// lifecycle faults, not protocol violations or server-reported
/// failures.
fn is_retryable(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::NotFound
            | io::ErrorKind::ConnectionRefused
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::UnexpectedEof
            | io::ErrorKind::WouldBlock
            | io::ErrorKind::TimedOut
            | io::ErrorKind::Interrupted
    )
}

/// How often and how patiently to retry a connection-level failure:
/// capped exponential backoff, deterministic (no jitter — retries here
/// are against a local daemon, not a shared remote).
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts, including the first (minimum 1).
    pub attempts: u32,
    /// Delay before the first retry; doubles per retry.
    pub base_delay: Duration,
    /// Ceiling on the per-retry delay.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempts: 4,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_secs(2),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries: one attempt, no waiting.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            attempts: 1,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
        }
    }

    /// The backoff before retry number `retry` (0-based): `base_delay`
    /// doubled per step, capped at `max_delay`.
    pub fn delay(&self, retry: u32) -> Duration {
        let doubled = self
            .base_delay
            .saturating_mul(2u32.saturating_pow(retry.min(16)));
        doubled.min(self.max_delay)
    }
}

/// A connection to a sweep server. Generic over the transport so tests
/// can drive an in-memory pipe; [`Client::connect`] makes the Unix-socket
/// one.
pub struct Client<R, W> {
    reader: BufReader<R>,
    writer: W,
}

impl Client<UnixStream, UnixStream> {
    /// Connects to a server's Unix socket. A missing socket file or a
    /// socket nothing is listening on — the two shapes a dead daemon
    /// takes — come back as a "daemon not running" error rather than a
    /// raw `ENOENT`/`ECONNREFUSED`.
    pub fn connect(path: &Path) -> io::Result<Client<UnixStream, UnixStream>> {
        let stream = UnixStream::connect(path).map_err(|e| {
            if matches!(
                e.kind(),
                io::ErrorKind::NotFound | io::ErrorKind::ConnectionRefused
            ) {
                io::Error::new(
                    e.kind(),
                    format!(
                        "dva-serve daemon not running at {} ({e}); start it with \
                         `dva-serve --socket {}`",
                        path.display(),
                        path.display()
                    ),
                )
            } else {
                e
            }
        })?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: stream,
        })
    }

    /// [`Client::connect`] under a [`RetryPolicy`]: retries
    /// connection-level failures (daemon still starting, socket not yet
    /// bound) with capped exponential backoff.
    pub fn connect_with_retry(
        path: &Path,
        policy: &RetryPolicy,
    ) -> io::Result<Client<UnixStream, UnixStream>> {
        retry(policy, || Client::connect(path))
    }

    /// Submits a sweep, reconnecting and re-submitting the whole job if
    /// the connection drops mid-stream. Safe to retry: every point the
    /// interrupted attempt measured is already in the server's cache, so
    /// the re-submission replays them as cache hits and simulates only
    /// what is left. The returned summary is the final attempt's — its
    /// `cache_hits` count shows the resume at work.
    pub fn submit_with_retry(
        path: &Path,
        policy: &RetryPolicy,
        sweep: &Sweep,
    ) -> io::Result<(SweepResults, JobSummary)> {
        retry(policy, || Client::connect(path)?.submit(sweep))
    }
}

/// Runs `attempt` under `policy`, sleeping the policy's backoff between
/// tries; non-retryable errors fail immediately.
fn retry<T>(policy: &RetryPolicy, mut attempt: impl FnMut() -> io::Result<T>) -> io::Result<T> {
    let attempts = policy.attempts.max(1);
    let mut last = None;
    for n in 0..attempts {
        if n > 0 {
            std::thread::sleep(policy.delay(n - 1));
        }
        match attempt() {
            Ok(value) => return Ok(value),
            Err(e) if is_retryable(&e) && n + 1 < attempts => last = Some(e),
            Err(e) => return Err(e),
        }
    }
    Err(last.expect("loop ran at least once"))
}

impl<R: io::Read, W: Write> Client<R, W> {
    /// A client over an arbitrary transport (the read and write halves of
    /// a connection to a server).
    pub fn over(reader: R, writer: W) -> Client<R, W> {
        Client {
            reader: BufReader::new(reader),
            writer,
        }
    }

    fn send(&mut self, request: &Request) -> io::Result<()> {
        let line = request.render().map_err(|e| bad_data(e.to_string()))?;
        writeln!(self.writer, "{line}")?;
        self.writer.flush()
    }

    fn receive(&mut self) -> io::Result<Response> {
        let mut line = String::new();
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            if !line.trim().is_empty() {
                return Response::parse(line.trim_end()).map_err(|e| bad_data(e.to_string()));
            }
        }
    }

    /// Probes the server, returning its engine version.
    pub fn ping(&mut self) -> io::Result<u32> {
        self.send(&Request::Ping)?;
        match self.receive()? {
            Response::Pong { engine_version } => Ok(engine_version),
            other => Err(bad_data(format!("expected pong, got {other:?}"))),
        }
    }

    /// The fault-aware streaming submit: calls `on_outcome` for every
    /// grid point in deterministic grid order — `Ok` for a measured
    /// point, `Err` with the typed [`PointError`] for a point whose
    /// simulation panicked or deadlocked — and returns the job summary.
    /// `deadline_ms`, when set, bounds the job's wall-clock time on the
    /// server; an expired deadline ends the job with an error.
    pub fn submit_outcomes(
        &mut self,
        sweep: &Sweep,
        deadline_ms: Option<u64>,
        mut on_outcome: impl FnMut(usize, Result<SweepPoint, PointError>),
    ) -> io::Result<JobSummary> {
        self.send(&Request::Sweep {
            spec: Box::new(sweep.clone()),
            deadline_ms,
        })?;
        loop {
            match self.receive()? {
                Response::Point { index, point } => on_outcome(index, Ok(*point)),
                Response::PointError(error) => on_outcome(error.index, Err(error)),
                Response::Summary(summary) => return Ok(summary),
                Response::Error { message } => return Err(bad_data(message)),
                other => return Err(bad_data(format!("unexpected response {other:?}"))),
            }
        }
    }

    /// Submits a sweep and calls `on_point` for every grid point as it
    /// streams in (in deterministic grid order), returning the job
    /// summary once the server reports completion. The all-or-nothing
    /// surface: a `point_error` frame fails the whole call (use
    /// [`submit_outcomes`](Client::submit_outcomes) to keep the healthy
    /// points).
    pub fn submit_streaming(
        &mut self,
        sweep: &Sweep,
        mut on_point: impl FnMut(usize, SweepPoint),
    ) -> io::Result<JobSummary> {
        self.submit_outcomes(sweep, None, |index, outcome| {
            if let Ok(point) = outcome {
                on_point(index, point)
            }
        })
        .and_then(|summary| {
            if summary.errors > 0 {
                Err(bad_data(format!(
                    "{} of {} grid points failed",
                    summary.errors, summary.total
                )))
            } else {
                Ok(summary)
            }
        })
    }

    /// Submits a sweep and collects the streamed points, returning the
    /// full result set — byte-identical to a local `sweep.run()` — and
    /// the job summary.
    pub fn submit(&mut self, sweep: &Sweep) -> io::Result<(SweepResults, JobSummary)> {
        let mut points = Vec::new();
        let summary = self.submit_streaming(sweep, |_, point| points.push(point))?;
        Ok((SweepResults { points }, summary))
    }

    /// Submits an adaptive sweep and calls `on_point` for every
    /// **sampled** point as it streams in (keyed by its dense grid
    /// index, in refinement-round order), returning the adaptive summary
    /// once the server reports completion. `deadline_ms` bounds the
    /// whole session; an expired deadline ends the job with an error
    /// between refinement rounds.
    pub fn submit_adaptive_outcomes(
        &mut self,
        adaptive: &AdaptiveSweep,
        deadline_ms: Option<u64>,
        mut on_point: impl FnMut(usize, SweepPoint),
    ) -> io::Result<AdaptiveSummary> {
        self.send(&Request::Adaptive {
            spec: Box::new(adaptive.clone()),
            deadline_ms,
        })?;
        loop {
            match self.receive()? {
                Response::Point { index, point } => on_point(index, *point),
                Response::AdaptiveSummary(summary) => return Ok(summary),
                Response::Error { message } => return Err(bad_data(message)),
                other => return Err(bad_data(format!("unexpected response {other:?}"))),
            }
        }
    }

    /// [`submit_adaptive_outcomes`](Client::submit_adaptive_outcomes)
    /// without a deadline.
    pub fn submit_adaptive_streaming(
        &mut self,
        adaptive: &AdaptiveSweep,
        on_point: impl FnMut(usize, SweepPoint),
    ) -> io::Result<AdaptiveSummary> {
        self.submit_adaptive_outcomes(adaptive, None, on_point)
    }

    /// Submits an adaptive sweep and collects the sampled points into a
    /// (sparse) result set in dense grid order — every point
    /// byte-identical to the same point of a dense run — plus the
    /// adaptive summary.
    pub fn submit_adaptive(
        &mut self,
        adaptive: &AdaptiveSweep,
    ) -> io::Result<(SweepResults, AdaptiveSummary)> {
        let mut indexed: Vec<(usize, SweepPoint)> = Vec::new();
        let summary =
            self.submit_adaptive_streaming(adaptive, |index, point| indexed.push((index, point)))?;
        indexed.sort_by_key(|&(index, _)| index);
        let points = indexed.into_iter().map(|(_, point)| point).collect();
        Ok((SweepResults { points }, summary))
    }

    /// Asks the server to shut down (acknowledged with a `bye`).
    pub fn shutdown(&mut self) -> io::Result<()> {
        self.send(&Request::Shutdown)?;
        match self.receive()? {
            Response::Bye => Ok(()),
            other => Err(bad_data(format!("expected bye, got {other:?}"))),
        }
    }
}
