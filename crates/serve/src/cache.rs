//! The content-addressed result store: an in-memory LRU tier over an
//! optional on-disk tier.
//!
//! Both tiers map a [`PointKey`] to the full [`SimResult`] of that
//! simulation. The memory tier is bounded (LRU eviction); the disk tier
//! is an append-only JSON-lines file headed by an engine-version stamp —
//! opening a file written by a different
//! [`ENGINE_VERSION`] discards it wholesale,
//! so stale results can never be served after the simulators change
//! observable behaviour.
//!
//! Append-only files accumulate dead lines: a key appended twice (say by
//! a writer that crashed before it could index its own append, or by two
//! processes sharing the directory) leaves its older line superseded, and
//! a torn trailing write leaves an unparsable row. Later appearances of a
//! key win at load, matching append order. When the dead lines loaded
//! past exceed a quarter of the live entries, opening the cache compacts:
//! the file is rewritten — header plus one line per live key — through an
//! atomic rename, so a crash mid-compaction leaves the old file intact.

use crate::key::PointKey;
use dva_engine::ENGINE_VERSION;
use dva_json::Json;
use dva_sim_api::SimResult;
use dva_testutil::failpoint;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

/// How big the in-memory tier may grow before least-recently-used
/// results are dropped (they survive on disk when a disk tier exists).
pub const DEFAULT_MEMORY_CAPACITY: usize = 4096;

/// A two-tier result store. See the module docs.
pub struct ResultCache {
    /// Memory tier: key → (result, last-use stamp).
    memory: HashMap<PointKey, (SimResult, u64)>,
    /// Monotonic use counter backing the LRU order.
    clock: u64,
    capacity: usize,
    disk: Option<DiskTier>,
}

struct DiskTier {
    /// Everything the file holds, loaded at open. Unbounded: the disk is
    /// the persistent tier, so it never evicts.
    entries: HashMap<PointKey, SimResult>,
    /// `None` once a write has failed: the tier is demoted to read-only
    /// and the cache keeps serving from memory plus what was loaded.
    writer: Option<BufWriter<File>>,
    path: PathBuf,
    /// Write failures absorbed so far (the first one demotes the tier).
    errors: usize,
}

impl ResultCache {
    /// A memory-only cache holding at most `capacity` results.
    pub fn in_memory(capacity: usize) -> ResultCache {
        ResultCache {
            memory: HashMap::new(),
            clock: 0,
            capacity: capacity.max(1),
            disk: None,
        }
    }

    /// A cache backed by `dir/results.jsonl`, created (with the version
    /// header) if absent, loaded if present, and discarded — truncated —
    /// if it was written by a different engine version or is corrupt.
    pub fn persistent(dir: &Path, capacity: usize) -> io::Result<ResultCache> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join("results.jsonl");
        // An unreadable file counts as stale.
        let loaded = load_entries(&path).unwrap_or_default();
        let (entries, fresh) = match loaded {
            Some((entries, dead)) => {
                if needs_compaction(entries.len(), dead) {
                    compact(&path, &entries)?;
                }
                (entries, false)
            }
            None => (HashMap::new(), true),
        };
        let mut options = OpenOptions::new();
        options.create(true);
        if fresh {
            options.write(true).truncate(true);
        } else {
            options.append(true);
        }
        let mut writer = BufWriter::new(options.open(&path)?);
        if fresh {
            let header = Json::obj([("engine_version", Json::from(ENGINE_VERSION))]);
            writeln!(writer, "{}", header.render())?;
            writer.flush()?;
        }
        Ok(ResultCache {
            memory: HashMap::new(),
            clock: 0,
            capacity: capacity.max(1),
            disk: Some(DiskTier {
                entries,
                writer: Some(writer),
                path,
                errors: 0,
            }),
        })
    }

    /// The file backing the disk tier, if there is one.
    pub fn disk_path(&self) -> Option<&Path> {
        self.disk.as_ref().map(|d| d.path.as_path())
    }

    /// Results currently resident in the memory tier.
    pub fn memory_len(&self) -> usize {
        self.memory.len()
    }

    /// Results persisted in the disk tier.
    pub fn disk_len(&self) -> usize {
        self.disk.as_ref().map_or(0, |d| d.entries.len())
    }

    /// Disk-tier write failures absorbed so far. The first failure
    /// demotes the tier to read-only (see [`ResultCache::store`]); the
    /// count keeps growing if callers keep storing.
    pub fn disk_errors(&self) -> usize {
        self.disk.as_ref().map_or(0, |d| d.errors)
    }

    /// Whether the disk tier has been demoted to read-only after a
    /// write failure. Memory-only caches report `false`.
    pub fn disk_demoted(&self) -> bool {
        self.disk
            .as_ref()
            .is_some_and(|d| d.writer.is_none() && d.errors > 0)
    }

    /// Looks a result up, refreshing its LRU position (a disk hit is
    /// promoted into the memory tier).
    pub fn get(&mut self, key: &PointKey) -> Option<SimResult> {
        self.clock += 1;
        if let Some((result, stamp)) = self.memory.get_mut(key) {
            *stamp = self.clock;
            return Some(result.clone());
        }
        let promoted = self.disk.as_ref()?.entries.get(key)?.clone();
        self.insert_memory(key.clone(), promoted.clone());
        Some(promoted)
    }

    /// Stores a result in both tiers. A disk write failure never fails
    /// the store: the memory tier is already updated, the failure is
    /// counted and logged once, and the disk tier demotes itself to
    /// read-only — previously loaded entries stay servable, new results
    /// live in memory only, and the server keeps serving.
    pub fn store(&mut self, key: PointKey, result: SimResult) {
        self.clock += 1;
        self.insert_memory(key.clone(), result.clone());
        let Some(disk) = self.disk.as_mut() else {
            return;
        };
        if disk.entries.contains_key(&key) {
            return;
        }
        let Some(writer) = disk.writer.as_mut() else {
            return; // demoted: memory-only from here on
        };
        let appended =
            failpoint::hit("serve.cache.write", || key.as_str().to_string()).and_then(|()| {
                let line = Json::obj([
                    ("key", Json::from(key.as_str())),
                    ("result", result.to_json()),
                ]);
                writeln!(writer, "{}", line.render())?;
                writer.flush()
            });
        match appended {
            Ok(()) => {
                disk.entries.insert(key, result);
            }
            Err(e) => {
                disk.errors += 1;
                disk.writer = None;
                eprintln!(
                    "dva-serve: disk cache write to {} failed ({e}); \
                     demoting cache to memory-only",
                    disk.path.display()
                );
            }
        }
    }

    fn insert_memory(&mut self, key: PointKey, result: SimResult) {
        self.memory.insert(key, (result, self.clock));
        while self.memory.len() > self.capacity {
            // O(n) eviction scan: capacities are small (thousands) and
            // eviction is off the simulation fast path.
            let oldest = self
                .memory
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(key, _)| key.clone())
                .expect("non-empty map over capacity");
            self.memory.remove(&oldest);
        }
    }
}

/// Whether `dead` superseded-or-unparsable lines justify rewriting a file
/// holding `live` usable entries. A quarter of the live count keeps the
/// rewrite cost proportional to the useful content it preserves.
fn needs_compaction(live: usize, dead: usize) -> bool {
    dead * 4 > live.max(1)
}

/// Rewrites the disk tier as header + one line per live entry, in key
/// order, swapped into place with an atomic rename.
fn compact(path: &Path, entries: &HashMap<PointKey, SimResult>) -> io::Result<()> {
    let tmp = path.with_extension("jsonl.tmp");
    {
        let mut writer = BufWriter::new(File::create(&tmp)?);
        let header = Json::obj([("engine_version", Json::from(ENGINE_VERSION))]);
        writeln!(writer, "{}", header.render())?;
        let mut keys: Vec<&PointKey> = entries.keys().collect();
        keys.sort_by_key(|key| key.as_str());
        for key in keys {
            let line = Json::obj([
                ("key", Json::from(key.as_str())),
                ("result", entries[key].to_json()),
            ]);
            writeln!(writer, "{}", line.render())?;
        }
        writer.flush()?;
    }
    std::fs::rename(&tmp, path)
}

/// Reads the disk tier. `Ok(None)` means "stale or absent — start over";
/// `Err` is a real I/O failure on an existing file. The second element of
/// a loaded pair counts the dead lines skipped over: rows a later append
/// superseded, plus rows that failed to parse.
#[allow(clippy::type_complexity)]
fn load_entries(path: &Path) -> io::Result<Option<(HashMap<PointKey, SimResult>, usize)>> {
    let file = match File::open(path) {
        Ok(file) => file,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let mut lines = BufReader::new(file).lines();
    let Some(header) = lines.next() else {
        return Ok(None); // empty file: treat as absent
    };
    let stale = || Ok(None);
    let Ok(header) = Json::parse(&header?) else {
        return stale();
    };
    let version = header
        .field("engine_version")
        .ok()
        .and_then(|v| v.as_u64().ok());
    if version != Some(u64::from(ENGINE_VERSION)) {
        return stale();
    }
    let mut entries = HashMap::new();
    let mut dead = 0usize;
    for line in lines {
        let line = line?;
        if line.trim().is_empty() {
            continue; // tolerate a torn trailing write
        }
        let entry = Json::parse(&line).ok().and_then(|parsed| {
            let key = parsed.field("key").ok()?.as_str().ok()?.to_string();
            let result = SimResult::from_json(parsed.field("result").ok()?).ok()?;
            Some((PointKey::from_string(key), result))
        });
        match entry {
            Some((key, result)) => {
                if entries.insert(key, result).is_some() {
                    dead += 1; // superseded an earlier append of this key
                }
            }
            None => dead += 1,
        }
    }
    Ok(Some((entries, dead)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::PointKey;
    use dva_sim_api::{Machine, Sweep};
    use dva_workloads::{Benchmark, Scale};

    fn keyed_points(n: usize) -> Vec<(PointKey, SimResult)> {
        let sweep = Sweep::new()
            .machines([Machine::reference(1), Machine::dva(1)])
            .benchmark(Benchmark::Trfd)
            .latencies((1..=n as u64 / 2 + 1).collect::<Vec<_>>())
            .scale(Scale::Quick)
            .threads(1);
        let grid = sweep.grid();
        let results = sweep.run();
        grid.iter()
            .zip(results.points)
            .take(n)
            .map(|(spec, point)| (PointKey::of(spec, true).unwrap(), point.result))
            .collect()
    }

    #[test]
    fn lru_evicts_the_least_recently_used_result() {
        let points = keyed_points(3);
        let mut cache = ResultCache::in_memory(2);
        cache.store(points[0].0.clone(), points[0].1.clone());
        cache.store(points[1].0.clone(), points[1].1.clone());
        // Touch the older entry so the *other* one becomes LRU.
        assert!(cache.get(&points[0].0).is_some());
        cache.store(points[2].0.clone(), points[2].1.clone());
        assert_eq!(cache.memory_len(), 2);
        assert!(cache.get(&points[0].0).is_some(), "recently used: kept");
        assert!(
            cache.get(&points[1].0).is_none(),
            "least recently used: evicted"
        );
        assert!(cache.get(&points[2].0).is_some(), "newest: kept");
    }

    #[test]
    fn disk_tier_survives_reopen_with_byte_identical_results() {
        let dir = std::env::temp_dir().join(format!("dva-serve-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let points = keyed_points(4);
        {
            let mut cache = ResultCache::persistent(&dir, 64).unwrap();
            for (key, result) in &points {
                cache.store(key.clone(), result.clone());
            }
            assert_eq!(cache.disk_len(), points.len());
        }
        // A fresh cache over the same directory serves every result,
        // byte-identically, without re-simulating anything.
        let mut cache = ResultCache::persistent(&dir, 64).unwrap();
        assert_eq!(cache.memory_len(), 0, "memory tier starts cold");
        assert_eq!(cache.disk_len(), points.len());
        for (key, result) in &points {
            let cached = cache.get(key).expect("persisted");
            assert_eq!(&cached, result);
            assert_eq!(
                format!("{cached:?}"),
                format!("{result:?}"),
                "restart must preserve results byte for byte"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_rewrites_duplicate_keys_then_survives_restart() {
        let dir = std::env::temp_dir().join(format!("dva-serve-compact-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let points = keyed_points(4);
        {
            let mut cache = ResultCache::persistent(&dir, 64).unwrap();
            for (key, result) in &points {
                cache.store(key.clone(), result.clone());
            }
        }
        // Simulate a writer that lost its in-memory index (a crash, or a
        // second process sharing the directory): re-append the first key
        // twice, the last time under a different result.
        let path = dir.join("results.jsonl");
        {
            let mut file = OpenOptions::new().append(true).open(&path).unwrap();
            for result in [&points[0].1, &points[1].1] {
                let line = Json::obj([
                    ("key", Json::from(points[0].0.as_str())),
                    ("result", result.to_json()),
                ]);
                writeln!(file, "{}", line.render()).unwrap();
            }
        }
        let lines = |p: &Path| std::fs::read_to_string(p).unwrap().lines().count();
        assert_eq!(lines(&path), 1 + points.len() + 2, "bloated before reopen");

        // Reopening sees two dead lines against four live entries — past
        // the quarter threshold — and rewrites the file.
        {
            let mut cache = ResultCache::persistent(&dir, 64).unwrap();
            assert_eq!(cache.disk_len(), points.len());
            assert_eq!(lines(&path), 1 + points.len(), "rewritten on load");
            let served = cache.get(&points[0].0).expect("still present");
            assert_eq!(served, points[1].1, "the latest append of a key wins");
        }
        // A second restart serves the compacted file byte-identically and
        // leaves it alone: no dead lines remain to reclaim.
        let mut cache = ResultCache::persistent(&dir, 64).unwrap();
        assert_eq!(lines(&path), 1 + points.len(), "already compact: untouched");
        let reread = std::fs::read_to_string(&path).unwrap();
        assert!(reread.starts_with(&format!("{{\"engine_version\":{ENGINE_VERSION}}}")));
        for (key, result) in points.iter().skip(1) {
            assert_eq!(&cache.get(key).expect("persisted"), result);
        }
        assert_eq!(cache.get(&points[0].0).unwrap(), points[1].1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn a_failed_disk_write_demotes_the_cache_to_memory_only() {
        use dva_testutil::failpoint::{self, FailAction, Failpoint};
        let dir = std::env::temp_dir().join(format!("dva-serve-demote-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // Latencies no other test in this binary uses, so the filter
        // below can never select a concurrent test's store.
        let sweep = Sweep::new()
            .machines([Machine::reference(97), Machine::dva(97)])
            .benchmark(Benchmark::Trfd)
            .latencies([97])
            .scale(Scale::Quick)
            .threads(1);
        let grid = sweep.grid();
        let results = sweep.run();
        let points: Vec<(PointKey, SimResult)> = grid
            .iter()
            .zip(results.points)
            .map(|(spec, point)| (PointKey::of(spec, true).unwrap(), point.result))
            .collect();

        let mut cache = ResultCache::persistent(&dir, 64).unwrap();
        cache.store(points[0].0.clone(), points[0].1.clone());
        failpoint::arm(
            "serve.cache.write",
            Failpoint::new(FailAction::IoError).filter(points[1].0.as_str()),
        );
        cache.store(points[1].0.clone(), points[1].1.clone());
        failpoint::disarm("serve.cache.write");

        // The failed write demoted the tier: the store itself succeeded
        // (memory has the result), earlier disk entries stay servable,
        // and the failure is counted.
        assert_eq!(cache.disk_errors(), 1);
        assert!(cache.disk_demoted());
        assert_eq!(cache.disk_len(), 1, "failed write not indexed as disk");
        assert!(cache.get(&points[1].0).is_some(), "served from memory");
        assert!(cache.get(&points[0].0).is_some(), "disk entry still live");
        // Later stores silently stay memory-only — no error spiral.
        cache.store(points[1].0.clone(), points[1].1.clone());
        assert_eq!(cache.disk_errors(), 1);
        drop(cache);

        // On disk only the pre-demotion entry survives the restart.
        let mut reopened = ResultCache::persistent(&dir, 64).unwrap();
        assert!(!reopened.disk_demoted(), "a reopen re-promotes the tier");
        assert_eq!(reopened.disk_len(), 1);
        assert!(reopened.get(&points[0].0).is_some());
        assert!(reopened.get(&points[1].0).is_none(), "was never persisted");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn version_mismatch_discards_the_disk_tier() {
        let dir = std::env::temp_dir().join(format!("dva-serve-stale-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let points = keyed_points(1);
        {
            let mut cache = ResultCache::persistent(&dir, 64).unwrap();
            cache.store(points[0].0.clone(), points[0].1.clone());
        }
        // Rewrite the header as if an older engine had produced the file.
        let path = dir.join("results.jsonl");
        let body = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<&str> = body.lines().collect();
        let stale_header = format!("{{\"engine_version\":{}}}", ENGINE_VERSION - 1);
        lines[0] = &stale_header;
        std::fs::write(&path, lines.join("\n")).unwrap();

        let mut cache = ResultCache::persistent(&dir, 64).unwrap();
        assert_eq!(cache.disk_len(), 0, "stale file discarded");
        assert!(cache.get(&points[0].0).is_none());
        // And the file was restarted with the current version.
        let reread = std::fs::read_to_string(&path).unwrap();
        assert!(reread.starts_with(&format!("{{\"engine_version\":{ENGINE_VERSION}}}")));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
