//! The `dva-serve` wire protocol: newline-delimited JSON, symmetric over
//! stdin/stdout and Unix sockets.
//!
//! Requests (one object per line):
//!
//! | request | response |
//! |---|---|
//! | `{"type":"ping"}` | `{"type":"pong","engine_version":N}` |
//! | `{"type":"sweep","spec":…}` | a `point` line per grid point, then one `summary` |
//! | `{"type":"adaptive","spec":…}` | a `point` line per **sampled** point, then one `adaptive_summary` |
//! | `{"type":"shutdown"}` | `{"type":"bye"}`, then the server exits |
//!
//! Responses:
//!
//! - `{"type":"point","index":N,"point":…}` — one completed grid point,
//!   streamed in deterministic grid order as it becomes available. For
//!   an adaptive job, `index` is the point's **dense grid index** (the
//!   index the full-axis sweep assigns it), and points stream in
//!   refinement-round order.
//! - `{"type":"summary","total":T,"cache_hits":H,"simulated":S}` — job
//!   complete.
//! - `{"type":"adaptive_summary","dense":D,"sampled":N,…}` — adaptive
//!   job complete: the sampled / skipped-as-interpolated /
//!   skipped-as-dominated split plus the cache accounting.
//! - `{"type":"error","message":"…"}` — the request failed; the
//!   connection stays usable.

use crate::exec::{AdaptiveSummary, JobSummary};
use dva_json::{Json, JsonError};
use dva_sim_api::{AdaptiveSweep, Sweep, SweepPoint};

/// A parsed client request.
#[derive(Debug)]
pub enum Request {
    /// Liveness / version probe.
    Ping,
    /// Run a sweep job.
    Sweep(Box<Sweep>),
    /// Run an adaptive sweep job.
    Adaptive(Box<AdaptiveSweep>),
    /// Stop the server after answering.
    Shutdown,
}

impl Request {
    /// Parses one request line.
    pub fn parse(line: &str) -> Result<Request, JsonError> {
        let json = Json::parse(line)?;
        match json.field("type")?.as_str()? {
            "ping" => Ok(Request::Ping),
            "sweep" => Ok(Request::Sweep(Box::new(Sweep::from_json(
                json.field("spec")?,
            )?))),
            "adaptive" => Ok(Request::Adaptive(Box::new(AdaptiveSweep::from_json(
                json.field("spec")?,
            )?))),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(JsonError(format!("unknown request type `{other}`"))),
        }
    }

    /// Renders this request as its wire line (no trailing newline).
    ///
    /// # Errors
    ///
    /// Fails only for sweeps that cannot be serialized (custom machines
    /// or custom programs).
    pub fn render(&self) -> Result<String, JsonError> {
        Ok(match self {
            Request::Ping => Json::obj([("type", Json::from("ping"))]).render(),
            Request::Sweep(sweep) => {
                Json::obj([("type", Json::from("sweep")), ("spec", sweep.to_json()?)]).render()
            }
            Request::Adaptive(adaptive) => Json::obj([
                ("type", Json::from("adaptive")),
                ("spec", adaptive.to_json()?),
            ])
            .render(),
            Request::Shutdown => Json::obj([("type", Json::from("shutdown"))]).render(),
        })
    }
}

/// A server response line.
#[derive(Debug, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Ping`]: the server's engine version.
    Pong {
        /// The server's `dva_engine::ENGINE_VERSION`.
        engine_version: u32,
    },
    /// One completed grid point.
    Point {
        /// The point's position in the sweep's grid order.
        index: usize,
        /// The measurement.
        point: Box<SweepPoint>,
    },
    /// A job finished.
    Summary(JobSummary),
    /// An adaptive job finished.
    AdaptiveSummary(AdaptiveSummary),
    /// A request failed.
    Error {
        /// Human-readable cause.
        message: String,
    },
    /// Answer to [`Request::Shutdown`].
    Bye,
}

impl Response {
    /// Parses one response line.
    pub fn parse(line: &str) -> Result<Response, JsonError> {
        let json = Json::parse(line)?;
        Ok(match json.field("type")?.as_str()? {
            "pong" => Response::Pong {
                engine_version: u32::try_from(json.field("engine_version")?.as_u64()?)
                    .map_err(|_| JsonError("engine_version out of range".to_string()))?,
            },
            "point" => Response::Point {
                index: json.field("index")?.as_usize()?,
                point: Box::new(SweepPoint::from_json(json.field("point")?)?),
            },
            "summary" => Response::Summary(JobSummary {
                total: json.field("total")?.as_usize()?,
                cache_hits: json.field("cache_hits")?.as_usize()?,
                simulated: json.field("simulated")?.as_usize()?,
            }),
            "adaptive_summary" => Response::AdaptiveSummary(AdaptiveSummary {
                dense: json.field("dense")?.as_usize()?,
                sampled: json.field("sampled")?.as_usize()?,
                cache_hits: json.field("cache_hits")?.as_usize()?,
                simulated: json.field("simulated")?.as_usize()?,
                interpolated: json.field("interpolated")?.as_usize()?,
                dominated: json.field("dominated")?.as_usize()?,
                pruned_curves: json.field("pruned_curves")?.as_usize()?,
                rounds: json.field("rounds")?.as_usize()?,
            }),
            "error" => Response::Error {
                message: json.field("message")?.as_str()?.to_string(),
            },
            "bye" => Response::Bye,
            other => Err(JsonError(format!("unknown response type `{other}`")))?,
        })
    }

    /// Renders this response as its wire line (no trailing newline).
    ///
    /// # Errors
    ///
    /// Fails only for points measured on machines that cannot be
    /// serialized; the server never produces those.
    pub fn render(&self) -> Result<String, JsonError> {
        Ok(match self {
            Response::Pong { engine_version } => Json::obj([
                ("type", Json::from("pong")),
                ("engine_version", Json::from(*engine_version)),
            ])
            .render(),
            Response::Point { index, point } => Json::obj([
                ("type", Json::from("point")),
                ("index", Json::from(*index)),
                ("point", point.to_json()?),
            ])
            .render(),
            Response::Summary(summary) => Json::obj([
                ("type", Json::from("summary")),
                ("total", Json::from(summary.total)),
                ("cache_hits", Json::from(summary.cache_hits)),
                ("simulated", Json::from(summary.simulated)),
            ])
            .render(),
            Response::AdaptiveSummary(summary) => Json::obj([
                ("type", Json::from("adaptive_summary")),
                ("dense", Json::from(summary.dense)),
                ("sampled", Json::from(summary.sampled)),
                ("cache_hits", Json::from(summary.cache_hits)),
                ("simulated", Json::from(summary.simulated)),
                ("interpolated", Json::from(summary.interpolated)),
                ("dominated", Json::from(summary.dominated)),
                ("pruned_curves", Json::from(summary.pruned_curves)),
                ("rounds", Json::from(summary.rounds)),
            ])
            .render(),
            Response::Error { message } => Json::obj([
                ("type", Json::from("error")),
                ("message", Json::from(message.as_str())),
            ])
            .render(),
            Response::Bye => Json::obj([("type", Json::from("bye"))]).render(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dva_engine::ENGINE_VERSION;
    use dva_sim_api::Machine;
    use dva_workloads::{Benchmark, Scale};

    #[test]
    fn requests_round_trip() {
        for request in [
            Request::Ping,
            Request::Shutdown,
            Request::Sweep(Box::new(
                Sweep::new()
                    .machines([Machine::reference(1), Machine::ideal()])
                    .benchmark(Benchmark::Trfd)
                    .latencies([1, 30])
                    .scale(Scale::Quick),
            )),
            Request::Adaptive(Box::new(
                AdaptiveSweep::over(
                    Sweep::new()
                        .machines([Machine::reference(1), Machine::dva(1)])
                        .benchmark(Benchmark::Trfd)
                        .scale(Scale::Quick),
                    1..=64,
                )
                .seeds(5)
                .prune_against("DVA", ["REF"]),
            )),
        ] {
            let line = request.render().unwrap();
            let back = Request::parse(&line).unwrap();
            assert_eq!(back.render().unwrap(), line);
        }
    }

    #[test]
    fn responses_round_trip() {
        let point = Machine::dva(1).simulate(&Benchmark::Trfd.program(Scale::Quick));
        let sweep_point = SweepPoint {
            machine: Machine::dva(1),
            label: "DVA".to_string(),
            benchmark: Some(Benchmark::Trfd),
            program: "TRFD".to_string(),
            latency: 1,
            memory: dva_sim_api::MemoryModelKind::Flat,
            result: point,
        };
        for response in [
            Response::Pong {
                engine_version: ENGINE_VERSION,
            },
            Response::Point {
                index: 7,
                point: Box::new(sweep_point),
            },
            Response::Summary(JobSummary {
                total: 12,
                cache_hits: 5,
                simulated: 7,
            }),
            Response::AdaptiveSummary(AdaptiveSummary {
                dense: 300,
                sampled: 90,
                cache_hits: 20,
                simulated: 70,
                interpolated: 150,
                dominated: 60,
                pruned_curves: 2,
                rounds: 4,
            }),
            Response::Error {
                message: "no such benchmark".to_string(),
            },
            Response::Bye,
        ] {
            let line = response.render().unwrap();
            assert_eq!(Response::parse(&line).unwrap(), response);
        }
    }

    #[test]
    fn malformed_lines_report_errors() {
        assert!(Request::parse("{}").is_err());
        assert!(Request::parse("not json").is_err());
        assert!(Request::parse("{\"type\":\"warp\"}").is_err());
        assert!(Response::parse("{\"type\":\"warp\"}").is_err());
    }
}
