//! The `dva-serve` wire protocol: newline-delimited JSON, symmetric over
//! stdin/stdout and Unix sockets.
//!
//! Requests (one object per line):
//!
//! | request | response |
//! |---|---|
//! | `{"type":"ping"}` | `{"type":"pong","engine_version":N}` |
//! | `{"type":"sweep","spec":…[,"deadline_ms":D]}` | a `point` or `point_error` line per grid point, then one `summary` |
//! | `{"type":"adaptive","spec":…[,"deadline_ms":D]}` | a `point` line per **sampled** point, then one `adaptive_summary` |
//! | `{"type":"shutdown"}` | `{"type":"bye"}`, then the server exits |
//!
//! `deadline_ms`, when present, bounds the job's wall-clock time: once it
//! expires the server stops simulating, drops the job's remaining points,
//! and ends the job with an `error` line (`"job deadline exceeded"`). The
//! connection stays usable.
//!
//! Responses:
//!
//! - `{"type":"point","index":N,"point":…}` — one completed grid point,
//!   streamed in deterministic grid order as it becomes available. For
//!   an adaptive job, `index` is the point's **dense grid index** (the
//!   index the full-axis sweep assigns it), and points stream in
//!   refinement-round order.
//! - `{"type":"point_error","index":N,"kind":"panic"|"deadlock","label":L,
//!   "program":P,"latency":M,"memory":…,"message":"…"}` — grid point N
//!   failed (its simulation panicked or the engine watchdog diagnosed a
//!   deadlock). The frame takes the point's position in the stream;
//!   every other point of the job is still served, byte-identical to a
//!   fault-free run.
//! - `{"type":"summary","total":T,"cache_hits":H,"simulated":S,"errors":E}`
//!   — job complete (`errors` counts the `point_error` frames).
//! - `{"type":"adaptive_summary","dense":D,"sampled":N,…}` — adaptive
//!   job complete: the sampled / skipped-as-interpolated /
//!   skipped-as-dominated split plus the cache accounting.
//! - `{"type":"error","message":"…"}` — the request (or the remainder of
//!   a job) failed; the connection stays usable.

use crate::exec::{AdaptiveSummary, JobSummary};
use dva_json::{FromJson, Json, JsonError, ToJson};
use dva_memory::MemoryModelKind;
use dva_sim_api::{AdaptiveSweep, PointError, PointErrorKind, Sweep, SweepPoint};

/// A parsed client request.
#[derive(Debug)]
pub enum Request {
    /// Liveness / version probe.
    Ping,
    /// Run a sweep job.
    Sweep {
        /// The job.
        spec: Box<Sweep>,
        /// Wall-clock budget for the whole job, if any.
        deadline_ms: Option<u64>,
    },
    /// Run an adaptive sweep job.
    Adaptive {
        /// The job.
        spec: Box<AdaptiveSweep>,
        /// Wall-clock budget for the whole job, if any.
        deadline_ms: Option<u64>,
    },
    /// Stop the server after answering.
    Shutdown,
}

impl Request {
    /// Parses one request line.
    pub fn parse(line: &str) -> Result<Request, JsonError> {
        let json = Json::parse(line)?;
        let deadline_ms = || json.field("deadline_ms").ok().and_then(|v| v.as_u64().ok());
        match json.field("type")?.as_str()? {
            "ping" => Ok(Request::Ping),
            "sweep" => Ok(Request::Sweep {
                spec: Box::new(Sweep::from_json(json.field("spec")?)?),
                deadline_ms: deadline_ms(),
            }),
            "adaptive" => Ok(Request::Adaptive {
                spec: Box::new(AdaptiveSweep::from_json(json.field("spec")?)?),
                deadline_ms: deadline_ms(),
            }),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(JsonError(format!("unknown request type `{other}`"))),
        }
    }

    /// Renders this request as its wire line (no trailing newline).
    /// `deadline_ms` is rendered only when set, so deadline-free lines
    /// are byte-identical to the previous protocol revision.
    ///
    /// # Errors
    ///
    /// Fails only for sweeps that cannot be serialized (custom machines
    /// or custom programs).
    pub fn render(&self) -> Result<String, JsonError> {
        let with_deadline = |mut fields: Vec<(&'static str, Json)>, deadline: &Option<u64>| {
            if let Some(ms) = deadline {
                fields.push(("deadline_ms", Json::from(*ms)));
            }
            Json::obj(fields).render()
        };
        Ok(match self {
            Request::Ping => Json::obj([("type", Json::from("ping"))]).render(),
            Request::Sweep { spec, deadline_ms } => with_deadline(
                vec![("type", Json::from("sweep")), ("spec", spec.to_json()?)],
                deadline_ms,
            ),
            Request::Adaptive { spec, deadline_ms } => with_deadline(
                vec![("type", Json::from("adaptive")), ("spec", spec.to_json()?)],
                deadline_ms,
            ),
            Request::Shutdown => Json::obj([("type", Json::from("shutdown"))]).render(),
        })
    }
}

/// A server response line.
#[derive(Debug, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Ping`]: the server's engine version.
    Pong {
        /// The server's `dva_engine::ENGINE_VERSION`.
        engine_version: u32,
    },
    /// One completed grid point.
    Point {
        /// The point's position in the sweep's grid order.
        index: usize,
        /// The measurement.
        point: Box<SweepPoint>,
    },
    /// One failed grid point: its simulation panicked or deadlocked.
    /// Takes the point's position in the stream; the rest of the job
    /// still runs.
    PointError(PointError),
    /// A job finished.
    Summary(JobSummary),
    /// An adaptive job finished.
    AdaptiveSummary(AdaptiveSummary),
    /// A request failed.
    Error {
        /// Human-readable cause.
        message: String,
    },
    /// Answer to [`Request::Shutdown`].
    Bye,
}

impl Response {
    /// Parses one response line.
    pub fn parse(line: &str) -> Result<Response, JsonError> {
        let json = Json::parse(line)?;
        Ok(match json.field("type")?.as_str()? {
            "pong" => Response::Pong {
                engine_version: u32::try_from(json.field("engine_version")?.as_u64()?)
                    .map_err(|_| JsonError("engine_version out of range".to_string()))?,
            },
            "point" => Response::Point {
                index: json.field("index")?.as_usize()?,
                point: Box::new(SweepPoint::from_json(json.field("point")?)?),
            },
            "point_error" => {
                let kind = json.field("kind")?.as_str()?.to_string();
                Response::PointError(PointError {
                    index: json.field("index")?.as_usize()?,
                    kind: PointErrorKind::parse(&kind)
                        .ok_or_else(|| JsonError(format!("unknown point_error kind `{kind}`")))?,
                    label: json.field("label")?.as_str()?.to_string(),
                    program: json.field("program")?.as_str()?.to_string(),
                    latency: json.field("latency")?.as_u64()?,
                    memory: MemoryModelKind::from_json(json.field("memory")?)?,
                    message: json.field("message")?.as_str()?.to_string(),
                })
            }
            "summary" => Response::Summary(JobSummary {
                total: json.field("total")?.as_usize()?,
                cache_hits: json.field("cache_hits")?.as_usize()?,
                simulated: json.field("simulated")?.as_usize()?,
                // Absent in lines written before the robustness
                // revision: default to "no point failed".
                errors: json
                    .field("errors")
                    .ok()
                    .and_then(|v| v.as_usize().ok())
                    .unwrap_or(0),
            }),
            "adaptive_summary" => Response::AdaptiveSummary(AdaptiveSummary {
                dense: json.field("dense")?.as_usize()?,
                sampled: json.field("sampled")?.as_usize()?,
                cache_hits: json.field("cache_hits")?.as_usize()?,
                simulated: json.field("simulated")?.as_usize()?,
                interpolated: json.field("interpolated")?.as_usize()?,
                dominated: json.field("dominated")?.as_usize()?,
                pruned_curves: json.field("pruned_curves")?.as_usize()?,
                rounds: json.field("rounds")?.as_usize()?,
            }),
            "error" => Response::Error {
                message: json.field("message")?.as_str()?.to_string(),
            },
            "bye" => Response::Bye,
            other => Err(JsonError(format!("unknown response type `{other}`")))?,
        })
    }

    /// Renders this response as its wire line (no trailing newline).
    ///
    /// # Errors
    ///
    /// Fails only for points measured on machines that cannot be
    /// serialized; the server never produces those.
    pub fn render(&self) -> Result<String, JsonError> {
        Ok(match self {
            Response::Pong { engine_version } => Json::obj([
                ("type", Json::from("pong")),
                ("engine_version", Json::from(*engine_version)),
            ])
            .render(),
            Response::Point { index, point } => Json::obj([
                ("type", Json::from("point")),
                ("index", Json::from(*index)),
                ("point", point.to_json()?),
            ])
            .render(),
            Response::PointError(e) => Json::obj([
                ("type", Json::from("point_error")),
                ("index", Json::from(e.index)),
                ("kind", Json::from(e.kind.as_str())),
                ("label", Json::from(e.label.as_str())),
                ("program", Json::from(e.program.as_str())),
                ("latency", Json::from(e.latency)),
                ("memory", e.memory.to_json()),
                ("message", Json::from(e.message.as_str())),
            ])
            .render(),
            Response::Summary(summary) => Json::obj([
                ("type", Json::from("summary")),
                ("total", Json::from(summary.total)),
                ("cache_hits", Json::from(summary.cache_hits)),
                ("simulated", Json::from(summary.simulated)),
                ("errors", Json::from(summary.errors)),
            ])
            .render(),
            Response::AdaptiveSummary(summary) => Json::obj([
                ("type", Json::from("adaptive_summary")),
                ("dense", Json::from(summary.dense)),
                ("sampled", Json::from(summary.sampled)),
                ("cache_hits", Json::from(summary.cache_hits)),
                ("simulated", Json::from(summary.simulated)),
                ("interpolated", Json::from(summary.interpolated)),
                ("dominated", Json::from(summary.dominated)),
                ("pruned_curves", Json::from(summary.pruned_curves)),
                ("rounds", Json::from(summary.rounds)),
            ])
            .render(),
            Response::Error { message } => Json::obj([
                ("type", Json::from("error")),
                ("message", Json::from(message.as_str())),
            ])
            .render(),
            Response::Bye => Json::obj([("type", Json::from("bye"))]).render(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dva_engine::ENGINE_VERSION;
    use dva_sim_api::Machine;
    use dva_workloads::{Benchmark, Scale};

    #[test]
    fn requests_round_trip() {
        for request in [
            Request::Ping,
            Request::Shutdown,
            Request::Sweep {
                spec: Box::new(
                    Sweep::new()
                        .machines([Machine::reference(1), Machine::ideal()])
                        .benchmark(Benchmark::Trfd)
                        .latencies([1, 30])
                        .scale(Scale::Quick),
                ),
                deadline_ms: None,
            },
            Request::Sweep {
                spec: Box::new(
                    Sweep::new()
                        .machines([Machine::dva(1)])
                        .benchmark(Benchmark::Trfd)
                        .latencies([1])
                        .scale(Scale::Quick),
                ),
                deadline_ms: Some(2_500),
            },
            Request::Adaptive {
                spec: Box::new(
                    AdaptiveSweep::over(
                        Sweep::new()
                            .machines([Machine::reference(1), Machine::dva(1)])
                            .benchmark(Benchmark::Trfd)
                            .scale(Scale::Quick),
                        1..=64,
                    )
                    .seeds(5)
                    .prune_against("DVA", ["REF"]),
                ),
                deadline_ms: Some(60_000),
            },
        ] {
            let line = request.render().unwrap();
            let back = Request::parse(&line).unwrap();
            assert_eq!(back.render().unwrap(), line);
        }
    }

    #[test]
    fn deadline_free_requests_omit_the_field() {
        let request = Request::Sweep {
            spec: Box::new(
                Sweep::new()
                    .machines([Machine::dva(1)])
                    .benchmark(Benchmark::Trfd)
                    .latencies([1])
                    .scale(Scale::Quick),
            ),
            deadline_ms: None,
        };
        let line = request.render().unwrap();
        assert!(!line.contains("deadline_ms"), "{line}");
        match Request::parse(&line).unwrap() {
            Request::Sweep { deadline_ms, .. } => assert_eq!(deadline_ms, None),
            other => panic!("unexpected parse: {other:?}"),
        }
    }

    #[test]
    fn responses_round_trip() {
        let point = Machine::dva(1).simulate(&Benchmark::Trfd.program(Scale::Quick));
        let sweep_point = SweepPoint {
            machine: Machine::dva(1),
            label: "DVA".to_string(),
            benchmark: Some(Benchmark::Trfd),
            program: "TRFD".to_string(),
            latency: 1,
            memory: dva_sim_api::MemoryModelKind::Flat,
            result: point,
        };
        for response in [
            Response::Pong {
                engine_version: ENGINE_VERSION,
            },
            Response::Point {
                index: 7,
                point: Box::new(sweep_point),
            },
            Response::PointError(PointError {
                index: 3,
                kind: PointErrorKind::Panic,
                label: "DVA".to_string(),
                program: "TRFD".to_string(),
                latency: 30,
                memory: dva_sim_api::MemoryModelKind::Banked {
                    banks: 8,
                    bank_busy: 4,
                },
                message: "poisoned point".to_string(),
            }),
            Response::PointError(PointError {
                index: 0,
                kind: PointErrorKind::Deadlock,
                label: "REF".to_string(),
                program: "DYFESM".to_string(),
                latency: 1,
                memory: dva_sim_api::MemoryModelKind::Flat,
                message: "engine deadlock at cycle 12: no progress for 65 ticks; stuck".to_string(),
            }),
            Response::Summary(JobSummary {
                total: 12,
                cache_hits: 5,
                simulated: 7,
                errors: 0,
            }),
            Response::Summary(JobSummary {
                total: 12,
                cache_hits: 5,
                simulated: 6,
                errors: 1,
            }),
            Response::AdaptiveSummary(AdaptiveSummary {
                dense: 300,
                sampled: 90,
                cache_hits: 20,
                simulated: 70,
                interpolated: 150,
                dominated: 60,
                pruned_curves: 2,
                rounds: 4,
            }),
            Response::Error {
                message: "no such benchmark".to_string(),
            },
            Response::Bye,
        ] {
            let line = response.render().unwrap();
            assert_eq!(Response::parse(&line).unwrap(), response);
        }
    }

    #[test]
    fn malformed_lines_report_errors() {
        assert!(Request::parse("{}").is_err());
        assert!(Request::parse("not json").is_err());
        assert!(Request::parse("{\"type\":\"warp\"}").is_err());
        assert!(Response::parse("{\"type\":\"warp\"}").is_err());
    }
}
