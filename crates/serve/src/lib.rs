//! Sweep-as-a-service: a persistent daemon (and client library) that
//! runs [`Sweep`](dva_sim_api::Sweep) jobs behind a content-addressed
//! result cache.
//!
//! The paper's evaluation is a grid of simulations — machines × programs
//! × latencies × memory models — and most experiment iterations re-run
//! grids that overlap heavily with what has already been measured. This
//! crate makes that overlap free:
//!
//! 1. **Identity** ([`key`]): every grid point gets a [`PointKey`] built
//!    from the *content* of its inputs — a 128-bit FNV hash of the
//!    program's instruction stream, the machine's full JSON-rendered
//!    configuration, the fast-forward flag, and the engine version.
//!    Equal keys ⇒ byte-identical results.
//! 2. **Storage** ([`cache`]): a bounded in-memory LRU tier over an
//!    optional append-only JSON-lines disk tier, invalidated wholesale
//!    when [`dva_engine::ENGINE_VERSION`] moves.
//! 3. **Execution** ([`exec`]): [`SweepService::submit`] resolves a job's
//!    grid against the cache and simulates only the misses, streaming
//!    merged results back in deterministic grid order — byte-identical
//!    to `Sweep::run`, with a [`JobSummary`] of hits vs simulations.
//!    [`SweepService::run_adaptive`] drives an
//!    [`AdaptiveSweep`](dva_sim_api::AdaptiveSweep) session the same
//!    way, round by round — and because adaptive samples are ordinary
//!    grid points with ordinary keys, dense and adaptive jobs share
//!    cache entries in both directions.
//! 4. **Transport** ([`proto`], [`server`], [`client`]): newline-delimited
//!    JSON over stdin/stdout or a Unix socket (`dva-serve` binary), with
//!    a typed [`Client`].
//!
//! # Example
//!
//! ```
//! use dva_serve::{ResultCache, SweepService};
//! use dva_sim_api::{Machine, Sweep};
//! use dva_workloads::{Benchmark, Scale};
//!
//! let service = SweepService::new(ResultCache::in_memory(1024));
//! let sweep = Sweep::new()
//!     .machines([Machine::reference(1), Machine::dva(1)])
//!     .benchmark(Benchmark::Trfd)
//!     .latencies([1, 30])
//!     .scale(Scale::Quick);
//!
//! let (first, cost) = service.run(&sweep).unwrap();
//! assert_eq!(cost.simulated, 4);
//! let (second, cost) = service.run(&sweep).unwrap();
//! assert_eq!(cost.cache_hits, 4, "repeat jobs simulate nothing");
//! assert_eq!(first, second);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod error;
pub mod exec;
pub mod key;
pub mod proto;
pub mod server;

pub use cache::{ResultCache, DEFAULT_MEMORY_CAPACITY};
pub use client::{Client, RetryPolicy};
pub use dva_engine::ENGINE_VERSION;
pub use error::ServeError;
pub use exec::{AdaptiveSummary, JobSummary, ServeRun, SweepService};
pub use key::{program_hash, PointKey};
pub use server::{serve_connection, serve_stdio, serve_unix, serve_unix_with, ServeOptions};
