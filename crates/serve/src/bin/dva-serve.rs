//! The sweep daemon: serves the `dva-serve` protocol over stdin/stdout
//! (default) or a Unix socket, with an optional persistent result cache.
//!
//! ```text
//! dva-serve [--stdio | --socket PATH] [--cache-dir DIR] [--mem-cap N]
//!           [--read-timeout-ms MS] [--write-timeout-ms MS]
//! ```

use dva_serve::{ResultCache, ServeOptions, SweepService, DEFAULT_MEMORY_CAPACITY};
use std::path::PathBuf;
use std::process::exit;
use std::sync::Arc;
use std::time::Duration;

struct Options {
    socket: Option<PathBuf>,
    cache_dir: Option<PathBuf>,
    mem_cap: usize,
    /// Socket transport knobs. The binary defaults the write timeout to
    /// 30 s — a daemon should not be held hostage by one stalled client
    /// — while reads stay unbounded for long-lived idle clients.
    serve: ServeOptions,
}

const USAGE: &str = "\
dva-serve: persistent sweep daemon with a content-addressed result cache

USAGE:
    dva-serve [OPTIONS]

OPTIONS:
    --stdio            Serve one session over stdin/stdout (the default)
    --socket PATH      Bind a Unix socket and serve until a client sends
                       a shutdown request
    --cache-dir DIR    Persist results to DIR/results.jsonl (reloaded on
                       restart; discarded when the engine version moves)
    --mem-cap N        In-memory result capacity before LRU eviction
    --read-timeout-ms MS
                       Close a socket connection idle for MS between
                       requests (0 = never; the default)
    --write-timeout-ms MS
                       Abandon a connection whose client stops reading
                       for MS mid-response (0 = never; default 30000)
    --help             Show this help

FAULT INJECTION:
    The DVA_FAILPOINTS environment variable arms deterministic fault
    injection sites (chaos testing); see dva_testutil::failpoint.

PROTOCOL:
    Newline-delimited JSON. Requests: {\"type\":\"ping\"},
    {\"type\":\"sweep\",\"spec\":...,\"deadline_ms\":N}, {\"type\":\"shutdown\"}.
    See the dva-serve crate docs for the full schema.";

/// `0` means "no timeout"; anything else is a bound in milliseconds.
fn parse_timeout(flag: &str, value: Option<String>) -> Result<Option<Duration>, String> {
    let ms: u64 = value
        .ok_or(format!("{flag} needs a number of milliseconds"))?
        .parse()
        .map_err(|_| format!("{flag}: not a number"))?;
    Ok((ms > 0).then(|| Duration::from_millis(ms)))
}

fn parse_options() -> Result<Options, String> {
    let mut options = Options {
        socket: None,
        cache_dir: None,
        mem_cap: DEFAULT_MEMORY_CAPACITY,
        serve: ServeOptions {
            read_timeout: None,
            write_timeout: Some(Duration::from_secs(30)),
        },
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--stdio" => options.socket = None,
            "--socket" => {
                let path = args.next().ok_or("--socket needs a path")?;
                options.socket = Some(PathBuf::from(path));
            }
            "--cache-dir" => {
                let dir = args.next().ok_or("--cache-dir needs a directory")?;
                options.cache_dir = Some(PathBuf::from(dir));
            }
            "--mem-cap" => {
                let n = args.next().ok_or("--mem-cap needs a number")?;
                options.mem_cap = n
                    .parse()
                    .map_err(|_| format!("--mem-cap: not a number: {n}"))?;
            }
            "--read-timeout-ms" => {
                options.serve.read_timeout = parse_timeout("--read-timeout-ms", args.next())?;
            }
            "--write-timeout-ms" => {
                options.serve.write_timeout = parse_timeout("--write-timeout-ms", args.next())?;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                exit(0);
            }
            other => return Err(format!("unknown option {other} (try --help)")),
        }
    }
    Ok(options)
}

fn main() {
    // Chaos runs arm fault injection through the environment; a no-op
    // otherwise.
    dva_testutil::failpoint::arm_from_env();
    let options = match parse_options() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("dva-serve: {message}");
            exit(2);
        }
    };
    let cache = match &options.cache_dir {
        Some(dir) => match ResultCache::persistent(dir, options.mem_cap) {
            Ok(cache) => cache,
            Err(e) => {
                eprintln!("dva-serve: cannot open cache at {}: {e}", dir.display());
                exit(1);
            }
        },
        None => ResultCache::in_memory(options.mem_cap),
    };
    let service = SweepService::new(cache);
    let outcome = match &options.socket {
        Some(path) => dva_serve::serve_unix_with(Arc::new(service), path, options.serve),
        None => dva_serve::serve_stdio(&service),
    };
    if let Err(e) = outcome {
        eprintln!("dva-serve: {e}");
        exit(1);
    }
}
