//! The sweep daemon: serves the `dva-serve` protocol over stdin/stdout
//! (default) or a Unix socket, with an optional persistent result cache.
//!
//! ```text
//! dva-serve [--stdio | --socket PATH] [--cache-dir DIR] [--mem-cap N]
//! ```

use dva_serve::{ResultCache, SweepService, DEFAULT_MEMORY_CAPACITY};
use std::path::PathBuf;
use std::process::exit;
use std::sync::Arc;

struct Options {
    socket: Option<PathBuf>,
    cache_dir: Option<PathBuf>,
    mem_cap: usize,
}

const USAGE: &str = "\
dva-serve: persistent sweep daemon with a content-addressed result cache

USAGE:
    dva-serve [OPTIONS]

OPTIONS:
    --stdio            Serve one session over stdin/stdout (the default)
    --socket PATH      Bind a Unix socket and serve until a client sends
                       a shutdown request
    --cache-dir DIR    Persist results to DIR/results.jsonl (reloaded on
                       restart; discarded when the engine version moves)
    --mem-cap N        In-memory result capacity before LRU eviction
    --help             Show this help

PROTOCOL:
    Newline-delimited JSON. Requests: {\"type\":\"ping\"},
    {\"type\":\"sweep\",\"spec\":...}, {\"type\":\"shutdown\"}.
    See the dva-serve crate docs for the full schema.";

fn parse_options() -> Result<Options, String> {
    let mut options = Options {
        socket: None,
        cache_dir: None,
        mem_cap: DEFAULT_MEMORY_CAPACITY,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--stdio" => options.socket = None,
            "--socket" => {
                let path = args.next().ok_or("--socket needs a path")?;
                options.socket = Some(PathBuf::from(path));
            }
            "--cache-dir" => {
                let dir = args.next().ok_or("--cache-dir needs a directory")?;
                options.cache_dir = Some(PathBuf::from(dir));
            }
            "--mem-cap" => {
                let n = args.next().ok_or("--mem-cap needs a number")?;
                options.mem_cap = n
                    .parse()
                    .map_err(|_| format!("--mem-cap: not a number: {n}"))?;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                exit(0);
            }
            other => return Err(format!("unknown option {other} (try --help)")),
        }
    }
    Ok(options)
}

fn main() {
    let options = match parse_options() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("dva-serve: {message}");
            exit(2);
        }
    };
    let cache = match &options.cache_dir {
        Some(dir) => match ResultCache::persistent(dir, options.mem_cap) {
            Ok(cache) => cache,
            Err(e) => {
                eprintln!("dva-serve: cannot open cache at {}: {e}", dir.display());
                exit(1);
            }
        },
        None => ResultCache::in_memory(options.mem_cap),
    };
    let service = SweepService::new(cache);
    let outcome = match &options.socket {
        Some(path) => dva_serve::serve_unix(Arc::new(service), path),
        None => dva_serve::serve_stdio(&service),
    };
    if let Err(e) = outcome {
        eprintln!("dva-serve: {e}");
        exit(1);
    }
}
