//! A counting global allocator for allocation-regression tests.
//!
//! The engines promise an allocation-free steady-state tick loop; this
//! module gives tests a way to *pin* that promise. A test binary
//! registers the [`CountingAllocator`] as its global allocator and
//! compares [`allocation_count`] deltas around engine runs — if a run
//! twice as long allocates exactly as much as a short one, the per-tick
//! allocation count is provably zero.
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: dva_testutil::CountingAllocator = dva_testutil::CountingAllocator;
//!
//! let before = dva_testutil::allocation_count();
//! run_the_engine();
//! let allocs = dva_testutil::allocation_count() - before;
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// Heap allocations (including reallocations) performed since process
/// start, when [`CountingAllocator`] is installed as the global
/// allocator. Always zero otherwise.
pub fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// A [`System`]-backed allocator that counts every allocation.
///
/// Deallocations are deliberately not tracked: regression tests compare
/// *allocation* deltas, and frees of equal-sized buffers would mask a
/// steady-state churn of alloc/free pairs.
pub struct CountingAllocator;

// The impl forwards verbatim to `System`; the only addition is a relaxed
// counter increment on each allocating entry point.
#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}
