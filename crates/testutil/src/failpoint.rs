//! A tiny deterministic fault-injection facility — no dependencies, no
//! overhead when disarmed.
//!
//! Production code plants named *sites* with [`hit`]; tests (or the
//! `DVA_FAILPOINTS` environment variable, via [`arm_from_env`]) *arm*
//! a site with a [`Failpoint`] describing when and how it fires. A
//! disarmed site costs one relaxed atomic load — nothing else, no lock,
//! no allocation — so the sites are safe to leave in hot serving paths.
//!
//! Triggers are deterministic: a site fires by *hit count* (`skip` the
//! first N matching hits, then fire up to `times` times) and optionally
//! only for hits whose *detail* string contains `filter`. Combined with
//! the repo's byte-identical simulation invariant, this makes every
//! chaos test reproducible: the same failpoint spec fires at the same
//! hit under any thread or lane count when selected by `filter`.
//!
//! The environment grammar, one spec per `;`-separated segment:
//!
//! ```text
//! name=action[@SKIP][xTIMES][:filter]
//! ```
//!
//! where `action` is `panic` or `io_error`, `@SKIP` skips the first
//! SKIP matching hits (default 0), `xTIMES` caps the firings (default
//! unlimited), and `:filter` restricts matching to hits whose detail
//! contains the given substring. Example:
//! `DVA_FAILPOINTS="serve.cache.write=io_error x1;sim.point=panic:trfd|L30"`.

use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

/// What an armed site does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailAction {
    /// Panic with a message naming the site and the hit's detail.
    Panic,
    /// Return an [`io::Error`] (kind `Other`) naming the site.
    IoError,
}

/// An armed fault: the action plus its deterministic trigger.
#[derive(Debug, Clone)]
pub struct Failpoint {
    /// What happens when the trigger condition is met.
    pub action: FailAction,
    /// Matching hits to let through before the first firing.
    pub skip: u64,
    /// Maximum number of firings (`u64::MAX` = unlimited).
    pub times: u64,
    /// Fire only on hits whose detail contains this substring
    /// (`None` = every hit matches).
    pub filter: Option<String>,
}

impl Failpoint {
    /// A failpoint firing on every matching hit, no skip, no filter.
    pub fn new(action: FailAction) -> Failpoint {
        Failpoint {
            action,
            skip: 0,
            times: u64::MAX,
            filter: None,
        }
    }

    /// Skips the first `skip` matching hits before firing.
    #[must_use]
    pub fn skip(mut self, skip: u64) -> Failpoint {
        self.skip = skip;
        self
    }

    /// Caps the firings at `times`.
    #[must_use]
    pub fn times(mut self, times: u64) -> Failpoint {
        self.times = times;
        self
    }

    /// Fires only on hits whose detail contains `filter`.
    #[must_use]
    pub fn filter(mut self, filter: impl Into<String>) -> Failpoint {
        self.filter = Some(filter.into());
        self
    }
}

#[derive(Debug)]
struct SiteState {
    point: Failpoint,
    /// Hits whose detail matched the filter (fired or not).
    matched: u64,
    /// Times the site actually fired.
    fired: u64,
}

/// Whether *any* site is armed — the disarmed fast path reads only this.
static ARMED: AtomicBool = AtomicBool::new(false);

fn registry() -> &'static Mutex<HashMap<String, SiteState>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, SiteState>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Arms `name` with `point`, replacing any previous arming (and
/// resetting its counters).
pub fn arm(name: &str, point: Failpoint) {
    let mut sites = registry().lock().unwrap();
    sites.insert(
        name.to_string(),
        SiteState {
            point,
            matched: 0,
            fired: 0,
        },
    );
    ARMED.store(true, Ordering::Release);
}

/// Disarms `name`; a no-op when it was not armed.
pub fn disarm(name: &str) {
    let mut sites = registry().lock().unwrap();
    sites.remove(name);
    if sites.is_empty() {
        ARMED.store(false, Ordering::Release);
    }
}

/// Disarms every site.
pub fn disarm_all() {
    registry().lock().unwrap().clear();
    ARMED.store(false, Ordering::Release);
}

/// How many times `name` has fired since it was armed.
pub fn fired(name: &str) -> u64 {
    registry()
        .lock()
        .unwrap()
        .get(name)
        .map_or(0, |site| site.fired)
}

/// A fault-injection site. `detail` is computed lazily — only when the
/// site is armed — and feeds both the trigger filter and the panic
/// message, so sites in hot paths stay free when disarmed.
///
/// Returns `Err` when an armed [`FailAction::IoError`] fires; callers
/// thread it into their own I/O result. [`FailAction::Panic`] does not
/// return.
///
/// # Panics
///
/// Panics when an armed [`FailAction::Panic`] fires.
pub fn hit(name: &str, detail: impl FnOnce() -> String) -> io::Result<()> {
    if !ARMED.load(Ordering::Acquire) {
        return Ok(());
    }
    let action = {
        let mut sites = registry().lock().unwrap();
        let Some(site) = sites.get_mut(name) else {
            return Ok(());
        };
        let detail = detail();
        if let Some(filter) = &site.point.filter {
            if !detail.contains(filter.as_str()) {
                return Ok(());
            }
        }
        site.matched += 1;
        if site.matched <= site.point.skip || site.fired >= site.point.times {
            return Ok(());
        }
        site.fired += 1;
        (site.point.action, detail)
    };
    // The lock is released before firing: a panic here must not poison
    // the registry for the rest of the test process.
    match action {
        (FailAction::Panic, detail) => {
            panic!("failpoint {name} fired: {detail}")
        }
        (FailAction::IoError, detail) => Err(io::Error::other(format!(
            "failpoint {name} fired: {detail}"
        ))),
    }
}

/// Arms sites from the `DVA_FAILPOINTS` environment variable (see the
/// module docs for the grammar). Unset or empty means no arming; a
/// malformed spec panics — a chaos run with a mistyped spec silently
/// testing nothing is worse than a loud failure.
///
/// # Panics
///
/// Panics on a malformed spec.
pub fn arm_from_env() {
    let Ok(specs) = std::env::var("DVA_FAILPOINTS") else {
        return;
    };
    for spec in specs.split(';').filter(|s| !s.trim().is_empty()) {
        let (name, point) = parse_spec(spec.trim())
            .unwrap_or_else(|e| panic!("malformed DVA_FAILPOINTS spec {spec:?}: {e}"));
        arm(&name, point);
    }
}

/// Parses one `name=action[@SKIP][xTIMES][:filter]` spec.
fn parse_spec(spec: &str) -> Result<(String, Failpoint), String> {
    let (name, rest) = spec
        .split_once('=')
        .ok_or_else(|| "missing '='".to_string())?;
    if name.is_empty() {
        return Err("empty site name".into());
    }
    let (trigger, filter) = match rest.split_once(':') {
        Some((trigger, filter)) => (trigger, Some(filter.to_string())),
        None => (rest, None),
    };
    let mut action_str = trigger.trim();
    let mut skip = 0;
    let mut times = u64::MAX;
    if let Some((head, times_str)) = action_str.split_once('x') {
        times = times_str
            .trim()
            .parse()
            .map_err(|_| format!("bad times {times_str:?}"))?;
        action_str = head.trim();
    }
    if let Some((head, skip_str)) = action_str.split_once('@') {
        skip = skip_str
            .trim()
            .parse()
            .map_err(|_| format!("bad skip {skip_str:?}"))?;
        action_str = head.trim();
    }
    let action = match action_str {
        "panic" => FailAction::Panic,
        "io_error" => FailAction::IoError,
        other => return Err(format!("unknown action {other:?}")),
    };
    let point = Failpoint {
        action,
        skip,
        times,
        filter,
    };
    Ok((name.to_string(), point))
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global, so each test uses its own site
    // names and the suite stays order-independent.

    #[test]
    fn disarmed_sites_are_free() {
        assert!(hit("fp.test.never-armed", || unreachable!()).is_ok());
    }

    #[test]
    fn io_error_fires_with_skip_and_times() {
        arm(
            "fp.test.io",
            Failpoint::new(FailAction::IoError).skip(2).times(1),
        );
        assert!(hit("fp.test.io", || "a".into()).is_ok());
        assert!(hit("fp.test.io", || "b".into()).is_ok());
        let err = hit("fp.test.io", || "c".into()).unwrap_err();
        assert!(err.to_string().contains("fp.test.io"), "{err}");
        // `times(1)` is exhausted: subsequent hits pass through.
        assert!(hit("fp.test.io", || "d".into()).is_ok());
        assert_eq!(fired("fp.test.io"), 1);
        disarm("fp.test.io");
        assert!(hit("fp.test.io", || "e".into()).is_ok());
    }

    #[test]
    fn filters_select_by_detail() {
        arm(
            "fp.test.filter",
            Failpoint::new(FailAction::IoError).filter("target"),
        );
        assert!(hit("fp.test.filter", || "other hit".into()).is_ok());
        assert!(hit("fp.test.filter", || "the target hit".into()).is_err());
        assert!(hit("fp.test.filter", || "the target again".into()).is_err());
        disarm("fp.test.filter");
    }

    #[test]
    #[should_panic(expected = "failpoint fp.test.panic fired: boom-detail")]
    fn panic_action_panics_with_the_detail() {
        arm("fp.test.panic", Failpoint::new(FailAction::Panic));
        let _ = hit("fp.test.panic", || "boom-detail".into());
    }

    #[test]
    fn env_grammar_round_trips() {
        let (name, p) = parse_spec("serve.cache.write=io_error").unwrap();
        assert_eq!(name, "serve.cache.write");
        assert_eq!(p.action, FailAction::IoError);
        assert_eq!((p.skip, p.times), (0, u64::MAX));
        assert!(p.filter.is_none());

        let (name, p) = parse_spec("sim.point=panic@3x2:trfd|L30").unwrap();
        assert_eq!(name, "sim.point");
        assert_eq!(p.action, FailAction::Panic);
        assert_eq!((p.skip, p.times), (3, 2));
        assert_eq!(p.filter.as_deref(), Some("trfd|L30"));

        assert!(parse_spec("nonsense").is_err());
        assert!(parse_spec("a=explode").is_err());
        assert!(parse_spec("a=panic@notanumber").is_err());
    }
}
