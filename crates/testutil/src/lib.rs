//! Shared builders for hand-written test programs, plus the
//! [`failpoint`] fault-injection facility for chaos tests.
//!
//! Every simulator crate's tests used to carry private copies of the
//! same four-line helpers (`vl`, `vload`, `vadd`, …); they live here
//! once, re-exported through `dva-tests` for the integration suite.
//! Only `dva-isa` is a dependency, so any crate above the ISA — and any
//! crate's dev-dependencies — can use them without a cycle.

// `deny`, not `forbid`: the counting allocator must implement the
// (unsafe) `GlobalAlloc` trait; that one impl carries a local `allow`.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod alloc_counter;
pub mod failpoint;

pub use alloc_counter::{allocation_count, CountingAllocator};

use dva_isa::{Inst, Program, VOperand, VectorAccess, VectorLength, VectorOp, VectorReg};

/// A [`VectorLength`] from a plain integer.
///
/// # Panics
///
/// Panics when `n` is not a valid vector length (tests want the loud
/// failure, not an `Option`).
pub fn vl(n: u32) -> VectorLength {
    VectorLength::new(n).unwrap()
}

/// A unit-stride [`VectorAccess`] of `n` elements at `base`.
pub fn unit(base: u64, n: u32) -> VectorAccess {
    VectorAccess::unit(base, vl(n))
}

/// A unit-stride vector load of `n` elements into `dst`.
pub fn vload(dst: VectorReg, base: u64, n: u32) -> Inst {
    Inst::VLoad {
        dst,
        access: unit(base, n),
    }
}

/// A unit-stride vector store of `n` elements from `src`.
pub fn vstore(src: VectorReg, base: u64, n: u32) -> Inst {
    Inst::VStore {
        src,
        access: unit(base, n),
    }
}

/// A register-register vector add `dst = a + b` over `n` elements.
pub fn vadd(dst: VectorReg, a: VectorReg, b: VectorReg, n: u32) -> Inst {
    Inst::VCompute {
        op: VectorOp::Add,
        dst,
        src1: VOperand::Reg(a),
        src2: Some(VOperand::Reg(b)),
        vl: vl(n),
    }
}

/// A named [`Program`] from a list of instructions.
pub fn program(name: &str, insts: Vec<Inst>) -> Program {
    Program::from_insts(name, insts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_produce_the_expected_instructions() {
        assert!(matches!(
            vload(VectorReg::V0, 0x1000, 64),
            Inst::VLoad { dst: VectorReg::V0, access } if access.vl == vl(64)
        ));
        assert!(matches!(
            vstore(VectorReg::V2, 0x2000, 32),
            Inst::VStore {
                src: VectorReg::V2,
                ..
            }
        ));
        assert!(matches!(
            vadd(VectorReg::V4, VectorReg::V0, VectorReg::V2, 16),
            Inst::VCompute {
                op: VectorOp::Add,
                ..
            }
        ));
        let p = program("t", vec![vload(VectorReg::V0, 0, 8)]);
        assert_eq!(p.len(), 1);
    }
}
