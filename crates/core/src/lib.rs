//! The **decoupled vector architecture** of Espasa & Valero (HPCA 1996) —
//! the paper's primary contribution.
//!
//! The machine splits the sequential instruction stream into three streams
//! executed by independent processors connected through architectural
//! queues (paper, Section 4):
//!
//! * the **fetch processor (FP)** fetches one instruction per cycle,
//!   translates it (inserting hidden `QMOV` pseudo-instructions) and
//!   distributes µops to the other processors;
//! * the **address processor (AP)** performs all memory accesses and
//!   address arithmetic; it slips ahead of the computation and prefetches
//!   exactly the data the program will need;
//! * the **scalar processor (SP)** executes scalar computation at one
//!   instruction per cycle;
//! * the **vector processor (VP)** is the reference machine's vector
//!   engine plus two QMOV units moving data between the queues and the
//!   vector registers.
//!
//! Stores are two-step: addresses wait in the SSAQ/VSAQ until the data
//! reaches the store data queues, then commit in strict program order.
//! Loads are dynamically disambiguated against every queued store by
//! memory-range overlap; hazards force the AP to drain stores. With
//! [`DvaConfig::byp`], a load *identical* to a queued store is satisfied
//! by the **bypass unit** copying VADQ→AVDQ — no memory access, no
//! latency, and the memory port stays free (Section 7).
//!
//! # Examples
//!
//! ```
//! use dva_core::{DvaConfig, DvaSim};
//! use dva_workloads::{Benchmark, Scale};
//!
//! let program = Benchmark::Dyfesm.program(Scale::Quick);
//! let config = DvaConfig::builder().latency(30).build();
//! let result = DvaSim::new(config).run(&program);
//! assert!(result.cycles > 0);
//! assert_eq!(result.states.total_cycles(), result.cycles);
//!
//! // A Section 7 bypass configuration via the same builder:
//! let byp = DvaConfig::builder()
//!     .latency(30)
//!     .avdq(4)
//!     .store_queue(8)
//!     .bypass(true)
//!     .build();
//! let bypassed = DvaSim::new(byp).run(&program);
//! assert!(bypassed.cycles > 0);
//! ```
//!
//! For experiments over several machines, prefer the unified `Machine`
//! and `Sweep` API of the `dva-sim-api` crate, which wraps this
//! simulator, the reference machine and the IDEAL bound behind one front
//! door.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compiled;
mod config;
mod engine;
mod ideal;
mod queues;
mod result;
mod uops;

pub use compiled::CompiledProgram;
pub use config::{DvaConfig, DvaConfigBuilder, QueueConfig};
pub use ideal::{ideal_bound, IdealBound};
pub use queues::{Fifo, Timed};
pub use result::DvaResult;
pub use uops::{
    translate, ApOp, Bundle, DataSlot, SpOp, StoreAlloc, StoreDataSource, StoreSeq, VecAccess, VpOp,
};

use dva_isa::Program;
use std::sync::Arc;

/// The decoupled vector architecture simulator.
///
/// See the [crate docs](crate) for the machine description.
///
/// By default the engine *fast-forwards*: whenever a tick makes no
/// progress it computes the earliest cycle at which anything can change
/// and jumps straight there, bulk-accounting the skipped cycles. The
/// results are byte-identical to naive per-cycle stepping (the
/// `ticks_executed` diagnostic records how many ticks actually ran);
/// [`DvaSim::with_fast_forward`] opts back into naive stepping for
/// verification.
#[derive(Debug, Clone)]
pub struct DvaSim {
    config: DvaConfig,
    fast_forward: bool,
}

impl DvaSim {
    /// Creates a simulator with the given configuration (fast-forward
    /// enabled).
    pub fn new(config: DvaConfig) -> DvaSim {
        DvaSim {
            config,
            fast_forward: true,
        }
    }

    /// Enables or disables the next-event fast-forward (on by default;
    /// turning it off forces naive per-cycle stepping).
    #[must_use]
    pub fn with_fast_forward(mut self, fast_forward: bool) -> DvaSim {
        self.fast_forward = fast_forward;
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> DvaConfig {
        self.config
    }

    /// Runs `program` to completion and reports the measurements.
    ///
    /// Translates the program on the fly; when the same program runs more
    /// than once (latency sweeps, model sweeps), compile it once with
    /// [`CompiledProgram::compile`] and use [`DvaSim::run_compiled`] or a
    /// [`DvaRunner`] instead.
    ///
    /// # Panics
    ///
    /// Panics if the engine detects a deadlock (an internal invariant
    /// violation — valid traces always complete).
    pub fn run(&self, program: &Program) -> DvaResult {
        self.run_compiled(&Arc::new(CompiledProgram::compile(program)))
    }

    /// Runs a pre-translated program to completion — byte-identical to
    /// [`DvaSim::run`] on the source program, without re-translating it.
    ///
    /// # Panics
    ///
    /// Panics if the engine detects a deadlock.
    pub fn run_compiled(&self, compiled: &Arc<CompiledProgram>) -> DvaResult {
        DvaRunner::new().run(self, compiled)
    }
}

/// A reusable decoupled-machine engine: one allocation of the
/// architectural queues, the data-ready ring and the bypass machinery,
/// amortized over any number of runs.
///
/// Each [`run`](DvaRunner::run) resets the engine to its initial state
/// (the *reset contract*: a run on a reused engine is byte-identical to a
/// run on a freshly constructed one — asserted by the engine test suite
/// and the allocation-regression tests) and drives it to completion.
/// Configurations and programs may change freely between runs; the
/// buffers are kept and re-armed. Sweep workers hold one runner per
/// thread, so a thousand-point grid performs a thousand engine *resets*
/// but only one engine *construction* per worker.
///
/// # Examples
///
/// ```
/// use dva_core::{CompiledProgram, DvaConfig, DvaRunner, DvaSim};
/// use dva_workloads::{Benchmark, Scale};
/// use std::sync::Arc;
///
/// let compiled = Arc::new(CompiledProgram::compile(
///     &Benchmark::Trfd.program(Scale::Quick),
/// ));
/// let mut runner = DvaRunner::new();
/// for latency in [1, 30, 100] {
///     let sim = DvaSim::new(DvaConfig::dva(latency));
///     assert_eq!(runner.run(&sim, &compiled), sim.run_compiled(&compiled));
/// }
/// ```
#[derive(Debug, Default)]
pub struct DvaRunner {
    /// The engine pool: one per batch lane, all reused across runs.
    /// Sequential runs use the first engine only.
    engines: Vec<engine::Engine>,
}

impl DvaRunner {
    /// A runner with no engine yet; the first run constructs one.
    pub fn new() -> DvaRunner {
        DvaRunner::default()
    }

    /// Runs `compiled` under `sim`'s configuration and stepping strategy,
    /// reusing this runner's engine allocations.
    ///
    /// # Panics
    ///
    /// Panics if the engine detects a deadlock.
    pub fn run(&mut self, sim: &DvaSim, compiled: &Arc<CompiledProgram>) -> DvaResult {
        self.arm(std::slice::from_ref(sim), compiled);
        engine::drive(&mut self.engines[0], sim.fast_forward)
    }

    /// [`run`](DvaRunner::run), but a detected deadlock comes back as a
    /// [`SimError`](dva_engine::SimError) instead of a panic. The pooled
    /// engine is left mid-flight on error; the next run's reset restores
    /// it, so the runner stays reusable.
    pub fn try_run(
        &mut self,
        sim: &DvaSim,
        compiled: &Arc<CompiledProgram>,
    ) -> Result<DvaResult, dva_engine::SimError> {
        self.arm(std::slice::from_ref(sim), compiled);
        engine::try_drive(&mut self.engines[0], sim.fast_forward)
    }

    /// Runs one compiled program under each of `sims`' configurations in
    /// a single lockstep pass, returning one result per sim, in order —
    /// byte-identical to calling [`run`](DvaRunner::run) for each sim in
    /// sequence.
    ///
    /// The compiled bundle stream (with its issue order, hazard ranges
    /// and store sequence) is the batch's shared read-only structure;
    /// each lane gets its own engine from this runner's pool — its
    /// per-configuration queues, unit busy-times and memory model — and
    /// its own observers. The shared driver advances the lanes in
    /// lockstep, fast-forwarding to the minimum of their wake times and
    /// retiring each lane as it completes.
    ///
    /// # Panics
    ///
    /// Panics if any lane's engine detects a deadlock, or if the sims
    /// disagree on the stepping strategy (a batch runs under one
    /// fast-forward mode; group by it before batching).
    pub fn run_batch(
        &mut self,
        sims: &[DvaSim],
        compiled: &Arc<CompiledProgram>,
    ) -> Vec<DvaResult> {
        let Some(first) = sims.first() else {
            return Vec::new();
        };
        assert!(
            sims.iter()
                .all(|sim| sim.fast_forward == first.fast_forward),
            "a batch runs under one stepping strategy; group sims by fast-forward first"
        );
        self.arm(sims, compiled);
        engine::drive_batch(&mut self.engines[..sims.len()], first.fast_forward)
    }

    /// [`run_batch`](DvaRunner::run_batch), but a detected deadlock on
    /// any lane comes back as a [`SimError`](dva_engine::SimError)
    /// instead of a panic. On error the whole batch is abandoned; the
    /// caller re-runs lanes individually via
    /// [`try_run`](DvaRunner::try_run) to salvage the healthy ones.
    /// Still panics if the sims disagree on the stepping strategy — that
    /// is a caller bug, not a simulation fault.
    pub fn try_run_batch(
        &mut self,
        sims: &[DvaSim],
        compiled: &Arc<CompiledProgram>,
    ) -> Result<Vec<DvaResult>, dva_engine::SimError> {
        let Some(first) = sims.first() else {
            return Ok(Vec::new());
        };
        assert!(
            sims.iter()
                .all(|sim| sim.fast_forward == first.fast_forward),
            "a batch runs under one stepping strategy; group sims by fast-forward first"
        );
        self.arm(sims, compiled);
        engine::try_drive_batch(&mut self.engines[..sims.len()], first.fast_forward)
    }

    /// Readies one pooled engine per sim — reset when it exists, grown
    /// when it does not — all against one shared compiled program.
    fn arm(&mut self, sims: &[DvaSim], compiled: &Arc<CompiledProgram>) {
        for (i, sim) in sims.iter().enumerate() {
            match self.engines.get_mut(i) {
                Some(engine) => engine.reset(sim.config, Arc::clone(compiled)),
                None => self
                    .engines
                    .push(engine::Engine::new(sim.config, Arc::clone(compiled))),
            }
        }
    }
}
