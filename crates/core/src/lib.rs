//! The **decoupled vector architecture** of Espasa & Valero (HPCA 1996) —
//! the paper's primary contribution.
//!
//! The machine splits the sequential instruction stream into three streams
//! executed by independent processors connected through architectural
//! queues (paper, Section 4):
//!
//! * the **fetch processor (FP)** fetches one instruction per cycle,
//!   translates it (inserting hidden `QMOV` pseudo-instructions) and
//!   distributes µops to the other processors;
//! * the **address processor (AP)** performs all memory accesses and
//!   address arithmetic; it slips ahead of the computation and prefetches
//!   exactly the data the program will need;
//! * the **scalar processor (SP)** executes scalar computation at one
//!   instruction per cycle;
//! * the **vector processor (VP)** is the reference machine's vector
//!   engine plus two QMOV units moving data between the queues and the
//!   vector registers.
//!
//! Stores are two-step: addresses wait in the SSAQ/VSAQ until the data
//! reaches the store data queues, then commit in strict program order.
//! Loads are dynamically disambiguated against every queued store by
//! memory-range overlap; hazards force the AP to drain stores. With
//! [`DvaConfig::byp`], a load *identical* to a queued store is satisfied
//! by the **bypass unit** copying VADQ→AVDQ — no memory access, no
//! latency, and the memory port stays free (Section 7).
//!
//! # Examples
//!
//! ```
//! use dva_core::{DvaConfig, DvaSim};
//! use dva_workloads::{Benchmark, Scale};
//!
//! let program = Benchmark::Dyfesm.program(Scale::Quick);
//! let config = DvaConfig::builder().latency(30).build();
//! let result = DvaSim::new(config).run(&program);
//! assert!(result.cycles > 0);
//! assert_eq!(result.states.total_cycles(), result.cycles);
//!
//! // A Section 7 bypass configuration via the same builder:
//! let byp = DvaConfig::builder()
//!     .latency(30)
//!     .avdq(4)
//!     .store_queue(8)
//!     .bypass(true)
//!     .build();
//! let bypassed = DvaSim::new(byp).run(&program);
//! assert!(bypassed.cycles > 0);
//! ```
//!
//! For experiments over several machines, prefer the unified `Machine`
//! and `Sweep` API of the `dva-sim-api` crate, which wraps this
//! simulator, the reference machine and the IDEAL bound behind one front
//! door.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod engine;
mod ideal;
mod queues;
mod result;
mod uops;

pub use config::{DvaConfig, DvaConfigBuilder, QueueConfig};
pub use ideal::{ideal_bound, IdealBound};
pub use queues::{Fifo, Timed};
pub use result::DvaResult;
pub use uops::{translate, ApOp, Bundle, SpOp, StoreDataSource, StoreSeq, VecAccess, VpOp};

use dva_isa::Program;

/// The decoupled vector architecture simulator.
///
/// See the [crate docs](crate) for the machine description.
///
/// By default the engine *fast-forwards*: whenever a tick makes no
/// progress it computes the earliest cycle at which anything can change
/// and jumps straight there, bulk-accounting the skipped cycles. The
/// results are byte-identical to naive per-cycle stepping (the
/// `ticks_executed` diagnostic records how many ticks actually ran);
/// [`DvaSim::with_fast_forward`] opts back into naive stepping for
/// verification.
#[derive(Debug, Clone)]
pub struct DvaSim {
    config: DvaConfig,
    fast_forward: bool,
}

impl DvaSim {
    /// Creates a simulator with the given configuration (fast-forward
    /// enabled).
    pub fn new(config: DvaConfig) -> DvaSim {
        DvaSim {
            config,
            fast_forward: true,
        }
    }

    /// Enables or disables the next-event fast-forward (on by default;
    /// turning it off forces naive per-cycle stepping).
    #[must_use]
    pub fn with_fast_forward(mut self, fast_forward: bool) -> DvaSim {
        self.fast_forward = fast_forward;
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> DvaConfig {
        self.config
    }

    /// Runs `program` to completion and reports the measurements.
    ///
    /// # Panics
    ///
    /// Panics if the engine detects a deadlock (an internal invariant
    /// violation — valid traces always complete).
    pub fn run(&self, program: &Program) -> DvaResult {
        engine::run(engine::Engine::new(self.config, program), self.fast_forward)
    }
}
