//! Translate-once compiled programs.
//!
//! The fetch processor's translation ([`translate`]) is a pure function
//! of the instruction stream: it depends on no machine configuration and
//! no runtime state. A [`CompiledProgram`] runs that translation exactly
//! once and captures the full µop bundle stream plus the precomputed
//! per-instruction metadata the engine needs (operand read lists, hazard
//! ranges, store sequence numbers and data-ready slots), so a sweep over
//! machines × latencies × memory models decodes each program once instead
//! of once per grid point — and the engine's fetch stage becomes a plain
//! indexed copy of `Copy` data, with no per-instruction allocation.

use crate::uops::{translate, Bundle, DataSlot, StoreAlloc};
use dva_isa::Program;

/// A [`Program`] pre-translated into the decoupled machine's µop bundle
/// stream.
///
/// Compiling is configuration-independent: one compiled program serves
/// every [`DvaConfig`](crate::DvaConfig) — any latency, queue shape,
/// memory model or bypass setting — and may be shared freely across
/// threads behind an [`Arc`](std::sync::Arc). Results are byte-identical to translating
/// at fetch time, because the engine replays exactly the bundles
/// [`translate`] produces.
///
/// # Examples
///
/// ```
/// use dva_core::{CompiledProgram, DvaConfig, DvaSim};
/// use dva_workloads::{Benchmark, Scale};
/// use std::sync::Arc;
///
/// let program = Benchmark::Trfd.program(Scale::Quick);
/// let compiled = Arc::new(CompiledProgram::compile(&program));
/// let sim = DvaSim::new(DvaConfig::dva(30));
/// assert_eq!(sim.run_compiled(&compiled), sim.run(&program));
/// ```
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    program: Program,
    bundles: Box<[Bundle]>,
    vector_stores: DataSlot,
}

impl CompiledProgram {
    /// Translates `program` into its bundle stream. The program's
    /// instruction storage is shared, not copied.
    pub fn compile(program: &Program) -> CompiledProgram {
        let mut alloc = StoreAlloc::new();
        let bundles = program
            .insts()
            .iter()
            .map(|inst| translate(inst, &mut alloc))
            .collect();
        CompiledProgram {
            program: program.clone(),
            bundles,
            vector_stores: alloc.vector_stores(),
        }
    }

    /// The source program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The µop bundle stream, one bundle per dynamic instruction.
    pub fn bundles(&self) -> &[Bundle] {
        &self.bundles
    }

    /// Number of dynamic instructions (equals the bundle count).
    pub fn len(&self) -> usize {
        self.bundles.len()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.bundles.is_empty()
    }

    /// Number of vector stores in the program — the number of data-ready
    /// ring slots the engine will cycle through.
    pub fn vector_stores(&self) -> DataSlot {
        self.vector_stores
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dva_isa::VectorReg;
    use dva_testutil::{vadd, vload, vstore};

    #[test]
    fn compile_matches_fetch_time_translation() {
        let program = dva_testutil::program(
            "t",
            vec![
                vload(VectorReg::V0, 0x1000, 16),
                vadd(VectorReg::V2, VectorReg::V0, VectorReg::V0, 16),
                vstore(VectorReg::V2, 0x2000, 16),
            ],
        );
        let compiled = CompiledProgram::compile(&program);
        assert_eq!(compiled.len(), 3);
        assert_eq!(compiled.vector_stores(), 1);
        let mut alloc = StoreAlloc::new();
        for (inst, bundle) in program.insts().iter().zip(compiled.bundles()) {
            assert_eq!(*bundle, translate(inst, &mut alloc));
        }
        // The instruction storage is shared with the source program.
        assert_eq!(
            compiled.program().insts().as_ptr(),
            program.insts().as_ptr()
        );
    }

    #[test]
    fn empty_programs_compile_to_empty_streams() {
        let program = Program::from_insts("empty", Vec::new());
        let compiled = CompiledProgram::compile(&program);
        assert!(compiled.is_empty());
        assert_eq!(compiled.vector_stores(), 0);
    }
}
