//! Decoupled µops and the fetch processor's translation rules.
//!
//! The fetch processor (FP) splits the sequential instruction stream into
//! three streams (paper, Section 4.1): memory accessing instructions go to
//! the address processor, scalar computation to the scalar processor and
//! vector computation to the vector processor. Whenever an instruction
//! needs data produced by another processor, the FP inserts hidden `QMOV`
//! pseudo-instructions that move values through the architectural queues;
//! QMOVs are implementation details, not part of the programmer-visible
//! ISA.

use dva_isa::{
    InlineVec, Inst, MemRange, ReduceOp, ScalarBank, ScalarReg, VectorAccess, VectorLength,
    VectorOp, VectorReg,
};

/// Sequence number identifying a store in global program order (both
/// scalar and vector stores; the machine executes stores strictly in this
/// order).
pub type StoreSeq = u64;

/// Dense index of a *vector* store in program order: the slot its data
/// occupies in the engine's data-ready ring. Scalar stores never carry
/// one — their data travels through the SSDQ, not the VADQ.
pub type DataSlot = u32;

/// Allocates store ordering metadata during translation: the global
/// [`StoreSeq`] every store receives, and the dense [`DataSlot`] assigned
/// to vector stores only.
///
/// One allocator is threaded through the translation of a whole program
/// (see [`CompiledProgram::compile`](crate::CompiledProgram::compile)), so
/// the numbering is a pure function of the instruction stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreAlloc {
    next_seq: StoreSeq,
    next_data: DataSlot,
}

impl StoreAlloc {
    /// A fresh allocator, numbering from zero.
    pub fn new() -> StoreAlloc {
        StoreAlloc::default()
    }

    /// Store sequence numbers handed out so far.
    pub fn stores(&self) -> StoreSeq {
        self.next_seq
    }

    /// Vector-store data slots handed out so far.
    pub fn vector_stores(&self) -> DataSlot {
        self.next_data
    }

    fn take_seq(&mut self) -> StoreSeq {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    fn take_vector(&mut self) -> (StoreSeq, DataSlot) {
        let data = self.next_data;
        self.next_data += 1;
        (self.take_seq(), data)
    }
}

/// Where a scalar store's data comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreDataSource {
    /// From the scalar processor through the scalar store data queue.
    ScalarProcessor,
    /// From an address-processor register (available when the store-address
    /// µop executes).
    AddressProcessor(ScalarReg),
}

/// The memory access shape of a vector reference, for disambiguation.
///
/// The hazard range is computed once at translation time and carried with
/// the µop, so the engine's per-attempt disambiguation scans compare
/// precomputed ranges instead of re-deriving them from base/stride/length
/// on every tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VecAccess {
    vl: VectorLength,
    range: MemRange,
    /// `Some` for strided accesses; `None` for gather/scatter, which
    /// cannot be characterized by a range and conflict with everything
    /// (paper, Section 4.2).
    strided: Option<VectorAccess>,
}

impl VecAccess {
    /// A strided access (hazard range precomputed from the access).
    pub fn strided_access(access: VectorAccess) -> VecAccess {
        VecAccess {
            vl: access.vl,
            range: access.range(),
            strided: Some(access),
        }
    }

    /// A gather/scatter of the given length (conflicts with all memory).
    pub fn indexed(vl: VectorLength) -> VecAccess {
        VecAccess {
            vl,
            range: MemRange::ALL,
            strided: None,
        }
    }

    /// The vector length of the access.
    pub fn vl(&self) -> VectorLength {
        self.vl
    }

    /// The (precomputed) memory range for hazard checks.
    pub fn range(&self) -> MemRange {
        self.range
    }

    /// The strided access, when this is one (bypass requires an exact
    /// strided match).
    pub fn strided(&self) -> Option<&VectorAccess> {
        self.strided.as_ref()
    }

    /// The element stride, when the access has one — what the memory
    /// model's bank-conflict timing keys on (`None` for gather/scatter).
    pub fn stride(&self) -> Option<dva_isa::Stride> {
        self.strided.map(|a| a.stride)
    }
}

/// µops executed by the address processor, in APIQ order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApOp {
    /// Address arithmetic (1 cycle). `pops_sadq` values must be received
    /// from the scalar processor first.
    Alu {
        /// Destination `A` register.
        dst: ScalarReg,
        /// `A`-register sources.
        srcs: [Option<ScalarReg>; 2],
        /// Number of operands arriving through the SP→AP data queue.
        pops_sadq: u8,
    },
    /// QMOV: send an `A` register value to the AP→SP data queue.
    PushAsdq {
        /// Source register.
        src: ScalarReg,
    },
    /// Scalar load (through the scalar cache).
    ScalarLoad {
        /// Destination when it stays in the AP (`A` register).
        dst: Option<ScalarReg>,
        /// Whether the result is forwarded to the scalar processor.
        to_sp: bool,
        /// Byte address.
        addr: u64,
    },
    /// Enqueue a scalar store address into the SSAQ.
    ScalarStoreAddr {
        /// Byte address.
        addr: u64,
        /// Where the data will come from.
        data: StoreDataSource,
        /// Global store order.
        seq: StoreSeq,
    },
    /// Vector load: disambiguate, then occupy the bus for VL cycles.
    VectorLoad {
        /// The access shape.
        access: VecAccess,
    },
    /// Enqueue a vector store address into the VSAQ.
    VectorStoreAddr {
        /// The access shape.
        access: VecAccess,
        /// Global store order.
        seq: StoreSeq,
        /// The store's slot in the engine's data-ready ring.
        data: DataSlot,
    },
    /// Branch resolved on the AP (sends its outcome up the AFBQ).
    Branch {
        /// Condition register.
        cond: ScalarReg,
    },
}

/// µops executed by the scalar processor, in SPIQ order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpOp {
    /// Scalar computation (1 cycle).
    Alu {
        /// Destination `S` register.
        dst: ScalarReg,
        /// `S`-register sources.
        srcs: [Option<ScalarReg>; 2],
        /// Number of operands arriving through the AP→SP data queue.
        pops_asdq: u8,
    },
    /// QMOV: receive a value from the AP→SP data queue into a register.
    PopAsdq {
        /// Destination register.
        dst: ScalarReg,
    },
    /// QMOV: send a register to the SP→AP data queue.
    PushSadq {
        /// Source register.
        src: ScalarReg,
    },
    /// QMOV: send a broadcast operand to the SP→VP data queue.
    PushSvdq {
        /// Source register.
        src: ScalarReg,
    },
    /// QMOV: send store data to the scalar store data queue.
    PushSsdq {
        /// Source register.
        src: ScalarReg,
    },
    /// QMOV: receive a reduction result from the VP→SP data queue.
    PopVsdq {
        /// Destination register.
        dst: ScalarReg,
    },
    /// Branch resolved on the SP (sends its outcome up the SFBQ).
    Branch {
        /// Condition register.
        cond: ScalarReg,
    },
}

/// µops executed by the vector processor, in VPIQ order.
///
/// The register read lists are precomputed at translation time as
/// allocation-free [`InlineVec`]s, so the engine's per-tick issue attempts
/// never build operand vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VpOp {
    /// Vector computation on FU1/FU2. A scalar operand is popped from the
    /// SP→VP data queue at issue.
    Compute {
        /// Opcode.
        op: VectorOp,
        /// Destination register.
        dst: VectorReg,
        /// Vector register sources, in operand order.
        reads: InlineVec<VectorReg, 2>,
        /// Whether a broadcast operand arrives through the SVDQ.
        pops_svdq: bool,
        /// Vector length.
        vl: VectorLength,
    },
    /// Reduction; the scalar result is pushed to the VP→SP data queue.
    Reduce {
        /// Opcode.
        op: ReduceOp,
        /// Source register.
        src: VectorReg,
        /// Vector length.
        vl: VectorLength,
    },
    /// QMOV: move the head AVDQ slot into a vector register (`reads`
    /// holds the index register for gathers, which stream it alongside).
    QmovLoad {
        /// Destination register.
        dst: VectorReg,
        /// Registers streamed while the move runs (the gather index, if
        /// any).
        reads: InlineVec<VectorReg, 1>,
        /// Vector length.
        vl: VectorLength,
    },
    /// QMOV: move a vector register into the VADQ (`reads` additionally
    /// holds the index register for scatters).
    QmovStore {
        /// Registers streamed into the queue: the data source, then the
        /// scatter index, if any.
        reads: InlineVec<VectorReg, 2>,
        /// Vector length.
        vl: VectorLength,
        /// The store this data belongs to, linking the VADQ entry to its
        /// VSAQ address entry and data-ready ring slot.
        data: DataSlot,
    },
}

/// The µop bundle one architectural instruction expands to.
///
/// Bundles are plain `Copy` data — no heap storage — so a compiled
/// program's bundle stream can be replayed by the fetch processor without
/// any per-instruction allocation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Bundle {
    /// µop for the address processor, if any.
    pub ap: Option<ApOp>,
    /// µops for the scalar processor (an instruction can require both a
    /// data push and its own execution).
    pub sp: InlineVec<SpOp, 2>,
    /// µop for the vector processor, if any.
    pub vp: Option<VpOp>,
}

impl Bundle {
    /// Queue slots this bundle needs in (APIQ, SPIQ, VPIQ).
    pub fn slots(&self) -> (usize, usize, usize) {
        (
            usize::from(self.ap.is_some()),
            self.sp.len(),
            usize::from(self.vp.is_some()),
        )
    }
}

impl Default for SpOp {
    /// An arbitrary padding value for inline µop storage (never executed).
    fn default() -> SpOp {
        SpOp::Branch {
            cond: ScalarReg::scalar(0),
        }
    }
}

fn is_a(reg: ScalarReg) -> bool {
    reg.bank() == ScalarBank::Address
}

/// Translates one architectural instruction into its µop bundle,
/// allocating store ordering metadata from `alloc`.
///
/// # Panics
///
/// Panics on a vector computation whose broadcast operand is an `A`
/// register — the workload generator only produces `S`-register broadcast
/// operands, matching the machine's SP→VP queue.
pub fn translate(inst: &Inst, alloc: &mut StoreAlloc) -> Bundle {
    let mut b = Bundle::default();
    match inst {
        Inst::SAlu { dst, src1, src2 } => {
            let srcs = [*src1, *src2];
            if is_a(*dst) {
                // Runs on the AP; S-register operands travel SP→AP.
                let mut pops = 0u8;
                let mut ap_srcs = [None, None];
                for (i, s) in srcs.into_iter().enumerate() {
                    match s {
                        Some(r) if is_a(r) => ap_srcs[i] = Some(r),
                        Some(r) => {
                            b.sp.push(SpOp::PushSadq { src: r });
                            pops += 1;
                        }
                        None => {}
                    }
                }
                b.ap = Some(ApOp::Alu {
                    dst: *dst,
                    srcs: ap_srcs,
                    pops_sadq: pops,
                });
            } else {
                // Runs on the SP; A-register operands travel AP→SP via the
                // AP executing a push (modeled as a zero-destination Alu
                // whose result feeds the ASDQ — see the engine).
                let mut pops = 0u8;
                let mut sp_srcs = [None, None];
                for (i, s) in srcs.into_iter().enumerate() {
                    match s {
                        Some(r) if is_a(r) => {
                            b.ap = Some(ApOp::PushAsdq { src: r });
                            pops += 1;
                        }
                        Some(r) => sp_srcs[i] = Some(r),
                        None => {}
                    }
                }
                b.sp.push(SpOp::Alu {
                    dst: *dst,
                    srcs: sp_srcs,
                    pops_asdq: pops,
                });
            }
        }
        Inst::SLoad { dst, addr } => {
            if is_a(*dst) {
                b.ap = Some(ApOp::ScalarLoad {
                    dst: Some(*dst),
                    to_sp: false,
                    addr: *addr,
                });
            } else {
                b.ap = Some(ApOp::ScalarLoad {
                    dst: None,
                    to_sp: true,
                    addr: *addr,
                });
                b.sp.push(SpOp::PopAsdq { dst: *dst });
            }
        }
        Inst::SStore { src, addr } => {
            let seq = alloc.take_seq();
            if is_a(*src) {
                b.ap = Some(ApOp::ScalarStoreAddr {
                    addr: *addr,
                    data: StoreDataSource::AddressProcessor(*src),
                    seq,
                });
            } else {
                b.sp.push(SpOp::PushSsdq { src: *src });
                b.ap = Some(ApOp::ScalarStoreAddr {
                    addr: *addr,
                    data: StoreDataSource::ScalarProcessor,
                    seq,
                });
            }
        }
        Inst::Branch { cond, .. } => {
            if is_a(*cond) {
                b.ap = Some(ApOp::Branch { cond: *cond });
            } else {
                b.sp.push(SpOp::Branch { cond: *cond });
            }
        }
        Inst::VCompute {
            op,
            dst,
            src1,
            src2,
            vl,
        } => {
            let mut reads: InlineVec<VectorReg, 2> = InlineVec::new();
            let mut pops_svdq = false;
            for operand in [Some(src1), src2.as_ref()].into_iter().flatten() {
                match operand {
                    dva_isa::VOperand::Reg(v) => reads.push(*v),
                    dva_isa::VOperand::Scalar(s) => {
                        assert!(!is_a(*s), "vector broadcast operands must be S registers");
                        b.sp.push(SpOp::PushSvdq { src: *s });
                        pops_svdq = true;
                    }
                }
            }
            b.vp = Some(VpOp::Compute {
                op: *op,
                dst: *dst,
                reads,
                pops_svdq,
                vl: *vl,
            });
        }
        Inst::VReduce { op, dst, src, vl } => {
            b.vp = Some(VpOp::Reduce {
                op: *op,
                src: *src,
                vl: *vl,
            });
            b.sp.push(SpOp::PopVsdq { dst: *dst });
        }
        Inst::VLoad { dst, access } => {
            b.ap = Some(ApOp::VectorLoad {
                access: VecAccess::strided_access(*access),
            });
            b.vp = Some(VpOp::QmovLoad {
                dst: *dst,
                reads: InlineVec::new(),
                vl: access.vl,
            });
        }
        Inst::VStore { src, access } => {
            let (seq, data) = alloc.take_vector();
            b.vp = Some(VpOp::QmovStore {
                reads: [*src].into_iter().collect(),
                vl: access.vl,
                data,
            });
            b.ap = Some(ApOp::VectorStoreAddr {
                access: VecAccess::strided_access(*access),
                seq,
                data,
            });
        }
        Inst::VGather { dst, index, vl, .. } => {
            b.ap = Some(ApOp::VectorLoad {
                access: VecAccess::indexed(*vl),
            });
            b.vp = Some(VpOp::QmovLoad {
                dst: *dst,
                reads: [*index].into_iter().collect(),
                vl: *vl,
            });
        }
        Inst::VScatter { src, index, vl, .. } => {
            let (seq, data) = alloc.take_vector();
            b.vp = Some(VpOp::QmovStore {
                reads: [*src, *index].into_iter().collect(),
                vl: *vl,
                data,
            });
            b.ap = Some(ApOp::VectorStoreAddr {
                access: VecAccess::indexed(*vl),
                seq,
                data,
            });
        }
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use dva_isa::{Stride, VOperand};
    use dva_testutil::vl;

    #[test]
    fn vector_load_splits_into_ap_and_vp_qmov() {
        let mut alloc = StoreAlloc::new();
        let b = translate(
            &Inst::VLoad {
                dst: VectorReg::V3,
                access: VectorAccess::unit(0x1000, vl(64)),
            },
            &mut alloc,
        );
        assert!(matches!(b.ap, Some(ApOp::VectorLoad { .. })));
        let Some(VpOp::QmovLoad {
            dst: VectorReg::V3,
            reads,
            ..
        }) = b.vp
        else {
            panic!("expected QMOV load µop");
        };
        assert!(reads.is_empty(), "non-gather loads stream no index");
        assert!(b.sp.is_empty());
        assert_eq!(
            alloc.stores(),
            0,
            "loads do not allocate store sequence numbers"
        );
    }

    #[test]
    fn stores_allocate_global_sequence_numbers() {
        let mut alloc = StoreAlloc::new();
        let b = translate(
            &Inst::VStore {
                src: VectorReg::V0,
                access: VectorAccess::new(0x0, Stride::UNIT, vl(8)),
            },
            &mut alloc,
        );
        let _ = translate(
            &Inst::SStore {
                src: ScalarReg::scalar(2),
                addr: 0x10,
            },
            &mut alloc,
        );
        assert_eq!(alloc.stores(), 2);
        // Only the vector store consumed a data-ready slot, and its AP and
        // VP µops agree on it.
        assert_eq!(alloc.vector_stores(), 1);
        assert!(
            matches!(
                b.ap,
                Some(ApOp::VectorStoreAddr {
                    seq: 0,
                    data: 0,
                    ..
                })
            ) && matches!(b.vp, Some(VpOp::QmovStore { data: 0, .. }))
        );
    }

    #[test]
    fn scalar_broadcast_inserts_svdq_push() {
        let mut alloc = StoreAlloc::new();
        let b = translate(
            &Inst::VCompute {
                op: VectorOp::Mul,
                dst: VectorReg::V1,
                src1: VOperand::Reg(VectorReg::V0),
                src2: Some(VOperand::Scalar(ScalarReg::scalar(0))),
                vl: vl(32),
            },
            &mut alloc,
        );
        assert_eq!(b.sp.len(), 1);
        assert!(matches!(b.sp[0], SpOp::PushSvdq { .. }));
        let Some(VpOp::Compute {
            pops_svdq: true,
            reads,
            ..
        }) = b.vp
        else {
            panic!("expected compute µop popping the SVDQ");
        };
        assert_eq!(&reads[..], &[VectorReg::V0]);
    }

    #[test]
    fn cross_bank_alu_generates_queue_moves() {
        let mut alloc = StoreAlloc::new();
        // A-register ALU with an S source: SP pushes, AP pops.
        let b = translate(
            &Inst::SAlu {
                dst: ScalarReg::addr(2),
                src1: Some(ScalarReg::scalar(1)),
                src2: None,
            },
            &mut alloc,
        );
        assert!(matches!(b.ap, Some(ApOp::Alu { pops_sadq: 1, .. })));
        assert!(matches!(b.sp[0], SpOp::PushSadq { .. }));
    }

    #[test]
    fn reduction_routes_result_to_sp() {
        let mut alloc = StoreAlloc::new();
        let b = translate(
            &Inst::VReduce {
                op: ReduceOp::Sum,
                dst: ScalarReg::scalar(1),
                src: VectorReg::V2,
                vl: vl(16),
            },
            &mut alloc,
        );
        assert!(matches!(b.vp, Some(VpOp::Reduce { .. })));
        assert!(matches!(b.sp[0], SpOp::PopVsdq { .. }));
    }

    #[test]
    fn gather_conflicts_with_all_memory() {
        let mut alloc = StoreAlloc::new();
        let b = translate(
            &Inst::VGather {
                dst: VectorReg::V0,
                index: VectorReg::V1,
                base: 0x1000,
                vl: vl(8),
            },
            &mut alloc,
        );
        let Some(ApOp::VectorLoad { access }) = b.ap else {
            panic!("expected vector load µop");
        };
        assert_eq!(access.range(), dva_isa::MemRange::ALL);
        assert!(access.strided().is_none());
        // The QMOV streams the index register alongside the move.
        let Some(VpOp::QmovLoad { reads, .. }) = b.vp else {
            panic!("expected QMOV load µop");
        };
        assert_eq!(&reads[..], &[VectorReg::V1]);
    }

    #[test]
    fn scatter_streams_data_then_index() {
        let mut alloc = StoreAlloc::new();
        let b = translate(
            &Inst::VScatter {
                src: VectorReg::V2,
                index: VectorReg::V5,
                base: 0x1000,
                vl: vl(8),
            },
            &mut alloc,
        );
        let Some(VpOp::QmovStore { reads, .. }) = b.vp else {
            panic!("expected QMOV store µop");
        };
        assert_eq!(&reads[..], &[VectorReg::V2, VectorReg::V5]);
    }

    #[test]
    fn strided_access_range_is_precomputed() {
        let access = VectorAccess::new(0x100, Stride::new(2), vl(4));
        let vec = VecAccess::strided_access(access);
        assert_eq!(vec.range(), access.range());
        assert_eq!(vec.stride(), Some(access.stride));
        assert_eq!(vec.vl(), access.vl);
    }

    #[test]
    fn bundle_slot_counts_match_contents() {
        let mut alloc = StoreAlloc::new();
        let b = translate(
            &Inst::SLoad {
                dst: ScalarReg::scalar(3),
                addr: 0x40,
            },
            &mut alloc,
        );
        assert_eq!(b.slots(), (1, 1, 0));
    }
}
