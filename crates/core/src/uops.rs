//! Decoupled µops and the fetch processor's translation rules.
//!
//! The fetch processor (FP) splits the sequential instruction stream into
//! three streams (paper, Section 4.1): memory accessing instructions go to
//! the address processor, scalar computation to the scalar processor and
//! vector computation to the vector processor. Whenever an instruction
//! needs data produced by another processor, the FP inserts hidden `QMOV`
//! pseudo-instructions that move values through the architectural queues;
//! QMOVs are implementation details, not part of the programmer-visible
//! ISA.

use dva_isa::{
    Inst, ReduceOp, ScalarBank, ScalarReg, VectorAccess, VectorLength, VectorOp, VectorReg,
};

/// Sequence number identifying a store in global program order (both
/// scalar and vector stores; the machine executes stores strictly in this
/// order).
pub type StoreSeq = u64;

/// Where a scalar store's data comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreDataSource {
    /// From the scalar processor through the scalar store data queue.
    ScalarProcessor,
    /// From an address-processor register (available when the store-address
    /// µop executes).
    AddressProcessor(ScalarReg),
}

/// The memory access shape of a vector reference, for disambiguation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VecAccess {
    /// Strided access with a well-defined memory range.
    Strided(VectorAccess),
    /// Gather/scatter: cannot be characterized by a range; conflicts with
    /// everything (paper, Section 4.2).
    Indexed {
        /// Vector length of the access.
        vl: VectorLength,
    },
}

impl VecAccess {
    /// The vector length of the access.
    pub fn vl(&self) -> VectorLength {
        match self {
            VecAccess::Strided(a) => a.vl,
            VecAccess::Indexed { vl } => *vl,
        }
    }

    /// The memory range for hazard checks.
    pub fn range(&self) -> dva_isa::MemRange {
        match self {
            VecAccess::Strided(a) => a.range(),
            VecAccess::Indexed { .. } => dva_isa::MemRange::ALL,
        }
    }

    /// The strided access, when this is one (bypass requires an exact
    /// strided match).
    pub fn strided(&self) -> Option<&VectorAccess> {
        match self {
            VecAccess::Strided(a) => Some(a),
            VecAccess::Indexed { .. } => None,
        }
    }

    /// The element stride, when the access has one — what the memory
    /// model's bank-conflict timing keys on (`None` for gather/scatter).
    pub fn stride(&self) -> Option<dva_isa::Stride> {
        self.strided().map(|a| a.stride)
    }
}

/// µops executed by the address processor, in APIQ order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApOp {
    /// Address arithmetic (1 cycle). `pops_sadq` values must be received
    /// from the scalar processor first.
    Alu {
        /// Destination `A` register.
        dst: ScalarReg,
        /// `A`-register sources.
        srcs: [Option<ScalarReg>; 2],
        /// Number of operands arriving through the SP→AP data queue.
        pops_sadq: u8,
    },
    /// QMOV: send an `A` register value to the AP→SP data queue.
    PushAsdq {
        /// Source register.
        src: ScalarReg,
    },
    /// Scalar load (through the scalar cache).
    ScalarLoad {
        /// Destination when it stays in the AP (`A` register).
        dst: Option<ScalarReg>,
        /// Whether the result is forwarded to the scalar processor.
        to_sp: bool,
        /// Byte address.
        addr: u64,
    },
    /// Enqueue a scalar store address into the SSAQ.
    ScalarStoreAddr {
        /// Byte address.
        addr: u64,
        /// Where the data will come from.
        data: StoreDataSource,
        /// Global store order.
        seq: StoreSeq,
    },
    /// Vector load: disambiguate, then occupy the bus for VL cycles.
    VectorLoad {
        /// The access shape.
        access: VecAccess,
    },
    /// Enqueue a vector store address into the VSAQ.
    VectorStoreAddr {
        /// The access shape.
        access: VecAccess,
        /// Global store order.
        seq: StoreSeq,
    },
    /// Branch resolved on the AP (sends its outcome up the AFBQ).
    Branch {
        /// Condition register.
        cond: ScalarReg,
    },
}

/// µops executed by the scalar processor, in SPIQ order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpOp {
    /// Scalar computation (1 cycle).
    Alu {
        /// Destination `S` register.
        dst: ScalarReg,
        /// `S`-register sources.
        srcs: [Option<ScalarReg>; 2],
        /// Number of operands arriving through the AP→SP data queue.
        pops_asdq: u8,
    },
    /// QMOV: receive a value from the AP→SP data queue into a register.
    PopAsdq {
        /// Destination register.
        dst: ScalarReg,
    },
    /// QMOV: send a register to the SP→AP data queue.
    PushSadq {
        /// Source register.
        src: ScalarReg,
    },
    /// QMOV: send a broadcast operand to the SP→VP data queue.
    PushSvdq {
        /// Source register.
        src: ScalarReg,
    },
    /// QMOV: send store data to the scalar store data queue.
    PushSsdq {
        /// Source register.
        src: ScalarReg,
    },
    /// QMOV: receive a reduction result from the VP→SP data queue.
    PopVsdq {
        /// Destination register.
        dst: ScalarReg,
    },
    /// Branch resolved on the SP (sends its outcome up the SFBQ).
    Branch {
        /// Condition register.
        cond: ScalarReg,
    },
}

/// µops executed by the vector processor, in VPIQ order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VpOp {
    /// Vector computation on FU1/FU2. A scalar operand is popped from the
    /// SP→VP data queue at issue.
    Compute {
        /// Opcode.
        op: VectorOp,
        /// Destination register.
        dst: VectorReg,
        /// Vector register sources.
        srcs: [Option<VectorReg>; 2],
        /// Whether a broadcast operand arrives through the SVDQ.
        pops_svdq: bool,
        /// Vector length.
        vl: VectorLength,
    },
    /// Reduction; the scalar result is pushed to the VP→SP data queue.
    Reduce {
        /// Opcode.
        op: ReduceOp,
        /// Source register.
        src: VectorReg,
        /// Vector length.
        vl: VectorLength,
    },
    /// QMOV: move the head AVDQ slot into a vector register (`index` set
    /// for gathers, which also stream the index register).
    QmovLoad {
        /// Destination register.
        dst: VectorReg,
        /// Index register for gathers.
        index: Option<VectorReg>,
        /// Vector length.
        vl: VectorLength,
    },
    /// QMOV: move a vector register into the VADQ (`index` set for
    /// scatters).
    QmovStore {
        /// Source register.
        src: VectorReg,
        /// Index register for scatters.
        index: Option<VectorReg>,
        /// Vector length.
        vl: VectorLength,
        /// The store this data belongs to, linking the VADQ entry to its
        /// VSAQ address entry.
        seq: StoreSeq,
    },
}

/// The µop bundle one architectural instruction expands to.
#[derive(Debug, Clone, Default)]
pub struct Bundle {
    /// µop for the address processor, if any.
    pub ap: Option<ApOp>,
    /// µops for the scalar processor (an instruction can require both a
    /// data push and its own execution).
    pub sp: Vec<SpOp>,
    /// µop for the vector processor, if any.
    pub vp: Option<VpOp>,
}

impl Bundle {
    /// Queue slots this bundle needs in (APIQ, SPIQ, VPIQ).
    pub fn slots(&self) -> (usize, usize, usize) {
        (
            usize::from(self.ap.is_some()),
            self.sp.len(),
            usize::from(self.vp.is_some()),
        )
    }
}

fn is_a(reg: ScalarReg) -> bool {
    reg.bank() == ScalarBank::Address
}

/// Translates one architectural instruction into its µop bundle,
/// allocating store sequence numbers from `next_store_seq`.
///
/// # Panics
///
/// Panics on a vector computation whose broadcast operand is an `A`
/// register — the workload generator only produces `S`-register broadcast
/// operands, matching the machine's SP→VP queue.
pub fn translate(inst: &Inst, next_store_seq: &mut StoreSeq) -> Bundle {
    let mut b = Bundle::default();
    match inst {
        Inst::SAlu { dst, src1, src2 } => {
            let srcs = [*src1, *src2];
            if is_a(*dst) {
                // Runs on the AP; S-register operands travel SP→AP.
                let mut pops = 0u8;
                let mut ap_srcs = [None, None];
                for (i, s) in srcs.into_iter().enumerate() {
                    match s {
                        Some(r) if is_a(r) => ap_srcs[i] = Some(r),
                        Some(r) => {
                            b.sp.push(SpOp::PushSadq { src: r });
                            pops += 1;
                        }
                        None => {}
                    }
                }
                b.ap = Some(ApOp::Alu {
                    dst: *dst,
                    srcs: ap_srcs,
                    pops_sadq: pops,
                });
            } else {
                // Runs on the SP; A-register operands travel AP→SP via the
                // AP executing a push (modeled as a zero-destination Alu
                // whose result feeds the ASDQ — see the engine).
                let mut pops = 0u8;
                let mut sp_srcs = [None, None];
                for (i, s) in srcs.into_iter().enumerate() {
                    match s {
                        Some(r) if is_a(r) => {
                            b.ap = Some(ApOp::PushAsdq { src: r });
                            pops += 1;
                        }
                        Some(r) => sp_srcs[i] = Some(r),
                        None => {}
                    }
                }
                b.sp.push(SpOp::Alu {
                    dst: *dst,
                    srcs: sp_srcs,
                    pops_asdq: pops,
                });
            }
        }
        Inst::SLoad { dst, addr } => {
            if is_a(*dst) {
                b.ap = Some(ApOp::ScalarLoad {
                    dst: Some(*dst),
                    to_sp: false,
                    addr: *addr,
                });
            } else {
                b.ap = Some(ApOp::ScalarLoad {
                    dst: None,
                    to_sp: true,
                    addr: *addr,
                });
                b.sp.push(SpOp::PopAsdq { dst: *dst });
            }
        }
        Inst::SStore { src, addr } => {
            let seq = *next_store_seq;
            *next_store_seq += 1;
            if is_a(*src) {
                b.ap = Some(ApOp::ScalarStoreAddr {
                    addr: *addr,
                    data: StoreDataSource::AddressProcessor(*src),
                    seq,
                });
            } else {
                b.sp.push(SpOp::PushSsdq { src: *src });
                b.ap = Some(ApOp::ScalarStoreAddr {
                    addr: *addr,
                    data: StoreDataSource::ScalarProcessor,
                    seq,
                });
            }
        }
        Inst::Branch { cond, .. } => {
            if is_a(*cond) {
                b.ap = Some(ApOp::Branch { cond: *cond });
            } else {
                b.sp.push(SpOp::Branch { cond: *cond });
            }
        }
        Inst::VCompute {
            op,
            dst,
            src1,
            src2,
            vl,
        } => {
            let mut srcs = [None, None];
            let mut pops_svdq = false;
            for (i, operand) in [Some(src1), src2.as_ref()].into_iter().enumerate() {
                match operand {
                    Some(dva_isa::VOperand::Reg(v)) => srcs[i] = Some(*v),
                    Some(dva_isa::VOperand::Scalar(s)) => {
                        assert!(!is_a(*s), "vector broadcast operands must be S registers");
                        b.sp.push(SpOp::PushSvdq { src: *s });
                        pops_svdq = true;
                    }
                    None => {}
                }
            }
            b.vp = Some(VpOp::Compute {
                op: *op,
                dst: *dst,
                srcs,
                pops_svdq,
                vl: *vl,
            });
        }
        Inst::VReduce { op, dst, src, vl } => {
            b.vp = Some(VpOp::Reduce {
                op: *op,
                src: *src,
                vl: *vl,
            });
            b.sp.push(SpOp::PopVsdq { dst: *dst });
        }
        Inst::VLoad { dst, access } => {
            b.ap = Some(ApOp::VectorLoad {
                access: VecAccess::Strided(*access),
            });
            b.vp = Some(VpOp::QmovLoad {
                dst: *dst,
                index: None,
                vl: access.vl,
            });
        }
        Inst::VStore { src, access } => {
            let seq = *next_store_seq;
            *next_store_seq += 1;
            b.vp = Some(VpOp::QmovStore {
                src: *src,
                index: None,
                vl: access.vl,
                seq,
            });
            b.ap = Some(ApOp::VectorStoreAddr {
                access: VecAccess::Strided(*access),
                seq,
            });
        }
        Inst::VGather { dst, index, vl, .. } => {
            b.ap = Some(ApOp::VectorLoad {
                access: VecAccess::Indexed { vl: *vl },
            });
            b.vp = Some(VpOp::QmovLoad {
                dst: *dst,
                index: Some(*index),
                vl: *vl,
            });
        }
        Inst::VScatter { src, index, vl, .. } => {
            let seq = *next_store_seq;
            *next_store_seq += 1;
            b.vp = Some(VpOp::QmovStore {
                src: *src,
                index: Some(*index),
                vl: *vl,
                seq,
            });
            b.ap = Some(ApOp::VectorStoreAddr {
                access: VecAccess::Indexed { vl: *vl },
                seq,
            });
        }
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use dva_isa::{Stride, VOperand};
    use dva_testutil::vl;

    #[test]
    fn vector_load_splits_into_ap_and_vp_qmov() {
        let mut seq = 0;
        let b = translate(
            &Inst::VLoad {
                dst: VectorReg::V3,
                access: VectorAccess::unit(0x1000, vl(64)),
            },
            &mut seq,
        );
        assert!(matches!(b.ap, Some(ApOp::VectorLoad { .. })));
        assert!(matches!(
            b.vp,
            Some(VpOp::QmovLoad {
                dst: VectorReg::V3,
                index: None,
                ..
            })
        ));
        assert!(b.sp.is_empty());
        assert_eq!(seq, 0, "loads do not allocate store sequence numbers");
    }

    #[test]
    fn stores_allocate_global_sequence_numbers() {
        let mut seq = 0;
        let _ = translate(
            &Inst::VStore {
                src: VectorReg::V0,
                access: VectorAccess::new(0x0, Stride::UNIT, vl(8)),
            },
            &mut seq,
        );
        let _ = translate(
            &Inst::SStore {
                src: ScalarReg::scalar(2),
                addr: 0x10,
            },
            &mut seq,
        );
        assert_eq!(seq, 2);
    }

    #[test]
    fn scalar_broadcast_inserts_svdq_push() {
        let mut seq = 0;
        let b = translate(
            &Inst::VCompute {
                op: VectorOp::Mul,
                dst: VectorReg::V1,
                src1: VOperand::Reg(VectorReg::V0),
                src2: Some(VOperand::Scalar(ScalarReg::scalar(0))),
                vl: vl(32),
            },
            &mut seq,
        );
        assert_eq!(b.sp.len(), 1);
        assert!(matches!(b.sp[0], SpOp::PushSvdq { .. }));
        assert!(matches!(
            b.vp,
            Some(VpOp::Compute {
                pops_svdq: true,
                ..
            })
        ));
    }

    #[test]
    fn cross_bank_alu_generates_queue_moves() {
        let mut seq = 0;
        // A-register ALU with an S source: SP pushes, AP pops.
        let b = translate(
            &Inst::SAlu {
                dst: ScalarReg::addr(2),
                src1: Some(ScalarReg::scalar(1)),
                src2: None,
            },
            &mut seq,
        );
        assert!(matches!(b.ap, Some(ApOp::Alu { pops_sadq: 1, .. })));
        assert!(matches!(b.sp[0], SpOp::PushSadq { .. }));
    }

    #[test]
    fn reduction_routes_result_to_sp() {
        let mut seq = 0;
        let b = translate(
            &Inst::VReduce {
                op: ReduceOp::Sum,
                dst: ScalarReg::scalar(1),
                src: VectorReg::V2,
                vl: vl(16),
            },
            &mut seq,
        );
        assert!(matches!(b.vp, Some(VpOp::Reduce { .. })));
        assert!(matches!(b.sp[0], SpOp::PopVsdq { .. }));
    }

    #[test]
    fn gather_conflicts_with_all_memory() {
        let mut seq = 0;
        let b = translate(
            &Inst::VGather {
                dst: VectorReg::V0,
                index: VectorReg::V1,
                base: 0x1000,
                vl: vl(8),
            },
            &mut seq,
        );
        let Some(ApOp::VectorLoad { access }) = b.ap else {
            panic!("expected vector load µop");
        };
        assert_eq!(access.range(), dva_isa::MemRange::ALL);
        assert!(access.strided().is_none());
    }

    #[test]
    fn bundle_slot_counts_match_contents() {
        let mut seq = 0;
        let b = translate(
            &Inst::SLoad {
                dst: ScalarReg::scalar(3),
                addr: 0x40,
            },
            &mut seq,
        );
        assert_eq!(b.slots(), (1, 1, 0));
    }
}
