//! The cycle-stepped decoupled-machine engine: four processors, the
//! architectural queues, the two-step store engine and the bypass unit.
//!
//! The engine is a [`dva_engine::Processor`]: it advances its units one
//! tick at a time and reports progress honestly; the clock, the
//! fast-forward stepping, the watchdog and the statistics bookkeeping
//! all live in the shared [`dva_engine::Driver`].

// Issue checks are written as guard chains where every arm names one
// distinct stall reason and yields `false`; clippy would fold the arms
// together and lose that structure.
#![allow(clippy::if_same_then_else)]

use crate::config::DvaConfig;
use crate::queues::{Fifo, Timed};
use crate::result::DvaResult;
use crate::uops::{translate, ApOp, Bundle, SpOp, StoreDataSource, StoreSeq, VecAccess, VpOp};
use dva_engine::{Driver, Observers, Processor, Progress, Report};
use dva_isa::{Cycle, Inst, MemRange, Program, ScalarReg, VectorLength};
use dva_memory::{CacheAccess, MemoryModel};
use dva_metrics::{Histogram, UnitState};
use dva_uarch::{ChainPolicy, FuPipe, Producer, Scoreboard, VectorRegFile};
use std::collections::{HashMap, VecDeque};

/// One slot of the vector load data queue. Each slot holds a full vector
/// register's worth of data.
#[derive(Debug, Clone, Copy)]
struct AvdqSlot {
    id: u64,
    /// When the data is fully present (never chained: the VP cannot start
    /// consuming before the last element arrives).
    ready_at: Cycle,
    /// For bypassed loads: the store whose data this slot will receive.
    pending_bypass: Option<StoreSeq>,
}

/// A vector store address waiting in the VSAQ.
#[derive(Debug, Clone, Copy)]
struct VsaqEntry {
    access: VecAccess,
    seq: StoreSeq,
}

/// A scalar store address waiting in the SSAQ.
#[derive(Debug, Clone, Copy)]
struct SsaqEntry {
    addr: u64,
    seq: StoreSeq,
    /// When the data is available: known at push time for AP-sourced
    /// data; `None` means "from the scalar store data queue".
    ap_data_ready: Option<Cycle>,
}

/// A vector store's data sitting in (or streaming into) the VADQ.
///
/// The store engine chains off the QMOV stream: the commit may start once
/// the *first* element is present (the paper performs the store "when the
/// first slot in both an address queue and its corresponding data queue is
/// ready"); the memory write then streams one element per cycle behind the
/// incoming data.
#[derive(Debug, Clone, Copy)]
struct VadqEntry {
    seq: StoreSeq,
    /// First element present (commit may chain from here).
    first_at: Cycle,
    vl: VectorLength,
}

/// A load waiting for its bypass copy to start.
#[derive(Debug, Clone, Copy)]
struct PendingBypass {
    slot_id: u64,
    store_seq: StoreSeq,
    vl: VectorLength,
}

pub(crate) struct Engine<'a> {
    cfg: DvaConfig,
    chain: ChainPolicy,
    now: Cycle,

    // Fetch processor state: the instruction stream and the bundle
    // waiting for instruction-queue slots.
    insts: &'a [Inst],
    pc: usize,
    next_store_seq: StoreSeq,
    pending: Option<Bundle>,

    // Vector processor state.
    vregs: VectorRegFile,
    fu1: FuPipe,
    fu2: FuPipe,
    qmov1: FuPipe,
    qmov2: FuPipe,

    // Scalar/address processor state.
    ap_sb: Scoreboard,
    sp_sb: Scoreboard,

    // Memory.
    mem: Box<dyn MemoryModel>,

    // Instruction queues.
    apiq: Fifo<ApOp>,
    spiq: Fifo<SpOp>,
    vpiq: Fifo<VpOp>,

    // Data queues.
    avdq: Fifo<AvdqSlot>,
    avdq_draining: Vec<Cycle>,
    next_avdq_id: u64,
    vadq: Fifo<VadqEntry>,
    vsaq: Fifo<VsaqEntry>,
    ssaq: Fifo<SsaqEntry>,
    ssdq: Fifo<Timed<()>>,
    asdq: Fifo<Timed<()>>,
    sadq: Fifo<Timed<()>>,
    svdq: Fifo<Timed<()>>,
    vsdq: Fifo<Timed<()>>,

    // Store engine. Vector stores are written back *lazily*: they stay in
    // the VSAQ/VADQ until queue pressure, a hazard drain or the end of the
    // program forces them out — maximizing the window in which a later
    // identical load can bypass them. Scalar stores commit eagerly.
    /// seq → cycle its data first lands in the VADQ. Retained past commit
    /// while a pending bypass can still source the value; dropped as soon
    /// as the store has committed and no pending bypass references it.
    store_data_ready: HashMap<StoreSeq, Cycle>,
    stores_committed: u64,

    // Bypass engine.
    bypass_unit: FuPipe,
    pending_bypasses: VecDeque<PendingBypass>,
    bypassed_loads: u64,

    // Drain mode: the AP is blocked until all stores up to this sequence
    // number (inclusive) have committed.
    ap_drain_until: Option<StoreSeq>,

    // Measurements.
    fp_stalls: u64,
    drain_stall_cycles: u64,
    branches_to_fp: u64,
}

impl<'a> Engine<'a> {
    pub(crate) fn new(cfg: DvaConfig, program: &'a Program) -> Engine<'a> {
        let q = cfg.queues;
        Engine {
            cfg,
            chain: ChainPolicy::reference(),
            now: 0,
            insts: program.insts(),
            pc: 0,
            next_store_seq: 0,
            pending: None,
            vregs: VectorRegFile::new(&cfg.uarch),
            fu1: FuPipe::new("FU1"),
            fu2: FuPipe::new("FU2"),
            qmov1: FuPipe::new("QMOV1"),
            qmov2: FuPipe::new("QMOV2"),
            ap_sb: Scoreboard::new(),
            sp_sb: Scoreboard::new(),
            mem: cfg.memory.build(),
            apiq: Fifo::new("APIQ", q.instruction_queue),
            spiq: Fifo::new("SPIQ", q.instruction_queue),
            vpiq: Fifo::new("VPIQ", q.instruction_queue),
            avdq: Fifo::new("AVDQ", q.avdq),
            avdq_draining: Vec::new(),
            next_avdq_id: 0,
            vadq: Fifo::new("VADQ", q.store_queue),
            vsaq: Fifo::new("VSAQ", q.store_queue),
            ssaq: Fifo::new("SSAQ", q.scalar_store_queue),
            ssdq: Fifo::new("SSDQ", q.scalar_data_queue),
            asdq: Fifo::new("ASDQ", q.scalar_data_queue),
            sadq: Fifo::new("SADQ", q.scalar_data_queue),
            svdq: Fifo::new("SVDQ", q.scalar_data_queue),
            vsdq: Fifo::new("VSDQ", q.scalar_data_queue),
            store_data_ready: HashMap::new(),
            stores_committed: 0,
            bypass_unit: FuPipe::new("BYPASS"),
            pending_bypasses: VecDeque::new(),
            bypassed_loads: 0,
            ap_drain_until: None,
            fp_stalls: 0,
            drain_stall_cycles: 0,
            branches_to_fp: 0,
        }
    }

    // -- occupancy ---------------------------------------------------------

    fn avdq_busy_slots_at(&self, now: Cycle) -> usize {
        let draining = self
            .avdq_draining
            .iter()
            .filter(|&&until| until > now)
            .count();
        self.avdq.len() + draining
    }

    fn avdq_has_free_slot(&self) -> bool {
        self.avdq_busy_slots_at(self.now) < self.avdq.capacity()
    }

    /// The (FU2, FU1, LD) state tuple of the paper's Figure 1 at `now`.
    fn state_at(&self, now: Cycle) -> UnitState {
        UnitState::from_flags(
            self.fu2.is_busy_at(now),
            self.fu1.is_busy_at(now),
            self.mem.busy(now),
        )
    }

    // -- disambiguation -----------------------------------------------------

    /// Checks `range` against every queued store older than the load.
    /// Returns the youngest conflicting store's sequence number and
    /// whether that youngest conflict is an *identical* vector access
    /// (bypass candidate).
    fn disambiguate(
        &self,
        range: MemRange,
        identical_to: Option<&dva_isa::VectorAccess>,
    ) -> Option<(StoreSeq, bool)> {
        let mut youngest: Option<(StoreSeq, bool)> = None;
        for entry in self.vsaq.iter() {
            if entry.access.range().overlaps(&range) {
                let identical = match (identical_to, entry.access.strided()) {
                    (Some(load), Some(store)) => load.is_identical(store),
                    _ => false,
                };
                if youngest.is_none_or(|(s, _)| entry.seq > s) {
                    youngest = Some((entry.seq, identical));
                }
            }
        }
        for entry in self.ssaq.iter() {
            let store_range = MemRange::new(entry.addr, entry.addr + 8);
            if store_range.overlaps(&range) && youngest.is_none_or(|(s, _)| entry.seq > s) {
                youngest = Some((entry.seq, false));
            }
        }
        youngest
    }

    // -- store engine -------------------------------------------------------

    /// The oldest store still awaiting writeback, if any. Because the AP
    /// enqueues addresses in program order, the queue fronts bound every
    /// pending store.
    fn oldest_pending_store(&self) -> Option<StoreSeq> {
        let v = self.vsaq.front().map(|e| e.seq);
        let s = self.ssaq.front().map(|e| e.seq);
        match (v, s) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Commits stores. Scalar stores write back eagerly; vector stores
    /// write back only under pressure (queue nearly full), on a hazard
    /// drain, or when the program is flushing — they otherwise linger in
    /// the store queue, which is what gives the bypass its window.
    /// Vector and scalar stores each commit in program order among
    /// themselves; the generated address spaces are disjoint, so the
    /// relaxation across the two queues cannot reorder same-address
    /// writes.
    fn step_store_engine(&mut self, flush: bool) -> bool {
        let now = self.now;
        // Scalar store: eager.
        if let Some(front) = self.ssaq.front().copied() {
            let data_ready = match front.ap_data_ready {
                Some(t) => t <= now,
                None => self.ssdq.front().is_some_and(|d| d.is_ready(now)),
            };
            if data_ready && self.mem.port_free(now) {
                if front.ap_data_ready.is_none() {
                    self.ssdq.pop();
                }
                self.mem.scalar_store(now, front.addr);
                self.ssaq.pop();
                self.stores_committed += 1;
                return true;
            }
        }
        // Vector store: lazy.
        let pressured = self.vsaq.len() + 1 >= self.vsaq.capacity()
            || self.vadq.len() + 1 >= self.vadq.capacity();
        let draining = match (self.ap_drain_until, self.vsaq.front()) {
            (Some(limit), Some(front)) => front.seq <= limit,
            _ => false,
        };
        if !(flush || pressured || draining) {
            return false;
        }
        let (Some(_), Some(data)) = (self.vsaq.front(), self.vadq.front().copied()) else {
            return false;
        };
        if data.first_at > now || !self.mem.port_free(now) {
            return false;
        }
        debug_assert_eq!(
            self.vsaq.front().map(|e| e.seq),
            Some(data.seq),
            "VADQ order must match VSAQ order"
        );
        let stride = self.vsaq.front().and_then(|e| e.access.stride());
        self.mem.issue_vector_store(now, data.vl, stride);
        self.vsaq.pop();
        self.vadq.pop();
        self.stores_committed += 1;
        self.gc_store_data_ready(data.seq);
        true
    }

    /// Drops a store's data-ready entry once nothing can reference it
    /// again: new bypasses only ever target stores still queued in the
    /// VSAQ, so an entry is dead as soon as the store has left the queue
    /// and no already-pending bypass still sources it.
    fn gc_store_data_ready(&mut self, seq: StoreSeq) {
        let referenced = self.pending_bypasses.iter().any(|p| p.store_seq == seq)
            || self.vsaq.iter().any(|e| e.seq == seq);
        if !referenced {
            self.store_data_ready.remove(&seq);
        }
    }

    // -- bypass engine ------------------------------------------------------

    /// Starts at most one bypass copy per cycle (oldest pending first).
    fn step_bypass_engine(&mut self) -> bool {
        let Some(&pending) = self.pending_bypasses.front() else {
            return false;
        };
        if !self.bypass_unit.is_free(self.now) {
            return false;
        }
        let Some(&data_ready) = self.store_data_ready.get(&pending.store_seq) else {
            return false; // the VP has not issued the store's QMOV yet
        };
        if data_ready > self.now {
            return false;
        }
        self.pending_bypasses.pop_front();
        self.bypass_unit.reserve(self.now, pending.vl.cycles());
        let ready_at = self.now + pending.vl.cycles();
        let slot = self
            .avdq
            .iter()
            .position(|s| s.id == pending.slot_id)
            .expect("bypassed AVDQ slot must still be queued");
        // The slot may sit anywhere in the queue (older loads can still be
        // in flight ahead of it); `Fifo::update_at` patches it in place.
        self.avdq.update_at(slot, |s| {
            s.ready_at = ready_at;
            s.pending_bypass = None;
        });
        self.mem.record_bypass(pending.vl);
        self.bypassed_loads += 1;
        self.gc_store_data_ready(pending.store_seq);
        true
    }

    // -- address processor --------------------------------------------------

    fn step_ap(&mut self) -> bool {
        let now = self.now;
        // Drain mode blocks the AP until the offending stores commit.
        if let Some(limit) = self.ap_drain_until {
            if self
                .oldest_pending_store()
                .is_some_and(|oldest| oldest <= limit)
            {
                self.drain_stall_cycles += 1;
                return false;
            }
            self.ap_drain_until = None;
        }
        let Some(op) = self.apiq.front().copied() else {
            return false;
        };
        let done = match op {
            ApOp::Alu {
                dst,
                srcs,
                pops_sadq,
            } => {
                if !self.ap_sb.all_ready(&srcs, now) {
                    false
                } else if (self.sadq.len() as u8) < pops_sadq
                    || !self
                        .sadq
                        .iter()
                        .take(pops_sadq as usize)
                        .all(|e| e.is_ready(now))
                {
                    false
                } else {
                    for _ in 0..pops_sadq {
                        self.sadq.pop();
                    }
                    self.ap_sb.set_ready(dst, now + 1);
                    true
                }
            }
            ApOp::PushAsdq { src } => {
                if !self.ap_sb.is_ready(src, now) || self.asdq.is_full() {
                    false
                } else {
                    self.asdq.push(Timed::new((), now + 1));
                    true
                }
            }
            ApOp::ScalarLoad { dst, to_sp, addr } => self.ap_scalar_load(dst, to_sp, addr),
            ApOp::ScalarStoreAddr { addr, data, seq } => {
                if self.ssaq.is_full() {
                    false
                } else {
                    let ap_data_ready = match data {
                        StoreDataSource::AddressProcessor(reg) => {
                            Some(self.ap_sb.ready_at(reg).max(now))
                        }
                        StoreDataSource::ScalarProcessor => None,
                    };
                    self.ssaq.push(SsaqEntry {
                        addr,
                        seq,
                        ap_data_ready,
                    });
                    true
                }
            }
            ApOp::VectorLoad { access } => self.ap_vector_load(access),
            ApOp::VectorStoreAddr { access, seq } => {
                if self.vsaq.is_full() {
                    false
                } else {
                    self.vsaq.push(VsaqEntry { access, seq });
                    true
                }
            }
            ApOp::Branch { cond } => {
                if self.ap_sb.is_ready(cond, now) {
                    self.branches_to_fp += 1;
                    true
                } else {
                    false
                }
            }
        };
        if done {
            self.apiq.pop();
        }
        done
    }

    fn ap_scalar_load(&mut self, dst: Option<ScalarReg>, to_sp: bool, addr: u64) -> bool {
        let now = self.now;
        let range = MemRange::new(addr, addr + 8);
        if let Some((seq, _)) = self.disambiguate(range, None) {
            self.ap_drain_until = Some(seq);
            return false;
        }
        if to_sp && self.asdq.is_full() {
            return false;
        }
        if self.mem.probe_scalar(addr) == CacheAccess::Miss && !self.mem.port_free(now) {
            return false;
        }
        let issue = self.mem.scalar_load(now, addr);
        if to_sp {
            self.asdq.push(Timed::new((), issue.data_complete_at));
        } else if let Some(dst) = dst {
            self.ap_sb.set_ready(dst, issue.data_complete_at);
        }
        true
    }

    fn ap_vector_load(&mut self, access: VecAccess) -> bool {
        let now = self.now;
        let conflict = self.disambiguate(access.range(), access.strided());
        match conflict {
            Some((seq, identical)) if self.cfg.bypass && identical => {
                // Bypass: reserve the AVDQ slot now; the copy starts when
                // the store's data lands in the VADQ. The AP moves on —
                // the memory port stays free during the copy.
                if !self.avdq_has_free_slot() {
                    return false;
                }
                let id = self.next_avdq_id;
                self.next_avdq_id += 1;
                self.avdq.push(AvdqSlot {
                    id,
                    ready_at: Cycle::MAX,
                    pending_bypass: Some(seq),
                });
                self.pending_bypasses.push_back(PendingBypass {
                    slot_id: id,
                    store_seq: seq,
                    vl: access.vl(),
                });
                true
            }
            Some((seq, _)) => {
                // Memory hazard: write back everything up to the youngest
                // offending store, then retry.
                self.ap_drain_until = Some(seq);
                false
            }
            None => {
                if !self.avdq_has_free_slot() || !self.mem.port_free(now) {
                    return false;
                }
                let issue = self
                    .mem
                    .issue_vector_load(now, access.vl(), access.stride());
                let id = self.next_avdq_id;
                self.next_avdq_id += 1;
                self.avdq.push(AvdqSlot {
                    id,
                    ready_at: issue.data_complete_at,
                    pending_bypass: None,
                });
                true
            }
        }
    }

    // -- scalar processor ---------------------------------------------------

    fn step_sp(&mut self) -> bool {
        let now = self.now;
        let Some(op) = self.spiq.front().copied() else {
            return false;
        };
        let done = match op {
            SpOp::Alu {
                dst,
                srcs,
                pops_asdq,
            } => {
                if !self.sp_sb.all_ready(&srcs, now) {
                    false
                } else if (self.asdq.len() as u8) < pops_asdq
                    || !self
                        .asdq
                        .iter()
                        .take(pops_asdq as usize)
                        .all(|e| e.is_ready(now))
                {
                    false
                } else {
                    for _ in 0..pops_asdq {
                        self.asdq.pop();
                    }
                    self.sp_sb.set_ready(dst, now + 1);
                    true
                }
            }
            SpOp::PopAsdq { dst } => {
                if self.asdq.front().is_some_and(|e| e.is_ready(now)) {
                    self.asdq.pop();
                    self.sp_sb.set_ready(dst, now + 1);
                    true
                } else {
                    false
                }
            }
            SpOp::PushSadq { src } => self.sp_push(src, |e| &mut e.sadq),
            SpOp::PushSvdq { src } => self.sp_push(src, |e| &mut e.svdq),
            SpOp::PushSsdq { src } => self.sp_push(src, |e| &mut e.ssdq),
            SpOp::PopVsdq { dst } => {
                if self.vsdq.front().is_some_and(|e| e.is_ready(now)) {
                    self.vsdq.pop();
                    self.sp_sb.set_ready(dst, now + 1);
                    true
                } else {
                    false
                }
            }
            SpOp::Branch { cond } => {
                if self.sp_sb.is_ready(cond, now) {
                    self.branches_to_fp += 1;
                    true
                } else {
                    false
                }
            }
        };
        if done {
            self.spiq.pop();
        }
        done
    }

    fn sp_push(
        &mut self,
        src: ScalarReg,
        queue: impl for<'e> Fn(&'e mut Engine<'a>) -> &'e mut Fifo<Timed<()>>,
    ) -> bool {
        let now = self.now;
        if !self.sp_sb.is_ready(src, now) {
            return false;
        }
        if queue(self).is_full() {
            return false;
        }
        queue(self).push(Timed::new((), now + 1));
        true
    }

    // -- vector processor ---------------------------------------------------

    fn step_vp(&mut self) -> bool {
        let now = self.now;
        let startup = self.cfg.uarch.fu_startup;
        let qstartup = self.cfg.uarch.qmov_startup;
        let Some(op) = self.vpiq.front().copied() else {
            return false;
        };
        let done = match op {
            VpOp::Compute {
                op,
                dst,
                srcs,
                pops_svdq,
                vl,
            } => {
                let reads: Vec<_> = srcs.into_iter().flatten().collect();
                if pops_svdq && !self.svdq.front().is_some_and(|e| e.is_ready(now)) {
                    false
                } else if !self.vregs.can_issue(now, &reads, Some(dst), self.chain) {
                    false
                } else {
                    let unit = if op.requires_general_unit() {
                        &mut self.fu2
                    } else if self.fu1.is_free(now) {
                        &mut self.fu1
                    } else {
                        &mut self.fu2
                    };
                    if !unit.is_free(now) {
                        false
                    } else {
                        unit.reserve(now, vl.cycles());
                        if pops_svdq {
                            self.svdq.pop();
                        }
                        self.vregs.begin_reads(now, &reads, vl.cycles());
                        self.vregs.begin_write(
                            dst,
                            now,
                            now + startup,
                            now + startup + vl.cycles(),
                            Producer::FunctionalUnit,
                        );
                        true
                    }
                }
            }
            VpOp::Reduce { src, vl, .. } => {
                if self.vsdq.is_full() || !self.vregs.can_issue(now, &[src], None, self.chain) {
                    false
                } else {
                    let unit = if self.fu1.is_free(now) {
                        &mut self.fu1
                    } else if self.fu2.is_free(now) {
                        &mut self.fu2
                    } else {
                        return false;
                    };
                    unit.reserve(now, vl.cycles());
                    self.vregs.begin_reads(now, &[src], vl.cycles());
                    self.vsdq
                        .push(Timed::new((), now + startup + vl.cycles() + 1));
                    true
                }
            }
            VpOp::QmovLoad { dst, index, vl } => {
                let reads: Vec<_> = index.into_iter().collect();
                if self.avdq.front().is_none_or(|s| s.ready_at > now) {
                    false
                } else if !self.vregs.can_issue(now, &reads, Some(dst), self.chain) {
                    false
                } else {
                    let unit = if self.qmov1.is_free(now) {
                        &mut self.qmov1
                    } else if self.qmov2.is_free(now) {
                        &mut self.qmov2
                    } else {
                        return false;
                    };
                    unit.reserve(now, vl.cycles());
                    self.avdq.pop();
                    self.avdq_draining.push(now + vl.cycles());
                    if !reads.is_empty() {
                        self.vregs.begin_reads(now, &reads, vl.cycles());
                    }
                    self.vregs.begin_write(
                        dst,
                        now,
                        now + qstartup,
                        now + qstartup + vl.cycles(),
                        Producer::Qmov,
                    );
                    true
                }
            }
            VpOp::QmovStore {
                src,
                index,
                vl,
                seq,
            } => {
                let mut reads = vec![src];
                reads.extend(index);
                if self.vadq.is_full() || !self.vregs.can_issue(now, &reads, None, self.chain) {
                    false
                } else {
                    let unit = if self.qmov1.is_free(now) {
                        &mut self.qmov1
                    } else if self.qmov2.is_free(now) {
                        &mut self.qmov2
                    } else {
                        return false;
                    };
                    unit.reserve(now, vl.cycles());
                    self.vregs.begin_reads(now, &reads, vl.cycles());
                    // First element lands after the QMOV startup; consumers
                    // (store engine, bypass unit) chain one cycle behind.
                    let first_at = now + qstartup + 1;
                    self.vadq.push(VadqEntry { seq, first_at, vl });
                    self.store_data_ready.insert(seq, first_at);
                    true
                }
            }
        };
        if done {
            self.vpiq.pop();
        }
        done
    }

    // -- fetch processor ----------------------------------------------------

    fn fp_can_dispatch(&self, slots: (usize, usize, usize)) -> bool {
        self.apiq.free_slots() >= slots.0
            && self.spiq.free_slots() >= slots.1
            && self.vpiq.free_slots() >= slots.2
    }

    // -- fast-forward -------------------------------------------------------

    /// The earliest cycle strictly after `now` at which *anything* in the
    /// machine can change state: data arriving in a queue, a functional
    /// unit or the address bus freeing, a scoreboard or vector register
    /// becoming ready, a draining AVDQ slot expiring, or a queued store's
    /// data landing.
    ///
    /// Every gating condition in the step functions is either static
    /// until some unit makes progress or a comparison of `now` against
    /// one of these times, so after a tick that made no progress nothing
    /// can happen before this cycle — the engine may jump straight to it.
    /// `None` means no timed event is outstanding (a deadlock unless the
    /// engine is structurally done).
    fn next_event_at(&self, now: Cycle) -> Option<Cycle> {
        let mut next = dva_isa::EarliestAfter::new(now);
        // Functional units and the address ports. Every port freeing is
        // its own event: on a multi-ported memory the issue gate flips
        // at the first free and the sampled LD flag at the last.
        next.consider_opt(self.mem.next_free_at(now));
        next.consider(self.fu1.free_at());
        next.consider(self.fu2.free_at());
        next.consider(self.qmov1.free_at());
        next.consider(self.qmov2.free_at());
        next.consider(self.bypass_unit.free_at());
        // Timed data queues. Every entry is scanned, not just the front:
        // ALU µops consume up to two entries deep.
        for q in [&self.ssdq, &self.asdq, &self.sadq, &self.svdq, &self.vsdq] {
            next.consider_opt(q.next_ready_after(now));
        }
        // AVDQ: the VP consumes the front slot once its data lands
        // (`Cycle::MAX` marks a bypass that has not started — not a timed
        // event); draining slots release AVDQ capacity when they expire.
        if let Some(front) = self.avdq.front() {
            if front.ready_at != Cycle::MAX {
                next.consider(front.ready_at);
            }
        }
        for &until in &self.avdq_draining {
            next.consider(until);
        }
        // Store engine: vector data streaming into the VADQ, scalar data
        // carried by the AP.
        if let Some(front) = self.vadq.front() {
            next.consider(front.first_at);
        }
        if let Some(front) = self.ssaq.front() {
            next.consider_opt(front.ap_data_ready);
        }
        // Bypass engine: the front pending copy starts once its store's
        // data lands (no map entry yet means the enabling event is the VP
        // issuing the QMOV — progress, not time).
        if let Some(p) = self.pending_bypasses.front() {
            next.consider_opt(self.store_data_ready.get(&p.store_seq).copied());
        }
        // Scoreboards and the vector register file.
        next.consider_opt(self.ap_sb.next_ready_after(now));
        next.consider_opt(self.sp_sb.next_ready_after(now));
        next.consider_opt(self.vregs.next_event_after(now));
        next.get()
    }
}

impl Processor for Engine<'_> {
    fn step(&mut self, now: Cycle) -> Progress {
        self.now = now;
        // Entries whose drain has completed can never be observed
        // again (the busy-slot filter already ignores them); dropping
        // them keeps the scan O(in-flight), not O(loads executed).
        self.avdq_draining.retain(|&until| until > now);

        let mut progress = false;
        // The AP owns the memory port; lazy store writebacks take the
        // bus only in the cycles the AP leaves it idle.
        progress |= self.step_ap();
        progress |= self.step_sp();
        progress |= self.step_vp();
        let flush = self.pc >= self.insts.len() && self.pending.is_none();
        progress |= self.step_store_engine(flush);
        if self.cfg.bypass {
            progress |= self.step_bypass_engine();
        }

        // Fetch/dispatch: one architectural instruction per cycle.
        if self.pending.is_none() && self.pc < self.insts.len() {
            self.pending = Some(translate(&self.insts[self.pc], &mut self.next_store_seq));
            self.pc += 1;
        }
        if let Some(bundle) = self.pending.take() {
            if self.fp_can_dispatch(bundle.slots()) {
                if let Some(ap) = bundle.ap {
                    self.apiq.push(ap);
                }
                for sp in &bundle.sp {
                    self.spiq.push(*sp);
                }
                if let Some(vp) = bundle.vp {
                    self.vpiq.push(vp);
                }
                progress = true;
            } else {
                self.fp_stalls += 1;
                self.pending = Some(bundle);
            }
        }
        Progress::from(progress)
    }

    /// Structural completion: everything fetched, all queues drained.
    fn is_done(&self) -> bool {
        let done = self.pc >= self.insts.len()
            && self.pending.is_none()
            && self.apiq.is_empty()
            && self.spiq.is_empty()
            && self.vpiq.is_empty()
            && self.avdq.is_empty()
            && self.vadq.is_empty()
            && self.vsaq.is_empty()
            && self.ssaq.is_empty()
            && self.pending_bypasses.is_empty();
        if done {
            // A translator bug that leaves orphaned entries in the
            // five scalar data queues would otherwise be dropped
            // silently here: by the time the instruction queues drain,
            // every push must have had its matching pop.
            debug_assert!(
                self.ssdq.is_empty()
                    && self.asdq.is_empty()
                    && self.sadq.is_empty()
                    && self.svdq.is_empty()
                    && self.vsdq.is_empty(),
                "orphaned scalar data queue entries at structural completion: \
                 SSDQ={} ASDQ={} SADQ={} SVDQ={} VSDQ={}",
                self.ssdq.len(),
                self.asdq.len(),
                self.sadq.len(),
                self.svdq.len(),
                self.vsdq.len(),
            );
            debug_assert!(
                self.store_data_ready.is_empty(),
                "store data-ready entries must be garbage-collected by \
                 structural completion ({} left)",
                self.store_data_ready.len(),
            );
        }
        done
    }

    fn next_event_after(&self, now: Cycle) -> Option<Cycle> {
        self.next_event_at(now)
    }

    fn quiesce_at(&self) -> Cycle {
        self.vregs
            .quiesce_at()
            .max(self.ap_sb.quiesce_at())
            .max(self.sp_sb.quiesce_at())
            .max(self.fu1.free_at())
            .max(self.fu2.free_at())
            .max(self.qmov1.free_at())
            .max(self.qmov2.free_at())
            .max(self.bypass_unit.free_at())
            .max(self.mem.quiesce_at())
    }

    fn sample(&self, now: Cycle, obs: &mut Observers) {
        obs.record_occupancy(self.avdq_busy_slots_at(now));
        obs.record_state(self.state_at(now));
    }

    /// During the post-completion drain the AVDQ is empty (structural
    /// completion requires it) and QMOV drains no longer hold slots any
    /// consumer can observe, so the occupancy histogram records zero.
    fn drain_sample(&self, now: Cycle, obs: &mut Observers) {
        obs.record_state(self.state_at(now));
        obs.record_occupancy(0);
    }

    fn account_skipped(&mut self, _now: Cycle, skipped: u64) {
        if self.pending.is_some() {
            self.fp_stalls += skipped;
        }
        let drain_stalled = self
            .ap_drain_until
            .is_some_and(|limit| self.oldest_pending_store().is_some_and(|o| o <= limit));
        if drain_stalled {
            self.drain_stall_cycles += skipped;
        }
    }

    fn report(&self, cycles: Cycle) -> Report {
        Report {
            insts: self.insts.len() as u64,
            traffic: self.mem.traffic(),
            bus_utilization: self.mem.utilization(cycles),
            port_utilization: self.mem.port_utilizations(cycles),
            cache_hit_rate: self.mem.cache().hit_rate(),
            cache: self.mem.cache().stats(),
            stall_cycles: self.fp_stalls,
        }
    }

    fn deadlock_context(&self, _now: Cycle) -> String {
        format!(
            "DVA pc={}/{} APIQ={} SPIQ={} VPIQ={} AVDQ={} VADQ={} VSAQ={} SSAQ={} \
             next_commit={} drain={:?} pending_byp={}",
            self.pc,
            self.insts.len(),
            self.apiq.len(),
            self.spiq.len(),
            self.vpiq.len(),
            self.avdq.len(),
            self.vadq.len(),
            self.vsaq.len(),
            self.ssaq.len(),
            self.stores_committed,
            self.ap_drain_until,
            self.pending_bypasses.len(),
        )
    }
}

/// Drives `engine` to completion through the shared [`Driver`] and
/// assembles the decoupled machine's result.
pub(crate) fn run(mut engine: Engine<'_>, fast_forward: bool) -> DvaResult {
    let mut observers = Observers::with_occupancy(Histogram::new(engine.cfg.queues.avdq));
    let completion = Driver::new()
        .fast_forward(fast_forward)
        .run(&mut engine, &mut observers);
    let (core, occupancy) = completion.into_core(&engine, observers);
    let avdq_occupancy = occupancy.expect("the DVA observers carry the AVDQ histogram");
    let max_avdq = avdq_occupancy.max_observed().unwrap_or(0);
    DvaResult {
        core,
        avdq_occupancy,
        bypassed_loads: engine.bypassed_loads,
        drain_stall_cycles: engine.drain_stall_cycles,
        max_vpiq: engine.vpiq.max_occupancy(),
        max_apiq: engine.apiq.max_occupancy(),
        max_avdq,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dva_isa::{VectorAccess, VectorReg};
    use dva_testutil::vl;

    /// A long stream of short vector loads rotating over the eight
    /// registers: with deep instruction queues and a long latency the AP
    /// slips far ahead and piles up outstanding AVDQ slots.
    fn load_storm(loads: usize, n: u32) -> Program {
        let insts: Vec<Inst> = (0..loads)
            .map(|i| Inst::VLoad {
                dst: VectorReg::ALL[i % VectorReg::ALL.len()],
                access: VectorAccess::unit(0x10_0000 + (i as u64) * 0x1000, vl(n)),
            })
            .collect();
        Program::from_insts("load-storm", insts)
    }

    #[test]
    fn avdq_histogram_covers_the_configured_capacity() {
        // Regression: the histogram used to be clamped to 64 buckets, so
        // configurations with AVDQ > 64 silently under-reported
        // `max_avdq` and the fig6/queue-sizing sweeps.
        let cfg = DvaConfig::builder().avdq(128).build();
        let program = load_storm(4, 64);
        let r = run(Engine::new(cfg, &program), true);
        assert_eq!(r.avdq_occupancy.buckets().len(), 128 + 1);
        assert_eq!(r.avdq_occupancy.overflow(), 0);
    }

    #[test]
    fn deep_queues_report_occupancy_beyond_64() {
        // With the clamp in place this scenario reported max_avdq == 64
        // no matter how deep the queue actually got.
        let cfg = DvaConfig::builder()
            .latency(800)
            .instruction_queue(512)
            .avdq(256)
            .build();
        let program = load_storm(120, 8);
        let r = run(Engine::new(cfg, &program), true);
        assert!(
            r.max_avdq > 64,
            "AVDQ only reached {} slots; the scenario no longer exercises \
             the >64 range",
            r.max_avdq
        );
        assert_eq!(r.avdq_occupancy.total(), r.cycles);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "orphaned scalar data queue entries")]
    fn orphaned_scalar_queue_entries_are_detected() {
        // Simulates a translator bug: an SVDQ entry nothing ever pops.
        let program = Program::from_insts("empty", Vec::new());
        let mut engine = Engine::new(DvaConfig::default(), &program);
        engine.svdq.push(Timed::new((), 0));
        let _ = run(engine, true);
    }

    #[test]
    fn fast_forward_and_naive_agree_on_a_mixed_program() {
        let mut insts = vec![
            Inst::VLoad {
                dst: VectorReg::V0,
                access: VectorAccess::unit(0x1000, vl(64)),
            },
            Inst::VStore {
                src: VectorReg::V0,
                access: VectorAccess::unit(0x2000, vl(64)),
            },
            Inst::VLoad {
                dst: VectorReg::V2,
                access: VectorAccess::unit(0x2000, vl(64)),
            },
        ];
        insts.extend((0..4).map(|i| Inst::VLoad {
            dst: VectorReg::ALL[4 + i % 4],
            access: VectorAccess::unit(0x9000 + i as u64 * 0x1000, vl(32)),
        }));
        let program = Program::from_insts("mixed", insts);
        for latency in [1, 37, 100] {
            for cfg in [
                DvaConfig::dva(latency),
                DvaConfig::byp(latency, 4, 8),
                DvaConfig::byp(latency, 256, 16),
            ] {
                let fast = run(Engine::new(cfg, &program), true);
                let naive = run(Engine::new(cfg, &program), false);
                assert_eq!(fast, naive, "L={latency} cfg={cfg:?}");
                assert!(
                    fast.ticks_executed.get() <= naive.ticks_executed.get(),
                    "fast-forward must never execute more ticks"
                );
            }
        }
    }
}
