//! The cycle-stepped decoupled-machine engine: four processors, the
//! architectural queues, the two-step store engine and the bypass unit.
//!
//! The engine is a [`dva_engine::Processor`]: it advances its units one
//! tick at a time and reports progress honestly; the clock, the
//! fast-forward stepping, the watchdog and the statistics bookkeeping
//! all live in the shared [`dva_engine::Driver`].

// Issue checks are written as guard chains where every arm names one
// distinct stall reason and yields `false`; clippy would fold the arms
// together and lose that structure.
#![allow(clippy::if_same_then_else)]

use crate::compiled::CompiledProgram;
use crate::config::DvaConfig;
use crate::queues::{Fifo, Timed};
use crate::result::DvaResult;
use crate::uops::{ApOp, DataSlot, SpOp, StoreDataSource, StoreSeq, VecAccess, VpOp};
use dva_engine::{Completion, Driver, Lane, Observers, Processor, Progress, Report, SimError};
use dva_isa::{Cycle, MemRange, ScalarReg, VectorLength};
use dva_memory::{CacheAccess, Memory, MemoryModel};
use dva_metrics::{Histogram, UnitState};
use dva_uarch::{ChainPolicy, FuPipe, Producer, Scoreboard, VectorRegFile};
use std::collections::VecDeque;
use std::sync::Arc;

/// One slot of the vector load data queue. Each slot holds a full vector
/// register's worth of data.
#[derive(Debug, Clone, Copy)]
struct AvdqSlot {
    id: u64,
    /// When the data is fully present (never chained: the VP cannot start
    /// consuming before the last element arrives).
    ready_at: Cycle,
    /// For bypassed loads: the data slot of the store whose value this
    /// AVDQ slot will receive.
    pending_bypass: Option<DataSlot>,
}

/// A vector store address waiting in the VSAQ.
#[derive(Debug, Clone, Copy)]
struct VsaqEntry {
    access: VecAccess,
    seq: StoreSeq,
    data: DataSlot,
}

/// A scalar store address waiting in the SSAQ.
#[derive(Debug, Clone, Copy)]
struct SsaqEntry {
    addr: u64,
    seq: StoreSeq,
    /// When the data is available: known at push time for AP-sourced
    /// data; `None` means "from the scalar store data queue".
    ap_data_ready: Option<Cycle>,
}

/// A vector store's data sitting in (or streaming into) the VADQ.
///
/// The store engine chains off the QMOV stream: the commit may start once
/// the *first* element is present (the paper performs the store "when the
/// first slot in both an address queue and its corresponding data queue is
/// ready"); the memory write then streams one element per cycle behind the
/// incoming data.
#[derive(Debug, Clone, Copy)]
struct VadqEntry {
    data: DataSlot,
    /// First element present (commit may chain from here).
    first_at: Cycle,
    vl: VectorLength,
}

/// The youngest store conflicting with a load's memory range.
#[derive(Debug, Clone, Copy)]
struct Conflict {
    /// Global program order of the conflicting store.
    seq: StoreSeq,
    /// Whether it is an identical vector access (bypass candidate).
    identical: bool,
    /// Its data-ready ring slot, when it is a vector store.
    data: Option<DataSlot>,
}

/// A load waiting for its bypass copy to start.
#[derive(Debug, Clone, Copy)]
struct PendingBypass {
    slot_id: u64,
    /// The data-ready ring slot of the store being copied from.
    data: DataSlot,
    vl: VectorLength,
}

/// Data-ready cycles of in-flight vector stores, indexed by their dense
/// [`DataSlot`] — an allocation-free replacement for the old
/// `HashMap<StoreSeq, Cycle>`.
///
/// Slots are inserted in strictly increasing order (the VP issues QMOV
/// stores in program order), so the live window is a contiguous ring:
/// `base` is the oldest slot still tracked and `slots[i]` holds slot
/// `base + i`. Removal marks a slot dead and advances `base` past any
/// leading dead slots; with capacity preallocated to the store-queue and
/// bypass windows, steady-state operation never touches the heap.
#[derive(Debug)]
struct DataReadyRing {
    base: DataSlot,
    slots: VecDeque<Option<Cycle>>,
}

impl DataReadyRing {
    fn with_capacity(cap: usize) -> DataReadyRing {
        DataReadyRing {
            base: 0,
            slots: VecDeque::with_capacity(cap),
        }
    }

    fn clear(&mut self) {
        self.base = 0;
        self.slots.clear();
    }

    /// Tracks `slot` becoming ready at `at`. Slots arrive densely in
    /// order, so this is always an append.
    fn insert(&mut self, slot: DataSlot, at: Cycle) {
        debug_assert_eq!(
            slot,
            self.base + self.slots.len() as DataSlot,
            "vector store data slots must arrive in dense program order"
        );
        self.slots.push_back(Some(at));
    }

    /// The ready cycle of `slot`, if it is still tracked.
    fn get(&self, slot: DataSlot) -> Option<Cycle> {
        let index = slot.checked_sub(self.base)?;
        self.slots.get(index as usize).copied().flatten()
    }

    /// Stops tracking `slot` and releases any leading dead slots.
    fn remove(&mut self, slot: DataSlot) {
        if let Some(index) = slot.checked_sub(self.base) {
            if let Some(entry) = self.slots.get_mut(index as usize) {
                *entry = None;
            }
        }
        while let Some(None) = self.slots.front() {
            self.slots.pop_front();
            self.base += 1;
        }
    }

    /// Number of slots still tracked.
    fn len(&self) -> usize {
        self.slots.iter().flatten().count()
    }

    /// Whether no slot is tracked.
    fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

#[derive(Debug)]
pub(crate) struct Engine {
    cfg: DvaConfig,
    chain: ChainPolicy,
    now: Cycle,

    // Fetch processor state: the pre-translated bundle stream and the
    // index of the bundle waiting for instruction-queue slots. Keeping an
    // index (not the bundle) means the fetch/dispatch path never copies
    // bundles around — dispatch pushes µops straight out of the compiled
    // stream.
    compiled: Arc<CompiledProgram>,
    pc: usize,
    pending: Option<usize>,

    // Vector processor state.
    vregs: VectorRegFile,
    fu1: FuPipe,
    fu2: FuPipe,
    qmov1: FuPipe,
    qmov2: FuPipe,

    // Scalar/address processor state.
    ap_sb: Scoreboard,
    sp_sb: Scoreboard,

    // Memory.
    mem: Memory,

    // Instruction queues.
    apiq: Fifo<ApOp>,
    spiq: Fifo<SpOp>,
    vpiq: Fifo<VpOp>,

    // Data queues. `avdq_draining` is kept sorted ascending (see
    // `push_drain`), so expiry is a pop-front-while-expired.
    avdq: Fifo<AvdqSlot>,
    avdq_draining: VecDeque<Cycle>,
    next_avdq_id: u64,
    vadq: Fifo<VadqEntry>,
    vsaq: Fifo<VsaqEntry>,
    ssaq: Fifo<SsaqEntry>,
    ssdq: Fifo<Timed<()>>,
    asdq: Fifo<Timed<()>>,
    sadq: Fifo<Timed<()>>,
    svdq: Fifo<Timed<()>>,
    vsdq: Fifo<Timed<()>>,

    // Store engine. Vector stores are written back *lazily*: they stay in
    // the VSAQ/VADQ until queue pressure, a hazard drain or the end of the
    // program forces them out — maximizing the window in which a later
    // identical load can bypass them. Scalar stores commit eagerly.
    /// data slot → cycle its data first lands in the VADQ. Retained past
    /// commit while a pending bypass can still source the value; dropped
    /// as soon as the store has committed and no pending bypass references
    /// it.
    store_data_ready: DataReadyRing,
    stores_committed: u64,

    // Bypass engine.
    bypass_unit: FuPipe,
    pending_bypasses: VecDeque<PendingBypass>,
    bypassed_loads: u64,

    // Drain mode: the AP is blocked until all stores up to this sequence
    // number (inclusive) have committed.
    ap_drain_until: Option<StoreSeq>,

    // Disambiguation cache: the AP retries its front load every tick
    // while stalled, and the answer can only change when a store enters
    // or leaves the VSAQ/SSAQ. `store_gen` counts those changes; a cached
    // (generation, front-op serial) pair short-circuits the rescan.
    store_gen: u64,
    disambig_cache: Option<(u64, u64, Option<Conflict>)>,

    // Attempt-skip caches. `progress_version` counts *every* sub-unit
    // progress event; a processor's wake time cached at version `v` (by
    // the fast-forward computation, through a `Cell` because the
    // next-event probe is `&self`) certifies that until the version
    // changes or the clock reaches the wake, an issue attempt is a
    // guaranteed no-op — so the step skips it with two comparisons.
    // `Cycle::MAX` encodes "blocked on another unit's progress".
    progress_version: u64,
    wake_ap_cache: std::cell::Cell<(u64, Cycle)>,
    wake_sp_cache: std::cell::Cell<(u64, Cycle)>,
    wake_vp_cache: std::cell::Cell<(u64, Cycle)>,
    wake_store_cache: std::cell::Cell<(u64, Cycle)>,
    wake_bypass_cache: std::cell::Cell<(u64, Cycle)>,

    // Measurements.
    fp_stalls: u64,
    drain_stall_cycles: u64,
    branches_to_fp: u64,
}

/// How deep to preallocate the data-ready ring: the VSAQ/VADQ window plus
/// the bypass window, with slack for committed-but-referenced slots. The
/// ring grows past this only in pathological configurations; steady state
/// never reallocates.
fn ring_capacity(cfg: &DvaConfig) -> usize {
    cfg.queues.store_queue + cfg.queues.avdq + 8
}

impl Engine {
    pub(crate) fn new(cfg: DvaConfig, compiled: Arc<CompiledProgram>) -> Engine {
        let q = cfg.queues;
        Engine {
            cfg,
            chain: ChainPolicy::reference(),
            now: 0,
            compiled,
            pc: 0,
            pending: None,
            vregs: VectorRegFile::new(&cfg.uarch),
            fu1: FuPipe::new("FU1"),
            fu2: FuPipe::new("FU2"),
            qmov1: FuPipe::new("QMOV1"),
            qmov2: FuPipe::new("QMOV2"),
            ap_sb: Scoreboard::new(),
            sp_sb: Scoreboard::new(),
            mem: cfg.memory.instantiate(),
            apiq: Fifo::new("APIQ", q.instruction_queue),
            spiq: Fifo::new("SPIQ", q.instruction_queue),
            vpiq: Fifo::new("VPIQ", q.instruction_queue),
            avdq: Fifo::new("AVDQ", q.avdq),
            avdq_draining: VecDeque::with_capacity(8),
            next_avdq_id: 0,
            vadq: Fifo::new("VADQ", q.store_queue),
            vsaq: Fifo::new("VSAQ", q.store_queue),
            ssaq: Fifo::new("SSAQ", q.scalar_store_queue),
            ssdq: Fifo::new("SSDQ", q.scalar_data_queue),
            asdq: Fifo::new("ASDQ", q.scalar_data_queue),
            sadq: Fifo::new("SADQ", q.scalar_data_queue),
            svdq: Fifo::new("SVDQ", q.scalar_data_queue),
            vsdq: Fifo::new("VSDQ", q.scalar_data_queue),
            store_data_ready: DataReadyRing::with_capacity(ring_capacity(&cfg)),
            stores_committed: 0,
            bypass_unit: FuPipe::new("BYPASS"),
            pending_bypasses: VecDeque::with_capacity(q.avdq),
            bypassed_loads: 0,
            ap_drain_until: None,
            store_gen: 0,
            disambig_cache: None,
            progress_version: 0,
            wake_ap_cache: std::cell::Cell::new((u64::MAX, 0)),
            wake_sp_cache: std::cell::Cell::new((u64::MAX, 0)),
            wake_vp_cache: std::cell::Cell::new((u64::MAX, 0)),
            wake_store_cache: std::cell::Cell::new((u64::MAX, 0)),
            wake_bypass_cache: std::cell::Cell::new((u64::MAX, 0)),
            fp_stalls: 0,
            drain_stall_cycles: 0,
            branches_to_fp: 0,
        }
    }

    /// Restores the engine to its initial state for a fresh run of
    /// (possibly) a different configuration and program, **reusing every
    /// buffer already allocated**: the architectural queues, the AVDQ
    /// drain list, the bypass queue and the data-ready ring all keep their
    /// storage. After `reset`, a run is byte-identical to one on a freshly
    /// constructed engine — the reset contract the sweep workers and the
    /// allocation-regression tests rely on.
    pub(crate) fn reset(&mut self, cfg: DvaConfig, compiled: Arc<CompiledProgram>) {
        let q = cfg.queues;
        self.cfg = cfg;
        self.chain = ChainPolicy::reference();
        self.now = 0;
        self.compiled = compiled;
        self.pc = 0;
        self.pending = None;
        self.vregs = VectorRegFile::new(&cfg.uarch);
        self.fu1 = FuPipe::new("FU1");
        self.fu2 = FuPipe::new("FU2");
        self.qmov1 = FuPipe::new("QMOV1");
        self.qmov2 = FuPipe::new("QMOV2");
        self.ap_sb = Scoreboard::new();
        self.sp_sb = Scoreboard::new();
        self.mem = cfg.memory.instantiate();
        self.apiq.reset(q.instruction_queue);
        self.spiq.reset(q.instruction_queue);
        self.vpiq.reset(q.instruction_queue);
        self.avdq.reset(q.avdq);
        self.avdq_draining.clear();
        self.next_avdq_id = 0;
        self.vadq.reset(q.store_queue);
        self.vsaq.reset(q.store_queue);
        self.ssaq.reset(q.scalar_store_queue);
        self.ssdq.reset(q.scalar_data_queue);
        self.asdq.reset(q.scalar_data_queue);
        self.sadq.reset(q.scalar_data_queue);
        self.svdq.reset(q.scalar_data_queue);
        self.vsdq.reset(q.scalar_data_queue);
        self.store_data_ready.clear();
        self.stores_committed = 0;
        self.bypass_unit = FuPipe::new("BYPASS");
        self.pending_bypasses.clear();
        self.bypassed_loads = 0;
        self.ap_drain_until = None;
        self.store_gen = 0;
        self.disambig_cache = None;
        self.progress_version = 0;
        self.wake_ap_cache.set((u64::MAX, 0));
        self.wake_sp_cache.set((u64::MAX, 0));
        self.wake_vp_cache.set((u64::MAX, 0));
        self.wake_store_cache.set((u64::MAX, 0));
        self.wake_bypass_cache.set((u64::MAX, 0));
        self.fp_stalls = 0;
        self.drain_stall_cycles = 0;
        self.branches_to_fp = 0;
    }

    // -- occupancy ---------------------------------------------------------

    /// Records a QMOV drain holding an AVDQ slot until `until`, keeping
    /// the drain list sorted ascending. Drains issue in time order with
    /// varying vector lengths, so the insertion point is almost always the
    /// back; the list never exceeds the number of QMOV units plus the
    /// not-yet-pruned expired entries, so the scan is a handful of slots.
    fn push_drain(&mut self, until: Cycle) {
        let pos = self
            .avdq_draining
            .iter()
            .rposition(|&t| t <= until)
            .map_or(0, |p| p + 1);
        self.avdq_draining.insert(pos, until);
    }

    fn avdq_busy_slots_at(&self, now: Cycle) -> usize {
        // Every caller runs after the tick's expiry sweep, so the drain
        // list holds only live entries and the count is just its length.
        debug_assert!(self.avdq_draining.front().is_none_or(|&t| t > now));
        let _ = now;
        self.avdq.len() + self.avdq_draining.len()
    }

    fn avdq_has_free_slot(&self) -> bool {
        self.avdq_busy_slots_at(self.now) < self.avdq.capacity()
    }

    /// The (FU2, FU1, LD) state tuple of the paper's Figure 1 at `now`.
    fn state_at(&self, now: Cycle) -> UnitState {
        UnitState::from_flags(
            self.fu2.is_busy_at(now),
            self.fu1.is_busy_at(now),
            self.mem.busy(now),
        )
    }

    // -- disambiguation -----------------------------------------------------

    /// Checks `range` against every queued store older than the load.
    /// Returns the youngest conflicting store and whether that youngest
    /// conflict is an *identical* vector access (bypass candidate).
    fn disambiguate(
        &self,
        range: MemRange,
        identical_to: Option<&dva_isa::VectorAccess>,
    ) -> Option<Conflict> {
        let mut youngest: Option<Conflict> = None;
        for entry in self.vsaq.iter() {
            if entry.access.range().overlaps(&range) {
                let identical = match (identical_to, entry.access.strided()) {
                    (Some(load), Some(store)) => load.is_identical(store),
                    _ => false,
                };
                if youngest.is_none_or(|c| entry.seq > c.seq) {
                    youngest = Some(Conflict {
                        seq: entry.seq,
                        identical,
                        data: Some(entry.data),
                    });
                }
            }
        }
        for entry in self.ssaq.iter() {
            let store_range = MemRange::new(entry.addr, entry.addr + 8);
            if store_range.overlaps(&range) && youngest.is_none_or(|c| entry.seq > c.seq) {
                youngest = Some(Conflict {
                    seq: entry.seq,
                    identical: false,
                    data: None,
                });
            }
        }
        youngest
    }

    /// [`disambiguate`](Engine::disambiguate) behind the retry cache: the
    /// AP re-attempts its front load every tick while stalled, and the
    /// conflict answer is a pure function of the op and the queued-store
    /// set, so it is recomputed only when `store_gen` or the front op
    /// changes.
    fn disambiguate_cached(
        &mut self,
        range: MemRange,
        identical_to: Option<&dva_isa::VectorAccess>,
    ) -> Option<Conflict> {
        // The serial of the op currently at the APIQ head: pops so far.
        let serial = self.apiq.total_pushed() - self.apiq.len() as u64;
        if let Some((gen, s, result)) = self.disambig_cache {
            if gen == self.store_gen && s == serial {
                return result;
            }
        }
        let result = self.disambiguate(range, identical_to);
        self.disambig_cache = Some((self.store_gen, serial, result));
        result
    }

    // -- store engine -------------------------------------------------------

    /// The oldest store still awaiting writeback, if any. Because the AP
    /// enqueues addresses in program order, the queue fronts bound every
    /// pending store.
    fn oldest_pending_store(&self) -> Option<StoreSeq> {
        let v = self.vsaq.front().map(|e| e.seq);
        let s = self.ssaq.front().map(|e| e.seq);
        match (v, s) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Commits stores. Scalar stores write back eagerly; vector stores
    /// write back only under pressure (queue nearly full), on a hazard
    /// drain, or when the program is flushing — they otherwise linger in
    /// the store queue, which is what gives the bypass its window.
    /// Vector and scalar stores each commit in program order among
    /// themselves; the generated address spaces are disjoint, so the
    /// relaxation across the two queues cannot reorder same-address
    /// writes.
    fn step_store_engine(&mut self, flush: bool) -> bool {
        let now = self.now;
        // Scalar store: eager.
        if let Some(front) = self.ssaq.front().copied() {
            let data_ready = match front.ap_data_ready {
                Some(t) => t <= now,
                None => self.ssdq.front().is_some_and(|d| d.is_ready(now)),
            };
            if data_ready && self.mem.port_free(now) {
                if front.ap_data_ready.is_none() {
                    self.ssdq.pop();
                }
                self.mem.scalar_store(now, front.addr);
                self.ssaq.pop();
                self.store_gen += 1;
                self.stores_committed += 1;
                return true;
            }
        }
        // Vector store: lazy.
        let pressured = self.vsaq.len() + 1 >= self.vsaq.capacity()
            || self.vadq.len() + 1 >= self.vadq.capacity();
        let draining = match (self.ap_drain_until, self.vsaq.front()) {
            (Some(limit), Some(front)) => front.seq <= limit,
            _ => false,
        };
        if !(flush || pressured || draining) {
            return false;
        }
        let (Some(_), Some(data)) = (self.vsaq.front(), self.vadq.front().copied()) else {
            return false;
        };
        if data.first_at > now || !self.mem.port_free(now) {
            return false;
        }
        debug_assert_eq!(
            self.vsaq.front().map(|e| e.data),
            Some(data.data),
            "VADQ order must match VSAQ order"
        );
        let stride = self.vsaq.front().and_then(|e| e.access.stride());
        self.mem.issue_vector_store(now, data.vl, stride);
        self.vsaq.pop();
        self.vadq.pop();
        self.store_gen += 1;
        self.stores_committed += 1;
        self.gc_store_data_ready(data.data);
        true
    }

    /// Drops a store's data-ready entry once nothing can reference it
    /// again: new bypasses only ever target stores still queued in the
    /// VSAQ, so an entry is dead as soon as the store has left the queue
    /// and no already-pending bypass still sources it.
    fn gc_store_data_ready(&mut self, data: DataSlot) {
        let referenced = self.pending_bypasses.iter().any(|p| p.data == data)
            || self.vsaq.iter().any(|e| e.data == data);
        if !referenced {
            self.store_data_ready.remove(data);
        }
    }

    // -- bypass engine ------------------------------------------------------

    /// Starts at most one bypass copy per cycle (oldest pending first).
    fn step_bypass_engine(&mut self) -> bool {
        let Some(&pending) = self.pending_bypasses.front() else {
            return false;
        };
        if !self.bypass_unit.is_free(self.now) {
            return false;
        }
        let Some(data_ready) = self.store_data_ready.get(pending.data) else {
            return false; // the VP has not issued the store's QMOV yet
        };
        if data_ready > self.now {
            return false;
        }
        self.pending_bypasses.pop_front();
        self.bypass_unit.reserve(self.now, pending.vl.cycles());
        let ready_at = self.now + pending.vl.cycles();
        let slot = self
            .avdq
            .iter()
            .position(|s| s.id == pending.slot_id)
            .expect("bypassed AVDQ slot must still be queued");
        // The slot may sit anywhere in the queue (older loads can still be
        // in flight ahead of it); `Fifo::update_at` patches it in place.
        self.avdq.update_at(slot, |s| {
            s.ready_at = ready_at;
            s.pending_bypass = None;
        });
        self.mem.record_bypass(pending.vl);
        self.bypassed_loads += 1;
        self.gc_store_data_ready(pending.data);
        true
    }

    // -- address processor --------------------------------------------------

    fn step_ap(&mut self) -> bool {
        let now = self.now;
        // Drain mode blocks the AP until the offending stores commit.
        if let Some(limit) = self.ap_drain_until {
            if self
                .oldest_pending_store()
                .is_some_and(|oldest| oldest <= limit)
            {
                self.drain_stall_cycles += 1;
                return false;
            }
            self.ap_drain_until = None;
            // Leaving drain mode changes the store engine's `draining`
            // gate even when the attempt below fails, so the cached
            // wakes must be re-derived.
            self.progress_version += 1;
        }
        let Some(op) = self.apiq.front().copied() else {
            return false;
        };
        let done = match op {
            ApOp::Alu {
                dst,
                srcs,
                pops_sadq,
            } => {
                if !self.ap_sb.all_ready(&srcs, now) {
                    false
                } else if (self.sadq.len() as u8) < pops_sadq
                    || !self
                        .sadq
                        .iter()
                        .take(pops_sadq as usize)
                        .all(|e| e.is_ready(now))
                {
                    false
                } else {
                    for _ in 0..pops_sadq {
                        self.sadq.pop();
                    }
                    self.ap_sb.set_ready(dst, now + 1);
                    true
                }
            }
            ApOp::PushAsdq { src } => {
                if !self.ap_sb.is_ready(src, now) || self.asdq.is_full() {
                    false
                } else {
                    self.asdq.push(Timed::new((), now + 1));
                    true
                }
            }
            ApOp::ScalarLoad { dst, to_sp, addr } => self.ap_scalar_load(dst, to_sp, addr),
            ApOp::ScalarStoreAddr { addr, data, seq } => {
                if self.ssaq.is_full() {
                    false
                } else {
                    let ap_data_ready = match data {
                        StoreDataSource::AddressProcessor(reg) => {
                            Some(self.ap_sb.ready_at(reg).max(now))
                        }
                        StoreDataSource::ScalarProcessor => None,
                    };
                    self.ssaq.push(SsaqEntry {
                        addr,
                        seq,
                        ap_data_ready,
                    });
                    self.store_gen += 1;
                    true
                }
            }
            ApOp::VectorLoad { access } => self.ap_vector_load(access),
            ApOp::VectorStoreAddr { access, seq, data } => {
                if self.vsaq.is_full() {
                    false
                } else {
                    self.vsaq.push(VsaqEntry { access, seq, data });
                    self.store_gen += 1;
                    true
                }
            }
            ApOp::Branch { cond } => {
                if self.ap_sb.is_ready(cond, now) {
                    self.branches_to_fp += 1;
                    true
                } else {
                    false
                }
            }
        };
        if done {
            self.apiq.pop();
        }
        done
    }

    /// Puts the AP in drain mode until `seq` commits. Drain entry flips
    /// the store engine's `draining` gate even though the load attempt
    /// itself fails, so it counts as a cache-invalidating event: without
    /// the version bump a store engine skipping on a stamped wake would
    /// never notice the drain and the machine would deadlock.
    fn enter_drain(&mut self, seq: StoreSeq) {
        self.ap_drain_until = Some(seq);
        self.progress_version += 1;
    }

    fn ap_scalar_load(&mut self, dst: Option<ScalarReg>, to_sp: bool, addr: u64) -> bool {
        let now = self.now;
        let range = MemRange::new(addr, addr + 8);
        if let Some(conflict) = self.disambiguate_cached(range, None) {
            self.enter_drain(conflict.seq);
            return false;
        }
        if to_sp && self.asdq.is_full() {
            return false;
        }
        if self.mem.probe_scalar(addr) == CacheAccess::Miss && !self.mem.port_free(now) {
            return false;
        }
        let issue = self.mem.scalar_load(now, addr);
        if to_sp {
            self.asdq.push(Timed::new((), issue.data_complete_at));
        } else if let Some(dst) = dst {
            self.ap_sb.set_ready(dst, issue.data_complete_at);
        }
        true
    }

    fn ap_vector_load(&mut self, access: VecAccess) -> bool {
        let now = self.now;
        let conflict = self.disambiguate_cached(access.range(), access.strided());
        match conflict {
            Some(conflict) if self.cfg.bypass && conflict.identical => {
                // Bypass: reserve the AVDQ slot now; the copy starts when
                // the store's data lands in the VADQ. The AP moves on —
                // the memory port stays free during the copy.
                if !self.avdq_has_free_slot() {
                    return false;
                }
                let data = conflict
                    .data
                    .expect("identical conflicts are vector stores");
                let id = self.next_avdq_id;
                self.next_avdq_id += 1;
                self.avdq.push(AvdqSlot {
                    id,
                    ready_at: Cycle::MAX,
                    pending_bypass: Some(data),
                });
                self.pending_bypasses.push_back(PendingBypass {
                    slot_id: id,
                    data,
                    vl: access.vl(),
                });
                true
            }
            Some(conflict) => {
                // Memory hazard: write back everything up to the youngest
                // offending store, then retry.
                self.enter_drain(conflict.seq);
                false
            }
            None => {
                if !self.avdq_has_free_slot() || !self.mem.port_free(now) {
                    return false;
                }
                let issue = self
                    .mem
                    .issue_vector_load(now, access.vl(), access.stride());
                let id = self.next_avdq_id;
                self.next_avdq_id += 1;
                self.avdq.push(AvdqSlot {
                    id,
                    ready_at: issue.data_complete_at,
                    pending_bypass: None,
                });
                true
            }
        }
    }

    // -- scalar processor ---------------------------------------------------

    fn step_sp(&mut self) -> bool {
        let now = self.now;
        let Some(op) = self.spiq.front().copied() else {
            return false;
        };
        let done = match op {
            SpOp::Alu {
                dst,
                srcs,
                pops_asdq,
            } => {
                if !self.sp_sb.all_ready(&srcs, now) {
                    false
                } else if (self.asdq.len() as u8) < pops_asdq
                    || !self
                        .asdq
                        .iter()
                        .take(pops_asdq as usize)
                        .all(|e| e.is_ready(now))
                {
                    false
                } else {
                    for _ in 0..pops_asdq {
                        self.asdq.pop();
                    }
                    self.sp_sb.set_ready(dst, now + 1);
                    true
                }
            }
            SpOp::PopAsdq { dst } => {
                if self.asdq.front().is_some_and(|e| e.is_ready(now)) {
                    self.asdq.pop();
                    self.sp_sb.set_ready(dst, now + 1);
                    true
                } else {
                    false
                }
            }
            SpOp::PushSadq { src } => self.sp_push(src, |e| &mut e.sadq),
            SpOp::PushSvdq { src } => self.sp_push(src, |e| &mut e.svdq),
            SpOp::PushSsdq { src } => self.sp_push(src, |e| &mut e.ssdq),
            SpOp::PopVsdq { dst } => {
                if self.vsdq.front().is_some_and(|e| e.is_ready(now)) {
                    self.vsdq.pop();
                    self.sp_sb.set_ready(dst, now + 1);
                    true
                } else {
                    false
                }
            }
            SpOp::Branch { cond } => {
                if self.sp_sb.is_ready(cond, now) {
                    self.branches_to_fp += 1;
                    true
                } else {
                    false
                }
            }
        };
        if done {
            self.spiq.pop();
        }
        done
    }

    fn sp_push(
        &mut self,
        src: ScalarReg,
        queue: impl for<'e> Fn(&'e mut Engine) -> &'e mut Fifo<Timed<()>>,
    ) -> bool {
        let now = self.now;
        if !self.sp_sb.is_ready(src, now) {
            return false;
        }
        if queue(self).is_full() {
            return false;
        }
        queue(self).push(Timed::new((), now + 1));
        true
    }

    // -- vector processor ---------------------------------------------------

    fn step_vp(&mut self) -> bool {
        let now = self.now;
        let startup = self.cfg.uarch.fu_startup;
        let qstartup = self.cfg.uarch.qmov_startup;
        let Some(op) = self.vpiq.front().copied() else {
            return false;
        };
        let done = match op {
            VpOp::Compute {
                op,
                dst,
                reads,
                pops_svdq,
                vl,
            } => {
                if pops_svdq && !self.svdq.front().is_some_and(|e| e.is_ready(now)) {
                    false
                } else if !self.vregs.can_issue(now, &reads, Some(dst), self.chain) {
                    false
                } else {
                    let unit = if op.requires_general_unit() {
                        &mut self.fu2
                    } else if self.fu1.is_free(now) {
                        &mut self.fu1
                    } else {
                        &mut self.fu2
                    };
                    if !unit.is_free(now) {
                        false
                    } else {
                        unit.reserve(now, vl.cycles());
                        if pops_svdq {
                            self.svdq.pop();
                        }
                        self.vregs.begin_reads(now, &reads, vl.cycles());
                        self.vregs.begin_write(
                            dst,
                            now,
                            now + startup,
                            now + startup + vl.cycles(),
                            Producer::FunctionalUnit,
                        );
                        true
                    }
                }
            }
            VpOp::Reduce { src, vl, .. } => {
                if self.vsdq.is_full() || !self.vregs.can_issue(now, &[src], None, self.chain) {
                    false
                } else {
                    let unit = if self.fu1.is_free(now) {
                        &mut self.fu1
                    } else if self.fu2.is_free(now) {
                        &mut self.fu2
                    } else {
                        return false;
                    };
                    unit.reserve(now, vl.cycles());
                    self.vregs.begin_reads(now, &[src], vl.cycles());
                    self.vsdq
                        .push(Timed::new((), now + startup + vl.cycles() + 1));
                    true
                }
            }
            VpOp::QmovLoad { dst, reads, vl } => {
                if self.avdq.front().is_none_or(|s| s.ready_at > now) {
                    false
                } else if !self.vregs.can_issue(now, &reads, Some(dst), self.chain) {
                    false
                } else {
                    let unit = if self.qmov1.is_free(now) {
                        &mut self.qmov1
                    } else if self.qmov2.is_free(now) {
                        &mut self.qmov2
                    } else {
                        return false;
                    };
                    unit.reserve(now, vl.cycles());
                    self.avdq.pop();
                    self.push_drain(now + vl.cycles());
                    if !reads.is_empty() {
                        self.vregs.begin_reads(now, &reads, vl.cycles());
                    }
                    self.vregs.begin_write(
                        dst,
                        now,
                        now + qstartup,
                        now + qstartup + vl.cycles(),
                        Producer::Qmov,
                    );
                    true
                }
            }
            VpOp::QmovStore { reads, vl, data } => {
                if self.vadq.is_full() || !self.vregs.can_issue(now, &reads, None, self.chain) {
                    false
                } else {
                    let unit = if self.qmov1.is_free(now) {
                        &mut self.qmov1
                    } else if self.qmov2.is_free(now) {
                        &mut self.qmov2
                    } else {
                        return false;
                    };
                    unit.reserve(now, vl.cycles());
                    self.vregs.begin_reads(now, &reads, vl.cycles());
                    // First element lands after the QMOV startup; consumers
                    // (store engine, bypass unit) chain one cycle behind.
                    let first_at = now + qstartup + 1;
                    self.vadq.push(VadqEntry { data, first_at, vl });
                    self.store_data_ready.insert(data, first_at);
                    true
                }
            }
        };
        if done {
            self.vpiq.pop();
        }
        done
    }

    // -- fetch processor ----------------------------------------------------

    fn fp_can_dispatch(&self, slots: (usize, usize, usize)) -> bool {
        self.apiq.free_slots() >= slots.0
            && self.spiq.free_slots() >= slots.1
            && self.vpiq.free_slots() >= slots.2
    }

    // -- fast-forward -------------------------------------------------------

    /// The earliest cycle strictly after `now` at which *anything* in the
    /// machine can change state: data arriving in a queue, a functional
    /// unit or the address bus freeing, a scoreboard or vector register
    /// becoming ready, a draining AVDQ slot expiring, or a queued store's
    /// data landing.
    ///
    /// Every gating condition in the step functions is either static
    /// until some unit makes progress or a comparison of `now` against
    /// one of these times, so after a tick that made no progress nothing
    /// can happen before this cycle — the engine may jump straight to it.
    /// `None` means no timed event is outstanding (a deadlock unless the
    /// engine is structurally done).
    fn next_event_at(&self, now: Cycle) -> Option<Cycle> {
        let mut next = dva_isa::EarliestAfter::new(now);
        // Sample-exactness events: the Figure 1 state tuple reads the two
        // functional units and the memory ports, and the AVDQ occupancy
        // histogram counts draining slots, so each of those transitions
        // must land on an executed tick even when no unit can progress.
        // (Ports also re-enter here one free at a time: on a multi-ported
        // memory the sampled LD flag flips at the *last* port free while
        // the issue gates flip at the first.)
        next.consider(self.fu1.free_at());
        next.consider(self.fu2.free_at());
        next.consider_opt(self.mem.next_free_at(now));
        if let Some(&until) = self.avdq_draining.front() {
            next.consider(until);
        }
        // Precise per-unit wake times: for each stalled unit, the exact
        // earliest cycle its front operation's gates can all be open,
        // derived from the same state the step functions check. Within a
        // no-progress window every gate is monotone (operands only become
        // ready, ports and slots only free), so the wake is the max over
        // the individual gate times — and `None` means the unit is
        // blocked on another unit's *progress*, which re-evaluates
        // everything anyway. Jumps land on ticks that actually advance,
        // instead of on every timer anywhere in the machine.
        // Each processor's wake is cached under the progress version: on
        // consecutive stalls (nothing changed, the clock has not reached
        // the wake) the cached value is still exact and the whole
        // gate-time computation is skipped.
        next.consider_opt(self.cached_wake(&self.wake_ap_cache, now, || self.wake_ap(now)));
        next.consider_opt(self.cached_wake(&self.wake_sp_cache, now, || self.wake_sp()));
        next.consider_opt(self.cached_wake(&self.wake_vp_cache, now, || self.wake_vp()));
        next.consider_opt(self.cached_wake(&self.wake_store_cache, now, || self.wake_store(now)));
        if self.cfg.bypass {
            next.consider_opt(
                self.cached_wake(&self.wake_bypass_cache, now, || self.wake_bypass()),
            );
        }
        next.get()
    }

    // -- per-unit wake times ------------------------------------------------

    /// Reads a wake time through its version-stamped cache, recomputing
    /// and re-stamping it when the version moved or the clock reached the
    /// cached value (`Cycle::MAX` encodes "blocked on progress").
    fn cached_wake(
        &self,
        cache: &std::cell::Cell<(u64, Cycle)>,
        now: Cycle,
        compute: impl FnOnce() -> Option<Cycle>,
    ) -> Option<Cycle> {
        let (version, wake) = cache.get();
        if version == self.progress_version && now < wake {
            return (wake != Cycle::MAX).then_some(wake);
        }
        let wake = compute();
        cache.set((self.progress_version, wake.unwrap_or(Cycle::MAX)));
        wake
    }

    /// The first cycle at which at least one memory port can accept an
    /// access, given no new reservations.
    fn port_ready_at(&self, now: Cycle) -> Cycle {
        if self.mem.port_free(now) {
            now
        } else {
            self.mem.next_free_at(now).unwrap_or(now)
        }
    }

    /// When an AVDQ slot frees: `now` if one is free, the k-th drain
    /// expiry that brings occupancy under capacity, or `None` when only a
    /// VP pop (progress) can free one. The drain list is sorted and holds
    /// only unexpired entries, so the k-th entry is the exact answer.
    fn avdq_slot_free_at(&self, now: Cycle) -> Option<Cycle> {
        let busy = self.avdq_busy_slots_at(now);
        let cap = self.avdq.capacity();
        if busy < cap {
            return Some(now);
        }
        self.avdq_draining.get(busy - cap).copied()
    }

    /// The cached disambiguation verdict for the AP's front load. The
    /// stalled step just evaluated it, so this is a lookup; the fallback
    /// recomputes without touching the cache.
    fn cached_conflict(&self, access: &VecAccess) -> Option<Conflict> {
        let serial = self.apiq.total_pushed() - self.apiq.len() as u64;
        match self.disambig_cache {
            Some((gen, s, result)) if gen == self.store_gen && s == serial => result,
            _ => self.disambiguate(access.range(), access.strided()),
        }
    }

    /// Exact wake time of the address processor's front µop, or `None`
    /// when it is blocked on another unit's progress (a full queue, a
    /// store drain, data that has not been produced).
    fn wake_ap(&self, now: Cycle) -> Option<Cycle> {
        // Drain mode persisting past the stalled tick means stores are
        // still pending; commits are store-engine progress.
        if self.ap_drain_until.is_some() {
            return None;
        }
        let op = self.apiq.front()?;
        match *op {
            ApOp::Alu {
                srcs, pops_sadq, ..
            } => {
                if (self.sadq.len() as u8) < pops_sadq {
                    return None; // waiting on an SP push
                }
                let mut at = self.ap_sb.ready_after(&srcs);
                for e in self.sadq.iter().take(pops_sadq as usize) {
                    at = at.max(e.ready_at);
                }
                Some(at)
            }
            ApOp::PushAsdq { src } => {
                if self.asdq.is_full() {
                    None // waiting on the SP to pop
                } else {
                    Some(self.ap_sb.ready_at(src))
                }
            }
            ApOp::ScalarLoad { to_sp, addr, .. } => {
                // A conflicted load put the AP in drain mode above.
                if to_sp && self.asdq.is_full() {
                    return None;
                }
                Some(if self.mem.probe_scalar(addr) == CacheAccess::Miss {
                    self.port_ready_at(now)
                } else {
                    now // a hit always issues; unreachable on a stall
                })
            }
            ApOp::ScalarStoreAddr { .. } => None, // stalled ⇒ SSAQ full
            ApOp::VectorStoreAddr { .. } => None, // stalled ⇒ VSAQ full
            ApOp::VectorLoad { access } => match self.cached_conflict(&access) {
                Some(c) if self.cfg.bypass && c.identical => {
                    // Bypass reservation: only the AVDQ slot gates it.
                    self.avdq_slot_free_at(now)
                }
                Some(_) => None, // hazard: drain mode handles it
                None => {
                    let slot = self.avdq_slot_free_at(now)?;
                    Some(slot.max(self.port_ready_at(now)))
                }
            },
            ApOp::Branch { cond } => Some(self.ap_sb.ready_at(cond)),
        }
    }

    /// Exact wake time of the scalar processor's front µop.
    fn wake_sp(&self) -> Option<Cycle> {
        let op = self.spiq.front()?;
        match *op {
            SpOp::Alu {
                srcs, pops_asdq, ..
            } => {
                if (self.asdq.len() as u8) < pops_asdq {
                    return None; // waiting on an AP push
                }
                let mut at = self.sp_sb.ready_after(&srcs);
                for e in self.asdq.iter().take(pops_asdq as usize) {
                    at = at.max(e.ready_at);
                }
                Some(at)
            }
            SpOp::PopAsdq { .. } => self.asdq.front().map(|e| e.ready_at),
            SpOp::PushSadq { src } => (!self.sadq.is_full()).then(|| self.sp_sb.ready_at(src)),
            SpOp::PushSvdq { src } => (!self.svdq.is_full()).then(|| self.sp_sb.ready_at(src)),
            SpOp::PushSsdq { src } => (!self.ssdq.is_full()).then(|| self.sp_sb.ready_at(src)),
            SpOp::PopVsdq { .. } => self.vsdq.front().map(|e| e.ready_at),
            SpOp::Branch { cond } => Some(self.sp_sb.ready_at(cond)),
        }
    }

    /// Exact wake time of the vector processor's front µop.
    fn wake_vp(&self) -> Option<Cycle> {
        let op = self.vpiq.front()?;
        match *op {
            VpOp::Compute {
                op,
                dst,
                reads,
                pops_svdq,
                ..
            } => {
                let mut at: Cycle = 0;
                if pops_svdq {
                    at = self.svdq.front()?.ready_at;
                }
                at = at.max(self.vregs.issue_ready_at(&reads, Some(dst), self.chain));
                at = at.max(if op.requires_general_unit() {
                    self.fu2.free_at()
                } else {
                    self.fu1.free_at().min(self.fu2.free_at())
                });
                Some(at)
            }
            VpOp::Reduce { src, .. } => {
                if self.vsdq.is_full() {
                    return None; // waiting on the SP to pop
                }
                let at = self
                    .vregs
                    .issue_ready_at(&[src], None, self.chain)
                    .max(self.fu1.free_at().min(self.fu2.free_at()));
                Some(at)
            }
            VpOp::QmovLoad { dst, reads, .. } => {
                let front = self.avdq.front()?;
                if front.ready_at == Cycle::MAX {
                    return None; // filled by the bypass unit (progress)
                }
                let at = front
                    .ready_at
                    .max(self.vregs.issue_ready_at(&reads, Some(dst), self.chain))
                    .max(self.qmov1.free_at().min(self.qmov2.free_at()));
                Some(at)
            }
            VpOp::QmovStore { reads, .. } => {
                if self.vadq.is_full() {
                    return None; // waiting on a store commit
                }
                let at = self
                    .vregs
                    .issue_ready_at(&reads, None, self.chain)
                    .max(self.qmov1.free_at().min(self.qmov2.free_at()));
                Some(at)
            }
        }
    }

    /// Wake time of the store engine: the earlier of the next scalar and
    /// vector commits it could perform.
    fn wake_store(&self, now: Cycle) -> Option<Cycle> {
        let mut next = dva_isa::EarliestAfter::new(now.saturating_sub(1));
        if let Some(front) = self.ssaq.front() {
            let data = match front.ap_data_ready {
                Some(t) => Some(t),
                None => self.ssdq.front().map(|d| d.ready_at),
            };
            if let Some(data) = data {
                next.consider(data.max(self.port_ready_at(now)));
            }
        }
        // Vector stores write back only under the lazy-writeback gates,
        // all of which flip on progress, not time.
        let flush = self.pc >= self.compiled.len() && self.pending.is_none();
        let pressured = self.vsaq.len() + 1 >= self.vsaq.capacity()
            || self.vadq.len() + 1 >= self.vadq.capacity();
        let draining = match (self.ap_drain_until, self.vsaq.front()) {
            (Some(limit), Some(front)) => front.seq <= limit,
            _ => false,
        };
        if flush || pressured || draining {
            if let Some(data) = self.vadq.front() {
                next.consider(data.first_at.max(self.port_ready_at(now)));
            }
        }
        next.get()
    }

    /// Wake time of the bypass unit's front pending copy.
    fn wake_bypass(&self) -> Option<Cycle> {
        let pending = self.pending_bypasses.front()?;
        let data = self.store_data_ready.get(pending.data)?;
        Some(data.max(self.bypass_unit.free_at()))
    }
}

impl Processor for Engine {
    fn step(&mut self, now: Cycle) -> Progress {
        self.now = now;
        // Entries whose drain has completed can never be observed
        // again (the busy-slot filter already ignores them); the list is
        // sorted ascending, so expiry is a pop-front-while-expired
        // instead of a whole-list scan.
        while self
            .avdq_draining
            .front()
            .is_some_and(|&until| until <= now)
        {
            self.avdq_draining.pop_front();
        }

        let mut progress = false;
        // The AP owns the memory port; lazy store writebacks take the
        // bus only in the cycles the AP leaves it idle. Each processor's
        // attempt is skipped outright while its cached wake time (from
        // the last fast-forward computation) certifies it must fail; any
        // sub-unit progress bumps the version and re-enables the
        // attempts that follow it, including within this same tick. The
        // AP attempt always runs in drain mode, which counts its stall
        // cycles inside the attempt.
        // A failed attempt immediately re-stamps its unit's wake cache
        // (the attempt just evaluated every gate, so the wake derivation
        // is exact *now*): until the version moves or the clock reaches
        // the wake, the unit skips its attempts — including across
        // dispatch-only ticks, which leave the version alone.
        let (ver, wake) = self.wake_ap_cache.get();
        if self.ap_drain_until.is_some() || ver != self.progress_version || now >= wake {
            let advanced = self.step_ap();
            self.progress_version += u64::from(advanced);
            progress |= advanced;
            if !advanced {
                let wake = self.wake_ap(now).unwrap_or(Cycle::MAX);
                self.wake_ap_cache.set((self.progress_version, wake));
            }
        }
        let (ver, wake) = self.wake_sp_cache.get();
        if ver != self.progress_version || now >= wake {
            let advanced = self.step_sp();
            self.progress_version += u64::from(advanced);
            progress |= advanced;
            if !advanced {
                let wake = self.wake_sp().unwrap_or(Cycle::MAX);
                self.wake_sp_cache.set((self.progress_version, wake));
            }
        }
        let (ver, wake) = self.wake_vp_cache.get();
        if ver != self.progress_version || now >= wake {
            let advanced = self.step_vp();
            self.progress_version += u64::from(advanced);
            progress |= advanced;
            if !advanced {
                let wake = self.wake_vp().unwrap_or(Cycle::MAX);
                self.wake_vp_cache.set((self.progress_version, wake));
            }
        }
        let flush = self.pc >= self.compiled.len() && self.pending.is_none();
        let (ver, wake) = self.wake_store_cache.get();
        if ver != self.progress_version || now >= wake {
            let advanced = self.step_store_engine(flush);
            self.progress_version += u64::from(advanced);
            progress |= advanced;
            if !advanced {
                let wake = self.wake_store(now).unwrap_or(Cycle::MAX);
                self.wake_store_cache.set((self.progress_version, wake));
            }
        }
        if self.cfg.bypass {
            let (ver, wake) = self.wake_bypass_cache.get();
            if ver != self.progress_version || now >= wake {
                let advanced = self.step_bypass_engine();
                self.progress_version += u64::from(advanced);
                progress |= advanced;
                if !advanced {
                    let wake = self.wake_bypass().unwrap_or(Cycle::MAX);
                    self.wake_bypass_cache.set((self.progress_version, wake));
                }
            }
        }

        // Fetch/dispatch: one architectural instruction per cycle, read
        // straight out of the pre-translated bundle stream (no bundle is
        // ever copied: stalled bundles wait as an index).
        if self.pending.is_none() && self.pc < self.compiled.len() {
            self.pending = Some(self.pc);
            self.pc += 1;
        }
        let mut fronts_changed = false;
        let dispatched = match self.pending {
            Some(index) => {
                let bundle = &self.compiled.bundles()[index];
                if self.fp_can_dispatch(bundle.slots()) {
                    if let Some(ap) = bundle.ap {
                        fronts_changed |= self.apiq.is_empty();
                        self.apiq.push(ap);
                    }
                    for sp in bundle.sp.iter() {
                        fronts_changed |= self.spiq.is_empty();
                        self.spiq.push(*sp);
                    }
                    if let Some(vp) = bundle.vp {
                        fronts_changed |= self.vpiq.is_empty();
                        self.vpiq.push(vp);
                    }
                    true
                } else {
                    self.fp_stalls += 1;
                    false
                }
            }
            None => false,
        };
        if dispatched {
            self.pending = None;
            // A push into a non-empty instruction queue changes no unit's
            // front µop, and the wake times read nothing else the
            // dispatch touches — the cached wakes stay exact, so the
            // version is left alone and the units keep skipping their
            // attempts. A push that installs a new front µop re-enables
            // that unit; the final dispatch flips the store engine's
            // flush gate, so it bumps too.
            if fronts_changed || self.pc >= self.compiled.len() {
                self.progress_version += 1;
            }
            progress = true;
        }
        Progress::from(progress)
    }

    /// Structural completion: everything fetched, all queues drained.
    fn is_done(&self) -> bool {
        let done = self.pc >= self.compiled.len()
            && self.pending.is_none()
            && self.apiq.is_empty()
            && self.spiq.is_empty()
            && self.vpiq.is_empty()
            && self.avdq.is_empty()
            && self.vadq.is_empty()
            && self.vsaq.is_empty()
            && self.ssaq.is_empty()
            && self.pending_bypasses.is_empty();
        if done {
            // A translator bug that leaves orphaned entries in the
            // five scalar data queues would otherwise be dropped
            // silently here: by the time the instruction queues drain,
            // every push must have had its matching pop.
            debug_assert!(
                self.ssdq.is_empty()
                    && self.asdq.is_empty()
                    && self.sadq.is_empty()
                    && self.svdq.is_empty()
                    && self.vsdq.is_empty(),
                "orphaned scalar data queue entries at structural completion: \
                 SSDQ={} ASDQ={} SADQ={} SVDQ={} VSDQ={}",
                self.ssdq.len(),
                self.asdq.len(),
                self.sadq.len(),
                self.svdq.len(),
                self.vsdq.len(),
            );
            debug_assert!(
                self.store_data_ready.is_empty(),
                "store data-ready slots must be garbage-collected by \
                 structural completion ({} left)",
                self.store_data_ready.len(),
            );
        }
        done
    }

    fn next_event_after(&self, now: Cycle) -> Option<Cycle> {
        self.next_event_at(now)
    }

    fn quiesce_at(&self) -> Cycle {
        self.vregs
            .quiesce_at()
            .max(self.ap_sb.quiesce_at())
            .max(self.sp_sb.quiesce_at())
            .max(self.fu1.free_at())
            .max(self.fu2.free_at())
            .max(self.qmov1.free_at())
            .max(self.qmov2.free_at())
            .max(self.bypass_unit.free_at())
            .max(self.mem.quiesce_at())
    }

    fn sample(&self, now: Cycle, obs: &mut Observers) {
        obs.record_occupancy(self.avdq_busy_slots_at(now));
        obs.record_state(self.state_at(now));
    }

    /// During the post-completion drain the AVDQ is empty (structural
    /// completion requires it) and QMOV drains no longer hold slots any
    /// consumer can observe, so the occupancy histogram records zero.
    fn drain_sample(&self, now: Cycle, obs: &mut Observers) {
        obs.record_state(self.state_at(now));
        obs.record_occupancy(0);
    }

    fn account_skipped(&mut self, _now: Cycle, skipped: u64) {
        if self.pending.is_some() {
            self.fp_stalls += skipped;
        }
        let drain_stalled = self
            .ap_drain_until
            .is_some_and(|limit| self.oldest_pending_store().is_some_and(|o| o <= limit));
        if drain_stalled {
            self.drain_stall_cycles += skipped;
        }
    }

    fn report(&self, cycles: Cycle) -> Report {
        Report {
            insts: self.compiled.len() as u64,
            traffic: self.mem.traffic(),
            bus_utilization: self.mem.utilization(cycles),
            port_utilization: self.mem.port_utilizations(cycles),
            cache_hit_rate: self.mem.cache().hit_rate(),
            cache: self.mem.cache().stats(),
            stall_cycles: self.fp_stalls,
        }
    }

    fn deadlock_context(&self, _now: Cycle) -> String {
        format!(
            "DVA pc={}/{} APIQ={} SPIQ={} VPIQ={} AVDQ={} VADQ={} VSAQ={} SSAQ={} \
             next_commit={} drain={:?} pending_byp={}",
            self.pc,
            self.compiled.len(),
            self.apiq.len(),
            self.spiq.len(),
            self.vpiq.len(),
            self.avdq.len(),
            self.vadq.len(),
            self.vsaq.len(),
            self.ssaq.len(),
            self.stores_committed,
            self.ap_drain_until,
            self.pending_bypasses.len(),
        )
    }
}

/// Drives `engine` (fresh or [`reset`](Engine::reset)) to completion
/// through the shared [`Driver`] and assembles the decoupled machine's
/// result. The engine keeps its buffers afterwards, ready for the next
/// reset.
pub(crate) fn drive(engine: &mut Engine, fast_forward: bool) -> DvaResult {
    try_drive(engine, fast_forward).unwrap_or_else(|e| panic!("{e}"))
}

/// [`drive`], but a tripped deadlock watchdog comes back as a
/// [`SimError`] instead of a panic. The engine is left mid-flight on
/// error; [`reset`](Engine::reset) restores it for the next run.
pub(crate) fn try_drive(engine: &mut Engine, fast_forward: bool) -> Result<DvaResult, SimError> {
    let mut observers = Observers::with_occupancy(Histogram::new(engine.cfg.queues.avdq));
    let completion = Driver::new()
        .fast_forward(fast_forward)
        .try_run(engine, &mut observers)?;
    Ok(assemble(completion, engine, observers))
}

/// Drives a batch of engines — the per-lane timing states of one
/// lockstep pass — to completion through
/// [`Driver::run_batch`](dva_engine::Driver::run_batch) and assembles
/// each lane's result, in lane order.
///
/// Every engine must have been [`reset`](Engine::reset) (or freshly
/// constructed) against the *same* compiled program: the bundle stream,
/// issue order, hazard ranges and store sequence are the shared
/// read-only structure of the batch, while each engine carries its own
/// configuration, queues, unit busy-times and memory model.
pub(crate) fn drive_batch(engines: &mut [Engine], fast_forward: bool) -> Vec<DvaResult> {
    try_drive_batch(engines, fast_forward).unwrap_or_else(|e| panic!("{e}"))
}

/// [`drive_batch`], but a tripped deadlock watchdog on any lane comes
/// back as a [`SimError`] instead of a panic. On error the whole batch
/// is abandoned mid-flight; the caller re-runs lanes individually (after
/// a [`reset`](Engine::reset)) to salvage the healthy ones.
pub(crate) fn try_drive_batch(
    engines: &mut [Engine],
    fast_forward: bool,
) -> Result<Vec<DvaResult>, SimError> {
    debug_assert!(
        engines
            .windows(2)
            .all(|pair| Arc::ptr_eq(&pair[0].compiled, &pair[1].compiled)),
        "batched lanes must share one compiled program"
    );
    let mut observers: Vec<Observers> = engines
        .iter()
        .map(|engine| Observers::with_occupancy(Histogram::new(engine.cfg.queues.avdq)))
        .collect();
    let mut lanes: Vec<Lane<'_, Engine>> = engines
        .iter_mut()
        .zip(observers.iter_mut())
        .map(|(processor, observers)| Lane {
            processor,
            observers,
        })
        .collect();
    let completions = Driver::new()
        .fast_forward(fast_forward)
        .try_run_batch(&mut lanes)?;
    drop(lanes);
    Ok(completions
        .into_iter()
        .zip(engines.iter())
        .zip(observers)
        .map(|((completion, engine), observers)| assemble(completion, engine, observers))
        .collect())
}

/// Builds the decoupled machine's result from a finished run's clock,
/// observers and engine — the one place a [`DvaResult`] is put together,
/// shared by the sequential and batched paths.
fn assemble(completion: Completion, engine: &Engine, observers: Observers) -> DvaResult {
    let (core, occupancy) = completion.into_core(engine, observers);
    let avdq_occupancy = occupancy.expect("the DVA observers carry the AVDQ histogram");
    let max_avdq = avdq_occupancy.max_observed().unwrap_or(0);
    DvaResult {
        core,
        avdq_occupancy,
        bypassed_loads: engine.bypassed_loads,
        drain_stall_cycles: engine.drain_stall_cycles,
        max_vpiq: engine.vpiq.max_occupancy(),
        max_apiq: engine.apiq.max_occupancy(),
        max_avdq,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dva_isa::{Inst, Program, VectorAccess, VectorReg};
    use dva_testutil::vl;

    fn run(cfg: DvaConfig, program: &Program, fast_forward: bool) -> DvaResult {
        let compiled = Arc::new(CompiledProgram::compile(program));
        drive(&mut Engine::new(cfg, compiled), fast_forward)
    }

    /// A long stream of short vector loads rotating over the eight
    /// registers: with deep instruction queues and a long latency the AP
    /// slips far ahead and piles up outstanding AVDQ slots.
    fn load_storm(loads: usize, n: u32) -> Program {
        let insts: Vec<Inst> = (0..loads)
            .map(|i| Inst::VLoad {
                dst: VectorReg::ALL[i % VectorReg::ALL.len()],
                access: VectorAccess::unit(0x10_0000 + (i as u64) * 0x1000, vl(n)),
            })
            .collect();
        Program::from_insts("load-storm", insts)
    }

    #[test]
    fn avdq_histogram_covers_the_configured_capacity() {
        // Regression: the histogram used to be clamped to 64 buckets, so
        // configurations with AVDQ > 64 silently under-reported
        // `max_avdq` and the fig6/queue-sizing sweeps.
        let cfg = DvaConfig::builder().avdq(128).build();
        let program = load_storm(4, 64);
        let r = run(cfg, &program, true);
        assert_eq!(r.avdq_occupancy.buckets().len(), 128 + 1);
        assert_eq!(r.avdq_occupancy.overflow(), 0);
    }

    #[test]
    fn deep_queues_report_occupancy_beyond_64() {
        // With the clamp in place this scenario reported max_avdq == 64
        // no matter how deep the queue actually got.
        let cfg = DvaConfig::builder()
            .latency(800)
            .instruction_queue(512)
            .avdq(256)
            .build();
        let program = load_storm(120, 8);
        let r = run(cfg, &program, true);
        assert!(
            r.max_avdq > 64,
            "AVDQ only reached {} slots; the scenario no longer exercises \
             the >64 range",
            r.max_avdq
        );
        assert_eq!(r.avdq_occupancy.total(), r.cycles);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "orphaned scalar data queue entries")]
    fn orphaned_scalar_queue_entries_are_detected() {
        // Simulates a translator bug: an SVDQ entry nothing ever pops.
        let program = Program::from_insts("empty", Vec::new());
        let compiled = Arc::new(CompiledProgram::compile(&program));
        let mut engine = Engine::new(DvaConfig::default(), compiled);
        engine.svdq.push(Timed::new((), 0));
        let _ = drive(&mut engine, true);
    }

    #[test]
    fn fast_forward_and_naive_agree_on_a_mixed_program() {
        let mut insts = vec![
            Inst::VLoad {
                dst: VectorReg::V0,
                access: VectorAccess::unit(0x1000, vl(64)),
            },
            Inst::VStore {
                src: VectorReg::V0,
                access: VectorAccess::unit(0x2000, vl(64)),
            },
            Inst::VLoad {
                dst: VectorReg::V2,
                access: VectorAccess::unit(0x2000, vl(64)),
            },
        ];
        insts.extend((0..4).map(|i| Inst::VLoad {
            dst: VectorReg::ALL[4 + i % 4],
            access: VectorAccess::unit(0x9000 + i as u64 * 0x1000, vl(32)),
        }));
        let program = Program::from_insts("mixed", insts);
        for latency in [1, 37, 100] {
            for cfg in [
                DvaConfig::dva(latency),
                DvaConfig::byp(latency, 4, 8),
                DvaConfig::byp(latency, 256, 16),
            ] {
                let fast = run(cfg, &program, true);
                let naive = run(cfg, &program, false);
                assert_eq!(fast, naive, "L={latency} cfg={cfg:?}");
                assert!(
                    fast.ticks_executed.get() <= naive.ticks_executed.get(),
                    "fast-forward must never execute more ticks"
                );
            }
        }
    }

    /// A lockstep batch over mixed configurations — different latencies,
    /// queue sizes, bypass and memory models in one pass — must produce,
    /// lane for lane, the bytes of sequential runs.
    #[test]
    fn batched_lanes_are_byte_identical_to_sequential_runs() {
        use crate::{DvaRunner, DvaSim};
        let program = load_storm(12, 32);
        let compiled = Arc::new(CompiledProgram::compile(&program));
        let mut banked = DvaConfig::dva(30);
        banked.memory.model = dva_memory::MemoryModelKind::Banked {
            banks: 8,
            bank_busy: 8,
        };
        let configs = [
            DvaConfig::dva(1),
            DvaConfig::dva(100),
            DvaConfig::byp(30, 4, 8),
            banked,
        ];
        let sims: Vec<DvaSim> = configs.iter().map(|&cfg| DvaSim::new(cfg)).collect();
        let expected: Vec<DvaResult> = sims.iter().map(|sim| sim.run_compiled(&compiled)).collect();
        for lanes in 1..=sims.len() {
            let mut runner = DvaRunner::new();
            let batch = runner.run_batch(&sims[..lanes], &compiled);
            assert_eq!(batch, expected[..lanes], "lane count {lanes}");
            // And the pool resets cleanly for the next batch.
            assert_eq!(runner.run_batch(&sims[..lanes], &compiled), batch);
        }
        assert!(DvaRunner::new().run_batch(&[], &compiled).is_empty());
    }

    /// A reset engine must behave exactly like a fresh one, across
    /// different configurations and programs.
    #[test]
    fn reset_is_byte_identical_to_a_fresh_engine() {
        let storm = Arc::new(CompiledProgram::compile(&load_storm(24, 32)));
        let mixed = {
            let insts = vec![
                Inst::VLoad {
                    dst: VectorReg::V0,
                    access: VectorAccess::unit(0x1000, vl(64)),
                },
                Inst::VStore {
                    src: VectorReg::V0,
                    access: VectorAccess::unit(0x2000, vl(64)),
                },
                Inst::VLoad {
                    dst: VectorReg::V2,
                    access: VectorAccess::unit(0x2000, vl(64)),
                },
            ];
            Arc::new(CompiledProgram::compile(&Program::from_insts("m", insts)))
        };
        let mut engine = Engine::new(DvaConfig::dva(1), Arc::clone(&storm));
        let _ = drive(&mut engine, true);
        for (cfg, compiled) in [
            (DvaConfig::dva(70), &storm),
            (DvaConfig::byp(30, 4, 8), &mixed),
            (DvaConfig::builder().latency(5).avdq(4).build(), &storm),
        ] {
            engine.reset(cfg, Arc::clone(compiled));
            let reused = drive(&mut engine, true);
            let fresh = drive(&mut Engine::new(cfg, Arc::clone(compiled)), true);
            assert_eq!(reused, fresh, "cfg={cfg:?}");
        }
    }

    #[test]
    fn data_ready_ring_tracks_out_of_order_removal() {
        let mut ring = DataReadyRing::with_capacity(4);
        ring.insert(0, 10);
        ring.insert(1, 20);
        ring.insert(2, 30);
        assert_eq!(ring.get(1), Some(20));
        // Remove the middle slot: the front stays, nothing is released.
        ring.remove(1);
        assert_eq!(ring.get(1), None);
        assert_eq!(ring.get(0), Some(10));
        assert_eq!(ring.len(), 2);
        // Removing the front releases it and the dead middle slot.
        ring.remove(0);
        assert_eq!(ring.get(2), Some(30));
        ring.remove(2);
        assert!(ring.is_empty());
        // Stale lookups below the base are simply absent.
        assert_eq!(ring.get(0), None);
        ring.insert(3, 40);
        assert_eq!(ring.get(3), Some(40));
    }
}
