//! The cycle-stepped decoupled-machine engine: four processors, the
//! architectural queues, the two-step store engine and the bypass unit.

// Issue checks are written as guard chains where every arm names one
// distinct stall reason and yields `false`; clippy would fold the arms
// together and lose that structure.
#![allow(clippy::if_same_then_else)]

use crate::config::DvaConfig;
use crate::queues::{Fifo, Timed};
use crate::result::DvaResult;
use crate::uops::{translate, ApOp, SpOp, StoreDataSource, StoreSeq, VecAccess, VpOp};
use dva_isa::{Cycle, MemRange, Program, ScalarReg, VectorLength};
use dva_memory::{CacheAccess, MemorySystem};
use dva_metrics::{Histogram, StateTracker, UnitState};
use dva_uarch::{ChainPolicy, FuPipe, Producer, Scoreboard, VectorRegFile};
use std::collections::HashMap;

/// How many cycles without any progress before the engine declares a
/// deadlock (a bug) and panics with diagnostics.
const WATCHDOG_CYCLES: u64 = 200_000;

/// One slot of the vector load data queue. Each slot holds a full vector
/// register's worth of data.
#[derive(Debug, Clone, Copy)]
struct AvdqSlot {
    id: u64,
    /// When the data is fully present (never chained: the VP cannot start
    /// consuming before the last element arrives).
    ready_at: Cycle,
    /// For bypassed loads: the store whose data this slot will receive.
    pending_bypass: Option<StoreSeq>,
}

/// A vector store address waiting in the VSAQ.
#[derive(Debug, Clone, Copy)]
struct VsaqEntry {
    access: VecAccess,
    seq: StoreSeq,
}

/// A scalar store address waiting in the SSAQ.
#[derive(Debug, Clone, Copy)]
struct SsaqEntry {
    addr: u64,
    seq: StoreSeq,
    /// When the data is available: known at push time for AP-sourced
    /// data; `None` means "from the scalar store data queue".
    ap_data_ready: Option<Cycle>,
}

/// A vector store's data sitting in (or streaming into) the VADQ.
///
/// The store engine chains off the QMOV stream: the commit may start once
/// the *first* element is present (the paper performs the store "when the
/// first slot in both an address queue and its corresponding data queue is
/// ready"); the memory write then streams one element per cycle behind the
/// incoming data.
#[derive(Debug, Clone, Copy)]
struct VadqEntry {
    seq: StoreSeq,
    /// First element present (commit may chain from here).
    first_at: Cycle,
    vl: VectorLength,
}

/// A load waiting for its bypass copy to start.
#[derive(Debug, Clone, Copy)]
struct PendingBypass {
    slot_id: u64,
    store_seq: StoreSeq,
    vl: VectorLength,
}

pub(crate) struct Engine {
    cfg: DvaConfig,
    chain: ChainPolicy,
    now: Cycle,

    // Vector processor state.
    vregs: VectorRegFile,
    fu1: FuPipe,
    fu2: FuPipe,
    qmov1: FuPipe,
    qmov2: FuPipe,

    // Scalar/address processor state.
    ap_sb: Scoreboard,
    sp_sb: Scoreboard,

    // Memory.
    mem: MemorySystem,

    // Instruction queues.
    apiq: Fifo<ApOp>,
    spiq: Fifo<SpOp>,
    vpiq: Fifo<VpOp>,

    // Data queues.
    avdq: Fifo<AvdqSlot>,
    avdq_draining: Vec<Cycle>,
    next_avdq_id: u64,
    vadq: Fifo<VadqEntry>,
    vsaq: Fifo<VsaqEntry>,
    ssaq: Fifo<SsaqEntry>,
    ssdq: Fifo<Timed<()>>,
    asdq: Fifo<Timed<()>>,
    sadq: Fifo<Timed<()>>,
    svdq: Fifo<Timed<()>>,
    vsdq: Fifo<Timed<()>>,

    // Store engine. Vector stores are written back *lazily*: they stay in
    // the VSAQ/VADQ until queue pressure, a hazard drain or the end of the
    // program forces them out — maximizing the window in which a later
    // identical load can bypass them. Scalar stores commit eagerly.
    /// seq → cycle its data first lands in the VADQ. Retained after commit
    /// so a pending bypass can still source the value.
    store_data_ready: HashMap<StoreSeq, Cycle>,
    stores_committed: u64,

    // Bypass engine.
    bypass_unit: FuPipe,
    pending_bypasses: Vec<PendingBypass>,
    bypassed_loads: u64,

    // Drain mode: the AP is blocked until all stores up to this sequence
    // number (inclusive) have committed.
    ap_drain_until: Option<StoreSeq>,

    // Measurements.
    states: StateTracker,
    avdq_hist: Histogram,
    fp_stalls: u64,
    drain_stall_cycles: u64,
    branches_to_fp: u64,
    progress_at: Cycle,
}

impl Engine {
    pub(crate) fn new(cfg: DvaConfig) -> Engine {
        let q = cfg.queues;
        Engine {
            cfg,
            chain: ChainPolicy::reference(),
            now: 0,
            vregs: VectorRegFile::new(&cfg.uarch),
            fu1: FuPipe::new("FU1"),
            fu2: FuPipe::new("FU2"),
            qmov1: FuPipe::new("QMOV1"),
            qmov2: FuPipe::new("QMOV2"),
            ap_sb: Scoreboard::new(),
            sp_sb: Scoreboard::new(),
            mem: MemorySystem::new(cfg.memory),
            apiq: Fifo::new("APIQ", q.instruction_queue),
            spiq: Fifo::new("SPIQ", q.instruction_queue),
            vpiq: Fifo::new("VPIQ", q.instruction_queue),
            avdq: Fifo::new("AVDQ", q.avdq),
            avdq_draining: Vec::new(),
            next_avdq_id: 0,
            vadq: Fifo::new("VADQ", q.store_queue),
            vsaq: Fifo::new("VSAQ", q.store_queue),
            ssaq: Fifo::new("SSAQ", q.scalar_store_queue),
            ssdq: Fifo::new("SSDQ", q.scalar_data_queue),
            asdq: Fifo::new("ASDQ", q.scalar_data_queue),
            sadq: Fifo::new("SADQ", q.scalar_data_queue),
            svdq: Fifo::new("SVDQ", q.scalar_data_queue),
            vsdq: Fifo::new("VSDQ", q.scalar_data_queue),
            store_data_ready: HashMap::new(),
            stores_committed: 0,
            bypass_unit: FuPipe::new("BYPASS"),
            pending_bypasses: Vec::new(),
            bypassed_loads: 0,
            ap_drain_until: None,
            states: StateTracker::new(),
            avdq_hist: Histogram::new(q.avdq.min(64)),
            fp_stalls: 0,
            drain_stall_cycles: 0,
            branches_to_fp: 0,
            progress_at: 0,
        }
    }

    // -- occupancy ---------------------------------------------------------

    fn avdq_busy_slots(&self) -> usize {
        let draining = self
            .avdq_draining
            .iter()
            .filter(|&&until| until > self.now)
            .count();
        self.avdq.len() + draining
    }

    fn avdq_has_free_slot(&self) -> bool {
        self.avdq_busy_slots() < self.avdq.capacity()
    }

    // -- disambiguation -----------------------------------------------------

    /// Checks `range` against every queued store older than the load.
    /// Returns the youngest conflicting store's sequence number and
    /// whether that youngest conflict is an *identical* vector access
    /// (bypass candidate).
    fn disambiguate(
        &self,
        range: MemRange,
        identical_to: Option<&dva_isa::VectorAccess>,
    ) -> Option<(StoreSeq, bool)> {
        let mut youngest: Option<(StoreSeq, bool)> = None;
        for entry in self.vsaq.iter() {
            if entry.access.range().overlaps(&range) {
                let identical = match (identical_to, entry.access.strided()) {
                    (Some(load), Some(store)) => load.is_identical(store),
                    _ => false,
                };
                if youngest.is_none_or(|(s, _)| entry.seq > s) {
                    youngest = Some((entry.seq, identical));
                }
            }
        }
        for entry in self.ssaq.iter() {
            let store_range = MemRange::new(entry.addr, entry.addr + 8);
            if store_range.overlaps(&range) && youngest.is_none_or(|(s, _)| entry.seq > s) {
                youngest = Some((entry.seq, false));
            }
        }
        youngest
    }

    // -- store engine -------------------------------------------------------

    /// The oldest store still awaiting writeback, if any. Because the AP
    /// enqueues addresses in program order, the queue fronts bound every
    /// pending store.
    fn oldest_pending_store(&self) -> Option<StoreSeq> {
        let v = self.vsaq.front().map(|e| e.seq);
        let s = self.ssaq.front().map(|e| e.seq);
        match (v, s) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Commits stores. Scalar stores write back eagerly; vector stores
    /// write back only under pressure (queue nearly full), on a hazard
    /// drain, or when the program is flushing — they otherwise linger in
    /// the store queue, which is what gives the bypass its window.
    /// Vector and scalar stores each commit in program order among
    /// themselves; the generated address spaces are disjoint, so the
    /// relaxation across the two queues cannot reorder same-address
    /// writes.
    fn step_store_engine(&mut self, flush: bool) -> bool {
        let now = self.now;
        // Scalar store: eager.
        if let Some(front) = self.ssaq.front().copied() {
            let data_ready = match front.ap_data_ready {
                Some(t) => t <= now,
                None => self.ssdq.front().is_some_and(|d| d.is_ready(now)),
            };
            if data_ready && self.mem.bus_free(now) {
                if front.ap_data_ready.is_none() {
                    self.ssdq.pop();
                }
                self.mem.scalar_store(now, front.addr);
                self.ssaq.pop();
                self.stores_committed += 1;
                return true;
            }
        }
        // Vector store: lazy.
        let pressured = self.vsaq.len() + 1 >= self.vsaq.capacity()
            || self.vadq.len() + 1 >= self.vadq.capacity();
        let draining = match (self.ap_drain_until, self.vsaq.front()) {
            (Some(limit), Some(front)) => front.seq <= limit,
            _ => false,
        };
        if !(flush || pressured || draining) {
            return false;
        }
        let (Some(_), Some(data)) = (self.vsaq.front(), self.vadq.front().copied()) else {
            return false;
        };
        if data.first_at > now || !self.mem.bus_free(now) {
            return false;
        }
        debug_assert_eq!(
            self.vsaq.front().map(|e| e.seq),
            Some(data.seq),
            "VADQ order must match VSAQ order"
        );
        self.mem.issue_vector_store(now, data.vl);
        self.vsaq.pop();
        self.vadq.pop();
        self.stores_committed += 1;
        true
    }

    // -- bypass engine ------------------------------------------------------

    /// Starts at most one bypass copy per cycle (oldest pending first).
    fn step_bypass_engine(&mut self) -> bool {
        if self.pending_bypasses.is_empty() || !self.bypass_unit.is_free(self.now) {
            return false;
        }
        let pending = self.pending_bypasses[0];
        let Some(&data_ready) = self.store_data_ready.get(&pending.store_seq) else {
            return false; // the VP has not issued the store's QMOV yet
        };
        if data_ready > self.now {
            return false;
        }
        self.pending_bypasses.remove(0);
        self.bypass_unit.reserve(self.now, pending.vl.cycles());
        let ready_at = self.now + pending.vl.cycles();
        let slot = self
            .avdq
            .iter()
            .position(|s| s.id == pending.slot_id)
            .expect("bypassed AVDQ slot must still be queued");
        // Fifo has no indexed mutation; rebuild the slot via iter_mut
        // through front after rotating is overkill — use interior update.
        self.avdq.update_at(slot, |s| {
            s.ready_at = ready_at;
            s.pending_bypass = None;
        });
        self.mem.record_bypass(pending.vl);
        self.bypassed_loads += 1;
        true
    }

    // -- address processor --------------------------------------------------

    fn step_ap(&mut self) -> bool {
        let now = self.now;
        // Drain mode blocks the AP until the offending stores commit.
        if let Some(limit) = self.ap_drain_until {
            if self
                .oldest_pending_store()
                .is_some_and(|oldest| oldest <= limit)
            {
                self.drain_stall_cycles += 1;
                return false;
            }
            self.ap_drain_until = None;
        }
        let Some(op) = self.apiq.front().copied() else {
            return false;
        };
        let done = match op {
            ApOp::Alu {
                dst,
                srcs,
                pops_sadq,
            } => {
                if !self.ap_sb.all_ready(&srcs, now) {
                    false
                } else if (self.sadq.len() as u8) < pops_sadq
                    || !self
                        .sadq
                        .iter()
                        .take(pops_sadq as usize)
                        .all(|e| e.is_ready(now))
                {
                    false
                } else {
                    for _ in 0..pops_sadq {
                        self.sadq.pop();
                    }
                    self.ap_sb.set_ready(dst, now + 1);
                    true
                }
            }
            ApOp::PushAsdq { src } => {
                if !self.ap_sb.is_ready(src, now) || self.asdq.is_full() {
                    false
                } else {
                    self.asdq.push(Timed::new((), now + 1));
                    true
                }
            }
            ApOp::ScalarLoad { dst, to_sp, addr } => self.ap_scalar_load(dst, to_sp, addr),
            ApOp::ScalarStoreAddr { addr, data, seq } => {
                if self.ssaq.is_full() {
                    false
                } else {
                    let ap_data_ready = match data {
                        StoreDataSource::AddressProcessor(reg) => {
                            Some(self.ap_sb.ready_at(reg).max(now))
                        }
                        StoreDataSource::ScalarProcessor => None,
                    };
                    self.ssaq.push(SsaqEntry {
                        addr,
                        seq,
                        ap_data_ready,
                    });
                    true
                }
            }
            ApOp::VectorLoad { access } => self.ap_vector_load(access),
            ApOp::VectorStoreAddr { access, seq } => {
                if self.vsaq.is_full() {
                    false
                } else {
                    self.vsaq.push(VsaqEntry { access, seq });
                    true
                }
            }
            ApOp::Branch { cond } => {
                if self.ap_sb.is_ready(cond, now) {
                    self.branches_to_fp += 1;
                    true
                } else {
                    false
                }
            }
        };
        if done {
            self.apiq.pop();
        }
        done
    }

    fn ap_scalar_load(&mut self, dst: Option<ScalarReg>, to_sp: bool, addr: u64) -> bool {
        let now = self.now;
        let range = MemRange::new(addr, addr + 8);
        if let Some((seq, _)) = self.disambiguate(range, None) {
            self.ap_drain_until = Some(seq);
            return false;
        }
        if to_sp && self.asdq.is_full() {
            return false;
        }
        if self.mem.probe_scalar(addr) == CacheAccess::Miss && !self.mem.bus_free(now) {
            return false;
        }
        let issue = self.mem.scalar_load(now, addr);
        if to_sp {
            self.asdq.push(Timed::new((), issue.data_complete_at));
        } else if let Some(dst) = dst {
            self.ap_sb.set_ready(dst, issue.data_complete_at);
        }
        true
    }

    fn ap_vector_load(&mut self, access: VecAccess) -> bool {
        let now = self.now;
        let conflict = self.disambiguate(access.range(), access.strided());
        match conflict {
            Some((seq, identical)) if self.cfg.bypass && identical => {
                // Bypass: reserve the AVDQ slot now; the copy starts when
                // the store's data lands in the VADQ. The AP moves on —
                // the memory port stays free during the copy.
                if !self.avdq_has_free_slot() {
                    return false;
                }
                let id = self.next_avdq_id;
                self.next_avdq_id += 1;
                self.avdq.push(AvdqSlot {
                    id,
                    ready_at: Cycle::MAX,
                    pending_bypass: Some(seq),
                });
                self.pending_bypasses.push(PendingBypass {
                    slot_id: id,
                    store_seq: seq,
                    vl: access.vl(),
                });
                true
            }
            Some((seq, _)) => {
                // Memory hazard: write back everything up to the youngest
                // offending store, then retry.
                self.ap_drain_until = Some(seq);
                false
            }
            None => {
                if !self.avdq_has_free_slot() || !self.mem.bus_free(now) {
                    return false;
                }
                let issue = self.mem.issue_vector_load(now, access.vl());
                let id = self.next_avdq_id;
                self.next_avdq_id += 1;
                self.avdq.push(AvdqSlot {
                    id,
                    ready_at: issue.data_complete_at,
                    pending_bypass: None,
                });
                true
            }
        }
    }

    // -- scalar processor ---------------------------------------------------

    fn step_sp(&mut self) -> bool {
        let now = self.now;
        let Some(op) = self.spiq.front().copied() else {
            return false;
        };
        let done = match op {
            SpOp::Alu {
                dst,
                srcs,
                pops_asdq,
            } => {
                if !self.sp_sb.all_ready(&srcs, now) {
                    false
                } else if (self.asdq.len() as u8) < pops_asdq
                    || !self
                        .asdq
                        .iter()
                        .take(pops_asdq as usize)
                        .all(|e| e.is_ready(now))
                {
                    false
                } else {
                    for _ in 0..pops_asdq {
                        self.asdq.pop();
                    }
                    self.sp_sb.set_ready(dst, now + 1);
                    true
                }
            }
            SpOp::PopAsdq { dst } => {
                if self.asdq.front().is_some_and(|e| e.is_ready(now)) {
                    self.asdq.pop();
                    self.sp_sb.set_ready(dst, now + 1);
                    true
                } else {
                    false
                }
            }
            SpOp::PushSadq { src } => self.sp_push(src, |e| &mut e.sadq),
            SpOp::PushSvdq { src } => self.sp_push(src, |e| &mut e.svdq),
            SpOp::PushSsdq { src } => self.sp_push(src, |e| &mut e.ssdq),
            SpOp::PopVsdq { dst } => {
                if self.vsdq.front().is_some_and(|e| e.is_ready(now)) {
                    self.vsdq.pop();
                    self.sp_sb.set_ready(dst, now + 1);
                    true
                } else {
                    false
                }
            }
            SpOp::Branch { cond } => {
                if self.sp_sb.is_ready(cond, now) {
                    self.branches_to_fp += 1;
                    true
                } else {
                    false
                }
            }
        };
        if done {
            self.spiq.pop();
        }
        done
    }

    fn sp_push(
        &mut self,
        src: ScalarReg,
        queue: impl Fn(&mut Engine) -> &mut Fifo<Timed<()>>,
    ) -> bool {
        let now = self.now;
        if !self.sp_sb.is_ready(src, now) {
            return false;
        }
        if queue(self).is_full() {
            return false;
        }
        queue(self).push(Timed::new((), now + 1));
        true
    }

    // -- vector processor ---------------------------------------------------

    fn step_vp(&mut self) -> bool {
        let now = self.now;
        let startup = self.cfg.uarch.fu_startup;
        let qstartup = self.cfg.uarch.qmov_startup;
        let Some(op) = self.vpiq.front().copied() else {
            return false;
        };
        let done = match op {
            VpOp::Compute {
                op,
                dst,
                srcs,
                pops_svdq,
                vl,
            } => {
                let reads: Vec<_> = srcs.into_iter().flatten().collect();
                if pops_svdq && !self.svdq.front().is_some_and(|e| e.is_ready(now)) {
                    false
                } else if !self.vregs.can_issue(now, &reads, Some(dst), self.chain) {
                    false
                } else {
                    let unit = if op.requires_general_unit() {
                        &mut self.fu2
                    } else if self.fu1.is_free(now) {
                        &mut self.fu1
                    } else {
                        &mut self.fu2
                    };
                    if !unit.is_free(now) {
                        false
                    } else {
                        unit.reserve(now, vl.cycles());
                        if pops_svdq {
                            self.svdq.pop();
                        }
                        self.vregs.begin_reads(now, &reads, vl.cycles());
                        self.vregs.begin_write(
                            dst,
                            now,
                            now + startup,
                            now + startup + vl.cycles(),
                            Producer::FunctionalUnit,
                        );
                        true
                    }
                }
            }
            VpOp::Reduce { src, vl, .. } => {
                if self.vsdq.is_full() || !self.vregs.can_issue(now, &[src], None, self.chain) {
                    false
                } else {
                    let unit = if self.fu1.is_free(now) {
                        &mut self.fu1
                    } else if self.fu2.is_free(now) {
                        &mut self.fu2
                    } else {
                        return false;
                    };
                    unit.reserve(now, vl.cycles());
                    self.vregs.begin_reads(now, &[src], vl.cycles());
                    self.vsdq
                        .push(Timed::new((), now + startup + vl.cycles() + 1));
                    true
                }
            }
            VpOp::QmovLoad { dst, index, vl } => {
                let reads: Vec<_> = index.into_iter().collect();
                if self.avdq.front().is_none_or(|s| s.ready_at > now) {
                    false
                } else if !self.vregs.can_issue(now, &reads, Some(dst), self.chain) {
                    false
                } else {
                    let unit = if self.qmov1.is_free(now) {
                        &mut self.qmov1
                    } else if self.qmov2.is_free(now) {
                        &mut self.qmov2
                    } else {
                        return false;
                    };
                    unit.reserve(now, vl.cycles());
                    self.avdq.pop();
                    self.avdq_draining.push(now + vl.cycles());
                    if !reads.is_empty() {
                        self.vregs.begin_reads(now, &reads, vl.cycles());
                    }
                    self.vregs.begin_write(
                        dst,
                        now,
                        now + qstartup,
                        now + qstartup + vl.cycles(),
                        Producer::Qmov,
                    );
                    true
                }
            }
            VpOp::QmovStore {
                src,
                index,
                vl,
                seq,
            } => {
                let mut reads = vec![src];
                reads.extend(index);
                if self.vadq.is_full() || !self.vregs.can_issue(now, &reads, None, self.chain) {
                    false
                } else {
                    let unit = if self.qmov1.is_free(now) {
                        &mut self.qmov1
                    } else if self.qmov2.is_free(now) {
                        &mut self.qmov2
                    } else {
                        return false;
                    };
                    unit.reserve(now, vl.cycles());
                    self.vregs.begin_reads(now, &reads, vl.cycles());
                    // First element lands after the QMOV startup; consumers
                    // (store engine, bypass unit) chain one cycle behind.
                    let first_at = now + qstartup + 1;
                    self.vadq.push(VadqEntry { seq, first_at, vl });
                    self.store_data_ready.insert(seq, first_at);
                    true
                }
            }
        };
        if done {
            self.vpiq.pop();
        }
        done
    }

    // -- fetch processor ----------------------------------------------------

    fn fp_can_dispatch(&self, slots: (usize, usize, usize)) -> bool {
        self.apiq.free_slots() >= slots.0
            && self.spiq.free_slots() >= slots.1
            && self.vpiq.free_slots() >= slots.2
    }

    // -- main loop ----------------------------------------------------------

    pub(crate) fn run(mut self, program: &Program) -> DvaResult {
        let insts = program.insts();
        let mut pc = 0usize;
        let mut next_store_seq: StoreSeq = 0;
        let mut pending: Option<crate::uops::Bundle> = None;

        loop {
            let mut progress = false;
            // The AP owns the memory port; lazy store writebacks take the
            // bus only in the cycles the AP leaves it idle.
            progress |= self.step_ap();
            progress |= self.step_sp();
            progress |= self.step_vp();
            let flush = pc >= insts.len() && pending.is_none();
            progress |= self.step_store_engine(flush);
            if self.cfg.bypass {
                progress |= self.step_bypass_engine();
            }

            // Fetch/dispatch: one architectural instruction per cycle.
            if pending.is_none() && pc < insts.len() {
                pending = Some(translate(&insts[pc], &mut next_store_seq));
                pc += 1;
            }
            if let Some(bundle) = pending.take() {
                if self.fp_can_dispatch(bundle.slots()) {
                    if let Some(ap) = bundle.ap {
                        self.apiq.push(ap);
                    }
                    for sp in &bundle.sp {
                        self.spiq.push(*sp);
                    }
                    if let Some(vp) = bundle.vp {
                        self.vpiq.push(vp);
                    }
                    progress = true;
                } else {
                    self.fp_stalls += 1;
                    pending = Some(bundle);
                }
            }

            // Sample per-cycle statistics.
            self.avdq_hist.tick(self.avdq_busy_slots());
            self.states.tick(UnitState::from_flags(
                self.fu2.is_busy_at(self.now),
                self.fu1.is_busy_at(self.now),
                !self.mem.bus_free(self.now),
            ));

            if progress {
                self.progress_at = self.now;
            }

            // Termination: everything fetched, all queues drained.
            let structurally_done = pc >= insts.len()
                && pending.is_none()
                && self.apiq.is_empty()
                && self.spiq.is_empty()
                && self.vpiq.is_empty()
                && self.avdq.is_empty()
                && self.vadq.is_empty()
                && self.vsaq.is_empty()
                && self.ssaq.is_empty()
                && self.pending_bypasses.is_empty();
            if structurally_done {
                let end = self
                    .vregs
                    .quiesce_at()
                    .max(self.ap_sb.quiesce_at())
                    .max(self.sp_sb.quiesce_at())
                    .max(self.fu1.free_at())
                    .max(self.fu2.free_at())
                    .max(self.qmov1.free_at())
                    .max(self.qmov2.free_at())
                    .max(self.bypass_unit.free_at())
                    .max(self.mem.bus().free_at());
                self.now += 1;
                while self.now < end {
                    self.states.tick(UnitState::from_flags(
                        self.fu2.is_busy_at(self.now),
                        self.fu1.is_busy_at(self.now),
                        !self.mem.bus_free(self.now),
                    ));
                    self.avdq_hist.tick(0);
                    self.now += 1;
                }
                break;
            }

            if self.now - self.progress_at > WATCHDOG_CYCLES {
                panic!(
                    "decoupled engine deadlock at cycle {}: pc={pc}/{} APIQ={} SPIQ={} VPIQ={} \
                     AVDQ={} VADQ={} VSAQ={} SSAQ={} next_commit={} drain={:?} pending_byp={}",
                    self.now,
                    insts.len(),
                    self.apiq.len(),
                    self.spiq.len(),
                    self.vpiq.len(),
                    self.avdq.len(),
                    self.vadq.len(),
                    self.vsaq.len(),
                    self.ssaq.len(),
                    self.stores_committed,
                    self.ap_drain_until,
                    self.pending_bypasses.len(),
                );
            }
            self.now += 1;
        }

        let cycles = self.now;
        let max_avdq = self.avdq_hist.max_observed().unwrap_or(0);
        DvaResult {
            cycles,
            insts: insts.len() as u64,
            states: self.states,
            traffic: self.mem.traffic(),
            avdq_occupancy: self.avdq_hist,
            bypassed_loads: self.bypassed_loads,
            fp_stalls: self.fp_stalls,
            drain_stall_cycles: self.drain_stall_cycles,
            bus_utilization: self.mem.bus().utilization(cycles),
            cache_hit_rate: self.mem.cache().hit_rate(),
            max_vpiq: self.vpiq.max_occupancy(),
            max_apiq: self.apiq.max_occupancy(),
            max_avdq,
        }
    }
}
