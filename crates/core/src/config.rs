//! Configuration of the decoupled machine.

use dva_json::{FromJson, Json, JsonError, ToJson};
use dva_memory::MemoryParams;
use dva_uarch::UarchParams;

/// Capacities of the architectural queues (paper, Sections 4 and 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueConfig {
    /// Instruction queues (APIQ, SPIQ, VPIQ). The paper uses 16: reducing
    /// from 512 to 16 costs under 2%.
    pub instruction_queue: usize,
    /// Vector load data queue (AVDQ) slots, each one full vector register.
    /// The paper's default study uses 256; Section 6 shows 4 suffices.
    pub avdq: usize,
    /// Vector store queue slots (paired address/data: VSAQ + VADQ). The
    /// paper fixes 16 and shows 8 captures almost all of the benefit.
    pub store_queue: usize,
    /// Scalar store address queue (SSAQ) slots.
    pub scalar_store_queue: usize,
    /// Scalar data queues (ASDQ, SADQ, SVDQ, VSDQ, SSDQ).
    pub scalar_data_queue: usize,
}

impl Default for QueueConfig {
    /// The paper's DVA configuration: instruction queues of 16, AVDQ of
    /// 256, store queue of 16, scalar queues of 256.
    fn default() -> Self {
        QueueConfig {
            instruction_queue: 16,
            avdq: 256,
            store_queue: 16,
            scalar_store_queue: 16,
            scalar_data_queue: 256,
        }
    }
}

impl QueueConfig {
    /// The `BYP n/m` configurations of Section 7: load queue of `avdq`
    /// slots, store queue of `store_queue` slots.
    pub fn bypass_config(avdq: usize, store_queue: usize) -> QueueConfig {
        QueueConfig {
            avdq,
            store_queue,
            ..QueueConfig::default()
        }
    }
}

/// Full configuration of the decoupled vector architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DvaConfig {
    /// Vector engine timing (shared with the reference machine).
    pub uarch: UarchParams,
    /// Memory system parameters.
    pub memory: MemoryParams,
    /// Queue capacities.
    pub queues: QueueConfig,
    /// Whether the VADQ→AVDQ store→load bypass unit is present
    /// (Section 7).
    pub bypass: bool,
}

impl DvaConfig {
    /// The paper's base DVA at the given memory latency: 16-entry
    /// instruction queues, 256-slot AVDQ, 16-slot store queue, no bypass.
    pub fn dva(latency: u64) -> DvaConfig {
        DvaConfig {
            uarch: UarchParams::default(),
            memory: MemoryParams::with_latency(latency),
            queues: QueueConfig::default(),
            bypass: false,
        }
    }

    /// A `BYP load/store` configuration of Section 7 at the given latency.
    pub fn byp(latency: u64, load_queue: usize, store_queue: usize) -> DvaConfig {
        DvaConfig {
            uarch: UarchParams::default(),
            memory: MemoryParams::with_latency(latency),
            queues: QueueConfig::bypass_config(load_queue, store_queue),
            bypass: true,
        }
    }
}

impl Default for DvaConfig {
    fn default() -> Self {
        DvaConfig::dva(1)
    }
}

impl ToJson for QueueConfig {
    fn to_json(&self) -> Json {
        Json::obj([
            ("instruction_queue", Json::from(self.instruction_queue)),
            ("avdq", Json::from(self.avdq)),
            ("store_queue", Json::from(self.store_queue)),
            ("scalar_store_queue", Json::from(self.scalar_store_queue)),
            ("scalar_data_queue", Json::from(self.scalar_data_queue)),
        ])
    }
}

impl FromJson for QueueConfig {
    fn from_json(json: &Json) -> Result<QueueConfig, JsonError> {
        Ok(QueueConfig {
            instruction_queue: json.field("instruction_queue")?.as_usize()?,
            avdq: json.field("avdq")?.as_usize()?,
            store_queue: json.field("store_queue")?.as_usize()?,
            scalar_store_queue: json.field("scalar_store_queue")?.as_usize()?,
            scalar_data_queue: json.field("scalar_data_queue")?.as_usize()?,
        })
    }
}

impl ToJson for DvaConfig {
    fn to_json(&self) -> Json {
        Json::obj([
            ("uarch", self.uarch.to_json()),
            ("memory", self.memory.to_json()),
            ("queues", self.queues.to_json()),
            ("bypass", Json::from(self.bypass)),
        ])
    }
}

impl FromJson for DvaConfig {
    fn from_json(json: &Json) -> Result<DvaConfig, JsonError> {
        Ok(DvaConfig {
            uarch: UarchParams::from_json(json.field("uarch")?)?,
            memory: MemoryParams::from_json(json.field("memory")?)?,
            queues: QueueConfig::from_json(json.field("queues")?)?,
            bypass: json.field("bypass")?.as_bool()?,
        })
    }
}

impl DvaConfig {
    /// Starts an ergonomic builder from the paper's base DVA at unit
    /// latency.
    ///
    /// ```
    /// use dva_core::DvaConfig;
    ///
    /// let config = DvaConfig::builder()
    ///     .latency(30)
    ///     .avdq(4)
    ///     .store_queue(8)
    ///     .bypass(true)
    ///     .build();
    /// assert_eq!(config.memory.latency, 30);
    /// assert_eq!(config.queues.avdq, 4);
    /// assert!(config.bypass);
    /// ```
    pub fn builder() -> DvaConfigBuilder {
        DvaConfigBuilder {
            config: DvaConfig::dva(1),
        }
    }
}

/// Builder for [`DvaConfig`], created by [`DvaConfig::builder`].
#[derive(Debug, Clone, Copy)]
pub struct DvaConfigBuilder {
    config: DvaConfig,
}

impl DvaConfigBuilder {
    /// Sets the main memory latency `L` in cycles.
    pub fn latency(mut self, latency: u64) -> Self {
        self.config.memory.latency = latency;
        self
    }

    /// Replaces the whole memory configuration.
    pub fn memory(mut self, memory: MemoryParams) -> Self {
        self.config.memory = memory;
        self
    }

    /// Replaces the vector engine timing.
    pub fn uarch(mut self, uarch: UarchParams) -> Self {
        self.config.uarch = uarch;
        self
    }

    /// Replaces the whole queue configuration.
    pub fn queues(mut self, queues: QueueConfig) -> Self {
        self.config.queues = queues;
        self
    }

    /// Sets the instruction queue (APIQ/SPIQ/VPIQ) depth.
    pub fn instruction_queue(mut self, slots: usize) -> Self {
        self.config.queues.instruction_queue = slots;
        self
    }

    /// Sets the vector load data queue (AVDQ) depth.
    pub fn avdq(mut self, slots: usize) -> Self {
        self.config.queues.avdq = slots;
        self
    }

    /// Sets the vector store queue (VSAQ/VADQ) depth.
    pub fn store_queue(mut self, slots: usize) -> Self {
        self.config.queues.store_queue = slots;
        self
    }

    /// Sets the scalar store address queue (SSAQ) depth.
    pub fn scalar_store_queue(mut self, slots: usize) -> Self {
        self.config.queues.scalar_store_queue = slots;
        self
    }

    /// Sets the scalar data queue depths (ASDQ, SADQ, SVDQ, VSDQ, SSDQ).
    pub fn scalar_data_queue(mut self, slots: usize) -> Self {
        self.config.queues.scalar_data_queue = slots;
        self
    }

    /// Enables or disables the VADQ→AVDQ store→load bypass unit.
    pub fn bypass(mut self, bypass: bool) -> Self {
        self.config.bypass = bypass;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> DvaConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_base_configuration() {
        let q = QueueConfig::default();
        assert_eq!(q.instruction_queue, 16);
        assert_eq!(q.avdq, 256);
        assert_eq!(q.store_queue, 16);
        assert!(!DvaConfig::dva(30).bypass);
    }

    #[test]
    fn builder_mirrors_the_named_constructors() {
        let byp = DvaConfig::builder()
            .latency(30)
            .avdq(4)
            .store_queue(8)
            .bypass(true)
            .build();
        let named = DvaConfig::byp(30, 4, 8);
        assert_eq!(byp.memory, named.memory);
        assert_eq!(byp.queues, named.queues);
        assert_eq!(byp.bypass, named.bypass);

        let dva = DvaConfig::builder().latency(50).build();
        let named = DvaConfig::dva(50);
        assert_eq!(dva.memory, named.memory);
        assert_eq!(dva.queues, named.queues);
        assert!(!dva.bypass);
    }

    #[test]
    fn builder_reaches_every_queue() {
        let c = DvaConfig::builder()
            .instruction_queue(4)
            .scalar_store_queue(2)
            .scalar_data_queue(8)
            .build();
        assert_eq!(c.queues.instruction_queue, 4);
        assert_eq!(c.queues.scalar_store_queue, 2);
        assert_eq!(c.queues.scalar_data_queue, 8);
    }

    #[test]
    fn configurations_round_trip_through_json() {
        for config in [
            DvaConfig::dva(30),
            DvaConfig::byp(100, 4, 8),
            DvaConfig::builder()
                .latency(50)
                .instruction_queue(4)
                .scalar_data_queue(64)
                .build(),
        ] {
            assert_eq!(DvaConfig::from_json(&config.to_json()).unwrap(), config);
        }
    }

    #[test]
    fn byp_configurations_set_both_queues() {
        let c = DvaConfig::byp(1, 4, 8);
        assert!(c.bypass);
        assert_eq!(c.queues.avdq, 4);
        assert_eq!(c.queues.store_queue, 8);
        assert_eq!(c.queues.instruction_queue, 16);
    }
}
