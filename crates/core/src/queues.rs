//! Bounded FIFO queues with occupancy tracking.

use dva_isa::Cycle;
use std::collections::VecDeque;

/// A bounded FIFO connecting two processors of the decoupled machine.
///
/// All inter-processor communication in the architecture flows through
/// queues of this shape (paper, Section 4); a full queue back-pressures
/// the producer and an empty one blocks the consumer.
#[derive(Debug, Clone)]
pub struct Fifo<T> {
    name: &'static str,
    cap: usize,
    items: VecDeque<T>,
    max_occupancy: usize,
    total_pushed: u64,
}

impl<T> Fifo<T> {
    /// Creates an empty queue with capacity `cap`.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero — every architectural queue holds at least
    /// one entry.
    pub fn new(name: &'static str, cap: usize) -> Fifo<T> {
        assert!(cap > 0, "queue {name} must have nonzero capacity");
        Fifo {
            name,
            cap,
            // Full-capacity preallocation: pushes never touch the heap, so
            // the engines' steady-state tick loops stay allocation-free.
            items: VecDeque::with_capacity(cap),
            max_occupancy: 0,
            total_pushed: 0,
        }
    }

    /// Empties the queue and re-arms it with a (possibly different)
    /// capacity, keeping the already-allocated storage when it suffices.
    /// Part of the engines' [`reset`] contract: after `reset` the queue is
    /// indistinguishable from a freshly constructed one, but re-running a
    /// simulation allocates nothing.
    ///
    /// [`reset`]: crate::DvaRunner
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn reset(&mut self, cap: usize) {
        assert!(cap > 0, "queue {} must have nonzero capacity", self.name);
        self.cap = cap;
        self.items.clear();
        if self.items.capacity() < cap {
            self.items.reserve(cap);
        }
        self.max_occupancy = 0;
        self.total_pushed = 0;
    }

    /// The queue's diagnostic name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the queue is at capacity.
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.cap
    }

    /// Remaining free slots.
    pub fn free_slots(&self) -> usize {
        self.cap - self.items.len()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Pushes an entry.
    ///
    /// # Panics
    ///
    /// Panics when full; producers must check [`Fifo::is_full`] first.
    pub fn push(&mut self, item: T) {
        assert!(!self.is_full(), "queue {} overflow", self.name);
        self.items.push_back(item);
        self.max_occupancy = self.max_occupancy.max(self.items.len());
        self.total_pushed += 1;
    }

    /// The entry at the head, if any.
    pub fn front(&self) -> Option<&T> {
        self.items.front()
    }

    /// Mutable access to the head entry.
    pub fn front_mut(&mut self) -> Option<&mut T> {
        self.items.front_mut()
    }

    /// Pops the head entry.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Iterates the entries from oldest to youngest.
    pub fn iter(&self) -> impl DoubleEndedIterator<Item = &T> {
        self.items.iter()
    }

    /// Applies `f` to the entry at `index` (0 = oldest).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn update_at(&mut self, index: usize, f: impl FnOnce(&mut T)) {
        let item = self
            .items
            .get_mut(index)
            .unwrap_or_else(|| panic!("queue index {index} out of bounds"));
        f(item);
    }

    /// Highest occupancy ever observed.
    pub fn max_occupancy(&self) -> usize {
        self.max_occupancy
    }

    /// Total entries pushed over the run.
    pub fn total_pushed(&self) -> u64 {
        self.total_pushed
    }
}

/// A queue entry carrying data that materializes at a known cycle: slots
/// are *reserved* in program order but become consumable only when their
/// data arrives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Timed<T> {
    /// The payload.
    pub value: T,
    /// Cycle at which the data is fully present and consumable.
    pub ready_at: Cycle,
}

impl<T> Timed<T> {
    /// Creates an entry that becomes ready at `ready_at`.
    pub fn new(value: T, ready_at: Cycle) -> Timed<T> {
        Timed { value, ready_at }
    }

    /// Whether the data has arrived by cycle `now`.
    pub fn is_ready(&self, now: Cycle) -> bool {
        self.ready_at <= now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_preserves_order_and_tracks_occupancy() {
        let mut q: Fifo<u32> = Fifo::new("test", 3);
        q.push(1);
        q.push(2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        q.push(3);
        q.push(4);
        assert!(q.is_full());
        assert_eq!(q.max_occupancy(), 3);
        assert_eq!(q.total_pushed(), 4);
        let rest: Vec<u32> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(rest, vec![2, 3, 4]);
    }

    #[test]
    fn reset_restores_a_pristine_queue_without_reallocating() {
        let mut q: Fifo<u32> = Fifo::new("test", 4);
        q.push(1);
        q.push(2);
        q.pop();
        let storage = q.items.capacity();
        q.reset(3);
        assert!(q.is_empty());
        assert_eq!(q.capacity(), 3);
        assert_eq!(q.max_occupancy(), 0);
        assert_eq!(q.total_pushed(), 0);
        assert_eq!(q.items.capacity(), storage, "storage must be reused");
        // Growing past the old storage is allowed (and reallocates).
        q.reset(8);
        assert!(q.items.capacity() >= 8);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let mut q: Fifo<u8> = Fifo::new("tiny", 1);
        q.push(0);
        q.push(1);
    }

    #[test]
    #[should_panic(expected = "nonzero capacity")]
    fn zero_capacity_rejected() {
        let _: Fifo<u8> = Fifo::new("zero", 0);
    }

    #[test]
    fn timed_entries_gate_on_arrival() {
        let t = Timed::new('x', 10);
        assert!(!t.is_ready(9));
        assert!(t.is_ready(10));
    }
}
