//! The IDEAL lower bound of Section 5.
//!
//! "To compute the lower bound … we consider what would be the execution
//! time if there were no dependencies at all. We consider only resource
//! constraints … Given that our two architectures both have essentially
//! five resources (unit FU1, unit FU2, the memory port, the scalar
//! processor and the scalar cache), we partition all operations executed
//! by a program into these five categories. Then, the category that has
//! the maximum number of operations determines the minimum theoretical
//! execution time."
//!
//! Vector work that can run on either functional unit is split optimally
//! between FU1 and FU2; scalar cache misses consume the memory port as
//! well as the cache. The bound assumes a *single* memory port — which is
//! why the bypass configurations can outperform it (the paper observes the
//! same artifact for FLO52).

use dva_isa::{Cycle, Inst, Program};
use dva_json::{FromJson, Json, JsonError, ToJson};
use dva_memory::{CacheAccess, ScalarCache, ScalarCacheParams};

/// Per-resource operation totals and the resulting bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdealBound {
    /// Cycles of FU2-only work (multiply/divide/square-root).
    pub fu2_only: Cycle,
    /// Cycles of vector work either unit can execute.
    pub either_fu: Cycle,
    /// Memory port cycles (vector elements plus scalar cache misses).
    pub memory_port: Cycle,
    /// Scalar processor cycles (one per scalar instruction).
    pub scalar_processor: Cycle,
    /// Scalar cache cycles (one per scalar memory access).
    pub scalar_cache: Cycle,
}

impl IdealBound {
    /// The balanced per-FU load after splitting the either-unit pool.
    pub fn fu_bound(&self) -> Cycle {
        let total = self.fu2_only + self.either_fu;
        self.fu2_only.max(total.div_ceil(2))
    }

    /// The lower bound on execution time: the busiest resource.
    pub fn cycles(&self) -> Cycle {
        self.fu_bound()
            .max(self.memory_port)
            .max(self.scalar_processor)
            .max(self.scalar_cache)
    }

    /// The name of the limiting resource.
    pub fn bottleneck(&self) -> &'static str {
        let c = self.cycles();
        if c == self.memory_port {
            "memory port"
        } else if c == self.fu_bound() {
            "functional units"
        } else if c == self.scalar_processor {
            "scalar processor"
        } else {
            "scalar cache"
        }
    }
}

impl ToJson for IdealBound {
    fn to_json(&self) -> Json {
        Json::obj([
            ("fu2_only", Json::from(self.fu2_only)),
            ("either_fu", Json::from(self.either_fu)),
            ("memory_port", Json::from(self.memory_port)),
            ("scalar_processor", Json::from(self.scalar_processor)),
            ("scalar_cache", Json::from(self.scalar_cache)),
        ])
    }
}

impl FromJson for IdealBound {
    fn from_json(json: &Json) -> Result<IdealBound, JsonError> {
        Ok(IdealBound {
            fu2_only: json.field("fu2_only")?.as_u64()?,
            either_fu: json.field("either_fu")?.as_u64()?,
            memory_port: json.field("memory_port")?.as_u64()?,
            scalar_processor: json.field("scalar_processor")?.as_u64()?,
            scalar_cache: json.field("scalar_cache")?.as_u64()?,
        })
    }
}

/// Computes the IDEAL execution-time lower bound for a program.
///
/// The scalar cache behaviour is reproduced by streaming the trace's
/// scalar addresses through the same cache model the simulators use, so
/// the bound's memory-port total counts exactly the accesses that would
/// miss.
pub fn ideal_bound(program: &Program) -> IdealBound {
    let mut bound = IdealBound {
        fu2_only: 0,
        either_fu: 0,
        memory_port: 0,
        scalar_processor: 0,
        scalar_cache: 0,
    };
    let mut cache = ScalarCache::new(ScalarCacheParams::default());
    for inst in program.insts() {
        match inst {
            Inst::SAlu { .. } | Inst::Branch { .. } => bound.scalar_processor += 1,
            Inst::SLoad { addr, .. } => {
                bound.scalar_processor += 1;
                bound.scalar_cache += 1;
                if cache.load(*addr) == CacheAccess::Miss {
                    bound.memory_port += 1;
                }
            }
            Inst::SStore { addr, .. } => {
                bound.scalar_processor += 1;
                bound.scalar_cache += 1;
                // Write-through: every store reaches memory.
                let _ = cache.store(*addr);
                bound.memory_port += 1;
            }
            Inst::VCompute { op, vl, .. } => {
                if op.requires_general_unit() {
                    bound.fu2_only += vl.cycles();
                } else {
                    bound.either_fu += vl.cycles();
                }
            }
            Inst::VReduce { vl, .. } => bound.either_fu += vl.cycles(),
            Inst::VLoad { access, .. } | Inst::VStore { access, .. } => {
                bound.memory_port += access.vl.cycles();
            }
            Inst::VGather { vl, .. } | Inst::VScatter { vl, .. } => {
                bound.memory_port += vl.cycles();
            }
        }
    }
    bound
}

#[cfg(test)]
mod tests {
    use super::*;
    use dva_isa::{ScalarReg, VOperand, VectorAccess, VectorOp, VectorReg};
    use dva_testutil::vl;

    #[test]
    fn memory_bound_program_is_limited_by_the_port() {
        let program = Program::from_insts(
            "mem",
            vec![
                Inst::VLoad {
                    dst: VectorReg::V0,
                    access: VectorAccess::unit(0, vl(100)),
                },
                Inst::VLoad {
                    dst: VectorReg::V1,
                    access: VectorAccess::unit(0x1000, vl(100)),
                },
                Inst::VStore {
                    src: VectorReg::V0,
                    access: VectorAccess::unit(0x2000, vl(100)),
                },
            ],
        );
        let b = ideal_bound(&program);
        assert_eq!(b.memory_port, 300);
        assert_eq!(b.cycles(), 300);
        assert_eq!(b.bottleneck(), "memory port");
    }

    #[test]
    fn either_fu_work_splits_across_units() {
        let adds: Vec<Inst> = (0..4)
            .map(|_| Inst::VCompute {
                op: VectorOp::Add,
                dst: VectorReg::V2,
                src1: VOperand::Reg(VectorReg::V0),
                src2: Some(VOperand::Reg(VectorReg::V1)),
                vl: vl(50),
            })
            .collect();
        let b = ideal_bound(&Program::from_insts("adds", adds));
        assert_eq!(b.either_fu, 200);
        assert_eq!(b.fu_bound(), 100); // balanced over FU1 and FU2
    }

    #[test]
    fn fu2_only_work_cannot_be_balanced() {
        let muls: Vec<Inst> = (0..2)
            .map(|_| Inst::VCompute {
                op: VectorOp::Mul,
                dst: VectorReg::V2,
                src1: VOperand::Reg(VectorReg::V0),
                src2: Some(VOperand::Reg(VectorReg::V1)),
                vl: vl(64),
            })
            .collect();
        let b = ideal_bound(&Program::from_insts("muls", muls));
        assert_eq!(b.fu2_only, 128);
        assert_eq!(b.fu_bound(), 128);
    }

    #[test]
    fn scalar_cache_hits_do_not_use_the_port() {
        let program = Program::from_insts(
            "scalar",
            vec![
                Inst::SLoad {
                    dst: ScalarReg::scalar(0),
                    addr: 0x100,
                },
                Inst::SLoad {
                    dst: ScalarReg::scalar(1),
                    addr: 0x108, // same line: hit
                },
            ],
        );
        let b = ideal_bound(&program);
        assert_eq!(b.memory_port, 1);
        assert_eq!(b.scalar_cache, 2);
        assert_eq!(b.scalar_processor, 2);
    }

    #[test]
    fn bound_never_exceeds_simulated_time() {
        use crate::{DvaConfig, DvaSim};
        for bench in [
            dva_workloads::Benchmark::Arc2d,
            dva_workloads::Benchmark::Dyfesm,
        ] {
            let program = bench.program(dva_workloads::Scale::Quick);
            let bound = ideal_bound(&program).cycles();
            let sim = DvaSim::new(DvaConfig::dva(1)).run(&program);
            assert!(
                bound <= sim.cycles,
                "{}: bound {bound} exceeds simulated {}",
                bench.name(),
                sim.cycles
            );
        }
    }
}
