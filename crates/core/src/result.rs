//! Results of a decoupled-machine simulation.

use dva_engine::ResultCore;
use dva_metrics::Histogram;
use std::ops::Deref;

/// Everything measured during one run of the decoupled simulator: the
/// shared [`ResultCore`] (cycles, state breakdown, traffic, stalls) plus
/// the quantities only this machine produces.
///
/// The core's fields and methods are reachable directly through
/// `Deref` — `result.cycles`, `result.ipc()` — so the decoupled result
/// reads exactly like every other machine's. The core's front-end
/// [`stall_cycles`](ResultCore::stall_cycles) are this machine's fetch
/// processor stalls (see [`fp_stalls`](DvaResult::fp_stalls)).
///
/// Equality compares every *model* quantity; execution diagnostics such
/// as [`ticks_executed`](ResultCore::ticks_executed) are carried in
/// [`dva_metrics::Diag`] and never affect comparisons or `Debug` output,
/// so a fast-forward run is byte-identical to a naive one.
#[derive(Debug, Clone, PartialEq)]
pub struct DvaResult {
    /// The measurements every machine shares.
    pub core: ResultCore,
    /// Busy-slot histogram of the vector load data queue, sampled every
    /// cycle (Figure 6).
    pub avdq_occupancy: Histogram,
    /// Vector loads fully satisfied by the VADQ→AVDQ bypass.
    pub bypassed_loads: u64,
    /// Cycles the address processor spent draining stores to resolve
    /// memory hazards.
    pub drain_stall_cycles: u64,
    /// Highest VPIQ occupancy observed.
    pub max_vpiq: usize,
    /// Highest APIQ occupancy observed.
    pub max_apiq: usize,
    /// Highest AVDQ busy-slot count observed.
    pub max_avdq: usize,
}

impl DvaResult {
    /// Cycles the fetch processor was blocked on a full instruction
    /// queue — this machine's name for the core's
    /// [`stall_cycles`](ResultCore::stall_cycles).
    pub fn fp_stalls(&self) -> u64 {
        self.core.stall_cycles
    }
}

impl Deref for DvaResult {
    type Target = ResultCore;

    fn deref(&self) -> &ResultCore {
        &self.core
    }
}
