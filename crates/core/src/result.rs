//! Results of a decoupled-machine simulation.

use dva_isa::Cycle;
use dva_metrics::{Diag, Histogram, StateTracker, Traffic};

/// Everything measured during one run of the decoupled simulator.
///
/// Equality compares every *model* quantity; execution diagnostics such
/// as [`ticks_executed`](DvaResult::ticks_executed) are carried in
/// [`Diag`] and never affect comparisons or `Debug` output, so a
/// fast-forward run is byte-identical to a naive one.
#[derive(Debug, Clone, PartialEq)]
pub struct DvaResult {
    /// Total execution time in cycles.
    pub cycles: Cycle,
    /// Architectural instructions fetched.
    pub insts: u64,
    /// Per-cycle occupancy of the (FU2, FU1, LD) tuple, comparable with
    /// the reference machine's breakdown (Figures 1 and 4).
    pub states: StateTracker,
    /// Memory traffic counters (bypassed loads counted separately).
    pub traffic: Traffic,
    /// Busy-slot histogram of the vector load data queue, sampled every
    /// cycle (Figure 6).
    pub avdq_occupancy: Histogram,
    /// Vector loads fully satisfied by the VADQ→AVDQ bypass.
    pub bypassed_loads: u64,
    /// Cycles the fetch processor was blocked on a full instruction queue.
    pub fp_stalls: u64,
    /// Cycles the address processor spent draining stores to resolve
    /// memory hazards.
    pub drain_stall_cycles: u64,
    /// Address bus utilization (0..=1).
    pub bus_utilization: f64,
    /// Scalar cache hit rate (0..=1).
    pub cache_hit_rate: f64,
    /// Highest VPIQ occupancy observed.
    pub max_vpiq: usize,
    /// Highest APIQ occupancy observed.
    pub max_apiq: usize,
    /// Highest AVDQ busy-slot count observed.
    pub max_avdq: usize,
    /// Engine iterations actually executed. Equal to `cycles` under naive
    /// stepping; under fast-forward it counts only the ticks that were
    /// simulated (skipped quiet cycles are bulk-accounted). A diagnostic:
    /// excluded from equality and `Debug`.
    pub ticks_executed: Diag<u64>,
}

impl DvaResult {
    /// Cycles spent in the all-idle `( , , )` state.
    pub fn idle_cycles(&self) -> Cycle {
        self.states.idle_cycles()
    }

    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.insts as f64 / self.cycles as f64
        }
    }
}
