//! Behavioral tests of the decoupled engine on hand-built traces with
//! known timing.

use dva_core::{DvaConfig, DvaSim, QueueConfig};
use dva_isa::{Inst, Program, ReduceOp, ScalarReg, VectorAccess, VectorReg};
use dva_testutil::{vadd, vl, vload};

#[test]
fn single_load_pays_fetch_queue_and_memory_latency() {
    let p = Program::from_insts("one-load", vec![vload(VectorReg::V0, 0x1000, 64)]);
    let d = DvaSim::new(DvaConfig::dva(30)).run(&p);
    // Lower bound: bus VL + latency + QMOV move; upper bound adds only a
    // handful of queue-hop cycles.
    assert!(d.cycles >= 30 + 64 + 64);
    assert!(
        d.cycles <= 30 + 64 + 64 + 16,
        "too much overhead: {}",
        d.cycles
    );
}

#[test]
fn independent_loads_pipeline_on_the_bus() {
    // Six independent loads: the bus serializes them but latency is paid
    // once, not six times.
    let insts: Vec<Inst> = (0..6)
        .map(|i| {
            vload(
                VectorReg::from_index(i).unwrap(),
                0x10000 * (i as u64 + 1),
                64,
            )
        })
        .collect();
    let p = Program::from_insts("loads", insts);
    let d = DvaSim::new(DvaConfig::dva(100)).run(&p);
    // 6*64 bus cycles + one latency + drain; decoupling hides the rest.
    assert!(d.cycles < 6 * 64 + 100 + 100);
}

#[test]
fn fetch_stalls_on_full_instruction_queue_but_completes() {
    let mut config = DvaConfig::dva(50);
    config.queues = QueueConfig {
        instruction_queue: 2,
        ..config.queues
    };
    let insts: Vec<Inst> = (0..12)
        .map(|i| {
            vload(
                VectorReg::from_index(i % 8).unwrap(),
                0x10000 * (i as u64 + 1),
                32,
            )
        })
        .collect();
    let p = Program::from_insts("fp-stall", insts);
    let d = DvaSim::new(config).run(&p);
    assert!(d.fp_stalls() > 0, "expected fetch back-pressure");
    assert_eq!(d.traffic.vector_load_elems, 12 * 32);
}

#[test]
fn queue_occupancy_never_exceeds_capacity() {
    let p = dva_workloads::Benchmark::Spec77.program(dva_workloads::Scale::Quick);
    let config = DvaConfig::dva(100);
    let d = DvaSim::new(config).run(&p);
    assert!(d.max_vpiq <= config.queues.instruction_queue);
    assert!(d.max_apiq <= config.queues.instruction_queue);
}

#[test]
fn reduction_round_trip_reaches_the_scalar_processor() {
    // load -> reduce -> scalar use: the value crosses VP -> VSDQ -> SP.
    let p = Program::from_insts(
        "reduce",
        vec![
            vload(VectorReg::V0, 0x1000, 16),
            Inst::VReduce {
                op: ReduceOp::Sum,
                dst: ScalarReg::scalar(1),
                src: VectorReg::V0,
                vl: vl(16),
            },
            Inst::SAlu {
                dst: ScalarReg::scalar(2),
                src1: Some(ScalarReg::scalar(1)),
                src2: None,
            },
        ],
    );
    let d = DvaSim::new(DvaConfig::dva(10)).run(&p);
    // load complete (10+16), then the QMOV move; the reduce *chains* off
    // the QMOV, completes ~(4+16) later, and the result hops VSDQ → SP.
    assert!(d.cycles >= 26 + 18, "too fast: {}", d.cycles);
    assert!(d.cycles < 120, "too slow: {}", d.cycles);
}

#[test]
fn dependent_compute_chains_off_the_qmov() {
    // The QMOV unit is chainable: the add starts while the QMOV is still
    // moving elements into v0.
    let chained = Program::from_insts(
        "chain",
        vec![
            vload(VectorReg::V0, 0x1000, 128),
            vadd(VectorReg::V2, VectorReg::V0, VectorReg::V0, 128),
        ],
    );
    let d = DvaSim::new(DvaConfig::dva(1)).run(&chained);
    // Without QMOV chaining this would be >= 128 (load) + 128 (QMOV) +
    // 128 (add); chaining overlaps the last two.
    assert!(
        d.cycles < 129 + 128 + 128,
        "no chaining visible: {}",
        d.cycles
    );
}

#[test]
fn store_data_queue_backpressure_blocks_vp_not_ap() {
    // Many stores with a 1-slot store queue: the VP stalls pushing data,
    // but the AP keeps prefetching loads.
    let mut insts = Vec::new();
    for i in 0..4 {
        insts.push(vload(
            VectorReg::from_index(i).unwrap(),
            0x10000 * (i as u64 + 1),
            32,
        ));
    }
    for i in 0..4 {
        insts.push(Inst::VStore {
            src: VectorReg::from_index(i).unwrap(),
            access: VectorAccess::unit(0x80000 + 0x1000 * i as u64, vl(32)),
        });
    }
    let p = Program::from_insts("sq-pressure", insts);
    let d = DvaSim::new(DvaSmallStoreQueue::config()).run(&p);
    assert_eq!(d.traffic.vector_store_elems, 4 * 32);
}

struct DvaSmallStoreQueue;
impl DvaSmallStoreQueue {
    fn config() -> DvaConfig {
        let mut config = DvaConfig::dva(20);
        config.queues.store_queue = 1;
        config
    }
}

#[test]
fn branches_resolve_on_their_owning_processor() {
    let p = Program::from_insts(
        "branches",
        vec![
            Inst::Branch {
                cond: ScalarReg::addr(0),
                taken: true,
            },
            Inst::Branch {
                cond: ScalarReg::scalar(0),
                taken: false,
            },
        ],
    );
    let d = DvaSim::new(DvaConfig::dva(1)).run(&p);
    assert!(d.cycles >= 2);
    assert!(d.cycles < 10);
}

#[test]
fn empty_program_finishes_immediately() {
    let p = Program::from_insts("empty", vec![]);
    let d = DvaSim::new(DvaConfig::dva(100)).run(&p);
    assert!(d.cycles <= 1);
    assert_eq!(d.insts, 0);
}
