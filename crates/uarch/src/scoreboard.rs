//! Scalar register scoreboard.

use dva_isa::{Cycle, ScalarReg};

/// Ready-time scoreboard over the `A` and `S` scalar register files.
///
/// Scalar instructions complete in one cycle on their processor (paper,
/// Section 4.4), but loads, reductions and cross-processor queue moves
/// complete later; the scoreboard tracks when each register's value is
/// available.
///
/// # Examples
///
/// ```
/// use dva_uarch::Scoreboard;
/// use dva_isa::ScalarReg;
///
/// let mut sb = Scoreboard::new();
/// sb.set_ready(ScalarReg::scalar(1), 42);
/// assert_eq!(sb.ready_at(ScalarReg::scalar(1)), 42);
/// assert!(!sb.is_ready(ScalarReg::scalar(1), 41));
/// ```
#[derive(Debug, Clone)]
pub struct Scoreboard {
    ready: [Cycle; ScalarReg::COUNT],
}

impl Default for Scoreboard {
    fn default() -> Self {
        Scoreboard::new()
    }
}

impl Scoreboard {
    /// Creates a scoreboard with every register ready at cycle 0.
    pub fn new() -> Scoreboard {
        Scoreboard {
            ready: [0; ScalarReg::COUNT],
        }
    }

    /// When `reg`'s value becomes available.
    pub fn ready_at(&self, reg: ScalarReg) -> Cycle {
        self.ready[reg.dense_index()]
    }

    /// Whether `reg` is available at cycle `now`.
    pub fn is_ready(&self, reg: ScalarReg, now: Cycle) -> bool {
        self.ready_at(reg) <= now
    }

    /// Whether every register in `regs` (ignoring `None`s) is available at
    /// `now`.
    pub fn all_ready(&self, regs: &[Option<ScalarReg>], now: Cycle) -> bool {
        regs.iter().flatten().all(|&reg| self.is_ready(reg, now))
    }

    /// The latest ready time among `regs`, i.e. when an instruction reading
    /// them could issue.
    pub fn ready_after(&self, regs: &[Option<ScalarReg>]) -> Cycle {
        regs.iter()
            .flatten()
            .map(|&reg| self.ready_at(reg))
            .max()
            .unwrap_or(0)
    }

    /// Records that `reg` becomes available at cycle `at`.
    pub fn set_ready(&mut self, reg: ScalarReg, at: Cycle) {
        self.ready[reg.dense_index()] = at;
    }

    /// The latest ready time across all registers (quiesce bound).
    pub fn quiesce_at(&self) -> Cycle {
        self.ready.iter().copied().max().unwrap_or(0)
    }

    /// The earliest cycle strictly after `now` at which any register
    /// becomes ready, or `None` when every pending value has already
    /// arrived. This is the scoreboard's contribution to the engines'
    /// next-event (fast-forward) computation.
    pub fn next_ready_after(&self, now: Cycle) -> Option<Cycle> {
        self.ready.iter().copied().filter(|&t| t > now).min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_scoreboard_is_all_ready() {
        let sb = Scoreboard::new();
        assert!(sb.is_ready(ScalarReg::addr(0), 0));
        assert_eq!(sb.quiesce_at(), 0);
    }

    #[test]
    fn all_ready_ignores_none_slots() {
        let mut sb = Scoreboard::new();
        sb.set_ready(ScalarReg::scalar(2), 10);
        assert!(sb.all_ready(&[None, Some(ScalarReg::addr(1))], 0));
        assert!(!sb.all_ready(&[Some(ScalarReg::scalar(2)), None], 9));
        assert!(sb.all_ready(&[Some(ScalarReg::scalar(2)), None], 10));
    }

    #[test]
    fn ready_after_takes_max() {
        let mut sb = Scoreboard::new();
        sb.set_ready(ScalarReg::addr(0), 5);
        sb.set_ready(ScalarReg::scalar(0), 9);
        let deps = [Some(ScalarReg::addr(0)), Some(ScalarReg::scalar(0))];
        assert_eq!(sb.ready_after(&deps), 9);
        assert_eq!(sb.ready_after(&[None, None]), 0);
    }

    #[test]
    fn next_ready_skips_past_and_present_values() {
        let mut sb = Scoreboard::new();
        assert_eq!(sb.next_ready_after(0), None);
        sb.set_ready(ScalarReg::addr(1), 5);
        sb.set_ready(ScalarReg::scalar(4), 9);
        assert_eq!(sb.next_ready_after(0), Some(5));
        assert_eq!(sb.next_ready_after(5), Some(9));
        assert_eq!(sb.next_ready_after(9), None);
    }

    #[test]
    fn banks_do_not_alias() {
        let mut sb = Scoreboard::new();
        sb.set_ready(ScalarReg::addr(3), 7);
        assert_eq!(sb.ready_at(ScalarReg::scalar(3)), 0);
    }
}
