//! Shared microarchitecture substrate for the reference and decoupled
//! vector architecture simulators.
//!
//! Both machines share the same vector engine building blocks (paper,
//! Sections 2.1 and 4.3):
//!
//! * a [`VectorRegFile`] of eight 128-element registers arranged in four
//!   two-register banks, each bank with two read ports and one write port;
//! * fully pipelined [`FuPipe`] functional units that accept one element
//!   per cycle (an instruction of length `VL` occupies its unit for `VL`
//!   cycles);
//! * **flexible chaining**: a dependent instruction may begin reading a
//!   register while its producer is still writing it, as long as the
//!   producer kind is chainable under the machine's [`ChainPolicy`] —
//!   memory loads are never chainable on either machine;
//! * a scalar [`Scoreboard`] for `A`/`S` register dependences.
//!
//! # Examples
//!
//! ```
//! use dva_uarch::{ChainPolicy, Producer, UarchParams, VectorRegFile};
//! use dva_isa::VectorReg;
//!
//! let params = UarchParams::default();
//! let mut regs = VectorRegFile::new(&params);
//! // A load writes v0: first element at cycle 10, complete at cycle 74.
//! regs.begin_write(VectorReg::V0, 0, 10, 74, Producer::MemoryLoad);
//! // Loads are not chainable: v0 is only readable once complete.
//! let policy = ChainPolicy::reference();
//! assert_eq!(regs.read_ready_at(VectorReg::V0, policy), 74);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fu;
mod params;
mod regfile;
mod scoreboard;

pub use fu::FuPipe;
pub use params::{ChainPolicy, UarchParams};
pub use regfile::{Producer, VectorRegFile};
pub use scoreboard::Scoreboard;
