//! The banked vector register file with chaining-aware hazard tracking.

use crate::params::{ChainPolicy, UarchParams};
use dva_isa::{Cycle, VectorReg, NUM_VECTOR_REGS, VECTOR_BANK_SIZE};

/// The kind of unit currently (or last) writing a register; determines
/// whether consumers may chain off it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Producer {
    /// Register is architecturally idle (no in-flight writer).
    Idle,
    /// Written by `FU1`/`FU2`.
    FunctionalUnit,
    /// Written by a QMOV unit (decoupled machine).
    Qmov,
    /// Written by the memory load unit.
    MemoryLoad,
}

#[derive(Debug, Clone, Copy)]
struct VRegState {
    /// Cycle at which the last element is written and the register is
    /// fully architecturally valid.
    ready_at: Cycle,
    /// Cycle at which the first element is written (chaining window
    /// start).
    first_elem_at: Cycle,
    /// Who is writing it.
    producer: Producer,
    /// Latest cycle at which an in-flight reader is still streaming the
    /// register (write-after-read hazard bound).
    readers_until: Cycle,
}

impl Default for VRegState {
    fn default() -> Self {
        VRegState {
            ready_at: 0,
            first_elem_at: 0,
            producer: Producer::Idle,
            readers_until: 0,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct BankPorts {
    /// Free-from cycles of the two read ports.
    read_free: [Cycle; 2],
    /// Free-from cycle of the single write port.
    write_free: Cycle,
}

const NUM_BANKS: usize = NUM_VECTOR_REGS / VECTOR_BANK_SIZE;

/// Read-port demand per bank for an operand list, deduplicating repeated
/// registers (a register read twice by one instruction needs one port).
/// Shared by [`VectorRegFile::can_issue`] and
/// [`VectorRegFile::issue_ready_at`], whose answers must stay exactly
/// consistent for the fast-forward wake times to be sound.
fn read_port_need(reads: &[VectorReg]) -> [usize; NUM_BANKS] {
    let mut need = [0usize; NUM_BANKS];
    let mut seen: [Option<VectorReg>; 2] = [None, None];
    for &r in reads {
        if seen.contains(&Some(r)) {
            continue;
        }
        if seen[0].is_none() {
            seen[0] = Some(r);
        } else {
            seen[1] = Some(r);
        }
        need[r.bank()] += 1;
    }
    need
}

/// The eight-register vector register file.
///
/// Tracks read-after-write (with chaining), write-after-write and
/// write-after-read hazards, plus the structural 2R/1W port limits of each
/// two-register bank.
#[derive(Debug, Clone)]
pub struct VectorRegFile {
    regs: [VRegState; NUM_VECTOR_REGS],
    banks: [BankPorts; NUM_BANKS],
    check_ports: bool,
}

impl VectorRegFile {
    /// Creates a register file with all registers idle and ready.
    pub fn new(params: &UarchParams) -> VectorRegFile {
        VectorRegFile {
            regs: [VRegState::default(); NUM_VECTOR_REGS],
            banks: [BankPorts::default(); NUM_BANKS],
            check_ports: params.check_bank_ports,
        }
    }

    /// The earliest cycle at which `reg` may begin being *read* by a
    /// consumer operating under `policy`.
    ///
    /// If the in-flight producer is chainable the consumer may start one
    /// cycle after the first element lands; otherwise it must wait for the
    /// register to be complete.
    pub fn read_ready_at(&self, reg: VectorReg, policy: ChainPolicy) -> Cycle {
        let st = &self.regs[reg.index()];
        if policy.allows(st.producer) {
            // Chained consumers run element-synchronous with the producer
            // at one element per cycle, one cycle behind.
            st.first_elem_at.saturating_add(1).min(st.ready_at)
        } else {
            st.ready_at
        }
    }

    /// The earliest cycle at which `reg` may be *overwritten*: its current
    /// write must have completed (WAW) and all in-flight readers drained
    /// (WAR).
    pub fn write_ready_at(&self, reg: VectorReg) -> Cycle {
        let st = &self.regs[reg.index()];
        st.ready_at.max(st.readers_until)
    }

    /// Whether all of `reads` are readable and `write` (if any) writable at
    /// cycle `now`, including bank port availability for an operation that
    /// would stream for `duration` cycles.
    pub fn can_issue(
        &self,
        now: Cycle,
        reads: &[VectorReg],
        write: Option<VectorReg>,
        policy: ChainPolicy,
    ) -> bool {
        for &r in reads {
            if self.read_ready_at(r, policy) > now {
                return false;
            }
        }
        if let Some(w) = write {
            if self.write_ready_at(w) > now {
                return false;
            }
        }
        if self.check_ports {
            for (bank, &n) in read_port_need(reads).iter().enumerate() {
                let free = self.banks[bank]
                    .read_free
                    .iter()
                    .filter(|&&f| f <= now)
                    .count();
                if free < n {
                    return false;
                }
            }
            if let Some(w) = write {
                if self.banks[w.bank()].write_free > now {
                    return false;
                }
            }
        }
        true
    }

    /// The earliest cycle at which [`can_issue`](VectorRegFile::can_issue)
    /// with the same operands would pass, **assuming no further activity
    /// begins in the meantime** — the register file's contribution to a
    /// stalled instruction's precise wake time. Every gating condition is
    /// monotone while the machine makes no progress (operands only become
    /// ready, ports only free), so the earliest issue cycle is the max
    /// over the individual gates' flip times; `can_issue(t, ..)` is true
    /// at exactly `t >= issue_ready_at(..)` until something else issues.
    pub fn issue_ready_at(
        &self,
        reads: &[VectorReg],
        write: Option<VectorReg>,
        policy: ChainPolicy,
    ) -> Cycle {
        let mut at: Cycle = 0;
        for &r in reads {
            at = at.max(self.read_ready_at(r, policy));
        }
        if let Some(w) = write {
            at = at.max(self.write_ready_at(w));
        }
        if self.check_ports {
            // The n-th port of a bank is available at the n-th smallest
            // free time.
            for (bank, &n) in read_port_need(reads).iter().enumerate() {
                let [a, b] = self.banks[bank].read_free;
                at = at.max(match n {
                    0 => 0,
                    1 => a.min(b),
                    _ => a.max(b),
                });
            }
            if let Some(w) = write {
                at = at.max(self.banks[w.bank()].write_free);
            }
        }
        at
    }

    /// Marks `reads` as being streamed for `duration` cycles starting at
    /// `now`, allocating bank read ports.
    ///
    /// # Panics
    ///
    /// Panics if a needed read port is unavailable (callers must gate on
    /// [`VectorRegFile::can_issue`]).
    pub fn begin_reads(&mut self, now: Cycle, reads: &[VectorReg], duration: u64) {
        let until = now + duration;
        let mut seen: [Option<VectorReg>; 2] = [None, None];
        for &r in reads {
            if seen.contains(&Some(r)) {
                continue;
            }
            if seen[0].is_none() {
                seen[0] = Some(r);
            } else {
                seen[1] = Some(r);
            }
            self.regs[r.index()].readers_until = self.regs[r.index()].readers_until.max(until);
            if self.check_ports {
                let bank = &mut self.banks[r.bank()];
                let port = bank
                    .read_free
                    .iter_mut()
                    .find(|f| **f <= now)
                    .expect("read port unavailable; call can_issue first");
                *port = until;
            }
        }
    }

    /// Marks `reg` as being written: first element at `first_elem_at`,
    /// complete at `ready_at`, by a unit of kind `producer`. Allocates the
    /// bank write port from `now` until `ready_at`.
    ///
    /// # Panics
    ///
    /// Panics if the write port is unavailable.
    pub fn begin_write(
        &mut self,
        reg: VectorReg,
        now: Cycle,
        first_elem_at: Cycle,
        ready_at: Cycle,
        producer: Producer,
    ) {
        debug_assert!(first_elem_at <= ready_at);
        let st = &mut self.regs[reg.index()];
        st.first_elem_at = first_elem_at;
        st.ready_at = ready_at;
        st.producer = producer;
        if self.check_ports {
            let bank = &mut self.banks[reg.bank()];
            assert!(
                bank.write_free <= now,
                "write port of bank {} unavailable; call can_issue first",
                reg.bank()
            );
            bank.write_free = ready_at;
        }
    }

    /// The cycle at which `reg` is fully written.
    pub fn ready_at(&self, reg: VectorReg) -> Cycle {
        self.regs[reg.index()].ready_at
    }

    /// The producer kind of the in-flight (or last) write to `reg`.
    pub fn producer(&self, reg: VectorReg) -> Producer {
        self.regs[reg.index()].producer
    }

    /// The earliest cycle by which every register is idle: no pending
    /// write and no in-flight reader. Used to detect end of execution.
    pub fn quiesce_at(&self) -> Cycle {
        self.regs
            .iter()
            .map(|st| st.ready_at.max(st.readers_until))
            .max()
            .unwrap_or(0)
    }

    /// The earliest cycle strictly after `now` at which any hazard or
    /// structural condition tracked by the register file can change: a
    /// chaining window opening (`first_elem_at + 1`), a write completing,
    /// a reader draining, or a bank port freeing. `None` when the file is
    /// fully quiet.
    ///
    /// The engines' fast-forward no longer needs this global scan — they
    /// ask [`issue_ready_at`](VectorRegFile::issue_ready_at) for the
    /// stalled instruction's specific operands instead — but it remains
    /// the right probe for custom processors that cannot enumerate their
    /// gates.
    pub fn next_event_after(&self, now: Cycle) -> Option<Cycle> {
        let mut next = dva_isa::EarliestAfter::new(now);
        for st in &self.regs {
            if st.ready_at.max(st.readers_until) <= now {
                continue; // quiet: every window it could open is past
            }
            // The chaining window opens at first_elem_at + 1, clamped to
            // ready_at exactly as in `read_ready_at`.
            next.consider(st.first_elem_at.saturating_add(1).min(st.ready_at));
            next.consider(st.ready_at);
            next.consider(st.readers_until);
        }
        for bank in &self.banks {
            next.consider(bank.write_free);
            for &port in &bank.read_free {
                next.consider(port);
            }
        }
        next.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn regfile() -> VectorRegFile {
        VectorRegFile::new(&UarchParams::default())
    }

    #[test]
    fn chainable_producer_opens_early_read_window() {
        let mut rf = regfile();
        rf.begin_write(VectorReg::V0, 0, 4, 68, Producer::FunctionalUnit);
        let policy = ChainPolicy::reference();
        assert_eq!(rf.read_ready_at(VectorReg::V0, policy), 5);
        // Memory loads are not chainable under the same policy.
        rf.begin_write(VectorReg::V2, 0, 10, 74, Producer::MemoryLoad);
        assert_eq!(rf.read_ready_at(VectorReg::V2, policy), 74);
    }

    #[test]
    fn waw_and_war_block_overwrites() {
        let mut rf = regfile();
        rf.begin_write(VectorReg::V1, 0, 4, 68, Producer::FunctionalUnit);
        assert_eq!(rf.write_ready_at(VectorReg::V1), 68);
        rf.begin_reads(10, &[VectorReg::V3], 50);
        assert_eq!(rf.write_ready_at(VectorReg::V3), 60);
    }

    #[test]
    fn bank_write_port_conflicts_block_issue() {
        let mut rf = regfile();
        // v0 and v1 share bank 0's single write port.
        rf.begin_write(VectorReg::V0, 0, 4, 100, Producer::FunctionalUnit);
        assert!(!rf.can_issue(10, &[], Some(VectorReg::V1), ChainPolicy::reference()));
        // v2 lives in bank 1 and is fine.
        assert!(rf.can_issue(10, &[], Some(VectorReg::V2), ChainPolicy::reference()));
    }

    #[test]
    fn bank_read_ports_allow_two_concurrent_readers() {
        let mut rf = regfile();
        rf.begin_reads(0, &[VectorReg::V0], 100);
        assert!(rf.can_issue(0, &[VectorReg::V1], None, ChainPolicy::reference()));
        rf.begin_reads(0, &[VectorReg::V1], 100);
        // Both ports of bank 0 are now streaming.
        assert!(!rf.can_issue(50, &[VectorReg::V0], None, ChainPolicy::reference()));
        // Ports free at cycle 100.
        assert!(rf.can_issue(100, &[VectorReg::V0], None, ChainPolicy::reference()));
    }

    #[test]
    fn duplicate_source_needs_one_port() {
        let mut rf = regfile();
        rf.begin_reads(0, &[VectorReg::V0], 100);
        // vadd v2, v1, v1 needs only the second port of bank 0.
        assert!(rf.can_issue(
            0,
            &[VectorReg::V1, VectorReg::V1],
            Some(VectorReg::V2),
            ChainPolicy::reference()
        ));
    }

    #[test]
    fn port_checks_can_be_disabled() {
        let params = UarchParams {
            check_bank_ports: false,
            ..UarchParams::default()
        };
        let mut rf = VectorRegFile::new(&params);
        rf.begin_write(VectorReg::V0, 0, 4, 100, Producer::FunctionalUnit);
        // Full crossbar: the shared write port no longer matters.
        assert!(rf.can_issue(10, &[], Some(VectorReg::V1), ChainPolicy::reference()));
    }

    #[test]
    fn next_event_covers_chain_window_completion_and_readers() {
        let mut rf = regfile();
        assert_eq!(rf.next_event_after(0), None);
        rf.begin_write(VectorReg::V0, 0, 4, 68, Producer::FunctionalUnit);
        // Chain window opens at first_elem_at + 1 = 5.
        assert_eq!(rf.next_event_after(0), Some(5));
        // Past the window: the next change is the write completing (the
        // bank write port frees at the same cycle).
        assert_eq!(rf.next_event_after(5), Some(68));
        rf.begin_reads(0, &[VectorReg::V4], 30);
        assert_eq!(rf.next_event_after(5), Some(30));
        assert_eq!(rf.next_event_after(68), None);
    }

    #[test]
    fn issue_ready_at_is_the_first_cycle_can_issue_passes() {
        let policy = ChainPolicy::reference();
        let mut rf = regfile();
        rf.begin_write(VectorReg::V0, 0, 4, 68, Producer::MemoryLoad); // not chainable
        rf.begin_reads(0, &[VectorReg::V2], 30);
        rf.begin_write(VectorReg::V4, 0, 4, 40, Producer::FunctionalUnit);
        for (reads, write) in [
            (vec![VectorReg::V0], Some(VectorReg::V6)), // RAW on load
            (vec![], Some(VectorReg::V2)),              // WAR on reader
            (vec![VectorReg::V4], None),                // chainable RAW
            (vec![VectorReg::V1], None),                // bank 0 port vs V0 write
            (vec![VectorReg::V0, VectorReg::V4], Some(VectorReg::V2)),
        ] {
            let t = rf.issue_ready_at(&reads, write, policy);
            assert!(
                rf.can_issue(t, &reads, write, policy),
                "reads={reads:?} write={write:?}: not issuable at claimed t={t}"
            );
            if t > 0 {
                assert!(
                    !rf.can_issue(t - 1, &reads, write, policy),
                    "reads={reads:?} write={write:?}: already issuable before t={t}"
                );
            }
        }
    }

    #[test]
    fn quiesce_tracks_latest_activity() {
        let mut rf = regfile();
        assert_eq!(rf.quiesce_at(), 0);
        rf.begin_write(VectorReg::V4, 0, 4, 68, Producer::FunctionalUnit);
        rf.begin_reads(0, &[VectorReg::V5], 90);
        assert_eq!(rf.quiesce_at(), 90);
    }
}
