//! Fully pipelined functional units.

use dva_isa::Cycle;

/// A fully pipelined vector functional unit (or QMOV move unit).
///
/// A vector instruction of length `VL` feeds the unit one element per
/// cycle, occupying it for exactly `VL` cycles; the pipeline drain overlaps
/// with the next instruction, so results complete `startup + VL` cycles
/// after issue while the unit frees after only `VL`.
///
/// # Examples
///
/// ```
/// use dva_uarch::FuPipe;
/// let mut fu = FuPipe::new("FU1");
/// assert!(fu.is_free(0));
/// fu.reserve(0, 64);
/// assert!(!fu.is_free(63));
/// assert!(fu.is_free(64));
/// ```
#[derive(Debug, Clone)]
pub struct FuPipe {
    name: &'static str,
    busy_until: Cycle,
    busy_cycles: u64,
    ops: u64,
}

impl FuPipe {
    /// Creates an idle unit with a diagnostic name.
    pub fn new(name: &'static str) -> FuPipe {
        FuPipe {
            name,
            busy_until: 0,
            busy_cycles: 0,
            ops: 0,
        }
    }

    /// The unit's diagnostic name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Whether the unit can accept a new instruction at cycle `now`.
    pub fn is_free(&self, now: Cycle) -> bool {
        now >= self.busy_until
    }

    /// Whether the unit is streaming elements at cycle `now` (used for the
    /// Figure 1 state accounting).
    pub fn is_busy_at(&self, now: Cycle) -> bool {
        now < self.busy_until
    }

    /// The first cycle at which the unit frees.
    pub fn free_at(&self) -> Cycle {
        self.busy_until
    }

    /// Occupies the unit for `cycles` cycles starting at `now`.
    ///
    /// # Panics
    ///
    /// Panics if the unit is busy at `now`.
    pub fn reserve(&mut self, now: Cycle, cycles: u64) -> Cycle {
        assert!(
            self.is_free(now),
            "{} busy until {} at cycle {now}",
            self.name,
            self.busy_until
        );
        self.busy_until = now + cycles;
        self.busy_cycles += cycles;
        self.ops += 1;
        self.busy_until
    }

    /// Total cycles the unit has streamed elements.
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Number of instructions executed by the unit.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Utilization over `total` elapsed cycles (0..=1).
    pub fn utilization(&self, total: Cycle) -> f64 {
        if total == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_tracks_busy_window_and_counts() {
        let mut fu = FuPipe::new("FU2");
        fu.reserve(5, 10);
        assert!(fu.is_busy_at(5));
        assert!(fu.is_busy_at(14));
        assert!(!fu.is_busy_at(15));
        assert_eq!(fu.free_at(), 15);
        assert_eq!(fu.busy_cycles(), 10);
        assert_eq!(fu.ops(), 1);
    }

    #[test]
    #[should_panic(expected = "busy until")]
    fn overlapping_reservation_panics() {
        let mut fu = FuPipe::new("FU1");
        fu.reserve(0, 8);
        fu.reserve(7, 1);
    }

    #[test]
    fn utilization_is_busy_over_total() {
        let mut fu = FuPipe::new("LD");
        fu.reserve(0, 25);
        assert!((fu.utilization(100) - 0.25).abs() < 1e-12);
        assert_eq!(fu.utilization(0), 0.0);
    }
}
