//! Microarchitecture parameters shared by both simulators.

use crate::regfile::Producer;
use dva_json::{FromJson, Json, JsonError, ToJson};

/// Timing and feature knobs of the vector engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UarchParams {
    /// Functional-unit startup (pipeline depth): cycles from instruction
    /// start to its first result element being written.
    pub fu_startup: u64,
    /// Startup of the QMOV data-movement units of the decoupled machine.
    pub qmov_startup: u64,
    /// Whether to model the 2-read/1-write port restriction of each
    /// two-register bank. The Convex compiler schedules around port
    /// conflicts; disabling the check models a full crossbar.
    pub check_bank_ports: bool,
}

impl Default for UarchParams {
    fn default() -> Self {
        UarchParams {
            fu_startup: 4,
            qmov_startup: 2,
            check_bank_ports: true,
        }
    }
}

impl ToJson for UarchParams {
    fn to_json(&self) -> Json {
        Json::obj([
            ("fu_startup", Json::from(self.fu_startup)),
            ("qmov_startup", Json::from(self.qmov_startup)),
            ("check_bank_ports", Json::from(self.check_bank_ports)),
        ])
    }
}

impl FromJson for UarchParams {
    fn from_json(json: &Json) -> Result<UarchParams, JsonError> {
        Ok(UarchParams {
            fu_startup: json.field("fu_startup")?.as_u64()?,
            qmov_startup: json.field("qmov_startup")?.as_u64()?,
            check_bank_ports: json.field("check_bank_ports")?.as_bool()?,
        })
    }
}

/// Which producers a consumer may chain from.
///
/// The modeled machines implement *fully flexible* chaining between
/// functional units and from functional units to the store unit, but never
/// chain memory loads into functional units (paper, Section 2.1: neither
/// the Convex C34 nor the Cray-2/3 chain loads, because memory may deliver
/// elements out of order).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainPolicy {
    /// Chaining from a functional-unit producer.
    pub from_fu: bool,
    /// Chaining from a QMOV data-movement unit (decoupled machine only).
    pub from_qmov: bool,
    /// Chaining from a memory load.
    pub from_memory: bool,
}

impl ChainPolicy {
    /// The reference architecture's policy: chain from FUs, never from
    /// memory. (QMOV units do not exist on the reference machine; the flag
    /// is irrelevant there.)
    pub fn reference() -> ChainPolicy {
        ChainPolicy {
            from_fu: true,
            from_qmov: true,
            from_memory: false,
        }
    }

    /// A policy with no chaining at all, for ablation studies.
    pub fn none() -> ChainPolicy {
        ChainPolicy {
            from_fu: false,
            from_qmov: false,
            from_memory: false,
        }
    }

    /// Whether a register written by `producer` may be chained from.
    pub fn allows(&self, producer: Producer) -> bool {
        match producer {
            Producer::Idle => true,
            Producer::FunctionalUnit => self.from_fu,
            Producer::Qmov => self.from_qmov,
            Producer::MemoryLoad => self.from_memory,
        }
    }
}

impl Default for ChainPolicy {
    fn default() -> Self {
        ChainPolicy::reference()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_policy_blocks_memory_chaining_only() {
        let p = ChainPolicy::reference();
        assert!(p.allows(Producer::FunctionalUnit));
        assert!(p.allows(Producer::Qmov));
        assert!(p.allows(Producer::Idle));
        assert!(!p.allows(Producer::MemoryLoad));
    }

    #[test]
    fn uarch_params_round_trip_through_json() {
        let params = UarchParams {
            fu_startup: 7,
            qmov_startup: 1,
            check_bank_ports: false,
        };
        assert_eq!(UarchParams::from_json(&params.to_json()).unwrap(), params);
    }

    #[test]
    fn none_policy_blocks_everything_but_idle() {
        let p = ChainPolicy::none();
        assert!(p.allows(Producer::Idle));
        assert!(!p.allows(Producer::FunctionalUnit));
        assert!(!p.allows(Producer::Qmov));
        assert!(!p.allows(Producer::MemoryLoad));
    }
}
