//! Property-based tests of the vector register file's hazard tracking.

use dva_isa::VectorReg;
use dva_uarch::{ChainPolicy, Producer, UarchParams, VectorRegFile};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = VectorReg> {
    (0usize..8).prop_map(|i| VectorReg::from_index(i).unwrap())
}

fn arb_producer() -> impl Strategy<Value = Producer> {
    prop_oneof![
        Just(Producer::FunctionalUnit),
        Just(Producer::Qmov),
        Just(Producer::MemoryLoad),
    ]
}

proptest! {
    /// A chainable read window never opens before the first element and
    /// never after completion.
    #[test]
    fn read_window_is_within_write_interval(
        reg in arb_reg(),
        first in 1u64..1000,
        span in 1u64..200,
        producer in arb_producer(),
    ) {
        let mut rf = VectorRegFile::new(&UarchParams::default());
        let ready = first + span;
        rf.begin_write(reg, 0, first, ready, producer);
        let policy = ChainPolicy::reference();
        let read_at = rf.read_ready_at(reg, policy);
        prop_assert!(read_at >= first.min(ready));
        prop_assert!(read_at <= ready);
        // Under the no-chaining policy the read always waits for
        // completion.
        prop_assert_eq!(rf.read_ready_at(reg, ChainPolicy::none()), ready);
    }

    /// Write-after-write and write-after-read hazards are respected: the
    /// write-ready time is never before either the ready time or the last
    /// reader.
    #[test]
    fn write_ready_respects_hazards(
        reg in arb_reg(),
        ready in 1u64..500,
        read_start in 0u64..500,
        read_len in 1u64..300,
    ) {
        let mut rf = VectorRegFile::new(&UarchParams::default());
        rf.begin_write(reg, 0, ready.saturating_sub(1), ready, Producer::FunctionalUnit);
        rf.begin_reads(read_start, &[reg], read_len);
        let w = rf.write_ready_at(reg);
        prop_assert!(w >= ready);
        prop_assert!(w >= read_start + read_len);
    }

    /// can_issue is consistent with the fine-grained queries: if it says
    /// yes, every read window is open and the destination is writable.
    #[test]
    fn can_issue_implies_component_readiness(
        srcs in proptest::collection::vec(arb_reg(), 0..3),
        dst in arb_reg(),
        now in 0u64..100,
    ) {
        let rf = VectorRegFile::new(&UarchParams::default());
        let policy = ChainPolicy::reference();
        if rf.can_issue(now, &srcs, Some(dst), policy) {
            for &s in &srcs {
                prop_assert!(rf.read_ready_at(s, policy) <= now);
            }
            prop_assert!(rf.write_ready_at(dst) <= now);
        }
    }

    /// Port accounting: with every bank write port held, no new write can
    /// issue anywhere.
    #[test]
    fn saturated_write_ports_block_all_writes(now in 0u64..50) {
        let mut rf = VectorRegFile::new(&UarchParams::default());
        for bank_first in [VectorReg::V0, VectorReg::V2, VectorReg::V4, VectorReg::V6] {
            rf.begin_write(bank_first, now, now + 1, now + 1000, Producer::FunctionalUnit);
        }
        for reg in VectorReg::ALL {
            prop_assert!(
                !rf.can_issue(now + 1, &[], Some(reg), ChainPolicy::reference()),
                "{reg} issued with all write ports busy"
            );
        }
    }
}
