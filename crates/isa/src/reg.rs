//! Architectural register names.

use std::fmt;

/// Number of architectural vector registers (the C3400 has eight).
pub const NUM_VECTOR_REGS: usize = 8;

/// Number of vector registers sharing one register bank.
///
/// On the modeled machine every two vector registers are grouped in a bank
/// that exposes two read ports and one write port towards the functional
/// units (paper, Section 2.1).
pub const VECTOR_BANK_SIZE: usize = 2;

/// One of the eight architectural vector registers, `V0`..`V7`.
///
/// # Examples
///
/// ```
/// use dva_isa::VectorReg;
/// assert_eq!(VectorReg::V5.index(), 5);
/// assert_eq!(VectorReg::V5.bank(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum VectorReg {
    V0,
    V1,
    V2,
    V3,
    V4,
    V5,
    V6,
    V7,
}

impl VectorReg {
    /// All vector registers, in index order.
    pub const ALL: [VectorReg; NUM_VECTOR_REGS] = [
        VectorReg::V0,
        VectorReg::V1,
        VectorReg::V2,
        VectorReg::V3,
        VectorReg::V4,
        VectorReg::V5,
        VectorReg::V6,
        VectorReg::V7,
    ];

    /// Returns the register with the given index.
    ///
    /// Returns `None` when `index >= NUM_VECTOR_REGS`.
    pub fn from_index(index: usize) -> Option<VectorReg> {
        Self::ALL.get(index).copied()
    }

    /// The architectural index of this register (0..8).
    pub fn index(self) -> usize {
        self as usize
    }

    /// The register bank this register belongs to (0..4).
    ///
    /// Registers `V0`/`V1` share bank 0, `V2`/`V3` bank 1, and so on.
    pub fn bank(self) -> usize {
        self.index() / VECTOR_BANK_SIZE
    }
}

impl fmt::Display for VectorReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.index())
    }
}

impl Default for VectorReg {
    /// `V0` — the fill value for inline operand lists.
    fn default() -> VectorReg {
        VectorReg::V0
    }
}

/// The two scalar register files of the Convex architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ScalarBank {
    /// `A` registers: address arithmetic, executed by the address processor
    /// in the decoupled machine.
    Address,
    /// `S` registers: scalar computation, executed by the scalar processor.
    Scalar,
}

/// A scalar register: a bank (`A` or `S`) plus an index.
///
/// # Examples
///
/// ```
/// use dva_isa::{ScalarBank, ScalarReg};
/// let a3 = ScalarReg::addr(3);
/// assert_eq!(a3.bank(), ScalarBank::Address);
/// assert_eq!(a3.to_string(), "a3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ScalarReg {
    bank: ScalarBank,
    index: u8,
}

/// Number of registers in each scalar bank.
pub(crate) const SCALAR_REGS_PER_BANK: u8 = 8;

impl ScalarReg {
    /// Creates an `A` (address) register.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range for the bank (8 registers per bank).
    pub fn addr(index: u8) -> ScalarReg {
        assert!(
            index < SCALAR_REGS_PER_BANK,
            "address register index {index} out of range"
        );
        ScalarReg {
            bank: ScalarBank::Address,
            index,
        }
    }

    /// Creates an `S` (scalar) register.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range for the bank (8 registers per bank).
    pub fn scalar(index: u8) -> ScalarReg {
        assert!(
            index < SCALAR_REGS_PER_BANK,
            "scalar register index {index} out of range"
        );
        ScalarReg {
            bank: ScalarBank::Scalar,
            index,
        }
    }

    /// The bank this register belongs to.
    pub fn bank(self) -> ScalarBank {
        self.bank
    }

    /// The index of this register inside its bank.
    pub fn index(self) -> u8 {
        self.index
    }

    /// A dense identifier unique across both banks, usable as an array index.
    pub fn dense_index(self) -> usize {
        let base = match self.bank {
            ScalarBank::Address => 0,
            ScalarBank::Scalar => SCALAR_REGS_PER_BANK as usize,
        };
        base + self.index as usize
    }

    /// Total number of scalar registers across both banks.
    pub const COUNT: usize = 2 * SCALAR_REGS_PER_BANK as usize;
}

impl fmt::Display for ScalarReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let prefix = match self.bank {
            ScalarBank::Address => 'a',
            ScalarBank::Scalar => 's',
        };
        write!(f, "{}{}", prefix, self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_reg_banks_pair_adjacent_registers() {
        assert_eq!(VectorReg::V0.bank(), VectorReg::V1.bank());
        assert_eq!(VectorReg::V2.bank(), VectorReg::V3.bank());
        assert_ne!(VectorReg::V1.bank(), VectorReg::V2.bank());
        assert_eq!(VectorReg::V7.bank(), 3);
    }

    #[test]
    fn vector_reg_round_trips_through_index() {
        for reg in VectorReg::ALL {
            assert_eq!(VectorReg::from_index(reg.index()), Some(reg));
        }
        assert_eq!(VectorReg::from_index(NUM_VECTOR_REGS), None);
    }

    #[test]
    fn scalar_dense_indices_are_unique() {
        let mut seen = [false; ScalarReg::COUNT];
        for i in 0..SCALAR_REGS_PER_BANK {
            for reg in [ScalarReg::addr(i), ScalarReg::scalar(i)] {
                let idx = reg.dense_index();
                assert!(!seen[idx], "duplicate dense index {idx}");
                seen[idx] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn display_formats_match_convex_conventions() {
        assert_eq!(VectorReg::V3.to_string(), "v3");
        assert_eq!(ScalarReg::addr(1).to_string(), "a1");
        assert_eq!(ScalarReg::scalar(7).to_string(), "s7");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn scalar_reg_rejects_out_of_range_index() {
        let _ = ScalarReg::scalar(SCALAR_REGS_PER_BANK);
    }
}
