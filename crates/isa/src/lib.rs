//! Instruction-set model for the *Decoupled Vector Architectures* (HPCA 1996)
//! reproduction.
//!
//! This crate defines the architectural vocabulary shared by every simulator
//! in the workspace: registers, vector lengths and strides, memory accesses
//! and their ranges, decoded instructions, and program/trace containers.
//!
//! The modeled machine follows the paper's *Reference Vector Architecture*
//! (a close model of the Convex C3400): a scalar part with `A` (address) and
//! `S` (scalar) registers, and a vector part with eight vector registers of
//! 128 elements of 64 bits each.
//!
//! # Examples
//!
//! ```
//! use dva_isa::{Inst, Program, VectorAccess, VectorLength, VectorReg};
//!
//! let vl = VectorLength::new(64).unwrap();
//! let access = VectorAccess::unit(0x1000, vl);
//! let program = Program::from_insts(
//!     "example",
//!     vec![Inst::VLoad { dst: VectorReg::V0, access }],
//! );
//! assert_eq!(program.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod inline_vec;
mod inst;
mod mem;
mod program;
mod reg;
mod vector;

pub use inline_vec::InlineVec;
pub use inst::{Inst, ReduceOp, ScalarClass, VOperand, VectorOp};
pub use mem::{MemRange, VectorAccess};
pub use program::{BasicBlockIter, Program, ProgramBuilder, TraceSummary};
pub use reg::{ScalarBank, ScalarReg, VectorReg, NUM_VECTOR_REGS, VECTOR_BANK_SIZE};
pub use vector::{Stride, VectorLength, ELEM_BYTES, MAX_VECTOR_LENGTH};

/// Simulation time, measured in processor cycles.
pub type Cycle = u64;

/// Accumulates the earliest cycle strictly after a reference point — the
/// shared kernel of every next-event (fast-forward) computation: feed it
/// each candidate time with [`consider`](EarliestAfter::consider) and
/// read the minimum future one back with [`get`](EarliestAfter::get).
///
/// # Examples
///
/// ```
/// use dva_isa::EarliestAfter;
///
/// let mut next = EarliestAfter::new(10);
/// next.consider(7); // already in the past: ignored
/// next.consider(42);
/// next.consider(15);
/// assert_eq!(next.get(), Some(15));
/// assert_eq!(EarliestAfter::new(10).get(), None);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct EarliestAfter {
    now: Cycle,
    next: Option<Cycle>,
}

impl EarliestAfter {
    /// Starts an accumulation relative to `now`.
    pub fn new(now: Cycle) -> EarliestAfter {
        EarliestAfter { now, next: None }
    }

    /// Offers a candidate time; kept only if it is strictly after `now`
    /// and earlier than every candidate seen so far.
    pub fn consider(&mut self, t: Cycle) {
        if t > self.now && self.next.is_none_or(|n| t < n) {
            self.next = Some(t);
        }
    }

    /// Offers an optional candidate time.
    pub fn consider_opt(&mut self, t: Option<Cycle>) {
        if let Some(t) = t {
            self.consider(t);
        }
    }

    /// The earliest future candidate, or `None` if none was offered.
    pub fn get(self) -> Option<Cycle> {
        self.next
    }
}
