//! Instruction-set model for the *Decoupled Vector Architectures* (HPCA 1996)
//! reproduction.
//!
//! This crate defines the architectural vocabulary shared by every simulator
//! in the workspace: registers, vector lengths and strides, memory accesses
//! and their ranges, decoded instructions, and program/trace containers.
//!
//! The modeled machine follows the paper's *Reference Vector Architecture*
//! (a close model of the Convex C3400): a scalar part with `A` (address) and
//! `S` (scalar) registers, and a vector part with eight vector registers of
//! 128 elements of 64 bits each.
//!
//! # Examples
//!
//! ```
//! use dva_isa::{Inst, Program, VectorAccess, VectorLength, VectorReg};
//!
//! let vl = VectorLength::new(64).unwrap();
//! let access = VectorAccess::unit(0x1000, vl);
//! let program = Program::from_insts(
//!     "example",
//!     vec![Inst::VLoad { dst: VectorReg::V0, access }],
//! );
//! assert_eq!(program.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod inst;
mod mem;
mod program;
mod reg;
mod vector;

pub use inst::{Inst, ReduceOp, ScalarClass, VOperand, VectorOp};
pub use mem::{MemRange, VectorAccess};
pub use program::{BasicBlockIter, Program, ProgramBuilder, TraceSummary};
pub use reg::{ScalarBank, ScalarReg, VectorReg, NUM_VECTOR_REGS, VECTOR_BANK_SIZE};
pub use vector::{Stride, VectorLength, ELEM_BYTES, MAX_VECTOR_LENGTH};

/// Simulation time, measured in processor cycles.
pub type Cycle = u64;
