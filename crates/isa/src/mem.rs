//! Vector memory accesses and the memory ranges used for dynamic
//! disambiguation (paper, Section 4.2).

use crate::vector::{Stride, VectorLength, ELEM_BYTES};
use std::fmt;

/// The address-generation portion of a vector memory instruction: base
/// address, stride and vector length.
///
/// # Examples
///
/// ```
/// use dva_isa::{Stride, VectorAccess, VectorLength};
/// let vl = VectorLength::new(4).unwrap();
/// let acc = VectorAccess::new(0x1000, Stride::new(2), vl);
/// let range = acc.range();
/// assert_eq!(range.start(), 0x1000);
/// // BA + (VL-1)*VS + S = 0x1000 + 3*16 + 8
/// assert_eq!(range.end(), 0x1000 + 48 + 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VectorAccess {
    /// Base byte address of the first element.
    pub base: u64,
    /// Stride between consecutive elements.
    pub stride: Stride,
    /// Number of elements accessed.
    pub vl: VectorLength,
}

impl VectorAccess {
    /// Creates a vector access description.
    pub fn new(base: u64, stride: Stride, vl: VectorLength) -> VectorAccess {
        VectorAccess { base, stride, vl }
    }

    /// Creates a unit-stride access.
    pub fn unit(base: u64, vl: VectorLength) -> VectorAccess {
        VectorAccess::new(base, Stride::UNIT, vl)
    }

    /// The memory range touched by this access, as defined in the paper:
    /// all locations between `BA` and `BA + (VL-1)*VS + S` (terms inverted
    /// for negative strides).
    pub fn range(&self) -> MemRange {
        let span = (self.vl.get() as i64 - 1) * self.stride.bytes();
        let (lo, hi) = if span >= 0 {
            (self.base, self.base.saturating_add(span as u64))
        } else {
            (self.base.saturating_sub((-span) as u64), self.base)
        };
        MemRange {
            start: lo,
            end: hi.saturating_add(ELEM_BYTES),
        }
    }

    /// Whether two accesses are *identical* in the sense required by the
    /// store→load bypass: same base, same stride, same vector length.
    pub fn is_identical(&self, other: &VectorAccess) -> bool {
        self == other
    }

    /// Total bytes transferred by this access.
    pub fn bytes(&self) -> u64 {
        u64::from(self.vl.get()) * ELEM_BYTES
    }
}

impl fmt::Display for VectorAccess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[base={:#x}, stride={}, vl={}]",
            self.base, self.stride, self.vl
        )
    }
}

/// A half-open byte range `[start, end)` of memory touched by an access.
///
/// Used by the address processor to detect memory hazards between loads and
/// queued stores. Scatter/gather accesses cannot be characterized by a
/// range; the paper (and this model) treats them as defining *all* of
/// memory, which [`MemRange::ALL`] represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRange {
    start: u64,
    end: u64,
}

impl MemRange {
    /// The range covering all of memory (used for scatter/gather).
    pub const ALL: MemRange = MemRange {
        start: 0,
        end: u64::MAX,
    };

    /// Creates a range from raw bounds.
    ///
    /// # Panics
    ///
    /// Panics if `start > end`.
    pub fn new(start: u64, end: u64) -> MemRange {
        assert!(start <= end, "invalid memory range {start:#x}..{end:#x}");
        MemRange { start, end }
    }

    /// First byte address covered.
    pub fn start(&self) -> u64 {
        self.start
    }

    /// One past the last byte address covered.
    pub fn end(&self) -> u64 {
        self.end
    }

    /// Whether the two ranges overlap in at least one byte (the paper's
    /// memory-hazard condition).
    pub fn overlaps(&self, other: &MemRange) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// Whether this range fully contains `other`.
    pub fn contains(&self, other: &MemRange) -> bool {
        self.start <= other.start && other.end <= self.end
    }

    /// Number of bytes covered.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// Whether the range covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

impl fmt::Display for MemRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}..{:#x}", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vl(n: u32) -> VectorLength {
        VectorLength::new(n).unwrap()
    }

    #[test]
    fn unit_stride_range_covers_vl_elements() {
        let acc = VectorAccess::unit(0x100, vl(16));
        let r = acc.range();
        assert_eq!(r.start(), 0x100);
        assert_eq!(r.end(), 0x100 + 16 * ELEM_BYTES);
        assert_eq!(r.len(), 128);
    }

    #[test]
    fn negative_stride_inverts_range_bounds() {
        let acc = VectorAccess::new(0x1000, Stride::new(-2), vl(4));
        let r = acc.range();
        // Elements at 0x1000, 0xff0, 0xfe0, 0xfd0; lowest byte 0xfd0,
        // highest touched byte 0x1000 + 8.
        assert_eq!(r.start(), 0x1000 - 3 * 16);
        assert_eq!(r.end(), 0x1000 + ELEM_BYTES);
    }

    #[test]
    fn single_element_range_is_one_word() {
        let acc = VectorAccess::unit(0x40, vl(1));
        assert_eq!(acc.range().len(), ELEM_BYTES);
    }

    #[test]
    fn overlap_requires_at_least_one_shared_byte() {
        let a = MemRange::new(0x100, 0x180);
        let b = MemRange::new(0x180, 0x200);
        let c = MemRange::new(0x17f, 0x181);
        assert!(!a.overlaps(&b), "touching ranges do not overlap");
        assert!(a.overlaps(&c));
        assert!(c.overlaps(&a));
        assert!(MemRange::ALL.overlaps(&a));
    }

    #[test]
    fn disjoint_strided_accesses_do_not_conflict_by_range() {
        // Interleaved even/odd accesses DO conflict under the conservative
        // range model even though their element sets are disjoint; the
        // paper's disambiguation is range-based, so we follow it.
        let even = VectorAccess::new(0x0, Stride::new(2), vl(8));
        let odd = VectorAccess::new(0x8, Stride::new(2), vl(8));
        assert!(even.range().overlaps(&odd.range()));
    }

    #[test]
    fn identical_detects_bypass_candidates() {
        let a = VectorAccess::new(0x2000, Stride::UNIT, vl(32));
        let b = VectorAccess::new(0x2000, Stride::UNIT, vl(32));
        let c = VectorAccess::new(0x2000, Stride::UNIT, vl(33));
        assert!(a.is_identical(&b));
        assert!(!a.is_identical(&c));
    }

    #[test]
    fn contains_and_empty_behave() {
        let outer = MemRange::new(0, 100);
        let inner = MemRange::new(10, 20);
        assert!(outer.contains(&inner));
        assert!(!inner.contains(&outer));
        assert!(MemRange::new(5, 5).is_empty());
    }
}
