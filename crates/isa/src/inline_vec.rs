//! A fixed-capacity, heap-free vector.

use std::fmt;
use std::ops::Deref;

/// A vector with inline storage for at most `N` elements and no heap
/// allocation — the workhorse of the simulators' zero-allocation hot
/// loops, where µops carry tiny bounded operand lists (a vector compute
/// reads at most two registers, a scatter streams a source and an index).
///
/// Dereferences to a slice, so it drops into any `&[T]` API.
///
/// # Examples
///
/// ```
/// use dva_isa::InlineVec;
///
/// let mut regs: InlineVec<u8, 2> = InlineVec::new();
/// regs.push(3);
/// regs.push(7);
/// assert_eq!(&regs[..], &[3, 7]);
/// assert!(regs.is_full());
/// ```
#[derive(Clone, Copy)]
pub struct InlineVec<T: Copy, const N: usize> {
    items: [T; N],
    len: u8,
}

impl<T: Copy + Default, const N: usize> InlineVec<T, N> {
    /// An empty vector.
    pub fn new() -> InlineVec<T, N> {
        const {
            assert!(
                N <= u8::MAX as usize,
                "InlineVec capacity must fit in a byte"
            )
        };
        InlineVec {
            items: [T::default(); N],
            len: 0,
        }
    }
}

impl<T: Copy, const N: usize> InlineVec<T, N> {
    /// Appends an element.
    ///
    /// # Panics
    ///
    /// Panics when the vector already holds `N` elements — inline
    /// capacities are chosen to be provably sufficient, so an overflow is
    /// a logic error, not a resize.
    pub fn push(&mut self, item: T) {
        assert!(!self.is_full(), "InlineVec overflow (capacity {N})");
        self.items[self.len as usize] = item;
        self.len += 1;
    }

    /// Number of elements held.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the vector holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the vector holds `N` elements.
    pub fn is_full(&self) -> bool {
        self.len as usize >= N
    }

    /// The elements as a slice.
    pub fn as_slice(&self) -> &[T] {
        &self.items[..self.len as usize]
    }
}

impl<T: Copy + Default, const N: usize> Default for InlineVec<T, N> {
    fn default() -> InlineVec<T, N> {
        InlineVec::new()
    }
}

impl<T: Copy + Default, const N: usize> FromIterator<T> for InlineVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> InlineVec<T, N> {
        let mut v = InlineVec::new();
        for item in iter {
            v.push(item);
        }
        v
    }
}

impl<T: Copy, const N: usize> Deref for InlineVec<T, N> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy + fmt::Debug, const N: usize> fmt::Debug for InlineVec<T, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl<T: Copy + PartialEq, const N: usize> PartialEq for InlineVec<T, N> {
    fn eq(&self, other: &InlineVec<T, N>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Eq, const N: usize> Eq for InlineVec<T, N> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_len_and_slice_agree() {
        let mut v: InlineVec<u32, 3> = InlineVec::new();
        assert!(v.is_empty());
        v.push(1);
        v.push(2);
        assert_eq!(v.len(), 2);
        assert_eq!(&v[..], &[1, 2]);
        assert!(!v.is_full());
        v.push(3);
        assert!(v.is_full());
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let mut v: InlineVec<u8, 1> = InlineVec::new();
        v.push(0);
        v.push(1);
    }

    #[test]
    fn collects_from_iterators_and_compares() {
        let a: InlineVec<u8, 4> = [1, 2, 3].into_iter().collect();
        let b: InlineVec<u8, 4> = [1, 2, 3].into_iter().collect();
        let c: InlineVec<u8, 4> = [1, 2].into_iter().collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(format!("{a:?}"), "[1, 2, 3]");
    }
}
