//! Vector length and stride newtypes.

use std::fmt;

/// Maximum vector length supported by the vector registers (128 elements).
pub const MAX_VECTOR_LENGTH: u32 = 128;

/// Size in bytes of one vector element (64-bit words).
pub const ELEM_BYTES: u64 = 8;

/// The value held in the vector length register when a vector instruction
/// executes: the number of elements it operates on, `1..=128`.
///
/// # Examples
///
/// ```
/// use dva_isa::VectorLength;
/// let vl = VectorLength::new(96).unwrap();
/// assert_eq!(vl.get(), 96);
/// assert!(VectorLength::new(0).is_none());
/// assert!(VectorLength::new(129).is_none());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VectorLength(u32);

impl VectorLength {
    /// The maximum vector length (a full 128-element register).
    pub const MAX: VectorLength = VectorLength(MAX_VECTOR_LENGTH);

    /// A vector length of one element.
    pub const ONE: VectorLength = VectorLength(1);

    /// Creates a vector length, returning `None` unless `1 <= len <= 128`.
    pub fn new(len: u32) -> Option<VectorLength> {
        if (1..=MAX_VECTOR_LENGTH).contains(&len) {
            Some(VectorLength(len))
        } else {
            None
        }
    }

    /// Creates a vector length, clamping `len` into `1..=128`.
    pub fn clamped(len: u32) -> VectorLength {
        VectorLength(len.clamp(1, MAX_VECTOR_LENGTH))
    }

    /// The number of elements.
    pub fn get(self) -> u32 {
        self.0
    }

    /// The number of elements as a `Cycle` quantity (vector instructions
    /// occupy pipelined resources for exactly `VL` cycles in the paper's
    /// model).
    pub fn cycles(self) -> u64 {
        u64::from(self.0)
    }
}

impl fmt::Display for VectorLength {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<VectorLength> for u32 {
    fn from(vl: VectorLength) -> u32 {
        vl.get()
    }
}

/// A vector memory stride, in elements (may be negative).
///
/// The paper's disambiguation rules are defined over byte addresses; the
/// stride converts to bytes via [`ELEM_BYTES`].
///
/// # Examples
///
/// ```
/// use dva_isa::Stride;
/// assert_eq!(Stride::UNIT.elems(), 1);
/// assert_eq!(Stride::new(-4).bytes(), -32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Stride(i64);

impl Stride {
    /// Unit (contiguous) stride.
    pub const UNIT: Stride = Stride(1);

    /// Creates a stride of `elems` elements.
    pub fn new(elems: i64) -> Stride {
        Stride(elems)
    }

    /// The stride in elements.
    pub fn elems(self) -> i64 {
        self.0
    }

    /// The stride in bytes.
    pub fn bytes(self) -> i64 {
        self.0 * ELEM_BYTES as i64
    }
}

impl fmt::Display for Stride {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Default for Stride {
    fn default() -> Self {
        Stride::UNIT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_length_validates_bounds() {
        assert!(VectorLength::new(0).is_none());
        assert_eq!(VectorLength::new(1), Some(VectorLength::ONE));
        assert_eq!(VectorLength::new(128), Some(VectorLength::MAX));
        assert!(VectorLength::new(129).is_none());
    }

    #[test]
    fn clamped_saturates_into_range() {
        assert_eq!(VectorLength::clamped(0), VectorLength::ONE);
        assert_eq!(VectorLength::clamped(64).get(), 64);
        assert_eq!(VectorLength::clamped(1000), VectorLength::MAX);
    }

    #[test]
    fn stride_byte_conversion_uses_element_size() {
        assert_eq!(Stride::UNIT.bytes(), 8);
        assert_eq!(Stride::new(0).bytes(), 0);
        assert_eq!(Stride::new(-3).bytes(), -24);
    }
}
